"""6DoF pose: position + orientation at a time instant.

A pose is what the user study logs at 30 Hz — 3DoF translation (X, Y, Z) and
3DoF rotation (yaw, pitch, roll, stored as a quaternion).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..geometry import Frustum, Quaternion

__all__ = ["Pose"]


@dataclass(frozen=True)
class Pose:
    """A timestamped 6DoF viewport pose."""

    t: float
    position: np.ndarray
    orientation: Quaternion

    def __post_init__(self) -> None:
        p = np.asarray(self.position, dtype=np.float64)
        if p.shape != (3,):
            raise ValueError("position must be a 3-vector")
        object.__setattr__(self, "position", p)

    def frustum(
        self,
        h_fov: float = np.deg2rad(90.0),
        v_fov: float = np.deg2rad(70.0),
        near: float = 0.05,
        far: float = 20.0,
    ) -> Frustum:
        """The view frustum of this pose."""
        return Frustum(
            position=self.position,
            orientation=self.orientation,
            h_fov=h_fov,
            v_fov=v_fov,
            near=near,
            far=far,
        )

    def interpolate(self, other: "Pose", t: float) -> "Pose":
        """Pose at absolute time ``t`` between ``self.t`` and ``other.t``.

        Linear in position, slerp in orientation.  ``t`` outside the span
        extrapolates linearly / clamps rotation, which the predictors rely on.
        """
        span = other.t - self.t
        if abs(span) < 1e-12:
            return self
        alpha = (t - self.t) / span
        pos = self.position + alpha * (other.position - self.position)
        rot = self.orientation.slerp(other.orientation, float(np.clip(alpha, 0.0, 1.0)))
        return Pose(t=t, position=pos, orientation=rot)

    def distance_to(self, other: "Pose") -> float:
        """Positional distance in meters (ignores orientation)."""
        return float(np.linalg.norm(self.position - other.position))

    def angular_distance_to(self, other: "Pose") -> float:
        """Orientation difference in radians."""
        return self.orientation.angle_to(other.orientation)
