"""6DoF viewport traces: pose containers, behaviour models, the user study."""

from .analytics import TraceStatistics, study_statistics, trace_statistics
from .behavior import AttentionModel, BehaviorParams, device_profile, generate_trace
from .io import load_study_npz, save_study_npz, trace_from_json, trace_to_json
from .pose import Pose
from .trace import Device, Trace
from .userstudy import UserStudy, generate_user_study

__all__ = [
    "TraceStatistics",
    "study_statistics",
    "trace_statistics",
    "AttentionModel",
    "BehaviorParams",
    "device_profile",
    "generate_trace",
    "load_study_npz",
    "save_study_npz",
    "trace_from_json",
    "trace_to_json",
    "Pose",
    "Device",
    "Trace",
    "UserStudy",
    "generate_user_study",
]
