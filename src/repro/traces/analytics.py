"""Trace analytics: the motion statistics a user-study release reports.

Characterizes 6DoF traces the way the ViVo/paper user studies do —
translational speed, roaming extent, angular velocity, viewing distance —
individually and aggregated per device group, so synthetic and (future)
real traces can be compared on the same footing.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..geometry import Quaternion
from .trace import Device, Trace
from .userstudy import UserStudy

__all__ = ["TraceStatistics", "trace_statistics", "study_statistics"]


@dataclass(frozen=True)
class TraceStatistics:
    """Motion summary of one trace."""

    user_id: int
    device: Device
    duration_s: float
    mean_speed_mps: float
    p95_speed_mps: float
    position_spread_m: float
    mean_angular_speed_dps: float
    mean_viewing_distance_m: float

    def as_row(self) -> list:
        return [
            self.user_id,
            self.device.value,
            round(self.duration_s, 1),
            round(self.mean_speed_mps, 3),
            round(self.p95_speed_mps, 3),
            round(self.position_spread_m, 3),
            round(self.mean_angular_speed_dps, 1),
            round(self.mean_viewing_distance_m, 2),
        ]


def _angular_speeds_dps(trace: Trace) -> np.ndarray:
    """Per-sample angular speed in degrees/second."""
    if len(trace) < 2:
        return np.zeros(1)
    angles = []
    prev = Quaternion.from_array(trace.orientations[0])
    for q in trace.orientations[1:]:
        current = Quaternion.from_array(q)
        angles.append(prev.angle_to(current))
        prev = current
    return np.rad2deg(np.array(angles)) * trace.rate_hz


def trace_statistics(
    trace: Trace, content_center: np.ndarray | None = None
) -> TraceStatistics:
    """Compute the motion summary of one trace.

    ``content_center`` anchors the viewing-distance statistic (defaults to
    the origin, where the synthetic study places the content).
    """
    center = (
        np.zeros(3) if content_center is None
        else np.asarray(content_center, dtype=np.float64)
    )
    speeds = np.linalg.norm(trace.velocities(), axis=1)
    distances = np.linalg.norm(trace.positions[:, :2] - center[:2], axis=1)
    return TraceStatistics(
        user_id=trace.user_id,
        device=trace.device,
        duration_s=trace.duration,
        mean_speed_mps=float(np.mean(speeds)),
        p95_speed_mps=float(np.percentile(speeds, 95)),
        position_spread_m=trace.position_spread(),
        mean_angular_speed_dps=float(np.mean(_angular_speeds_dps(trace))),
        mean_viewing_distance_m=float(np.mean(distances)),
    )


def study_statistics(
    study: UserStudy, content_center: np.ndarray | None = None
) -> dict[Device, dict[str, float]]:
    """Per-device aggregate motion statistics over a study.

    Returns ``{device: {metric: mean over that device's users}}`` — the
    table that substantiates the paper's "headset users move relatively
    more freely" observation.
    """
    out: dict[Device, dict[str, float]] = {}
    for device in Device:
        traces = study.by_device(device)
        if not traces:
            continue
        stats = [trace_statistics(t, content_center) for t in traces]
        out[device] = {
            "users": float(len(stats)),
            "mean_speed_mps": float(np.mean([s.mean_speed_mps for s in stats])),
            "p95_speed_mps": float(np.mean([s.p95_speed_mps for s in stats])),
            "position_spread_m": float(
                np.mean([s.position_spread_m for s in stats])
            ),
            "mean_angular_speed_dps": float(
                np.mean([s.mean_angular_speed_dps for s in stats])
            ),
            "mean_viewing_distance_m": float(
                np.mean([s.mean_viewing_distance_m for s in stats])
            ),
        }
    return out
