"""Behavioural 6DoF motion models for synthetic study participants.

The paper's viewport traces come from an IRB user study we cannot access, so
this module generates behaviourally plausible substitutes (see DESIGN.md §1).
The model encodes three well-documented regularities of volumetric-video
viewing that Fig. 2 depends on:

* **Shared attention**: viewers gravitate toward the interesting side of the
  content (a global, slowly-moving "attention azimuth"), which creates the
  large viewport overlaps the paper observes.  Each user also carries a
  personal azimuth anchor that decays toward the shared attention point at a
  per-user convergence rate — some pairs are aligned from the start, others
  start on opposite sides and converge (the two regimes of Fig. 2a).
* **Device affordances**: headset (HM) users translate much more freely than
  smartphone (PH) users, so HM viewports are more spread out and overlap
  less (Fig. 2b's PH-vs-HM ordering).
* **Smooth, noisy motion**: positions follow sinusoidal wander plus an
  Ornstein-Uhlenbeck jitter; gaze tracks a point on the figure with angular
  noise — no teleporting, bounded speeds.

Users orbit the content (the animated figure near the origin) at a preferred
viewing distance, looking at a gaze point on the figure.
"""

from __future__ import annotations

from dataclasses import dataclass, replace

import numpy as np

from ..geometry import Quaternion
from .trace import Device, Trace

__all__ = ["BehaviorParams", "AttentionModel", "generate_trace", "device_profile"]


@dataclass(frozen=True)
class AttentionModel:
    """The study-wide shared attention azimuth A(t).

    A slow sinusoid around the content's front: everyone's anchor decays
    toward this, producing inter-user similarity.
    """

    amplitude_rad: float = 0.35
    period_s: float = 40.0
    phase: float = 0.0

    def azimuth(self, t: np.ndarray | float) -> np.ndarray | float:
        return self.amplitude_rad * np.sin(
            2.0 * np.pi * np.asarray(t) / self.period_s + self.phase
        )


@dataclass(frozen=True)
class BehaviorParams:
    """Per-user motion parameters (see module docstring for the model)."""

    viewing_distance_m: float = 2.2  # preferred orbit radius
    distance_wander_m: float = 0.3  # radial breathing amplitude
    anchor_azimuth_rad: float = 0.0  # starting side of the content
    convergence_rate: float = 0.05  # 1/s decay of the anchor toward attention
    azimuth_wander_rad: float = 0.4  # personal orbit wander amplitude
    wander_period_s: float = 17.0
    ou_sigma_m: float = 0.05  # positional jitter scale
    ou_tau_s: float = 1.5  # jitter correlation time
    eye_height_m: float = 1.6
    gaze_noise_rad: float = 0.05  # angular noise on the view direction
    gaze_height_wander_m: float = 0.35  # gaze scans between head and torso


def device_profile(device: Device, rng: np.random.Generator) -> BehaviorParams:
    """Sample per-user parameters appropriate for a device class.

    Headset users roam: larger azimuth wander, faster convergence dynamics,
    bigger radial excursions.  Phone users mostly stand and pan.
    """
    if device is Device.HEADSET:
        return BehaviorParams(
            viewing_distance_m=float(rng.uniform(1.0, 2.4)),
            distance_wander_m=float(rng.uniform(0.3, 0.7)),
            azimuth_wander_rad=float(rng.uniform(0.5, 1.1)),
            wander_period_s=float(rng.uniform(12.0, 25.0)),
            ou_sigma_m=float(rng.uniform(0.06, 0.12)),
            eye_height_m=float(rng.uniform(1.5, 1.8)),
            gaze_noise_rad=float(rng.uniform(0.04, 0.08)),
        )
    return BehaviorParams(
        viewing_distance_m=float(rng.uniform(1.4, 2.2)),
        distance_wander_m=float(rng.uniform(0.05, 0.2)),
        azimuth_wander_rad=float(rng.uniform(0.1, 0.35)),
        wander_period_s=float(rng.uniform(15.0, 30.0)),
        ou_sigma_m=float(rng.uniform(0.02, 0.05)),
        eye_height_m=float(rng.uniform(1.4, 1.7)),
        gaze_noise_rad=float(rng.uniform(0.02, 0.05)),
    )


def _ou_process(
    rng: np.random.Generator, n: int, dt: float, sigma: float, tau: float
) -> np.ndarray:
    """Discrete Ornstein-Uhlenbeck noise, shape ``(n, 3)``, stationary scale sigma."""
    x = np.zeros((n, 3))
    if sigma <= 0:
        return x
    alpha = np.exp(-dt / tau)
    drive = sigma * np.sqrt(max(1e-12, 1.0 - alpha**2))
    for i in range(1, n):
        x[i] = alpha * x[i - 1] + drive * rng.normal(size=3)
    return x


def generate_trace(
    user_id: int,
    device: Device,
    duration_s: float,
    params: BehaviorParams | None = None,
    attention: AttentionModel | None = None,
    content_center: np.ndarray | None = None,
    rate_hz: float = 30.0,
    seed: int = 0,
) -> Trace:
    """Generate one user's 6DoF trace.

    Args:
        user_id: participant id, recorded on the trace.
        device: phone or headset; selects the default parameter profile.
        duration_s: trace length in seconds.
        params: explicit motion parameters (otherwise sampled per device).
        attention: shared attention model (defaults to the study default —
            pass the *same instance* to every user of a study).
        content_center: XY center of the content; defaults to the origin.
        rate_hz: sampling rate (the study logged 30 Hz).
        seed: RNG seed (combine with user_id for a study).
    """
    if duration_s <= 0:
        raise ValueError("duration_s must be positive")
    rng = np.random.default_rng(np.random.SeedSequence([seed, user_id]))
    params = params or device_profile(device, rng)
    attention = attention or AttentionModel()
    center = (
        np.zeros(3)
        if content_center is None
        else np.asarray(content_center, dtype=np.float64)
    )

    n = max(2, int(round(duration_s * rate_hz)))
    dt = 1.0 / rate_hz
    t = np.arange(n) * dt

    # Azimuth: shared attention + decaying personal anchor + personal wander.
    attn = np.asarray(attention.azimuth(t))
    anchor = params.anchor_azimuth_rad * np.exp(-params.convergence_rate * t)
    wander_phase = rng.uniform(0, 2 * np.pi)
    wander = params.azimuth_wander_rad * np.sin(
        2 * np.pi * t / params.wander_period_s + wander_phase
    )
    theta = attn + anchor + wander

    # Radius: preferred distance with slow breathing.
    r_phase = rng.uniform(0, 2 * np.pi)
    radius = params.viewing_distance_m + params.distance_wander_m * np.sin(
        2 * np.pi * t / (1.7 * params.wander_period_s) + r_phase
    )
    radius = np.maximum(0.6, radius)

    jitter = _ou_process(rng, n, dt, params.ou_sigma_m, params.ou_tau_s)
    positions = np.stack(
        [
            center[0] + radius * np.cos(theta) + jitter[:, 0],
            center[1] + radius * np.sin(theta) + jitter[:, 1],
            np.full(n, params.eye_height_m) + 0.3 * jitter[:, 2],
        ],
        axis=1,
    )

    # Gaze target scans vertically between the figure's head and torso.
    gaze_phase = rng.uniform(0, 2 * np.pi)
    gaze_z = 1.1 + params.gaze_height_wander_m * np.sin(
        2 * np.pi * t / (0.8 * params.wander_period_s) + gaze_phase
    )
    # Gaze jitter is temporally correlated (an OU process, ~0.4 s memory):
    # heads drift and re-fixate, they do not shake sample to sample.
    gaze_noise = _ou_process(rng, n, dt, params.gaze_noise_rad, 0.4)
    orientations = np.empty((n, 4))
    for i in range(n):
        target = np.array([center[0], center[1], gaze_z[i]])
        look = Quaternion.look_at(target - positions[i])
        if params.gaze_noise_rad > 0:
            noise = Quaternion.from_euler(
                float(gaze_noise[i, 0]), float(gaze_noise[i, 1]), 0.0
            )
            look = (look * noise).normalized()
        orientations[i] = look.as_array()

    return Trace(
        user_id=user_id,
        device=device,
        times=t,
        positions=positions,
        orientations=orientations,
        rate_hz=rate_hz,
    )


def with_anchor(
    params: BehaviorParams, anchor_azimuth_rad: float, convergence_rate: float
) -> BehaviorParams:
    """Copy ``params`` with a new attention anchor (used by the study builder)."""
    return replace(
        params,
        anchor_azimuth_rad=anchor_azimuth_rad,
        convergence_rate=convergence_rate,
    )
