"""Synthetic stand-in for the paper's 32-participant user study.

The paper analyzes 6DoF traces from 32 participants, split between a
smartphone group (PH) and a Magic Leap headset group (HM), all watching the
same volumetric videos.  :func:`generate_user_study` reproduces that setup:

* 32 users by default, half phone / half headset;
* all users share one :class:`~repro.traces.behavior.AttentionModel` so
  viewport similarity emerges from shared attention;
* personal azimuth anchors are drawn from a front-biased mixture — most
  people watch the figure's front, a minority starts on the sides/back and
  converges at a per-user rate.  This yields both Fig. 2a regimes
  (always-similar pairs and converging pairs) without hard-coding either.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from .behavior import AttentionModel, device_profile, generate_trace, with_anchor
from .trace import Device, Trace

__all__ = ["UserStudy", "generate_user_study"]


@dataclass
class UserStudy:
    """A set of synchronized traces from one viewing session."""

    traces: list[Trace]
    attention: AttentionModel = field(default_factory=AttentionModel)

    def __post_init__(self) -> None:
        if not self.traces:
            raise ValueError("a study needs at least one trace")
        lengths = {len(t) for t in self.traces}
        if len(lengths) != 1:
            raise ValueError("all traces in a study must have equal length")
        rates = {t.rate_hz for t in self.traces}
        if len(rates) != 1:
            raise ValueError("all traces in a study must share a sample rate")

    def __len__(self) -> int:
        return len(self.traces)

    @property
    def num_samples(self) -> int:
        return len(self.traces[0])

    @property
    def rate_hz(self) -> float:
        return self.traces[0].rate_hz

    def by_device(self, device: Device) -> list[Trace]:
        return [t for t in self.traces if t.device is device]

    def user(self, user_id: int) -> Trace:
        for t in self.traces:
            if t.user_id == user_id:
                return t
        raise KeyError(f"no user {user_id} in study")

    def positions_at(self, index: int) -> np.ndarray:
        """All user positions at a sample index, shape ``(num_users, 3)``."""
        return np.stack([t.positions[index] for t in self.traces])


def _sample_anchor(rng: np.random.Generator) -> tuple[float, float]:
    """Draw (anchor azimuth, convergence rate) from the attention mixture.

    ~60% front watchers (small anchors, slow convergence — they are already
    near the shared attention point), ~40% side/back starters with faster
    convergence (they drift to the front over the session).
    """
    if rng.random() < 0.6:
        anchor = float(rng.normal(scale=0.25))
        conv = float(rng.uniform(0.0, 0.03))
    else:
        anchor = float(rng.uniform(1.2, np.pi) * rng.choice([-1.0, 1.0]))
        conv = float(rng.uniform(0.015, 0.05))
    return anchor, conv


def generate_user_study(
    num_users: int = 32,
    duration_s: float = 10.0,
    rate_hz: float = 30.0,
    seed: int = 7,
    attention: AttentionModel | None = None,
    content_center: np.ndarray | None = None,
) -> UserStudy:
    """Generate the synthetic study.

    Users with even ids use headsets (HM), odd ids use phones (PH), giving
    the paper's half/half split for any even ``num_users``.
    """
    if num_users <= 0:
        raise ValueError("num_users must be positive")
    attention = attention or AttentionModel()
    traces = []
    for uid in range(num_users):
        device = Device.HEADSET if uid % 2 == 0 else Device.PHONE
        rng = np.random.default_rng(np.random.SeedSequence([seed, 1000 + uid]))
        params = device_profile(device, rng)
        anchor, conv = _sample_anchor(rng)
        params = with_anchor(params, anchor, conv)
        traces.append(
            generate_trace(
                user_id=uid,
                device=device,
                duration_s=duration_s,
                params=params,
                attention=attention,
                content_center=content_center,
                rate_hz=rate_hz,
                seed=seed,
            )
        )
    return UserStudy(traces=traces, attention=attention)
