"""6DoF viewport trace: a user's pose sequence sampled at a fixed rate.

Matches the paper's user-study format: "6DoF viewport trajectories were
collected for all users at 30 Hz during the viewing sessions."  Internally
the trace is stored as dense arrays (times, positions, quaternions) so
predictors and the simulator can slice windows without Python overhead.
"""

from __future__ import annotations

from enum import Enum

import numpy as np

from ..geometry import Quaternion
from .pose import Pose

__all__ = ["Device", "Trace"]


class Device(str, Enum):
    """Viewing device of a study participant.

    The paper's groups: PH = smartphone, HM = Magic Leap One headset.
    """

    PHONE = "PH"
    HEADSET = "HM"


class Trace:
    """A regularly-sampled 6DoF trajectory for one user.

    Attributes:
        times: ``(N,)`` seconds, uniformly spaced at ``rate_hz``.
        positions: ``(N, 3)`` meters.
        orientations: ``(N, 4)`` unit quaternions, scalar-first.
    """

    def __init__(
        self,
        user_id: int,
        device: Device,
        times: np.ndarray,
        positions: np.ndarray,
        orientations: np.ndarray,
        rate_hz: float = 30.0,
    ) -> None:
        times = np.asarray(times, dtype=np.float64)
        positions = np.asarray(positions, dtype=np.float64)
        orientations = np.asarray(orientations, dtype=np.float64)
        if times.ndim != 1 or len(times) == 0:
            raise ValueError("times must be a non-empty 1D array")
        if positions.shape != (len(times), 3):
            raise ValueError("positions must be (N, 3) aligned with times")
        if orientations.shape != (len(times), 4):
            raise ValueError("orientations must be (N, 4) aligned with times")
        if rate_hz <= 0:
            raise ValueError("rate_hz must be positive")
        # Normalize quaternions defensively; serialization may lose precision.
        norms = np.linalg.norm(orientations, axis=1, keepdims=True)
        if np.any(norms < 1e-9):
            raise ValueError("zero-norm quaternion in trace")
        self.user_id = int(user_id)
        self.device = Device(device)
        self.times = times
        self.positions = positions
        self.orientations = orientations / norms
        self.rate_hz = float(rate_hz)

    def __len__(self) -> int:
        return len(self.times)

    @property
    def duration(self) -> float:
        return float(self.times[-1] - self.times[0])

    def pose(self, index: int) -> Pose:
        """Pose at sample ``index`` (negative indices allowed)."""
        return Pose(
            t=float(self.times[index]),
            position=self.positions[index],
            orientation=Quaternion.from_array(self.orientations[index]),
        )

    def pose_at(self, t: float) -> Pose:
        """Pose at arbitrary time ``t`` by interpolation (clamped at ends)."""
        if t <= self.times[0]:
            return self.pose(0)
        if t >= self.times[-1]:
            return self.pose(len(self) - 1)
        hi = int(np.searchsorted(self.times, t))
        lo = hi - 1
        return self.pose(lo).interpolate(self.pose(hi), t)

    def index_at(self, t: float) -> int:
        """Nearest sample index for time ``t`` (clamped)."""
        idx = int(round((t - self.times[0]) * self.rate_hz))
        return max(0, min(idx, len(self) - 1))

    def window(self, end_index: int, length: int) -> "Trace":
        """The ``length`` samples ending at ``end_index`` (inclusive).

        Predictors use this as their history window; it clamps at the start
        of the trace rather than raising.
        """
        end = max(0, min(end_index, len(self) - 1))
        start = max(0, end - length + 1)
        return Trace(
            user_id=self.user_id,
            device=self.device,
            times=self.times[start : end + 1],
            positions=self.positions[start : end + 1],
            orientations=self.orientations[start : end + 1],
            rate_hz=self.rate_hz,
        )

    def velocities(self) -> np.ndarray:
        """Finite-difference translational velocity, shape ``(N, 3)`` m/s."""
        if len(self) == 1:
            return np.zeros((1, 3))
        v = np.gradient(self.positions, self.times, axis=0)
        return v

    def mean_speed(self) -> float:
        """Average translational speed in m/s (a mobility statistic)."""
        return float(np.mean(np.linalg.norm(self.velocities(), axis=1)))

    def position_spread(self) -> float:
        """RMS distance from the mean position — how much the user roams."""
        centered = self.positions - self.positions.mean(axis=0)
        return float(np.sqrt(np.mean(np.sum(centered**2, axis=1))))
