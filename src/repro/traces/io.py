"""Trace (de)serialization.

Two formats:

* ``.npz`` — compact binary for whole studies (what the benchmarks cache);
* ``.json`` — human-readable per-trace format compatible with simple
  external tooling (one record per 30 Hz sample).
"""

from __future__ import annotations

import json
from pathlib import Path

import numpy as np

from .behavior import AttentionModel
from .trace import Device, Trace
from .userstudy import UserStudy

__all__ = ["save_study_npz", "load_study_npz", "trace_to_json", "trace_from_json"]


def save_study_npz(study: UserStudy, path: str | Path) -> None:
    """Save every trace of a study into one ``.npz`` archive."""
    path = Path(path)
    payload: dict[str, np.ndarray] = {
        "user_ids": np.array([t.user_id for t in study.traces]),
        "devices": np.array([t.device.value for t in study.traces]),
        "rate_hz": np.array([study.rate_hz]),
        "attention": np.array(
            [
                study.attention.amplitude_rad,
                study.attention.period_s,
                study.attention.phase,
            ]
        ),
    }
    for t in study.traces:
        payload[f"times_{t.user_id}"] = t.times
        payload[f"pos_{t.user_id}"] = t.positions
        payload[f"ori_{t.user_id}"] = t.orientations
    np.savez_compressed(path, **payload)


def load_study_npz(path: str | Path) -> UserStudy:
    """Inverse of :func:`save_study_npz`."""
    with np.load(Path(path), allow_pickle=False) as data:
        user_ids = data["user_ids"]
        devices = data["devices"]
        rate_hz = float(data["rate_hz"][0])
        a, p, ph = data["attention"]
        traces = [
            Trace(
                user_id=int(uid),
                device=Device(str(dev)),
                times=data[f"times_{int(uid)}"],
                positions=data[f"pos_{int(uid)}"],
                orientations=data[f"ori_{int(uid)}"],
                rate_hz=rate_hz,
            )
            for uid, dev in zip(user_ids, devices)
        ]
    return UserStudy(
        traces=traces,
        attention=AttentionModel(
            amplitude_rad=float(a), period_s=float(p), phase=float(ph)
        ),
    )


def trace_to_json(trace: Trace) -> str:
    """Serialize one trace to a JSON string."""
    doc = {
        "user_id": trace.user_id,
        "device": trace.device.value,
        "rate_hz": trace.rate_hz,
        "samples": [
            {
                "t": float(t),
                "position": [float(x) for x in pos],
                "orientation": [float(x) for x in ori],
            }
            for t, pos, ori in zip(trace.times, trace.positions, trace.orientations)
        ],
    }
    return json.dumps(doc)


def trace_from_json(text: str) -> Trace:
    """Inverse of :func:`trace_to_json`."""
    doc = json.loads(text)
    samples = doc["samples"]
    if not samples:
        raise ValueError("trace JSON has no samples")
    return Trace(
        user_id=int(doc["user_id"]),
        device=Device(doc["device"]),
        times=np.array([s["t"] for s in samples]),
        positions=np.array([s["position"] for s in samples]),
        orientations=np.array([s["orientation"] for s in samples]),
        rate_hz=float(doc["rate_hz"]),
    )
