"""Command-line entry point: regenerate any paper experiment from a shell.

    python -m repro table1
    python -m repro fig2a fig2b
    python -m repro fig3b --instants 200
    python -m repro ablations
    python -m repro all
    python -m repro lint                      # repo-specific static analysis
    python -m repro run table1 --parallel 4   # parallel runner + result cache
    python -m repro figures --parallel 4      # every registered figure/table
    python -m repro trace loss_sweep          # structured JSONL timeline
    python -m repro trace venue_scale --stream  # bounded-memory recording
    python -m repro obs analyze t.jsonl       # spans + latency attribution
    python -m repro obs check t.jsonl --spec slo.json   # SLO gating
    python -m repro obs diff a.json b.json    # run-to-run regression diff
    python -m repro obs report a.json         # self-contained HTML report
    python -m repro bench loss_sweep          # BENCH_<n>.json perf point
    python -m repro bench --stream-rss        # streamed-vs-batch RSS gate
    python -m repro ablation --parallel 4     # component importance ranking

Each command prints the same formatted rows the benchmarks assert on.
``lint`` forwards to :mod:`repro.analysis` (same as
``python -m repro.analysis``); ``run`` and ``figures`` forward to the
deterministic parallel runner in :mod:`repro.runner.cli`; ``trace`` and
``obs`` forward to the observability layer in :mod:`repro.obs.cli`;
``bench`` forwards to the perf-trajectory harness in
:mod:`repro.obs.bench`; ``ablation`` forwards to the component-ablation
engine in :mod:`repro.ablation.cli`.
"""

from __future__ import annotations

import argparse
import sys
import time

import numpy as np


def _print_header(title: str) -> None:
    print(f"\n===== {title} " + "=" * max(0, 60 - len(title)))


def _run_table1(args) -> None:
    from .experiments import run_table1

    _print_header("Table 1 — multi-user FPS, vanilla vs. ViVo")
    print(run_table1(num_frames=args.frames).format())


def _run_fig2a(args) -> None:
    from .experiments import run_fig2a

    _print_header("Fig. 2a — pairwise IoU over time")
    result = run_fig2a(num_users=16, num_frames=300)
    print(f"stable pair {result.stable_pair}: mean IoU {result.stable_mean:.3f}")
    print(
        f"converging pair {result.converging_pair}: "
        f"{np.mean(result.converging_iou[:60]):.2f} -> "
        f"{np.mean(result.converging_iou[-60:]):.2f}"
    )


def _run_fig2b(args) -> None:
    from .experiments import FIG2B_CURVES, run_fig2b

    _print_header("Fig. 2b — IoU distributions")
    result = run_fig2b()
    for curve in FIG2B_CURVES:
        samples = result.samples[curve]
        print(
            f"{curve:18s} mean {np.mean(samples):.3f} "
            f"median {np.median(samples):.3f}"
        )


def _run_fig3b(args) -> None:
    from .experiments import run_fig3b

    _print_header("Fig. 3b — default-codebook multicast coverage")
    result = run_fig3b(num_instants=args.instants)
    for k, cov in sorted(result.summary().items()):
        print(f"{k} user(s): coverage@-68dBm = {cov:.3f}")


def _run_fig3d(args) -> None:
    from .experiments import run_fig3d

    _print_header("Fig. 3d — default vs. custom multicast beams")
    result = run_fig3d(num_instants=args.instants)
    print(f"mean improvement  : {result.mean_improvement_db():+.2f} dB")
    print(f"median improvement: {result.median_improvement_db():+.2f} dB")
    print(f"custom-beam wins  : {result.win_fraction() * 100:.0f}%")


def _run_fig3e(args) -> None:
    from .experiments import SCHEMES, run_fig3e

    _print_header("Fig. 3e — normalized throughput")
    result = run_fig3e(num_instants=min(args.instants, 100))
    for scheme in SCHEMES:
        print(f"{scheme:20s} {result.mean(scheme):.3f}")
    print(
        "default multicast worse than unicast at "
        f"{result.default_worse_than_unicast_fraction() * 100:.0f}% of instants"
    )


def _run_scaling(args) -> None:
    from .experiments import run_scaling

    _print_header("Scaling — max users at ~30 FPS (550K quality)")
    print(run_scaling(num_frames=args.frames).format())


def _run_ablations(args) -> None:
    from .experiments import (
        run_adaptation_ablation,
        run_blockage_ablation,
        run_cellsize_ablation,
        run_grouping_ablation,
        run_multiap_ablation,
        run_prediction_ablation,
    )

    for title, runner in (
        ("Abl-A — viewport prediction", run_prediction_ablation),
        ("Abl-B — blockage mitigation", run_blockage_ablation),
        ("Abl-C — multicast grouping", run_grouping_ablation),
        ("Abl-D — rate adaptation", run_adaptation_ablation),
        ("Abl-E — cell-size sweep", run_cellsize_ablation),
        ("Abl-F — multi-AP coordination", run_multiap_ablation),
    ):
        _print_header(title)
        print(runner().format())


def _run_loss_sweep(args) -> None:
    from .experiments import LOSS_SWEEP_MODES, run_loss_sweep

    _print_header("Loss sweep — transport goodput vs. packet loss")
    modes = (
        LOSS_SWEEP_MODES
        if args.transport == "all"
        else (args.transport,)
    )
    result = run_loss_sweep(modes=modes)
    print(result.format())
    if {"arq", "fec"} <= set(modes):
        for p in result.loss_points:
            if p >= 0.05:
                ratio = result.goodput_ratio(p)
                shown = "inf" if ratio == float("inf") else f"{ratio:.1f}x"
                print(f"fec/arq goodput at {p * 100:.0f}% loss: {shown}")


def _run_study(args) -> None:
    from .experiments import format_table
    from .traces import Device, generate_user_study
    from .traces.analytics import study_statistics

    _print_header("Synthetic user-study motion statistics")
    study = generate_user_study(num_users=args.users, duration_s=10.0)
    stats = study_statistics(study)
    headers = ["Device", "users", "speed(m/s)", "spread(m)", "ang(deg/s)",
               "dist(m)"]
    rows = [
        [
            device.value,
            int(s["users"]),
            round(s["mean_speed_mps"], 3),
            round(s["position_spread_m"], 3),
            round(s["mean_angular_speed_dps"], 1),
            round(s["mean_viewing_distance_m"], 2),
        ]
        for device, s in stats.items()
    ]
    print(format_table(headers, rows, float_fmt="{:.3f}"))


COMMANDS = {
    "table1": _run_table1,
    "fig2a": _run_fig2a,
    "fig2b": _run_fig2b,
    "fig3b": _run_fig3b,
    "fig3d": _run_fig3d,
    "fig3e": _run_fig3e,
    "scaling": _run_scaling,
    "ablations": _run_ablations,
    "loss_sweep": _run_loss_sweep,
    "study": _run_study,
}


def main(argv: list[str] | None = None) -> int:
    """Entry point for ``python -m repro`` (returns a process exit status)."""
    argv = list(sys.argv[1:] if argv is None else argv)
    if argv and argv[0] == "lint":
        from .analysis.cli import main as lint_main

        return lint_main(argv[1:])
    if argv and argv[0] in ("run", "figures"):
        from .runner.cli import main as runner_main

        return runner_main(argv)
    if argv and argv[0] == "trace":
        from .obs.cli import main as trace_main

        return trace_main(argv[1:])
    if argv and argv[0] == "obs":
        from .obs.cli import obs_main

        return obs_main(argv[1:])
    if argv and argv[0] == "bench":
        from .obs.bench import main as bench_main

        return bench_main(argv[1:])
    if argv and argv[0] == "scenario":
        from .scenario.cli import main as scenario_main

        return scenario_main(argv[1:])
    if argv and argv[0] == "ablation":
        from .ablation.cli import main as ablation_main

        return ablation_main(argv[1:])

    parser = argparse.ArgumentParser(
        prog="python -m repro",
        description="Regenerate the HotNets '21 paper's tables and figures.",
        epilog="`python -m repro lint [paths...]` runs repro.analysis.",
    )
    parser.add_argument(
        "experiments",
        nargs="+",
        choices=[*COMMANDS, "all"],
        help="which experiment(s) to run",
    )
    parser.add_argument(
        "--frames", type=int, default=45, help="frames per Table 1 cell"
    )
    parser.add_argument(
        "--instants", type=int, default=150, help="sampled instants for Fig 3"
    )
    parser.add_argument(
        "--users", type=int, default=32, help="study size for the study command"
    )
    parser.add_argument(
        "--transport",
        choices=["ideal", "arq", "fec", "hybrid", "all"],
        default="all",
        help="transport mode(s) for the loss_sweep command",
    )
    args = parser.parse_args(argv)

    chosen = list(COMMANDS) if "all" in args.experiments else args.experiments
    t0 = time.perf_counter()
    for name in chosen:
        COMMANDS[name](args)
    print(f"\ndone in {time.perf_counter() - t0:.1f} s")
    return 0


if __name__ == "__main__":
    sys.exit(main())
