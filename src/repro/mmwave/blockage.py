"""Human blockage modeling and beam re-search latency.

In multi-user sessions the users themselves are the blockers: one viewer
walking between the AP and another viewer attenuates — sometimes outright
drops — the victim's mmWave link.  This module turns user positions into
body cylinders, computes per-link blockage timelines over a study, and
models the sector re-search delay the paper cites (5-20 ms) for reactive
recovery.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..geometry import Segment, VerticalCylinder
from ..traces import UserStudy

__all__ = [
    "HumanBody",
    "bodies_from_positions",
    "link_blockers",
    "BlockageTimeline",
    "compute_blockage_timeline",
    "BeamSearchLatency",
]

# Standard human-blocker abstraction: torso-width cylinder, standing height.
BODY_RADIUS_M = 0.22
BODY_HEIGHT_M = 1.75


def HumanBody(center_xy: np.ndarray, radius: float = BODY_RADIUS_M,
              height: float = BODY_HEIGHT_M) -> VerticalCylinder:
    """A human blocker as a vertical cylinder at ``center_xy``."""
    return VerticalCylinder(
        center_xy=np.asarray(center_xy, dtype=np.float64),
        radius=radius,
        height=height,
    )


def bodies_from_positions(
    positions: np.ndarray,
    exclude: int | None = None,
    radius: float = BODY_RADIUS_M,
) -> tuple[VerticalCylinder, ...]:
    """Body cylinders for all users, optionally excluding the receiver.

    ``positions`` is ``(num_users, 3)`` head positions; the cylinder stands
    under each head.  The receiving user's own body is excluded because the
    device is held/worn in front of the body, not behind it.  ``radius``
    can be inflated by forecasting code to absorb position-prediction error.
    """
    positions = np.asarray(positions, dtype=np.float64)
    bodies = []
    for i, pos in enumerate(positions):
        if exclude is not None and i == exclude:
            continue
        bodies.append(HumanBody(pos[:2], radius=radius))
    return tuple(bodies)


def link_blockers(
    ap_position: np.ndarray,
    rx_position: np.ndarray,
    bodies: tuple[VerticalCylinder, ...],
) -> list[int]:
    """Indices of bodies intersecting the LoS segment AP -> RX."""
    seg = Segment(np.asarray(ap_position), np.asarray(rx_position))
    return [i for i, body in enumerate(bodies) if body.blocks(seg)]


@dataclass(frozen=True)
class BlockageTimeline:
    """Per-user, per-sample LoS blockage over a study session.

    ``blocked`` has shape ``(num_users, num_samples)`` and is True when at
    least one other user's body crosses the user's LoS to the AP.
    """

    blocked: np.ndarray
    rate_hz: float

    @property
    def num_users(self) -> int:
        return self.blocked.shape[0]

    @property
    def num_samples(self) -> int:
        return self.blocked.shape[1]

    def blockage_fraction(self, user: int) -> float:
        """Fraction of the session this user's LoS is blocked."""
        return float(np.mean(self.blocked[user]))

    def events(self, user: int) -> list[tuple[int, int]]:
        """Maximal blocked intervals ``[start, end)`` in sample indices."""
        row = self.blocked[user]
        events = []
        start = None
        for i, b in enumerate(row):
            if b and start is None:
                start = i
            elif not b and start is not None:
                events.append((start, i))
                start = None
        if start is not None:
            events.append((start, len(row)))
        return events

    def onset_samples(self, user: int) -> list[int]:
        """Sample indices where a blockage event begins."""
        return [start for start, _ in self.events(user)]


def compute_blockage_timeline(
    study: UserStudy, ap_position: np.ndarray
) -> BlockageTimeline:
    """LoS blockage of every user by every *other* user over the session."""
    ap = np.asarray(ap_position, dtype=np.float64)
    n_users = len(study)
    n_samples = study.num_samples
    blocked = np.zeros((n_users, n_samples), dtype=bool)
    for s in range(n_samples):
        positions = study.positions_at(s)
        for u in range(n_users):
            bodies = bodies_from_positions(positions, exclude=u)
            blocked[u, s] = bool(link_blockers(ap, positions[u], bodies))
    return BlockageTimeline(blocked=blocked, rate_hz=study.rate_hz)


@dataclass(frozen=True)
class BeamSearchLatency:
    """Reactive sector re-search delay after an unanticipated blockage.

    "Reinitiating beam searching to find new beams ... will cause a delay of
    up to 5 to 20 ms" (paper §4.1).  Sampled uniformly in that range; the
    proactive mitigation scheme avoids this delay entirely by switching to a
    predicted reflection beam before the blocker arrives.
    """

    min_s: float = 0.005
    max_s: float = 0.020

    def sample(self, rng: np.random.Generator) -> float:
        if self.min_s > self.max_s:
            raise ValueError("min_s must be <= max_s")
        return float(rng.uniform(self.min_s, self.max_s))
