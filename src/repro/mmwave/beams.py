"""Custom multi-lobe beam design for mmWave multicast (paper §4.2).

The paper's key PHY-layer idea: the default single-lobe sector beams cannot
give *all* members of a multicast group a high RSS, and the group rate is
pinned to the weakest member.  Instead, combine the per-user steered weight
vectors into one multi-lobe beam, weighting each user's component by the
*other* users' RSS so the weaker link gets the larger share of power:

    w = (Δ2·w1 + Δ1·w2) / (Δ1 + Δ2),        then renormalize ||w|| = 1

(Δi is user i's RSS in linear scale; the renormalization enforces the total
transmit-power constraint).  For k > 2 the same principle generalizes with
coefficients proportional to the mean RSS of the *other* members.

Only per-user RSS is needed — not full CSI — matching the paper's point
that separated users have independent receive chains.  The designer also
implements the paper's fallback: "when both users have high RSS, we should
directly use the default common beam".
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..geometry import VerticalCylinder
from .channel import Channel
from .codebook import Beam, Codebook

__all__ = [
    "combine_weights",
    "best_unicast_beam",
    "best_common_beam",
    "MulticastBeamDesign",
    "design_multicast_beam",
]


def combine_weights(
    weight_vectors: list[np.ndarray], rss_dbm: list[float]
) -> np.ndarray:
    """Combine per-user beams into one multi-lobe beam (power-normalized).

    Implements the paper's rule for two users and its natural k-user
    generalization: coefficient of user i's beam is the average linear RSS
    of the *other* users, so power flows toward the weaker links.
    """
    if len(weight_vectors) != len(rss_dbm):
        raise ValueError("need one RSS per weight vector")
    if not weight_vectors:
        raise ValueError("need at least one weight vector")
    if len(weight_vectors) == 1:
        w = np.asarray(weight_vectors[0], dtype=np.complex128)
        return w / np.linalg.norm(w)

    linear = np.array([10.0 ** (r / 10.0) for r in rss_dbm], dtype=np.float64)
    if np.any(~np.isfinite(linear)):
        raise ValueError("RSS values must be finite")
    total = float(linear.sum())
    k = len(linear)
    combined = np.zeros_like(
        np.asarray(weight_vectors[0], dtype=np.complex128)
    )
    for w, own in zip(weight_vectors, linear):
        coeff = (total - own) / (k - 1)  # mean RSS of the other users
        combined = combined + coeff * np.asarray(w, dtype=np.complex128)
    norm = np.linalg.norm(combined)
    if norm < 1e-15:
        raise ValueError("combined beam is degenerate (opposing weights)")
    return combined / norm


def best_unicast_beam(
    channel: Channel,
    codebook: Codebook,
    rx_position: np.ndarray,
    bodies: tuple[VerticalCylinder, ...] = (),
) -> tuple[Beam, float]:
    """Exhaustive sector sweep: the codebook beam with the highest RSS."""
    rss = channel.rss_matrix_dbm(codebook.weight_matrix, rx_position, bodies)
    best = int(np.argmax(rss))
    return codebook[best], float(rss[best])


def best_common_beam(
    channel: Channel,
    codebook: Codebook,
    rx_positions: list[np.ndarray],
    bodies: tuple[VerticalCylinder, ...] = (),
) -> tuple[Beam, float]:
    """The default-codebook multicast beam: maximize the group-minimum RSS.

    This is the best a commodity codebook can do for a group, and is what
    Fig. 3b evaluates.
    """
    if not rx_positions:
        raise ValueError("need at least one receiver")
    weight_matrix = codebook.weight_matrix
    per_user = np.stack(
        [channel.rss_matrix_dbm(weight_matrix, pos, bodies) for pos in rx_positions]
    )  # (U, B)
    group_min = per_user.min(axis=0)
    best = int(np.argmax(group_min))
    return codebook[best], float(group_min[best])


@dataclass(frozen=True)
class MulticastBeamDesign:
    """Outcome of designing a beam for one multicast group."""

    strategy: str  # "default-common" or "multi-lobe"
    weights: np.ndarray
    per_user_rss_dbm: tuple[float, ...]

    @property
    def common_rss_dbm(self) -> float:
        """The group's operating RSS: the minimum over members."""
        return min(self.per_user_rss_dbm)


def design_multicast_beam(
    channel: Channel,
    codebook: Codebook,
    rx_positions: list[np.ndarray],
    bodies: tuple[VerticalCylinder, ...] = (),
    high_rss_dbm: float = -56.0,
) -> MulticastBeamDesign:
    """Design the transmit beam for a multicast group (paper §4.2).

    1. Sweep the default codebook for the best common beam.  If it already
       gives every member a high RSS (>= ``high_rss_dbm``, i.e. near-top
       MCS), use it — custom lobes cannot help much and single-lobe beams
       are more robust.
    2. Otherwise, synthesize a multi-lobe beam from the members' individual
       best beams, weighted by RSS (see :func:`combine_weights`), and keep
       whichever of the two candidates has the higher common RSS.
    """
    common_beam, common_min = best_common_beam(channel, codebook, rx_positions, bodies)
    common_rss = tuple(
        channel.rss_dbm(common_beam.weights, pos, bodies) for pos in rx_positions
    )
    if common_min >= high_rss_dbm or len(rx_positions) == 1:
        return MulticastBeamDesign(
            strategy="default-common",
            weights=common_beam.weights,
            per_user_rss_dbm=common_rss,
        )

    per_user = [
        best_unicast_beam(channel, codebook, pos, bodies) for pos in rx_positions
    ]
    combined = combine_weights(
        [beam.weights for beam, _ in per_user], [rss for _, rss in per_user]
    )
    combined_rss = tuple(
        channel.rss_dbm(combined, pos, bodies) for pos in rx_positions
    )
    if min(combined_rss) > common_min:
        return MulticastBeamDesign(
            strategy="multi-lobe",
            weights=combined,
            per_user_rss_dbm=combined_rss,
        )
    return MulticastBeamDesign(
        strategy="default-common",
        weights=common_beam.weights,
        per_user_rss_dbm=common_rss,
    )
