"""Phased-array antenna model: steering vectors, weights, radiation patterns.

Models the AP's 60 GHz phased array (the paper's Airfide AP carries 8 patch
arrays; we model the active aperture as a uniform planar array).  Everything
the beam code needs reduces to two operations:

* the **steering vector** ``a(az, el)`` — per-element phase for a plane wave
  leaving in direction (az, el);
* the **array factor** ``|w^H a|^2`` — transmit gain of weight vector ``w``
  in a direction.

Weight vectors are complex, normalized to unit total power (``||w|| = 1``),
which is exactly the "constraining the total transmission power" condition
of the paper's multi-lobe combining rule.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

__all__ = ["PhasedArray", "steering_weights"]

SPEED_OF_LIGHT = 299_792_458.0
CARRIER_HZ = 60.48e9  # 802.11ad channel 2 center frequency
WAVELENGTH_M = SPEED_OF_LIGHT / CARRIER_HZ


@dataclass(frozen=True)
class PhasedArray:
    """A uniform planar array in the YZ plane, boresight along +X.

    Azimuth steers in the XY plane (around Z), elevation toward +Z — the
    same convention as :func:`repro.geometry.vec.azimuth_elevation`, so a
    world-space direction converts directly into steering angles when the
    array boresight points along +X.

    Attributes:
        ny, nz: elements along the Y and Z axes (default 8x4 = 32 elements,
            typical of QCA9500-class 802.11ad modules).
        spacing_m: element pitch (default half-wavelength).
        element_gain_dbi: per-element gain (patch element, ~5 dBi).
    """

    ny: int = 8
    nz: int = 4
    spacing_m: float = WAVELENGTH_M / 2.0
    element_gain_dbi: float = 5.0
    _positions: np.ndarray = field(init=False, repr=False)

    def __post_init__(self) -> None:
        if self.ny <= 0 or self.nz <= 0:
            raise ValueError("array dimensions must be positive")
        if self.spacing_m <= 0:
            raise ValueError("spacing must be positive")
        ys = (np.arange(self.ny) - (self.ny - 1) / 2.0) * self.spacing_m
        zs = (np.arange(self.nz) - (self.nz - 1) / 2.0) * self.spacing_m
        yy, zz = np.meshgrid(ys, zs, indexing="ij")
        pos = np.stack(
            [np.zeros(self.num_elements), yy.ravel(), zz.ravel()], axis=1
        )
        object.__setattr__(self, "_positions", pos)

    @property
    def num_elements(self) -> int:
        return self.ny * self.nz

    @property
    def positions(self) -> np.ndarray:
        """Element positions, shape ``(N, 3)``, meters, array frame."""
        return self._positions

    # -- steering and patterns ----------------------------------------------

    def steering_vector(self, az: float, el: float) -> np.ndarray:
        """Unit-magnitude per-element phases toward (az, el), shape ``(N,)``."""
        direction = np.array(
            [np.cos(el) * np.cos(az), np.cos(el) * np.sin(az), np.sin(el)]
        )
        phase = 2.0 * np.pi / WAVELENGTH_M * (self._positions @ direction)
        return np.exp(1j * phase)

    def steering_vectors(self, az: np.ndarray, el: np.ndarray) -> np.ndarray:
        """Vectorized steering vectors, shape ``(M, N)`` for M directions."""
        az = np.asarray(az, dtype=np.float64)
        el = np.asarray(el, dtype=np.float64)
        direction = np.stack(
            [np.cos(el) * np.cos(az), np.cos(el) * np.sin(az), np.sin(el)],
            axis=1,
        )
        phase = 2.0 * np.pi / WAVELENGTH_M * (direction @ self._positions.T)
        return np.exp(1j * phase)

    def weights_toward(self, az: float, el: float) -> np.ndarray:
        """Conjugate-steered unit-power weights for one beam at (az, el)."""
        a = self.steering_vector(az, el)
        return np.conj(a) / np.sqrt(self.num_elements)

    def gain_dbi(self, weights: np.ndarray, az: float, el: float) -> float:
        """Transmit gain (dBi) of ``weights`` in direction (az, el).

        With unit-power weights, a perfectly steered beam reaches
        ``10 log10(N) + element_gain_dbi`` — e.g. ~20 dBi for the default
        32-element array.
        """
        return float(self.gain_dbi_many(weights, np.array([az]), np.array([el]))[0])

    def gain_dbi_many(
        self, weights: np.ndarray, az: np.ndarray, el: np.ndarray
    ) -> np.ndarray:
        """Vectorized :meth:`gain_dbi` over many directions."""
        weights = np.asarray(weights, dtype=np.complex128)
        if weights.shape != (self.num_elements,):
            raise ValueError(
                f"weights must have shape ({self.num_elements},), got {weights.shape}"
            )
        a = self.steering_vectors(az, el)  # (M, N)
        # Transmit array factor: field toward direction d is sum_k w_k *
        # exp(j k r_k . d) = a^T w (no conjugation — the conjugate-steered
        # weight w = conj(a)/sqrt(N) then yields the full factor N).
        af = np.abs(a @ weights) ** 2  # array factor power
        # Normalize so ||w||=1 and perfect steering gives a factor of N.
        power = float(np.vdot(weights, weights).real)
        if power < 1e-15:
            return np.full(len(np.atleast_1d(az)), -np.inf)
        af = af / power
        with np.errstate(divide="ignore"):
            return 10.0 * np.log10(np.maximum(af, 1e-12)) + self.element_gain_dbi

    def quantize_phases(self, weights: np.ndarray, bits: int) -> np.ndarray:
        """Quantize weights to ``bits``-bit phase shifters at unit power.

        Commodity 802.11ad front-ends (e.g. QCA9500) control each element
        with a coarse 2-bit phase shifter and no amplitude control.  The
        quantization raises sidelobe levels substantially, which is why
        default codebook beams spill energy across the room — an effect the
        multicast coverage experiments depend on.
        """
        if bits < 1:
            raise ValueError("bits must be >= 1")
        weights = np.asarray(weights, dtype=np.complex128)
        step = 2.0 * np.pi / (2**bits)
        phase = np.round(np.angle(weights) / step) * step
        return np.exp(1j * phase) / np.sqrt(weights.shape[-1])

    def normalize_power(self, weights: np.ndarray) -> np.ndarray:
        """Scale ``weights`` to unit total power (the TX power constraint)."""
        weights = np.asarray(weights, dtype=np.complex128)
        power = np.sqrt(float(np.vdot(weights, weights).real))
        if power < 1e-15:
            raise ValueError("cannot normalize a zero weight vector")
        return weights / power


def steering_weights(array: PhasedArray, az: float, el: float) -> np.ndarray:
    """Convenience alias for :meth:`PhasedArray.weights_toward`."""
    return array.weights_toward(az, el)
