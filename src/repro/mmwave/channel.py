"""60 GHz link budget and the end-to-end channel model.

Combines the phased-array pattern, the room ray tracer, and human blockage
into a single query: *what RSS does this weight vector deliver to this
receiver?*  Per-path received power is

    P_rx = P_tx + G_tx(departure) + G_rx - FSPL(length) - extra_losses,

and paths add non-coherently (in linear power) — appropriate for a
wide-band 802.11ad signal whose multipath components are resolvable.

Calibration: with the default 32-element array (~20 dBi peak), 10 dBm TX
power and a 5 dBi receive antenna, a boresight user at 3 m sees ~-43 dBm —
deep in MCS 12 territory, reproducing the paper's 1270 Mbps single-user
operating point; the far corner of the default 8x10 m room sits near the
MCS 10-12 boundary, and misaligned/multicast beams fall into the -78..-57
dBm range of the paper's Fig. 3b.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..geometry import VerticalCylinder, azimuth_elevation
from .array import PhasedArray, WAVELENGTH_M
from .mcs import McsEntry, app_rate_mbps, mcs_for_rss, phy_rate_mbps
from .raytrace import Room, trace_paths

__all__ = ["LinkBudget", "AccessPoint", "Channel"]


def fspl_db(distance_m: float) -> float:
    """Free-space path loss at 60 GHz (about 68 dB at 1 m)."""
    d = max(distance_m, 0.01)
    return float(20.0 * np.log10(4.0 * np.pi * d / WAVELENGTH_M))


@dataclass(frozen=True)
class LinkBudget:
    """Radio constants of the modeled 802.11ad link."""

    tx_power_dbm: float = 10.0
    rx_gain_dbi: float = 5.0  # quasi-omni receive pattern on the client
    reflection_loss_db: float = 8.0
    blockage_loss_db: float = 22.0  # per intersected human body
    outage_rss_dbm: float = -78.0  # below this the link is considered down
    # Fixed losses not captured by the geometric model (RF front-end,
    # polarization mismatch, splitter/feed losses).  The Fig. 3 measurement
    # setup is calibrated with 15 dB so the best-beam RSS distribution spans
    # the paper's -78..-57 dBm range; the default 0 keeps the pristine
    # link budget for unit-level physics tests.
    implementation_loss_db: float = 0.0


@dataclass(frozen=True)
class AccessPoint:
    """AP placement: array position and boresight azimuth (world frame).

    The array is wall-mounted at ``position`` with boresight ``boresight_az``
    (rotation around Z); steering angles in codebooks are relative to this
    boresight.
    """

    position: np.ndarray
    boresight_az: float = 0.0
    array: PhasedArray = field(default_factory=PhasedArray)

    def __post_init__(self) -> None:
        p = np.asarray(self.position, dtype=np.float64)
        if p.shape != (3,):
            raise ValueError("AP position must be a 3-vector")
        object.__setattr__(self, "position", p)

    def direction_to_array_frame(self, direction: np.ndarray) -> tuple[float, float]:
        """World direction -> (az, el) relative to the array boresight."""
        az, el = azimuth_elevation(direction)
        rel_az = az - self.boresight_az
        # Wrap into [-pi, pi).
        rel_az = float((rel_az + np.pi) % (2.0 * np.pi) - np.pi)
        return rel_az, el

    def steering_to(self, point: np.ndarray) -> tuple[float, float]:
        """Steering angles that point the boresight-relative beam at ``point``."""
        return self.direction_to_array_frame(
            np.asarray(point, dtype=np.float64) - self.position
        )


@dataclass
class Channel:
    """The full downlink channel: AP + room + link budget."""

    ap: AccessPoint
    room: Room = field(default_factory=Room)
    budget: LinkBudget = field(default_factory=LinkBudget)

    def paths_to(
        self, rx_position: np.ndarray, bodies: tuple[VerticalCylinder, ...] = ()
    ):
        """Propagation paths from the AP to a receiver position."""
        return trace_paths(
            self.ap.position,
            np.asarray(rx_position, dtype=np.float64),
            self.room,
            bodies=bodies,
            reflection_loss_db=self.budget.reflection_loss_db,
            blockage_loss_db=self.budget.blockage_loss_db,
        )

    def rss_dbm(
        self,
        weights: np.ndarray,
        rx_position: np.ndarray,
        bodies: tuple[VerticalCylinder, ...] = (),
    ) -> float:
        """Received signal strength for a TX weight vector at a position."""
        total_mw = 0.0
        for path in self.paths_to(rx_position, bodies):
            az, el = self.ap.direction_to_array_frame(path.departure)
            g_tx = self.ap.array.gain_dbi(weights, az, el)
            p = (
                self.budget.tx_power_dbm
                + g_tx
                + self.budget.rx_gain_dbi
                - fspl_db(path.length_m)
                - path.extra_loss_db
                - self.budget.implementation_loss_db
            )
            total_mw += 10.0 ** (p / 10.0)
        if total_mw <= 0.0:
            return -np.inf
        return float(10.0 * np.log10(total_mw))

    def rss_matrix_dbm(
        self,
        weight_matrix: np.ndarray,
        rx_position: np.ndarray,
        bodies: tuple[VerticalCylinder, ...] = (),
    ) -> np.ndarray:
        """RSS of many candidate weight vectors at once, shape ``(B,)``.

        The codebook sweeps in Fig. 3 evaluate every beam against every
        user; this vectorized path computes all beam gains toward each
        propagation path with one matrix product instead of per-beam loops.
        """
        weight_matrix = np.asarray(weight_matrix, dtype=np.complex128)
        if weight_matrix.ndim != 2:
            raise ValueError("weight_matrix must be (B, N)")
        paths = self.paths_to(rx_position, bodies)
        azs = np.empty(len(paths))
        els = np.empty(len(paths))
        consts = np.empty(len(paths))
        for i, path in enumerate(paths):
            azs[i], els[i] = self.ap.direction_to_array_frame(path.departure)
            consts[i] = (
                self.budget.tx_power_dbm
                + self.budget.rx_gain_dbi
                - fspl_db(path.length_m)
                - path.extra_loss_db
                - self.budget.implementation_loss_db
            )
        steer = self.ap.array.steering_vectors(azs, els)  # (P, N)
        af = np.abs(steer @ weight_matrix.T) ** 2  # (P, B), factor |a^T w|^2
        norms = np.maximum(
            np.sum(np.abs(weight_matrix) ** 2, axis=1), 1e-15
        )  # (B,)
        gains_db = 10.0 * np.log10(np.maximum(af / norms[None, :], 1e-12))
        gains_db += self.ap.array.element_gain_dbi
        per_path_dbm = consts[:, None] + gains_db  # (P, B)
        total_mw = np.sum(10.0 ** (per_path_dbm / 10.0), axis=0)
        with np.errstate(divide="ignore"):
            return 10.0 * np.log10(np.maximum(total_mw, 1e-30))

    def best_path_rss_dbm(
        self,
        weights: np.ndarray,
        rx_position: np.ndarray,
        bodies: tuple[VerticalCylinder, ...] = (),
    ) -> tuple[float, str]:
        """RSS and kind of the single strongest path (for beam diagnostics)."""
        best = (-np.inf, "none")
        for path in self.paths_to(rx_position, bodies):
            az, el = self.ap.direction_to_array_frame(path.departure)
            g_tx = self.ap.array.gain_dbi(weights, az, el)
            p = (
                self.budget.tx_power_dbm
                + g_tx
                + self.budget.rx_gain_dbi
                - fspl_db(path.length_m)
                - path.extra_loss_db
                - self.budget.implementation_loss_db
            )
            if p > best[0]:
                best = (p, path.kind)
        return best

    # -- rate shortcuts ------------------------------------------------------

    def mcs(
        self,
        weights: np.ndarray,
        rx_position: np.ndarray,
        bodies: tuple[VerticalCylinder, ...] = (),
    ) -> McsEntry | None:
        rss = self.rss_dbm(weights, rx_position, bodies)
        if rss < self.budget.outage_rss_dbm:
            return None
        return mcs_for_rss(rss)

    def phy_rate_mbps(self, weights, rx_position, bodies=()) -> float:
        rss = self.rss_dbm(weights, rx_position, bodies)
        if rss < self.budget.outage_rss_dbm:
            return 0.0
        return phy_rate_mbps(rss)

    def app_rate_mbps(self, weights, rx_position, bodies=()) -> float:
        rss = self.rss_dbm(weights, rx_position, bodies)
        if rss < self.budget.outage_rss_dbm:
            return 0.0
        return app_rate_mbps(rss)

    def in_outage(self, weights, rx_position, bodies=()) -> bool:
        return self.rss_dbm(weights, rx_position, bodies) < self.budget.outage_rss_dbm
