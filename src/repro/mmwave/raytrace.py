"""Room-scale geometric ray tracer for 60 GHz propagation.

Stand-in for the commercial Remcom Wireless InSite simulator the paper uses
(DESIGN.md §1).  Indoor 60 GHz propagation is dominated by the line-of-sight
path plus a handful of first-order specular wall reflections; diffraction is
negligible at this wavelength.  The tracer therefore enumerates:

* the LoS path, and
* one image-method reflection per wall (four side walls + ceiling),

and charges each path segment that crosses a human-body cylinder with a
blockage attenuation instead of removing it — matching measurements that
"blockage does not always cause link outage" (paper §5).
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..geometry import Plane, Segment, VerticalCylinder

__all__ = ["Room", "PropagationPath", "trace_paths"]


@dataclass(frozen=True)
class Room:
    """A rectangular room ``[0, width] x [0, length] x [0, height]`` (meters)."""

    width: float = 8.0
    length: float = 10.0
    height: float = 3.0

    def __post_init__(self) -> None:
        if min(self.width, self.length, self.height) <= 0:
            raise ValueError("room dimensions must be positive")

    def contains(self, point: np.ndarray) -> bool:
        p = np.asarray(point, dtype=np.float64)
        return bool(
            0.0 <= p[0] <= self.width
            and 0.0 <= p[1] <= self.length
            and 0.0 <= p[2] <= self.height
        )

    def reflective_planes(self) -> list[tuple[str, Plane]]:
        """The five reflecting surfaces (four walls + ceiling).

        The floor is omitted: it is typically carpeted/cluttered and
        contributes little specular energy at 60 GHz.
        """
        return [
            ("wall_x0", Plane(np.array([1.0, 0.0, 0.0]), 0.0)),
            ("wall_x1", Plane(np.array([1.0, 0.0, 0.0]), self.width)),
            ("wall_y0", Plane(np.array([0.0, 1.0, 0.0]), 0.0)),
            ("wall_y1", Plane(np.array([0.0, 1.0, 0.0]), self.length)),
            ("ceiling", Plane(np.array([0.0, 0.0, 1.0]), self.height)),
        ]


@dataclass(frozen=True)
class PropagationPath:
    """One propagation path from TX to RX.

    Attributes:
        kind: ``"los"`` or the reflecting surface's name.
        vertices: TX, optional reflection point, RX.
        length_m: total path length.
        extra_loss_db: reflection loss plus accumulated blockage loss.
        departure: unit vector leaving the TX along this path (world frame);
            the channel model evaluates the TX beam pattern along it.
    """

    kind: str
    vertices: tuple[np.ndarray, ...]
    length_m: float
    extra_loss_db: float
    departure: np.ndarray = field(repr=False, default=None)  # type: ignore[assignment]

    def __post_init__(self) -> None:
        if len(self.vertices) < 2:
            raise ValueError("a path needs at least TX and RX vertices")
        v0 = np.asarray(self.vertices[0], dtype=np.float64)
        v1 = np.asarray(self.vertices[1], dtype=np.float64)
        dep = v1 - v0
        n = np.linalg.norm(dep)
        if n < 1e-12:
            raise ValueError("degenerate path")
        object.__setattr__(self, "departure", dep / n)

    @property
    def is_los(self) -> bool:
        return self.kind == "los"


def _segment_blockage_db(
    segment: Segment, bodies: tuple[VerticalCylinder, ...], per_body_db: float
) -> float:
    """Total blockage attenuation a segment picks up from human bodies."""
    loss = 0.0
    for body in bodies:
        if body.blocks(segment):
            loss += per_body_db
    return loss


def trace_paths(
    tx: np.ndarray,
    rx: np.ndarray,
    room: Room,
    bodies: tuple[VerticalCylinder, ...] = (),
    reflection_loss_db: float = 8.0,
    blockage_loss_db: float = 22.0,
) -> list[PropagationPath]:
    """Enumerate LoS + first-order reflected paths between two points.

    Blocked segments are attenuated (``blockage_loss_db`` per intersected
    body), not discarded.  Reflection points falling outside the actual wall
    rectangle are rejected.
    """
    tx = np.asarray(tx, dtype=np.float64)
    rx = np.asarray(rx, dtype=np.float64)
    paths: list[PropagationPath] = []

    los = Segment(tx, rx)
    paths.append(
        PropagationPath(
            kind="los",
            vertices=(tx, rx),
            length_m=los.length,
            extra_loss_db=_segment_blockage_db(los, bodies, blockage_loss_db),
        )
    )

    for name, plane in room.reflective_planes():
        # Image method: mirror the receiver, intersect TX->image with the wall.
        image = plane.mirror(rx)
        d = image - tx
        denom = float(np.dot(plane.normal, d))
        if abs(denom) < 1e-12:
            continue  # path parallel to the wall
        t = (plane.offset - float(np.dot(plane.normal, tx))) / denom
        if not 0.0 < t < 1.0:
            continue  # reflection point not between TX and image
        hit = tx + t * d
        if not room.contains(hit):
            continue  # outside the physical wall rectangle
        seg1 = Segment(tx, hit)
        seg2 = Segment(hit, rx)
        loss = (
            reflection_loss_db
            + _segment_blockage_db(seg1, bodies, blockage_loss_db)
            + _segment_blockage_db(seg2, bodies, blockage_loss_db)
        )
        paths.append(
            PropagationPath(
                kind=name,
                vertices=(tx, hit, rx),
                length_m=seg1.length + seg2.length,
                extra_loss_db=loss,
            )
        )
    return paths
