"""Sector beam codebooks — the "default beams" of commercial 802.11ad gear.

Commodity 802.11ad radios pick transmit beams from a fixed codebook of
single-lobe sectors found by sector sweep.  The paper's Fig. 3b shows these
default beams cannot cover multi-user multicast groups with high RSS — the
effect this module lets us reproduce.  A codebook is a grid of conjugate-
steered beams spanning the array's field of view.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from .array import PhasedArray

__all__ = ["Beam", "Codebook"]


@dataclass(frozen=True)
class Beam:
    """One codebook entry: a steered single-lobe beam."""

    beam_id: int
    weights: np.ndarray
    steer_az: float
    steer_el: float

    def __post_init__(self) -> None:
        object.__setattr__(
            self, "weights", np.asarray(self.weights, dtype=np.complex128)
        )


@dataclass(frozen=True)
class Codebook:
    """A sector codebook over the array's angular field of view.

    The default spans azimuth +/-60 degrees in 64 sectors with 3 elevation
    rows — 192 beams, comparable in angular resolution to commercial
    802.11ad codebooks.
    """

    array: PhasedArray
    az_min: float = np.deg2rad(-60.0)
    az_max: float = np.deg2rad(60.0)
    num_az: int = 64
    elevations: tuple[float, ...] = (
        np.deg2rad(-12.0),
        0.0,
        np.deg2rad(12.0),
    )
    # Phase-shifter resolution of the radio.  COTS 802.11ad hardware uses
    # 2-bit shifters, whose coarse quantization produces the irregular,
    # high-sidelobe default beams measured on real devices.  ``None`` gives
    # ideal (continuous-phase) beams for physics unit tests.
    phase_bits: int | None = 2
    beams: tuple[Beam, ...] = field(init=False)
    # Cached (B, N) stack of all beam weights and per-beam weight power.
    # Hot paths (beam sweeps, multicast designers) matmul against this
    # instead of re-stacking per call.
    weight_matrix: np.ndarray = field(init=False, repr=False)
    _weight_norms: np.ndarray = field(init=False, repr=False)

    def __post_init__(self) -> None:
        if self.num_az < 2:
            raise ValueError("need at least two azimuth sectors")
        if self.az_min >= self.az_max:
            raise ValueError("need az_min < az_max")
        azs = np.linspace(self.az_min, self.az_max, self.num_az)
        beams = []
        for el in self.elevations:
            for az in azs:
                weights = self.array.weights_toward(float(az), float(el))
                if self.phase_bits is not None:
                    weights = self.array.quantize_phases(weights, self.phase_bits)
                beams.append(
                    Beam(
                        beam_id=len(beams),
                        weights=weights,
                        steer_az=float(az),
                        steer_el=float(el),
                    )
                )
        object.__setattr__(self, "beams", tuple(beams))
        object.__setattr__(
            self, "weight_matrix", np.stack([b.weights for b in beams])
        )
        object.__setattr__(
            self,
            "_weight_norms",
            np.array([float(np.vdot(b.weights, b.weights).real) for b in beams]),
        )

    def __len__(self) -> int:
        return len(self.beams)

    def __iter__(self):
        return iter(self.beams)

    def __getitem__(self, beam_id: int) -> Beam:
        return self.beams[beam_id]

    def nearest_beam(self, az: float, el: float) -> Beam:
        """The codebook beam steered closest to (az, el)."""
        best = min(
            self.beams,
            key=lambda b: (b.steer_az - az) ** 2 + (b.steer_el - el) ** 2,
        )
        return best

    def gains_toward(self, az: float, el: float) -> np.ndarray:
        """Gain (dBi) of every beam toward one direction, shape ``(len,)``.

        Vectorized over the codebook: one steering vector, one matmul
        against the cached weight matrix — instead of a per-beam
        ``array.gain_dbi`` call (kept as
        :meth:`gains_toward_reference` for equivalence tests and
        ``repro bench --kernels``).
        """
        a = self.array.steering_vector(az, el)  # (N,)
        af = np.abs(self.weight_matrix @ a) ** 2
        with np.errstate(divide="ignore"):
            gains = (
                10.0 * np.log10(np.maximum(af / np.maximum(self._weight_norms, 1e-15), 1e-12))
                + self.array.element_gain_dbi
            )
        return np.where(self._weight_norms < 1e-15, -np.inf, gains)

    def gains_toward_reference(self, az: float, el: float) -> np.ndarray:
        """Scalar reference for :meth:`gains_toward` (one beam per call)."""
        out = np.empty(len(self.beams))
        for i, beam in enumerate(self.beams):
            out[i] = self.array.gain_dbi(beam.weights, az, el)
        return out
