"""802.11ad modulation-and-coding schemes and rate tables.

Single-carrier (SC) MCS 1-12 PHY rates and receive sensitivities follow the
IEEE 802.11ad specification.  Two calibration anchors from the paper tie the
tables to its testbed:

* MCS 1 has a 385 Mbps PHY rate and a -68 dBm sensitivity — the paper's
  "RSS of -68 dBm, which can provide approximately 384 Mbps data rate".
* The measured single-user application throughput tops out at 1270 Mbps;
  with MCS 12's 4620 Mbps PHY rate that implies the ~0.275 MAC/transport
  efficiency used for application-layer goodput.
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = [
    "McsEntry",
    "MCS_TABLE",
    "MAC_EFFICIENCY",
    "mcs_for_rss",
    "phy_rate_mbps",
    "app_rate_mbps",
    "min_rss_for_phy_rate",
]


@dataclass(frozen=True)
class McsEntry:
    """One row of the 802.11ad single-carrier MCS table."""

    index: int
    phy_rate_mbps: float
    sensitivity_dbm: float  # minimum RSS at which this MCS decodes reliably

    @property
    def app_rate_mbps(self) -> float:
        """Application-layer goodput at this MCS (testbed-calibrated)."""
        return self.phy_rate_mbps * MAC_EFFICIENCY


# Application goodput / PHY rate, calibrated so MCS 12 yields the paper's
# measured 1270 Mbps single-user throughput (4620 * 0.275 = 1270.5).
MAC_EFFICIENCY = 0.275

# IEEE 802.11ad SC PHY, MCS 1-12: (PHY rate Mbps, receive sensitivity dBm).
MCS_TABLE: tuple[McsEntry, ...] = (
    McsEntry(1, 385.0, -68.0),
    McsEntry(2, 770.0, -66.0),
    McsEntry(3, 962.5, -65.0),
    McsEntry(4, 1155.0, -64.0),
    McsEntry(5, 1251.25, -62.0),
    McsEntry(6, 1540.0, -63.0),
    McsEntry(7, 1925.0, -62.0),
    McsEntry(8, 2310.0, -61.0),
    McsEntry(9, 2502.5, -59.0),
    McsEntry(10, 3080.0, -55.0),
    McsEntry(11, 3850.0, -54.0),
    McsEntry(12, 4620.0, -53.0),
)


def mcs_for_rss(rss_dbm: float) -> McsEntry | None:
    """Highest-rate MCS whose sensitivity the RSS satisfies.

    Returns ``None`` below the MCS 1 sensitivity (link outage).  Note the
    spec's quirk that MCS 6 (-63 dBm) is more sensitive than MCS 5
    (-62 dBm); selection is by *rate*, so an RSS of -63 dBm picks MCS 6.
    """
    best: McsEntry | None = None
    for entry in MCS_TABLE:
        if rss_dbm >= entry.sensitivity_dbm:
            if best is None or entry.phy_rate_mbps > best.phy_rate_mbps:
                best = entry
    return best


def phy_rate_mbps(rss_dbm: float) -> float:
    """PHY data rate at an RSS (0 when the link is in outage)."""
    entry = mcs_for_rss(rss_dbm)
    return entry.phy_rate_mbps if entry else 0.0


def app_rate_mbps(rss_dbm: float) -> float:
    """Application goodput at an RSS (0 when the link is in outage)."""
    entry = mcs_for_rss(rss_dbm)
    return entry.app_rate_mbps if entry else 0.0


def min_rss_for_phy_rate(rate_mbps: float) -> float:
    """Lowest RSS that still sustains at least ``rate_mbps`` PHY rate.

    Raises ``ValueError`` if no MCS reaches the requested rate.
    """
    candidates = [e for e in MCS_TABLE if e.phy_rate_mbps >= rate_mbps]
    if not candidates:
        raise ValueError(f"no 802.11ad MCS reaches {rate_mbps} Mbps")
    return min(e.sensitivity_dbm for e in candidates)
