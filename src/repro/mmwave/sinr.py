"""SINR-based rate selection for concurrent mmWave transmissions.

Single-AP experiments select MCS from RSS against receive sensitivities.
With *multiple APs transmitting concurrently* (the paper's §5 spatial-reuse
challenge), the limit is the signal-to-interference-plus-noise ratio:

    SINR = P_signal / (P_noise + sum P_interferers).

The noise floor of a 2.16 GHz 802.11ad channel is about
-174 dBm/Hz + 10 log10(2.16e9) + NF ≈ -74 dBm with a 7 dB noise figure.
Each MCS's SNR threshold is derived from its receive sensitivity relative
to that floor, so the SINR path is exactly consistent with the RSS path
when there is no interference.
"""

from __future__ import annotations

import numpy as np

from .mcs import MCS_TABLE, McsEntry

__all__ = [
    "NOISE_FLOOR_DBM",
    "sinr_db",
    "mcs_for_sinr",
    "app_rate_for_sinr_mbps",
]

# Thermal noise over 2.16 GHz plus a 7 dB receiver noise figure.
NOISE_FLOOR_DBM = -174.0 + 10.0 * np.log10(2.16e9) + 7.0  # ~ -73.7 dBm


def sinr_db(signal_dbm: float, interferer_dbm: list[float]) -> float:
    """SINR given the signal and each interferer's received power."""
    noise_mw = 10.0 ** (NOISE_FLOOR_DBM / 10.0)
    interference_mw = sum(10.0 ** (p / 10.0) for p in interferer_dbm)
    signal_mw = 10.0 ** (signal_dbm / 10.0)
    return float(10.0 * np.log10(signal_mw / (noise_mw + interference_mw)))


def _snr_threshold_db(entry: McsEntry) -> float:
    """The SNR an MCS needs, implied by its sensitivity vs. the noise floor."""
    return entry.sensitivity_dbm - NOISE_FLOOR_DBM


def mcs_for_sinr(sinr: float) -> McsEntry | None:
    """Highest-rate MCS whose SNR threshold the SINR satisfies."""
    best: McsEntry | None = None
    for entry in MCS_TABLE:
        if sinr >= _snr_threshold_db(entry):
            if best is None or entry.phy_rate_mbps > best.phy_rate_mbps:
                best = entry
    return best


def app_rate_for_sinr_mbps(sinr: float) -> float:
    """Application goodput at a SINR (0 in outage)."""
    entry = mcs_for_sinr(sinr)
    return entry.app_rate_mbps if entry else 0.0
