"""mmWave (802.11ad) PHY substrate: MCS tables, phased arrays, beams, channel."""

from .array import CARRIER_HZ, WAVELENGTH_M, PhasedArray, steering_weights
from .beams import (
    MulticastBeamDesign,
    best_common_beam,
    best_unicast_beam,
    combine_weights,
    design_multicast_beam,
)
from .blockage import (
    BODY_HEIGHT_M,
    BODY_RADIUS_M,
    BeamSearchLatency,
    BlockageTimeline,
    HumanBody,
    bodies_from_positions,
    compute_blockage_timeline,
    link_blockers,
)
from .channel import AccessPoint, Channel, LinkBudget, fspl_db
from .codebook import Beam, Codebook
from .mcs import (
    MAC_EFFICIENCY,
    MCS_TABLE,
    McsEntry,
    app_rate_mbps,
    mcs_for_rss,
    min_rss_for_phy_rate,
    phy_rate_mbps,
)
from .raytrace import PropagationPath, Room, trace_paths
from .sweep import BeamTracker, SectorSweep, SweepResult, SweepTiming
from .sinr import (
    NOISE_FLOOR_DBM,
    app_rate_for_sinr_mbps,
    mcs_for_sinr,
    sinr_db,
)

__all__ = [
    "CARRIER_HZ",
    "WAVELENGTH_M",
    "PhasedArray",
    "steering_weights",
    "MulticastBeamDesign",
    "best_common_beam",
    "best_unicast_beam",
    "combine_weights",
    "design_multicast_beam",
    "BODY_HEIGHT_M",
    "BODY_RADIUS_M",
    "BeamSearchLatency",
    "BlockageTimeline",
    "HumanBody",
    "bodies_from_positions",
    "compute_blockage_timeline",
    "link_blockers",
    "AccessPoint",
    "Channel",
    "LinkBudget",
    "fspl_db",
    "Beam",
    "Codebook",
    "MAC_EFFICIENCY",
    "MCS_TABLE",
    "McsEntry",
    "app_rate_mbps",
    "mcs_for_rss",
    "min_rss_for_phy_rate",
    "phy_rate_mbps",
    "PropagationPath",
    "Room",
    "trace_paths",
    "NOISE_FLOOR_DBM",
    "app_rate_for_sinr_mbps",
    "mcs_for_sinr",
    "sinr_db",
    "BeamTracker",
    "SectorSweep",
    "SweepResult",
    "SweepTiming",
]
