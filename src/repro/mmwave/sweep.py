"""802.11ad beamforming training: sector-level sweep and beam tracking.

The paper cites a 5-20 ms delay for "reinitiating beam searching".  This
module derives that number from the protocol rather than asserting it:

* **Sector-level sweep (SLS)**: the initiator transmits one SSW frame per
  codebook sector (control PHY, ~15.8 us per frame + SBIFS), the responder
  sweeps back, then feedback + ACK complete the exchange.  A full
  192-sector TXSS costs ~3.2 ms per direction — two directions plus
  feedback lands in the paper's 5-20 ms band once retries are counted.
* **Beam tracking**: once associated, a station only probes a few sectors
  around its current beam (sub-millisecond) — why proactive beam *switches*
  are cheap compared to reactive re-*searches*.

:func:`SectorSweep.run` also returns which beam the sweep finds, so the
protocol model and the geometric channel stay consistent.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..geometry import VerticalCylinder
from .channel import Channel
from .codebook import Beam, Codebook

__all__ = ["SweepTiming", "SweepResult", "SectorSweep", "BeamTracker"]


@dataclass(frozen=True)
class SweepTiming:
    """Per-frame air times of the beamforming training protocol.

    Defaults follow the 802.11ad control PHY: an SSW frame is 26 bytes at
    27.5 Mbps plus the ~4.3 us control preamble, ~15.8 us total; SBIFS is
    1 us; feedback and ACK are single control frames with SIFS spacing.
    """

    ssw_frame_s: float = 15.8e-6
    sbifs_s: float = 1.0e-6
    sifs_s: float = 3.0e-6
    feedback_s: float = 20.0e-6
    ack_s: float = 10.0e-6

    def txss_time(self, num_sectors: int) -> float:
        """Airtime of one transmit sector sweep over ``num_sectors``."""
        if num_sectors < 1:
            raise ValueError("num_sectors must be >= 1")
        return num_sectors * (self.ssw_frame_s + self.sbifs_s)

    def sls_time(self, num_sectors: int, bidirectional: bool = True) -> float:
        """Full sector-level sweep duration (initiator [+ responder] +
        feedback + ACK)."""
        t = self.txss_time(num_sectors)
        if bidirectional:
            t += self.sifs_s + self.txss_time(num_sectors)
        return t + self.sifs_s + self.feedback_s + self.sifs_s + self.ack_s


@dataclass(frozen=True)
class SweepResult:
    """Outcome of a beam search."""

    beam: Beam
    rss_dbm: float
    duration_s: float
    sectors_probed: int


@dataclass
class SectorSweep:
    """Exhaustive sector-level sweep against the geometric channel."""

    codebook: Codebook
    timing: SweepTiming = SweepTiming()

    def run(
        self,
        channel: Channel,
        rx_position: np.ndarray,
        bodies: tuple[VerticalCylinder, ...] = (),
        retries: int = 0,
    ) -> SweepResult:
        """Sweep every sector; pick the best; charge protocol airtime.

        ``retries`` models sweeps repeated after collisions/failures — each
        retry adds a full SLS duration, which is how reactive recovery ends
        up at the top of the 5-20 ms band.
        """
        if retries < 0:
            raise ValueError("retries must be non-negative")
        weight_matrix = self.codebook.weight_matrix
        rss = channel.rss_matrix_dbm(weight_matrix, rx_position, bodies)
        best = int(np.argmax(rss))
        duration = (1 + retries) * self.timing.sls_time(len(self.codebook))
        return SweepResult(
            beam=self.codebook[best],
            rss_dbm=float(rss[best]),
            duration_s=duration,
            sectors_probed=(1 + retries) * len(self.codebook),
        )


@dataclass
class BeamTracker:
    """Local beam refinement around the currently used sector.

    Probes ``half_width`` sectors on each side of the current beam (same
    elevation row), costing only a handful of SSW frames — the cheap
    operation proactive mitigation leans on.
    """

    codebook: Codebook
    half_width: int = 2
    timing: SweepTiming = SweepTiming()

    def __post_init__(self) -> None:
        if self.half_width < 1:
            raise ValueError("half_width must be >= 1")

    def _neighbourhood(self, beam: Beam) -> list[Beam]:
        same_row = [
            b for b in self.codebook if b.steer_el == beam.steer_el
        ]
        same_row.sort(key=lambda b: b.steer_az)
        idx = next(
            i for i, b in enumerate(same_row) if b.beam_id == beam.beam_id
        )
        lo = max(0, idx - self.half_width)
        hi = min(len(same_row), idx + self.half_width + 1)
        return same_row[lo:hi]

    def track(
        self,
        channel: Channel,
        current: Beam,
        rx_position: np.ndarray,
        bodies: tuple[VerticalCylinder, ...] = (),
    ) -> SweepResult:
        candidates = self._neighbourhood(current)
        weight_matrix = np.stack([b.weights for b in candidates])
        rss = channel.rss_matrix_dbm(weight_matrix, rx_position, bodies)
        best = int(np.argmax(rss))
        duration = (
            len(candidates) * (self.timing.ssw_frame_s + self.timing.sbifs_s)
            + self.timing.sifs_s
            + self.timing.feedback_s
        )
        return SweepResult(
            beam=candidates[best],
            rss_dbm=float(rss[best]),
            duration_s=duration,
            sectors_probed=len(candidates),
        )
