"""Declarative catalog of adaptation policies and grouping strategies.

The single source of truth behind ``docs/POLICIES.md`` (rendered and
drift-checked by ``tools/gen_policies_doc.py``): every selectable
adaptation policy and multicast grouping strategy, what it looks at, what
it optimizes, what it costs, and which experiments exercise it.  Tests
assert the catalog covers every registered implementation, so adding a
policy without cataloging it fails CI.
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = [
    "PolicyInfo",
    "adaptation_policy_catalog",
    "grouping_strategy_catalog",
]


@dataclass(frozen=True)
class PolicyInfo:
    """One catalog entry: a selectable policy or strategy and its contract."""

    name: str  # the selection string (policy_name / GroupingResult.policy)
    kind: str  # "adaptation" | "grouping"
    implementation: str  # dotted path of the class or function
    summary: str
    decision_inputs: str
    objective: str
    complexity: str
    when_to_use: str
    exercised_by: tuple[str, ...]  # experiments / ablation components / figures

    def __post_init__(self) -> None:
        if self.kind not in ("adaptation", "grouping"):
            raise ValueError(f"unknown policy kind {self.kind!r}")
        if not self.exercised_by:
            raise ValueError(f"policy {self.name!r} lists no exercising entry point")


_ADAPTATION_CATALOG: tuple[PolicyInfo, ...] = (
    PolicyInfo(
        name="buffer",
        kind="adaptation",
        implementation="repro.core.adaptation.BufferPolicy",
        summary="Buffer-threshold ladder (BBA-style): low buffer maps to low "
                "quality.",
        decision_inputs="client buffer level only",
        objective="avoid rebuffering via reservoir/cushion thresholds",
        complexity="O(1) per decision",
        when_to_use="single-layer baseline isolating buffer occupancy as the "
                    "control signal",
        exercised_by=("ablation_adaptation",),
    ),
    PolicyInfo(
        name="cross-layer",
        kind="adaptation",
        implementation="repro.core.adaptation.CrossLayerPolicy",
        summary="The paper's scheme: cross-layer bandwidth prediction, "
                "blockage prefetch, regroup hints, greedy budget fill.",
        decision_inputs="PHY RSS, blockage forecast, app throughput history, "
                        "buffer level, transport loss/retx feedback",
        objective="highest quality whose visibility-scaled bitrate fits the "
                  "predicted safe budget",
        complexity="O(|qualities|) per decision",
        when_to_use="the default closed-loop policy; the heuristic baseline "
                    "in policy_comparison",
        exercised_by=("table1", "loss_sweep", "ablation_adaptation",
                      "policy_comparison"),
    ),
    PolicyInfo(
        name="fixed",
        kind="adaptation",
        implementation="repro.core.adaptation.FixedQualityPolicy",
        summary="No adaptation: always stream the configured quality.",
        decision_inputs="none",
        objective="constant quality (Table 1 operating mode)",
        complexity="O(1) per decision",
        when_to_use="no-adaptation baselines and capacity measurements",
        exercised_by=("table1", "fig2a", "fig2b", "ablation_adaptation"),
    ),
    PolicyInfo(
        name="mpc",
        kind="adaptation",
        implementation="repro.core.mpc.MpcPolicy",
        summary="Model-predictive control: enumerate quality sequences over "
                "a short horizon, commit the best first step.",
        decision_inputs="app throughput EWMA, buffer level",
        objective="maximize linear QoE (bitrate - stall - switches) over the "
                  "lookahead horizon",
        complexity="O(|qualities|^horizon) per decision (27 at defaults)",
        when_to_use="strong single-layer planning baseline (paper cite [33])",
        exercised_by=("ablation_adaptation",),
    ),
    PolicyInfo(
        name="proactive-prefetch",
        kind="adaptation",
        implementation="repro.core.adaptation.ProactivePrefetchPolicy",
        summary="Fixed quality plus prefetch ahead of predicted blockages.",
        decision_inputs="blockage forecast only",
        objective="isolate the paper's §4.1 prefetch mechanism from quality "
                  "adaptation",
        complexity="O(1) per decision",
        when_to_use="blockage-mitigation ablations",
        exercised_by=("fig3d", "ablation_blockage"),
    ),
    PolicyInfo(
        name="throughput",
        kind="adaptation",
        implementation="repro.core.adaptation.ThroughputPolicy",
        summary="Rate-based DASH: top quality under a safety factor of the "
                "app-layer EWMA.",
        decision_inputs="app throughput history only",
        objective="highest quality fitting the EWMA-predicted rate",
        complexity="O(|qualities|) per decision",
        when_to_use="single-layer baseline isolating throughput prediction",
        exercised_by=("ablation_adaptation",),
    ),
    PolicyInfo(
        name="utility-optimal",
        kind="adaptation",
        implementation="repro.core.utility.UtilityOptimalPolicy",
        summary="Rate-utility optimization (arXiv:1804.09864): maximize "
                "visibility/distance-weighted log-rate utility net of an "
                "airtime price.",
        decision_inputs="same cross-layer signals as cross-layer, plus the "
                        "utility model's visibility weight",
        objective="argmax utility(rate) - airtime_price * rate within the "
                  "predicted budget",
        complexity="O(|qualities|) per decision; allocator DP is exact over "
                   "the quality lattice",
        when_to_use="when summed utility across users matters more than "
                    "per-user max quality; the utility arm of "
                    "policy_comparison",
        exercised_by=("policy_comparison", "utility_adaptation"),
    ),
)


_GROUPING_CATALOG: tuple[PolicyInfo, ...] = (
    PolicyInfo(
        name="exhaustive",
        kind="grouping",
        implementation="repro.core.grouping.exhaustive_grouping",
        summary="Optimal partition by Bell-number enumeration.",
        decision_inputs="full demand set and multicast rate function",
        objective="global minimum total frame airtime",
        complexity="O(Bell(n)) plans; refuses beyond 9 users",
        when_to_use="gold standard for grouping ablations at paper scale",
        exercised_by=("ablation_grouping",),
    ),
    PolicyInfo(
        name="greedy-similarity",
        kind="grouping",
        implementation="repro.core.grouping.greedy_similarity_grouping",
        summary="The paper's §4.2 grouper: merge the most IoU-similar groups "
                "while airtime strictly drops.",
        decision_inputs="viewport cell overlap (IoU), multicast rates",
        objective="minimize total frame airtime under T_m(k) <= 1/F",
        complexity="O(n^3) plan evaluations worst case",
        when_to_use="the default multicast grouper everywhere",
        exercised_by=("table1", "fig3e", "venue_scale", "ablation_grouping",
                      "policy_comparison"),
    ),
    PolicyInfo(
        name="qoe-aware",
        kind="grouping",
        implementation="repro.core.grouping.qoe_aware_grouping",
        summary="Merge candidates scored by predicted QoE delta "
                "(arXiv:1811.07388 spirit) instead of raw airtime.",
        decision_inputs="viewport IoU candidates, frame-plan airtime mapped "
                        "to predicted bitrate/stall QoE",
        objective="maximize predicted per-user QoE; stops merging once the "
                  "target frame rate is met",
        complexity="O(n^3) plan evaluations worst case",
        when_to_use="when beam complexity should only be added for QoE users "
                    "can perceive; the qoe arm of policy_comparison",
        exercised_by=("policy_comparison", "qoe_grouping"),
    ),
    PolicyInfo(
        name="unicast",
        kind="grouping",
        implementation="repro.core.grouping.no_grouping",
        summary="Pure unicast: no multicast groups at all.",
        decision_inputs="none",
        objective="baseline delivery plan (Fig. 3e lower bound)",
        complexity="O(n) per frame",
        when_to_use="no-multicast baselines",
        exercised_by=("fig3e", "ablation_grouping"),
    ),
)


def adaptation_policy_catalog() -> tuple[PolicyInfo, ...]:
    """Every selectable adaptation policy, sorted by name."""
    return _ADAPTATION_CATALOG


def grouping_strategy_catalog() -> tuple[PolicyInfo, ...]:
    """Every selectable grouping strategy, sorted by name."""
    return _GROUPING_CATALOG
