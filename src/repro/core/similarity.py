"""Viewport similarity: visibility maps and intersection-over-union (Fig. 2).

The paper defines the viewport similarity of a user group as the IoU of
their *visibility maps* — the sets of cells each user can see after frustum
and occlusion culling.  This module computes visibility maps over a study
and the IoU series/CDFs the multicast grouper and Fig. 2 consume.
"""

from __future__ import annotations

from dataclasses import dataclass
from itertools import combinations

import numpy as np

from ..pointcloud import (
    CellGrid,
    PointCloudVideo,
    VisibilityConfig,
    compute_visibility_batch,
)
from ..traces import Trace, UserStudy

__all__ = [
    "group_iou",
    "membership_matrix",
    "pairwise_iou_matrix",
    "VisibilityMaps",
    "compute_visibility_maps",
    "iou_series",
    "pairwise_iou_samples",
    "group_iou_samples",
]


def group_iou(maps: list[frozenset | set]) -> float:
    """Intersection-over-union of a group of visibility maps.

    Matches the paper's Fig. 1 example: maps {1,3,5,6,7,8} and {1,2,3,4,5,7}
    share 4 cells out of 8 total -> IoU 0.5.  A group in which every map is
    empty has IoU 1.0 (all users agree nothing is visible).
    """
    if not maps:
        raise ValueError("need at least one visibility map")
    union = set().union(*maps)
    if not union:
        return 1.0
    inter = set(maps[0])
    for m in maps[1:]:
        inter &= set(m)
    return len(inter) / len(union)


def membership_matrix(
    maps: list[frozenset | set],
) -> tuple[np.ndarray, tuple]:
    """Boolean cell-membership matrix for a list of visibility maps.

    Row ``i`` marks which cells of the sorted union universe map ``i``
    contains; the universe is returned alongside so callers can map columns
    back to cell ids.
    """
    universe = sorted(set().union(*maps)) if maps else []
    index = {cell: i for i, cell in enumerate(universe)}
    memb = np.zeros((len(maps), len(universe)), dtype=bool)
    for i, m in enumerate(maps):
        if m:
            memb[i, [index[cell] for cell in m]] = True
    return memb, tuple(universe)


def pairwise_iou_matrix(maps: list[frozenset | set]) -> np.ndarray:
    """IoU of every pair of visibility maps, as a symmetric (U, U) matrix.

    Vectorized equivalent of calling :func:`group_iou` on every pair: the
    intersection/union counts come from one integer matmul over the
    membership matrix, and the final integer-ratio division is bit-identical
    to the scalar ``len(inter) / len(union)`` (both are correctly rounded
    float64 quotients of the same integers).  An empty union yields 1.0,
    matching :func:`group_iou`.
    """
    if not maps:
        raise ValueError("need at least one visibility map")
    memb, _ = membership_matrix(maps)
    m = memb.astype(np.int64)
    inter = m @ m.T
    sizes = np.diagonal(inter)
    union = sizes[:, None] + sizes[None, :] - inter
    return np.where(union > 0, inter / np.maximum(union, 1), 1.0)


@dataclass(frozen=True)
class VisibilityMaps:
    """Per-user, per-frame visibility maps over one study session.

    ``maps[user_index][frame_index]`` is the frozenset of visible cell ids.
    User indexing follows ``study.traces`` order, not user ids.
    """

    maps: tuple[tuple[frozenset, ...], ...]
    user_ids: tuple[int, ...]
    cell_size: float

    @property
    def num_users(self) -> int:
        return len(self.maps)

    @property
    def num_frames(self) -> int:
        return len(self.maps[0]) if self.maps else 0

    def user_index(self, user_id: int) -> int:
        try:
            return self.user_ids.index(user_id)
        except ValueError:
            raise KeyError(f"no user {user_id}") from None

    def of_user(self, user_id: int) -> tuple[frozenset, ...]:
        return self.maps[self.user_index(user_id)]


def compute_visibility_maps(
    study: UserStudy,
    video: PointCloudVideo,
    grid: CellGrid,
    users: list[int] | None = None,
    config: VisibilityConfig | None = None,
    num_frames: int | None = None,
) -> VisibilityMaps:
    """Visibility maps for (a subset of) study users over the video.

    Frame ``f`` pairs the video's frame ``f`` with each trace's pose at the
    same timestamp (traces and video are both 30 Hz in the study).  The
    video loops if the trace outlasts it.
    """
    config = config or VisibilityConfig()
    traces: list[Trace] = (
        study.traces if users is None else [study.user(u) for u in users]
    )
    total = num_frames if num_frames is not None else study.num_samples
    total = min(total, study.num_samples)

    # Occupancy per video frame is user-independent: compute once.  Each
    # frame is evaluated for every viewer in one batch so the per-frame
    # geometry arrays are shared across users.
    occupancies = {}
    per_user: list[list[frozenset]] = [[] for _ in traces]
    for f in range(total):
        vf = f % len(video)
        if vf not in occupancies:
            occupancies[vf] = grid.occupancy(video[vf])
        frustums = [trace.pose(f).frustum() for trace in traces]
        results = compute_visibility_batch(occupancies[vf], frustums, config)
        for ui, result in enumerate(results):
            per_user[ui].append(result.visible_set)
    return VisibilityMaps(
        maps=tuple(tuple(user_maps) for user_maps in per_user),
        user_ids=tuple(t.user_id for t in traces),
        cell_size=grid.cell_size,
    )


def iou_series(maps: VisibilityMaps, user_ids: list[int]) -> np.ndarray:
    """IoU of a fixed user group at every frame (Fig. 2a's time series)."""
    rows = [maps.of_user(u) for u in user_ids]
    return np.array(
        [group_iou([row[f] for row in rows]) for f in range(maps.num_frames)]
    )


def pairwise_iou_samples(
    maps: VisibilityMaps, user_ids: list[int] | None = None
) -> np.ndarray:
    """IoU samples over all user pairs and all frames (Fig. 2b's CDF input).

    Computed through :func:`pairwise_iou_matrix` — one vectorized all-pairs
    kernel per frame instead of a scalar ``group_iou`` per (pair, frame) —
    but emitted in the same pair-major, frame-minor order as the scalar
    loop, with bit-identical values.
    """
    ids = list(user_ids) if user_ids is not None else list(maps.user_ids)
    if len(ids) < 2:
        raise ValueError("need at least two users for pairwise IoU")
    rows = [maps.of_user(u) for u in ids]
    num_frames = maps.num_frames
    if num_frames == 0:
        return np.zeros(0)
    stacked = np.stack(
        [pairwise_iou_matrix([row[f] for row in rows]) for f in range(num_frames)]
    )
    samples = [
        stacked[:, ia, ib] for ia, ib in combinations(range(len(ids)), 2)
    ]
    return np.concatenate(samples)


def group_iou_samples(
    maps: VisibilityMaps,
    group_size: int,
    user_ids: list[int] | None = None,
    max_groups: int | None = 200,
    seed: int = 0,
) -> np.ndarray:
    """IoU samples over user groups of a given size (Fig. 2b, HM(3) curve).

    The number of size-k subsets explodes combinatorially, so at most
    ``max_groups`` randomly chosen groups are evaluated (deterministic via
    ``seed``).
    """
    if group_size < 2:
        raise ValueError("group_size must be >= 2")
    ids = list(user_ids) if user_ids is not None else list(maps.user_ids)
    if len(ids) < group_size:
        raise ValueError("not enough users for the requested group size")
    groups = list(combinations(ids, group_size))
    if max_groups is not None and len(groups) > max_groups:
        rng = np.random.default_rng(seed)
        chosen = rng.choice(len(groups), size=max_groups, replace=False)
        groups = [groups[i] for i in chosen]
    samples = [iou_series(maps, list(g)) for g in groups]
    return np.concatenate(samples)
