"""Client-side player state: frame buffer, decoder, playback clock.

Each streaming client keeps a small buffer of downloaded-but-unplayed
frames.  Playback consumes one frame per tick; if the next frame has not
arrived (or cannot be decoded in time) the player stalls — it freezes and
resumes once the frame shows up.  Decode capacity is bounded by the
Draco decode model (550K points/frame at 30 FPS on the modeled hardware).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..pointcloud import DecoderModel, DEFAULT_DECODER

__all__ = ["BufferedFrame", "ClientBuffer"]


@dataclass(frozen=True)
class BufferedFrame:
    """One downloaded frame waiting for playback."""

    frame_index: int
    quality: str
    nominal_points: float
    arrived_at_s: float


@dataclass
class ClientBuffer:
    """Playback buffer of one client."""

    user_id: int
    fps: float = 30.0
    decoder: DecoderModel = field(default_factory=lambda: DEFAULT_DECODER)
    max_buffered_frames: int = 90  # 3 s of content at 30 FPS
    _frames: dict[int, BufferedFrame] = field(default_factory=dict, repr=False)
    next_playback_index: int = 0

    def __post_init__(self) -> None:
        if self.fps <= 0:
            raise ValueError("fps must be positive")
        if self.max_buffered_frames < 1:
            raise ValueError("max_buffered_frames must be >= 1")

    # -- download side ---------------------------------------------------

    def can_accept(self, frame_index: int, extra_window: int = 0) -> bool:
        """Accept frames not yet played and within the buffer window.

        ``extra_window`` temporarily widens the window — how the scheduler's
        prefetch-ahead-of-blockage action (paper §4.1) is realized.
        """
        if extra_window < 0:
            raise ValueError("extra_window must be non-negative")
        if frame_index < self.next_playback_index:
            return False
        if frame_index in self._frames:
            return False
        window_end = (
            self.next_playback_index + self.max_buffered_frames + extra_window
        )
        return frame_index < window_end

    def deposit(self, frame: BufferedFrame, extra_window: int = 0) -> None:
        if not self.can_accept(frame.frame_index, extra_window):
            raise ValueError(
                f"frame {frame.frame_index} not accepted "
                f"(playhead {self.next_playback_index})"
            )
        self._frames[frame.frame_index] = frame

    # -- playback side -----------------------------------------------------

    def has_frame(self, frame_index: int) -> bool:
        return frame_index in self._frames

    def decodable_at_fps(self, frame: BufferedFrame) -> bool:
        """Can the decoder sustain this frame's density at the playback fps?"""
        return self.decoder.max_fps(max(frame.nominal_points, 1.0)) >= self.fps - 1e-9

    def play_next(self) -> BufferedFrame | None:
        """Consume the frame at the playhead; ``None`` means a stall tick."""
        frame = self._frames.pop(self.next_playback_index, None)
        if frame is None:
            return None
        self.next_playback_index += 1
        return frame

    def skip_next(self) -> None:
        """Advance the playhead without a frame (frame-drop policies)."""
        self._frames.pop(self.next_playback_index, None)
        self.next_playback_index += 1

    @property
    def buffered_frames(self) -> int:
        """Frames at/after the playhead currently in the buffer."""
        return sum(1 for i in self._frames if i >= self.next_playback_index)

    @property
    def buffer_level_s(self) -> float:
        """Buffered content ahead of the playhead, in seconds.

        Counts only the contiguous run starting at the playhead — frames
        behind a gap do not protect against the next stall.
        """
        run = 0
        while (self.next_playback_index + run) in self._frames:
            run += 1
        return run / self.fps
