"""Multi-AP coordination with spatial reuse (paper §5, built out).

"To allow even more users to watch volumetric content at the same time,
there are opportunities to utilize multiple APs, each of which can serve a
specific multicast group separately.  Thanks to the directional nature of
mmWave links, multiple APs could serve different groups of clients
concurrently to achieve high spatial reuse."

This module implements that agenda item end to end:

* a :class:`MultiApDeployment` of several wall-mounted APs sharing one room;
* SINR-aware rate computation: when two APs transmit concurrently, each
  user's rate follows from the serving beam's RSS *minus* the other APs'
  leaked power (sidelobes + reflections are real interference here);
* :func:`assign_groups` — greedy user->AP assignment by best serving RSS,
  respecting the paper's per-AP multicast grouping;
* :func:`concurrent_frame_time` — delivery time when APs transmit in
  parallel (the max over APs of each AP's serialized schedule), to compare
  against a single AP's serialized time.

The paper's cited challenges are modeled, not ignored: inter-beam
interference enters through the SINR, and the coordination overhead is an
explicit parameter charged per frame.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..mac.scheduler import UserDemand
from ..mmwave.beams import combine_weights
from ..mmwave.channel import Channel
from ..mmwave.codebook import Codebook
from ..mmwave.sinr import app_rate_for_sinr_mbps, sinr_db

__all__ = [
    "MultiApDeployment",
    "ApAssignment",
    "assign_groups",
    "concurrent_frame_time",
    "coordinated_frame_time",
    "single_ap_frame_time",
]


@dataclass
class MultiApDeployment:
    """Several APs covering one room (channels share the room geometry)."""

    channels: list[Channel]
    codebooks: list[Codebook]
    # Control overhead of coordinating APs each frame (scheduling beacons,
    # trigger frames) — one of the paper's stated §5 costs.
    coordination_overhead_s: float = 0.0005

    def __post_init__(self) -> None:
        if not self.channels:
            raise ValueError("need at least one AP")
        if len(self.channels) != len(self.codebooks):
            raise ValueError("one codebook per AP")

    @property
    def num_aps(self) -> int:
        return len(self.channels)

    def best_beam_rss(
        self, ap_index: int, position: np.ndarray
    ) -> tuple[np.ndarray, float]:
        """(weights, RSS) of AP ``ap_index``'s best codebook beam to a point."""
        channel = self.channels[ap_index]
        codebook = self.codebooks[ap_index]
        weight_matrix = codebook.weight_matrix
        rss = channel.rss_matrix_dbm(weight_matrix, position)
        best = int(np.argmax(rss))
        return codebook[best].weights, float(rss[best])


@dataclass(frozen=True)
class ApAssignment:
    """Users partitioned across APs, with per-AP multicast groups."""

    ap_users: tuple[tuple[int, ...], ...]  # per AP: assigned user indices
    serving_rss_dbm: dict[int, float]  # user -> RSS from their serving AP

    def ap_of(self, user: int) -> int:
        for ap, users in enumerate(self.ap_users):
            if user in users:
                return ap
        raise KeyError(f"user {user} not assigned")


def assign_groups(
    deployment: MultiApDeployment,
    positions: dict[int, np.ndarray],
    balance: bool = True,
) -> ApAssignment:
    """Assign each user to an AP: strongest serving beam, then load balance.

    Pure RSS association piles co-located viewers onto one AP and throws
    the spatial-reuse gain away, so with ``balance`` the users whose RSS
    penalty for switching is smallest are moved from the most- to the
    least-loaded AP until loads differ by at most one — a simple version of
    the coordination problem the paper's §5 raises.
    """
    all_rss = {
        user: [deployment.best_beam_rss(ap, pos)[1]
               for ap in range(deployment.num_aps)]
        for user, pos in positions.items()
    }
    ap_users: list[list[int]] = [[] for _ in range(deployment.num_aps)]
    for user, rss_list in all_rss.items():
        ap_users[int(np.argmax(rss_list))].append(user)

    if balance and deployment.num_aps > 1:
        for _ in range(len(positions)):
            sizes = [len(u) for u in ap_users]
            src = int(np.argmax(sizes))
            dst = int(np.argmin(sizes))
            if sizes[src] - sizes[dst] <= 1:
                break
            # Move the user losing the least RSS by switching src -> dst.
            mover = min(
                ap_users[src],
                key=lambda u: all_rss[u][src] - all_rss[u][dst],
            )
            ap_users[src].remove(mover)
            ap_users[dst].append(mover)

    serving = {}
    for ap, users in enumerate(ap_users):
        for u in users:
            serving[u] = all_rss[u][ap]
    return ApAssignment(
        ap_users=tuple(tuple(sorted(u)) for u in ap_users),
        serving_rss_dbm=serving,
    )


def _subgroup_beam(
    deployment: MultiApDeployment,
    ap: int,
    members: tuple[int, ...],
    positions: dict[int, np.ndarray],
) -> np.ndarray:
    """The beam AP ``ap`` uses for a member subset (multi-lobe for groups)."""
    per_user = [deployment.best_beam_rss(ap, positions[u]) for u in members]
    if len(members) == 1:
        return per_user[0][0]
    return combine_weights(
        [w for w, _ in per_user], [r for _, r in per_user]
    )


def _interference_at(
    deployment: MultiApDeployment,
    position: np.ndarray,
    active_beams: dict[int, np.ndarray],
    exclude_ap: int,
) -> list[float]:
    """Received power (dBm) of every other AP's active beam at a position."""
    out = []
    for ap, weights in active_beams.items():
        if ap == exclude_ap:
            continue
        out.append(deployment.channels[ap].rss_dbm(weights, position))
    return out


def _ap_schedule_time(
    deployment: MultiApDeployment,
    ap: int,
    users: tuple[int, ...],
    demands: dict[int, UserDemand],
    positions: dict[int, np.ndarray],
    active_beams: dict[int, np.ndarray],
    min_group_iou: float,
) -> float:
    """Serialized airtime for one AP to serve its users under interference.

    Within the AP the standard greedy viewport-similarity grouper decides
    the multicast subgroups; every rate is SINR-limited by the *other* APs'
    concurrent beams (approximated by their whole-assignment beams — the
    interference picture changes sub-frame, but its envelope does not).
    """
    from .grouping import greedy_similarity_grouping

    def user_rate(u: int) -> float:
        weights, _ = deployment.best_beam_rss(ap, positions[u])
        signal = deployment.channels[ap].rss_dbm(weights, positions[u])
        interference = _interference_at(
            deployment, positions[u], active_beams, exclude_ap=ap
        )
        return app_rate_for_sinr_mbps(sinr_db(signal, interference))

    ap_demands = [
        UserDemand(
            user_id=u,
            cell_bytes=demands[u].cell_bytes,
            unicast_rate_mbps=user_rate(u),
        )
        for u in users
    ]

    def multicast_rate(members: tuple[int, ...]) -> float:
        beam = _subgroup_beam(deployment, ap, members, positions)
        worst = np.inf
        for u in members:
            signal = deployment.channels[ap].rss_dbm(beam, positions[u])
            interference = _interference_at(
                deployment, positions[u], active_beams, exclude_ap=ap
            )
            worst = min(worst, sinr_db(signal, interference))
        return app_rate_for_sinr_mbps(float(worst))

    result = greedy_similarity_grouping(
        ap_demands, multicast_rate, min_iou=min_group_iou
    )
    return result.total_time_s


def concurrent_frame_time(
    deployment: MultiApDeployment,
    demands: dict[int, UserDemand],
    positions: dict[int, np.ndarray],
    assignment: ApAssignment | None = None,
    min_group_iou: float = 0.05,
) -> float:
    """Frame delivery time with all APs transmitting concurrently.

    Each AP runs its own similarity-grouped schedule over its assigned
    users; APs transmit in parallel (spatial reuse), so the frame finishes
    when the slowest AP does, plus the coordination overhead.
    """
    assignment = assignment or assign_groups(deployment, positions)
    active_beams: dict[int, np.ndarray] = {}
    for ap, users in enumerate(assignment.ap_users):
        if users:
            active_beams[ap] = _subgroup_beam(deployment, ap, users, positions)

    per_ap_times = [
        _ap_schedule_time(
            deployment, ap, users, demands, positions, active_beams,
            min_group_iou,
        )
        for ap, users in enumerate(assignment.ap_users)
        if users
    ]
    if not per_ap_times:
        return 0.0
    return float(max(per_ap_times) + deployment.coordination_overhead_s)


def coordinated_frame_time(
    deployment: MultiApDeployment,
    demands: dict[int, UserDemand],
    positions: dict[int, np.ndarray],
    assignment: ApAssignment | None = None,
    min_group_iou: float = 0.05,
) -> float:
    """Frame time under interference-aware AP coordination.

    The coordinator evaluates both operating modes and picks the faster:

    * **spatial reuse** — all APs transmit concurrently (SINR-limited);
    * **AP-TDMA** — APs take turns, each interference-free.

    Co-located audiences force TDMA (cross-beams would collapse SINR);
    separated clusters unlock concurrency — precisely the trade-off the
    paper's §5 flags as "interference management between multi-lobe beams".
    """
    assignment = assignment or assign_groups(deployment, positions)
    concurrent = concurrent_frame_time(
        deployment, demands, positions, assignment, min_group_iou
    )
    tdma = (
        sum(
            _ap_schedule_time(
                deployment, ap, users, demands, positions, {}, min_group_iou
            )
            for ap, users in enumerate(assignment.ap_users)
            if users
        )
        + deployment.coordination_overhead_s
    )
    return float(min(concurrent, tdma))


def single_ap_frame_time(
    deployment: MultiApDeployment,
    demands: dict[int, UserDemand],
    positions: dict[int, np.ndarray],
    ap: int = 0,
    min_group_iou: float = 0.05,
) -> float:
    """Baseline: one AP serves everyone with its similarity-grouped schedule."""
    users = tuple(sorted(demands))
    return _ap_schedule_time(
        deployment, ap, users, demands, positions, {}, min_group_iou
    )
