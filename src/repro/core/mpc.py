"""Model-predictive rate adaptation (the paper's citation [33], Yin et al.).

The classical control-theoretic DASH formulation adapted to volumetric
chunks: at every decision point, enumerate the quality sequences over a
short lookahead horizon, simulate the buffer trajectory each sequence
produces under the predicted bandwidth, score them with the linear QoE
objective (bitrate - rebuffer penalty - switch penalty), and commit only
the first step.  With three quality levels and the default 3-step horizon
the search space is 27 sequences — exact enumeration, no approximation.

Serves as a strong single-layer baseline for Abl-D: it plans ahead like
the cross-layer policy but sees only application-layer signals.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from itertools import product

from ..obs import trace as _trace
from ..pointcloud import QUALITIES, QUALITY_ORDER
from .adaptation import AdaptationDecision, AdaptationInputs
from .bandwidth import EwmaThroughputPredictor

__all__ = ["MpcPolicy"]

_EV_MPC = _trace.event_type(
    "core.mpc_decision", layer="core",
    help="the MPC policy enumerated its lookahead and committed the first "
         "step of the best quality sequence",
    fields=("user", "quality", "bandwidth_mbps", "score"),
)


@dataclass
class MpcPolicy:
    """Lookahead-H enumeration MPC over the three paper qualities."""

    policy_name = "mpc"

    horizon: int = 3
    chunk_s: float = 1.0  # decision/chunk interval the plan simulates
    rebuffer_penalty: float = 500.0  # Mbps-equivalent per second of stall
    switch_penalty: float = 30.0  # per quality change
    safety: float = 0.9
    predictors: dict[int, EwmaThroughputPredictor] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if self.horizon < 1:
            raise ValueError("horizon must be >= 1")
        if self.chunk_s <= 0:
            raise ValueError("chunk_s must be positive")
        if not 0.0 < self.safety <= 1.0:
            raise ValueError("safety must be in (0, 1]")

    def decide(self, inputs: AdaptationInputs) -> AdaptationDecision:
        predictor = self.predictors.setdefault(
            inputs.user_id, EwmaThroughputPredictor()
        )
        if inputs.observed_throughput_mbps > 0:
            predictor.observe(inputs.observed_throughput_mbps)
        bandwidth = predictor.predict_mbps() * self.safety
        if bandwidth <= 0:
            return AdaptationDecision(quality="low")

        best_quality = "low"
        best_score = -float("inf")
        for sequence in product(QUALITY_ORDER, repeat=self.horizon):
            score = self._score(
                sequence,
                bandwidth,
                inputs.buffer_level_s,
                inputs.current_quality,
                inputs.visible_fraction,
            )
            if score > best_score:
                best_score = score
                best_quality = sequence[0]
        if _trace._RECORDER is not None:
            _EV_MPC.emit(
                user=inputs.user_id,
                quality=best_quality,
                bandwidth_mbps=bandwidth,
                score=best_score,
            )
        return AdaptationDecision(quality=best_quality)

    def _score(
        self,
        sequence: tuple[str, ...],
        bandwidth_mbps: float,
        buffer_s: float,
        previous_quality: str,
        visible_fraction: float,
    ) -> float:
        """Simulate the buffer trajectory of one quality sequence."""
        total = 0.0
        prev = previous_quality
        frac = max(0.05, visible_fraction)
        for quality in sequence:
            bitrate = QUALITIES[quality].bitrate_mbps
            effective = bitrate * frac  # what the network must carry
            download_s = effective * self.chunk_s / bandwidth_mbps
            rebuffer = max(0.0, download_s - buffer_s)
            buffer_s = max(0.0, buffer_s - download_s) + self.chunk_s
            total += bitrate  # delivered quality counts at full bitrate
            total -= self.rebuffer_penalty * rebuffer
            if quality != prev:
                total -= self.switch_penalty
            prev = quality
        return total
