"""Multi-user video rate adaptation policies (paper §4.3).

Unlike client-side DASH adaptation, the paper's scheme runs *centrally* on
the AP/edge server, choosing each user's quality with full knowledge of the
shared medium.  A policy is queried once per adaptation interval per user
and returns an :class:`AdaptationDecision` — quality level plus cross-layer
actions (prefetch boost when a blockage is forecast, regroup hint when the
rate picture changed).

Implemented policies (the rate-adaptation ablation compares them):

* :class:`FixedQualityPolicy` — no adaptation (Table 1 operating mode);
* :class:`ThroughputPolicy` — pick the top quality under a safety factor of
  the application-layer EWMA (rate-based DASH);
* :class:`BufferPolicy` — buffer-threshold ladder (BBA-style);
* :class:`CrossLayerPolicy` — the paper's: cross-layer bandwidth prediction
  (PHY RSS + blockage forecast + app history), prefetch ahead of predicted
  blockages, and regroup hints on rate change.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Protocol, runtime_checkable

from ..pointcloud import QUALITIES, QUALITY_ORDER
from .bandwidth import (
    BufferAwareEstimator,
    CrossLayerBandwidthPredictor,
    EwmaThroughputPredictor,
)

__all__ = [
    "AdaptationInputs",
    "AdaptationDecision",
    "AdaptationPolicy",
    "FixedQualityPolicy",
    "ProactivePrefetchPolicy",
    "ThroughputPolicy",
    "BufferPolicy",
    "CrossLayerPolicy",
    "quality_below",
]


def quality_below(name: str) -> str:
    """The next lower quality level (clamps at ``"low"``)."""
    idx = QUALITY_ORDER.index(name)
    return QUALITY_ORDER[max(0, idx - 1)]


@dataclass(frozen=True)
class AdaptationInputs:
    """Everything a policy may look at for one user at one decision point."""

    user_id: int
    buffer_level_s: float
    observed_throughput_mbps: float
    current_quality: str
    rss_dbm: float | None = None
    blockage_predicted: bool = False
    visible_fraction: float = 1.0  # ViVo saving: effective bitrate multiplier
    # Transport-layer cross-layer signals (zero under the ideal transport):
    residual_loss_rate: float = 0.0  # fraction of recent frames lost in flight
    retx_overhead: float = 0.0  # extra airtime spent on ARQ/FEC recovery


@dataclass(frozen=True)
class AdaptationDecision:
    """Quality choice plus cross-layer side actions."""

    quality: str
    prefetch_extra_frames: int = 0
    request_regroup: bool = False

    def __post_init__(self) -> None:
        if self.quality not in QUALITIES:
            raise ValueError(f"unknown quality {self.quality!r}")
        if self.prefetch_extra_frames < 0:
            raise ValueError("prefetch_extra_frames must be non-negative")


@runtime_checkable
class AdaptationPolicy(Protocol):
    """Per-user rate adaptation strategy."""

    def decide(self, inputs: AdaptationInputs) -> AdaptationDecision:
        ...


def _effective_bitrate(quality: str, visible_fraction: float) -> float:
    """Network bitrate a quality actually costs after visibility culling."""
    return QUALITIES[quality].bitrate_mbps * max(0.05, visible_fraction)


def _best_quality_under(budget_mbps: float, visible_fraction: float) -> str:
    """Highest quality whose effective bitrate fits the budget."""
    choice = QUALITY_ORDER[0]
    for name in QUALITY_ORDER:
        if _effective_bitrate(name, visible_fraction) <= budget_mbps:
            choice = name
    return choice


@dataclass(frozen=True)
class FixedQualityPolicy:
    """Always stream the configured quality."""

    policy_name = "fixed"

    quality: str = "high"

    def __post_init__(self) -> None:
        if self.quality not in QUALITIES:
            raise ValueError(f"unknown quality {self.quality!r}")

    def decide(self, inputs: AdaptationInputs) -> AdaptationDecision:
        return AdaptationDecision(quality=self.quality)


@dataclass(frozen=True)
class ProactivePrefetchPolicy:
    """Fixed quality plus prefetching ahead of predicted blockages.

    Isolates the paper's §4.1 mechanism — "prefetch the content and
    schedule the future cells in the current time slot so that when the
    blockage happens, it has already prefetched some frames" — from
    quality adaptation, for the blockage-mitigation ablation.
    """

    policy_name = "proactive-prefetch"

    quality: str = "high"
    prefetch_frames: int = 15

    def __post_init__(self) -> None:
        if self.quality not in QUALITIES:
            raise ValueError(f"unknown quality {self.quality!r}")
        if self.prefetch_frames < 0:
            raise ValueError("prefetch_frames must be non-negative")

    def decide(self, inputs: AdaptationInputs) -> AdaptationDecision:
        prefetch = self.prefetch_frames if inputs.blockage_predicted else 0
        return AdaptationDecision(
            quality=self.quality, prefetch_extra_frames=prefetch
        )


@dataclass
class ThroughputPolicy:
    """Rate-based adaptation on the application-layer EWMA."""

    policy_name = "throughput"

    safety: float = 0.85
    predictors: dict[int, EwmaThroughputPredictor] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if not 0.0 < self.safety <= 1.0:
            raise ValueError("safety must be in (0, 1]")

    def decide(self, inputs: AdaptationInputs) -> AdaptationDecision:
        predictor = self.predictors.setdefault(
            inputs.user_id, EwmaThroughputPredictor()
        )
        if inputs.observed_throughput_mbps > 0:
            predictor.observe(inputs.observed_throughput_mbps)
        budget = predictor.predict_mbps() * self.safety
        return AdaptationDecision(
            quality=_best_quality_under(budget, inputs.visible_fraction)
        )


@dataclass(frozen=True)
class BufferPolicy:
    """Buffer-threshold ladder: low buffer -> low quality.

    The reservoir/cushion structure of BBA mapped onto the three paper
    qualities.
    """

    policy_name = "buffer"

    reservoir_s: float = 0.5
    cushion_s: float = 2.0

    def __post_init__(self) -> None:
        if not 0 < self.reservoir_s < self.cushion_s:
            raise ValueError("need 0 < reservoir_s < cushion_s")

    def decide(self, inputs: AdaptationInputs) -> AdaptationDecision:
        level = inputs.buffer_level_s
        if level < self.reservoir_s:
            quality = "low"
        elif level < self.cushion_s:
            quality = "medium"
        else:
            quality = "high"
        return AdaptationDecision(quality=quality)


@dataclass
class CrossLayerPolicy:
    """The paper's cross-layer scheme: PHY + app fusion, proactive actions."""

    policy_name = "cross-layer"

    safety: float = 0.9
    prefetch_on_blockage_frames: int = 15  # prefetch 0.5 s ahead of a blockage
    loss_backoff_threshold: float = 0.05  # residual frame loss that forces a step down
    buffer_guard: BufferAwareEstimator = field(default_factory=BufferAwareEstimator)
    predictors: dict[int, CrossLayerBandwidthPredictor] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if not 0.0 < self.safety <= 1.0:
            raise ValueError("safety must be in (0, 1]")
        if self.prefetch_on_blockage_frames < 0:
            raise ValueError("prefetch_on_blockage_frames must be non-negative")
        if not 0.0 <= self.loss_backoff_threshold <= 1.0:
            raise ValueError("loss_backoff_threshold must be in [0, 1]")

    def decide(self, inputs: AdaptationInputs) -> AdaptationDecision:
        predictor = self.predictors.setdefault(
            inputs.user_id, CrossLayerBandwidthPredictor()
        )
        if inputs.observed_throughput_mbps > 0:
            predictor.observe_throughput(inputs.observed_throughput_mbps)
        predicted = predictor.predict_mbps(
            rss_dbm=inputs.rss_dbm, blockage_predicted=inputs.blockage_predicted
        )
        budget = (
            self.buffer_guard.estimate_mbps(predicted, inputs.buffer_level_s)
            * self.safety
        )
        # Transport feedback: airtime burned on ARQ rounds / FEC repair is
        # airtime the video cannot use, so shrink the budget by it ...
        if inputs.retx_overhead > 0:
            budget /= 1.0 + inputs.retx_overhead
        quality = _best_quality_under(budget, inputs.visible_fraction)
        # ... and residual frame loss beyond what recovery can hide means
        # the operating point itself is too hot: step a quality down.
        if inputs.residual_loss_rate > self.loss_backoff_threshold:
            quality = quality_below(quality)
        prefetch = (
            self.prefetch_on_blockage_frames if inputs.blockage_predicted else 0
        )
        # A predicted blockage changes this user's rate picture enough that
        # the multicast scheduler should reconsider its grouping.
        return AdaptationDecision(
            quality=quality,
            prefetch_extra_frames=prefetch,
            request_regroup=inputs.blockage_predicted,
        )
