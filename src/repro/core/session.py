"""The multi-user volumetric streaming session simulator.

Ties every substrate together on the discrete-event engine: per-user
visibility-aware demands, viewport prediction for prefetching, multicast
grouping on viewport similarity, beam-level (or calibrated) link rates,
cross-layer rate adaptation, and client playback with stall accounting.

Two entry points:

* :func:`measure_max_fps` — the steady-state measurement Table 1 reports:
  for each frame, how long does delivering it to every user take, and what
  frame rate does that sustain?  No buffers, no adaptation — exactly the
  "maximum achievable frame rate" benchmark.
* :class:`StreamingSession` — the full closed-loop simulation with buffers,
  prediction, adaptation and QoE accounting, used for the research-agenda
  ablations (Abl-B/C/D).
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..mac.scheduler import UserDemand, plan_frame
from ..net import TransportConfig, TransportSimulator
from ..pointcloud import (
    CellGrid,
    CompressionModel,
    DEFAULT_COMPRESSION,
    PointCloudVideo,
    QUALITIES,
    VisibilityConfig,
    compute_visibility,
)
from ..prediction.base import ViewportPredictor
from ..prediction.blockage import BlockageForecaster
from ..sim import Environment
from ..traces import UserStudy
from .adaptation import AdaptationInputs, AdaptationPolicy, FixedQualityPolicy
from .client import BufferedFrame, ClientBuffer
from .grouping import (
    GroupingResult,
    exhaustive_grouping,
    greedy_similarity_grouping,
    no_grouping,
    qoe_aware_grouping,
)
from ..obs import trace as _trace
from .qoe import (
    ADAPTATION_DECISION,
    FRAME_PLAYED,
    FRAMES_PLAYED,
    PLAYBACK_STATE,
    QOE_SAMPLE,
    QUALITY_SWITCHES,
    QoEReport,
    STALL_SECONDS,
    UserSessionStats,
)
from .rates import RateProvider

__all__ = ["SessionConfig", "StreamingSession", "measure_max_fps"]


@dataclass
class SessionConfig:
    """Everything that defines one streaming experiment."""

    video: PointCloudVideo
    study: UserStudy
    rates: RateProvider
    cell_size: float = 0.5
    visibility: VisibilityConfig = field(default_factory=VisibilityConfig)
    grouping: str = "none"  # "none" | "greedy" | "qoe" | "exhaustive"
    adaptation: AdaptationPolicy = field(
        default_factory=lambda: FixedQualityPolicy("high")
    )
    predictor: ViewportPredictor | None = None  # None -> oracle poses
    blockage_forecaster: BlockageForecaster | None = None
    compression: CompressionModel = DEFAULT_COMPRESSION
    target_fps: float = 30.0
    duration_s: float | None = None
    startup_frames: int = 2
    adaptation_interval_s: float = 1.0
    max_buffer_frames: int = 30
    beam_switch_overhead_s: float = 0.0
    min_group_iou: float = 0.05
    # "grid" = uniform cells of ``cell_size``; "octree" = adaptive leaves
    # targeting ``octree_points_per_leaf`` sampled points each.
    partitioner: str = "grid"
    octree_points_per_leaf: int = 300
    # Packet-level delivery model; the "ideal" default keeps the fluid
    # transfer-time math (and every pre-existing result) unchanged.
    transport: TransportConfig = field(default_factory=TransportConfig)

    def __post_init__(self) -> None:
        if self.grouping not in ("none", "greedy", "qoe", "exhaustive"):
            raise ValueError(f"unknown grouping policy {self.grouping!r}")
        if self.partitioner not in ("grid", "octree"):
            raise ValueError(f"unknown partitioner {self.partitioner!r}")
        if self.target_fps <= 0:
            raise ValueError("target_fps must be positive")
        if self.startup_frames < 1:
            raise ValueError("startup_frames must be >= 1")

    @property
    def session_length_s(self) -> float:
        if self.duration_s is not None:
            return self.duration_s
        return self.study.num_samples / self.study.rate_hz

    @property
    def num_frames(self) -> int:
        return int(round(self.session_length_s * self.target_fps))


class _DemandBuilder:
    """Computes per-user frame demands (visibility + compression)."""

    def __init__(self, config: SessionConfig) -> None:
        self.config = config
        margin = 0.05
        self.grid = CellGrid.covering(
            config.video.bounds, config.cell_size, margin=margin
        )
        self._occupancy_cache: dict[int, object] = {}

    def occupancy(self, frame_index: int):
        vf = frame_index % len(self.config.video)
        if vf not in self._occupancy_cache:
            if self.config.partitioner == "octree":
                from ..pointcloud import build_octree

                tree = build_octree(
                    self.config.video[vf],
                    root=self.config.video.bounds,
                    max_points_per_leaf=self.config.octree_points_per_leaf,
                )
                self._occupancy_cache[vf] = tree.occupancy()
            else:
                self._occupancy_cache[vf] = self.grid.occupancy(
                    self.config.video[vf]
                )
        return self._occupancy_cache[vf]

    def pose_for(self, user_index: int, frame_index: int, now_s: float):
        """Pose used to compute the demand: predicted or oracle."""
        trace = self.config.study.traces[user_index]
        display_t = frame_index / self.config.target_fps
        predictor = self.config.predictor
        horizon = display_t - now_s
        if predictor is None or horizon <= 0:
            return trace.pose_at(display_t)
        now_index = trace.index_at(now_s)
        history = trace.window(now_index, int(round(trace.rate_hz)))
        return predictor.predict(history, horizon)

    def demand(
        self,
        user_index: int,
        frame_index: int,
        quality: str,
        now_s: float,
        unicast_rate_mbps: float,
    ) -> UserDemand:
        occ = self.occupancy(frame_index)
        pose = self.pose_for(user_index, frame_index, now_s)
        vis = compute_visibility(occ, pose.frustum(), self.config.visibility)
        level = QUALITIES[quality]
        scale = level.points_per_frame / self.config.video.quality.points_per_frame
        cell_bytes = {}
        for cid, frac, count in zip(vis.cell_ids, vis.fractions, vis.nominal_counts):
            points = frac * count * scale
            cell_bytes[int(cid)] = self.config.compression.cell_bytes(
                points, level.points_per_frame
            )
        return UserDemand(
            user_id=user_index,
            cell_bytes=cell_bytes,
            unicast_rate_mbps=unicast_rate_mbps,
        )

    def visible_fraction(self, user_index: int, frame_index: int, now_s: float) -> float:
        occ = self.occupancy(frame_index)
        pose = self.pose_for(user_index, frame_index, now_s)
        vis = compute_visibility(occ, pose.frustum(), self.config.visibility)
        return vis.visible_fraction


def _group_demands(
    config: SessionConfig,
    demands: list[UserDemand],
    sample_index: int,
    frame: int | None = None,
) -> GroupingResult:
    """Apply the configured grouping policy to one frame's demands.

    ``frame`` is a trace-only correlation field threaded into the policy's
    decision event; it never changes the partition.
    """
    rate_fn = lambda members: config.rates.multicast_rate_mbps(  # noqa: E731
        members, sample_index
    )
    if config.grouping == "none" or len(demands) < 2:
        return no_grouping(demands, frame=frame)
    if config.grouping == "greedy":
        return greedy_similarity_grouping(
            demands, rate_fn, target_fps=config.target_fps,
            min_iou=config.min_group_iou, frame=frame,
        )
    if config.grouping == "qoe":
        return qoe_aware_grouping(
            demands, rate_fn, target_fps=config.target_fps,
            min_iou=config.min_group_iou, frame=frame,
        )
    return exhaustive_grouping(
        demands, rate_fn, target_fps=config.target_fps, frame=frame
    )


def measure_max_fps(
    config: SessionConfig,
    num_frames: int | None = None,
    stride: int = 1,
) -> np.ndarray:
    """Per-frame maximum achievable FPS (the Table 1 measurement).

    For each sampled frame: every user demands the frame at their current
    pose and the session's fixed quality; the configured grouping policy
    plans the delivery; the sustainable rate is ``1 / plan_time`` capped at
    the content frame rate.
    """
    builder = _DemandBuilder(config)
    total = num_frames if num_frames is not None else config.num_frames
    total = min(total, config.num_frames)
    num_users = len(config.study)
    transport = (
        None if config.transport.is_ideal else TransportSimulator(config.transport)
    )
    fps = []
    for f in range(0, total, stride):
        now_s = f / config.target_fps
        sample = min(f, config.study.num_samples - 1)
        demands = []
        rss = []
        for u in range(num_users):
            rss.append(config.rates.rss_dbm(u, sample))
            decision = config.adaptation.decide(
                AdaptationInputs(
                    user_id=u,
                    buffer_level_s=0.0,
                    observed_throughput_mbps=0.0,
                    current_quality="high",
                    rss_dbm=rss[u],
                )
            )
            rate = config.rates.unicast_rate_mbps(u, sample)
            demands.append(builder.demand(u, f, decision.quality, now_s, rate))
        result = _group_demands(config, demands, sample, frame=f)
        plan = result.plan
        if config.beam_switch_overhead_s:
            plan = plan_frame(
                list(plan.demands.values()),
                groups=plan.groups,
                beam_switch_overhead_s=config.beam_switch_overhead_s,
                frame=f,
            )
        if transport is None:
            fps.append(plan.achievable_fps(cap_fps=config.target_fps))
        else:
            pers = {u: transport.link_per(rss[u]) for u in range(num_users)}
            outcome = transport.frame_outcome(
                plan, pers, target_fps=config.target_fps, frame=f
            )
            fps.append(outcome.effective_fps(cap_fps=config.target_fps))
    return np.array(fps)


class StreamingSession:
    """Closed-loop multi-user streaming simulation."""

    def __init__(self, config: SessionConfig) -> None:
        self.config = config
        self.builder = _DemandBuilder(config)
        self.env = Environment()
        n = len(config.study)
        self.buffers = [
            ClientBuffer(
                user_id=u,
                fps=config.target_fps,
                max_buffered_frames=config.max_buffer_frames,
            )
            for u in range(n)
        ]
        self.stats = [UserSessionStats(user_id=u) for u in range(n)]
        self.quality = ["high" if _is_fixed_high(config.adaptation) else "low"] * n
        self.prefetch_extra = [0] * n
        self.bytes_delivered = [0.0] * n
        self._playing = [False] * n
        self._stalled = [False] * n
        self.transport = (
            None
            if config.transport.is_ideal
            else TransportSimulator(config.transport)
        )
        # Cross-layer loss accounting, reset each adaptation interval.
        self._tx_attempts = [0] * n
        self._tx_failures = [0] * n
        self._airtime_actual = 0.0
        self._airtime_ideal = 0.0

    # -- helpers ---------------------------------------------------------

    def _sample_index(self) -> int:
        return min(
            int(self.env.now * self.config.study.rate_hz),
            self.config.study.num_samples - 1,
        )

    def _next_needed(self, user: int) -> int | None:
        """Next frame index user needs, or None if the window is full."""
        buf = self.buffers[user]
        candidate = buf.next_playback_index
        window = self.config.max_buffer_frames + self.prefetch_extra[user]
        while candidate < self.config.num_frames:
            if candidate >= buf.next_playback_index + window:
                return None
            if not buf.has_frame(candidate):
                return candidate
            candidate += 1
        return None

    def _find_work(self, live: list[bool]) -> tuple[int, list[int]] | None:
        """The most urgent frame to transmit and the (live) users who need it.

        Users whose link is in outage are ignored so they cannot
        head-of-line-block everyone else's downloads.
        """
        needed: dict[int, list[int]] = {}
        for u in range(len(self.buffers)):
            if not live[u]:
                continue
            nxt = self._next_needed(u)
            if nxt is not None:
                needed.setdefault(nxt, []).append(u)
        if not needed:
            return None
        frame = min(needed)
        return frame, needed[frame]

    # -- processes ------------------------------------------------------------

    def _server(self):
        config = self.config
        dt = 1.0 / config.target_fps
        num_users = len(self.buffers)
        while self.env.now < config.session_length_s:
            sample = self._sample_index()
            rates = [
                config.rates.unicast_rate_mbps(u, sample) for u in range(num_users)
            ]
            live = [r > 0.0 for r in rates]
            work = self._find_work(live)
            if work is None:
                yield self.env.timeout(dt / 2.0)
                continue
            frame_index, users = work
            demands = [
                self.builder.demand(
                    u, frame_index, self.quality[u], self.env.now, rates[u]
                )
                for u in users
            ]
            result = _group_demands(config, demands, sample, frame=frame_index)
            plan = result.plan
            if config.beam_switch_overhead_s:
                plan = plan_frame(
                    demands,
                    groups=plan.groups,
                    beam_switch_overhead_s=config.beam_switch_overhead_s,
                    frame=frame_index,
                )
            t_tx = plan.total_time_s()
            if not np.isfinite(t_tx) or t_tx > 1.0:
                yield self.env.timeout(dt)
                continue
            if self.transport is None:
                # Even an empty-payload transmission costs MAC framing time;
                # this also guarantees simulated time always advances.
                yield self.env.timeout(max(t_tx, 1e-5))
                delivered_users = None  # fluid delivery never loses a frame
            else:
                pers = {
                    u: self.transport.link_per(config.rates.rss_dbm(u, sample))
                    for u in users
                }
                t0 = self.env.now
                outcome = yield self.env.process(
                    self.transport.deliver(
                        self.env, plan, pers, config.target_fps,
                        frame=frame_index,
                    )
                )
                if self.env.now <= t0:
                    yield self.env.timeout(1e-5)
                delivered_users = {
                    u for u, ok in outcome.delivered.items() if ok
                }
                self._airtime_actual += outcome.airtime_s
                self._airtime_ideal += t_tx
                for u in users:
                    self._tx_attempts[u] += 1
                    if u not in delivered_users:
                        self._tx_failures[u] += 1
            for u, demand in zip(users, demands):
                if delivered_users is not None and u not in delivered_users:
                    continue  # lost frame: the user must re-request it
                buf = self.buffers[u]
                extra = self.prefetch_extra[u]
                if buf.can_accept(frame_index, extra_window=extra):
                    level = QUALITIES[self.quality[u]]
                    buf.deposit(
                        BufferedFrame(
                            frame_index=frame_index,
                            quality=self.quality[u],
                            nominal_points=level.points_per_frame,
                            arrived_at_s=self.env.now,
                        ),
                        extra_window=extra,
                    )
                self.bytes_delivered[u] += demand.total_bytes

    def _client(self, user: int):
        config = self.config
        dt = 1.0 / config.target_fps
        buf = self.buffers[user]
        stats = self.stats[user]
        played_this_second = 0
        second_mark = self.env.now + 1.0
        while self.env.now < config.session_length_s:
            yield self.env.timeout(dt)
            if not self._playing[user]:
                if buf.buffered_frames >= config.startup_frames:
                    self._playing[user] = True
                    if _trace._RECORDER is not None:
                        PLAYBACK_STATE.emit(
                            t=self.env.now, user=user, state="playing"
                        )
                continue
            if buf.next_playback_index >= config.num_frames:
                break  # finished the content
            frame = buf.play_next()
            if frame is None:
                stats.stall_time_s += dt
                STALL_SECONDS.inc(dt)
                if not self._stalled[user]:
                    stats.stall_count += 1
                    self._stalled[user] = True
                    if _trace._RECORDER is not None:
                        PLAYBACK_STATE.emit(
                            t=self.env.now, user=user, state="stalled"
                        )
            else:
                if self._stalled[user] and _trace._RECORDER is not None:
                    PLAYBACK_STATE.emit(
                        t=self.env.now, user=user, state="resumed"
                    )
                self._stalled[user] = False
                stats.frames_played += 1
                FRAMES_PLAYED.inc()
                played_this_second += 1
                deadline = frame.frame_index / config.target_fps + 0.5
                on_time = frame.arrived_at_s <= deadline
                if on_time:
                    stats.frames_on_time += 1
                if _trace._RECORDER is not None:
                    FRAME_PLAYED.emit(
                        t=self.env.now,
                        quality=frame.quality,
                        on_time=on_time,
                        **_trace.correlation(
                            frame=frame.frame_index, user=user
                        ),
                    )
                stats.bitrate_samples_mbps.append(
                    QUALITIES[frame.quality].bitrate_mbps
                )
            if self.env.now >= second_mark:
                stats.fps_samples.append(played_this_second)
                if _trace._RECORDER is not None:
                    QOE_SAMPLE.emit(
                        t=self.env.now, user=user, fps=played_this_second
                    )
                played_this_second = 0
                second_mark += 1.0

    def _adaptation(self):
        config = self.config
        interval = config.adaptation_interval_s
        while self.env.now < config.session_length_s:
            yield self.env.timeout(interval)
            sample = self._sample_index()
            forecast = None
            if config.blockage_forecaster is not None:
                history_needed = int(round(config.study.rate_hz))
                if sample >= history_needed:
                    forecast = config.blockage_forecaster.forecast_at(
                        config.study, sample
                    )
            if self._airtime_ideal > 0:
                retx_overhead = max(
                    0.0, self._airtime_actual / self._airtime_ideal - 1.0
                )
            else:
                retx_overhead = 0.0
            self._airtime_actual = 0.0
            self._airtime_ideal = 0.0
            for u in range(len(self.buffers)):
                throughput = self.bytes_delivered[u] * 8.0 / interval / 1e6
                self.bytes_delivered[u] = 0.0
                attempts = self._tx_attempts[u]
                residual_loss = (
                    self._tx_failures[u] / attempts if attempts else 0.0
                )
                self._tx_attempts[u] = 0
                self._tx_failures[u] = 0
                frame_hint = min(
                    self.buffers[u].next_playback_index, config.num_frames - 1
                )
                inputs = AdaptationInputs(
                    user_id=u,
                    buffer_level_s=self.buffers[u].buffer_level_s,
                    observed_throughput_mbps=throughput,
                    current_quality=self.quality[u],
                    rss_dbm=config.rates.rss_dbm(u, sample),
                    blockage_predicted=(
                        bool(forecast.will_block[u]) if forecast else False
                    ),
                    visible_fraction=self.builder.visible_fraction(
                        u, frame_hint, self.env.now
                    ),
                    residual_loss_rate=residual_loss,
                    retx_overhead=retx_overhead,
                )
                decision = config.adaptation.decide(inputs)
                if _trace._RECORDER is not None:
                    ADAPTATION_DECISION.emit(
                        t=self.env.now,
                        user=u,
                        quality=decision.quality,
                        prefetch_extra=decision.prefetch_extra_frames,
                        throughput_mbps=throughput,
                        policy=getattr(
                            config.adaptation,
                            "policy_name",
                            type(config.adaptation).__name__,
                        ),
                    )
                if decision.quality != self.quality[u]:
                    self.stats[u].quality_switches += 1
                    QUALITY_SWITCHES.inc()
                    self.quality[u] = decision.quality
                self.prefetch_extra[u] = decision.prefetch_extra_frames

    # -- entry ------------------------------------------------------------

    def run(self) -> QoEReport:
        self.env.process(self._server())
        self.env.process(self._adaptation())
        for u in range(len(self.buffers)):
            self.env.process(self._client(u))
        self.env.run(until=self.config.session_length_s)
        return QoEReport(
            users=self.stats, session_length_s=self.config.session_length_s
        )


def _is_fixed_high(policy: AdaptationPolicy) -> bool:
    return isinstance(policy, FixedQualityPolicy) and policy.quality == "high"
