"""Cross-layer bandwidth prediction (paper §4.3).

"How to accurately estimate the link bandwidth ... for unicast and
multicast transmissions?  ...we aim to utilize a cross-layer solution that
combines the mmWave channel information (e.g., RSS) with the application
layer information such as the buffer size of the video player."

Three predictors, used as the policy inputs in the rate-adaptation
ablation (Abl-D):

* :class:`EwmaThroughputPredictor` — classic application-layer estimator:
  exponentially weighted average of observed goodput (what DASH players do);
* :class:`BufferAwareEstimator` — buffer-based correction à la BBA: scale
  the throughput estimate down when the buffer is draining;
* :class:`CrossLayerBandwidthPredictor` — the paper's proposal: fuse the
  PHY-derived rate (RSS -> MCS -> goodput) and a blockage forecast with the
  application-layer EWMA.  PHY information reacts within one beacon
  interval, so mmWave rate cliffs (blockage, beam switch) show up in the
  prediction *before* the application-layer average catches up.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..mmwave.mcs import app_rate_mbps

__all__ = [
    "EwmaThroughputPredictor",
    "BufferAwareEstimator",
    "CrossLayerBandwidthPredictor",
]


@dataclass
class EwmaThroughputPredictor:
    """EWMA over observed application goodput samples."""

    alpha: float = 0.3
    _estimate_mbps: float | None = field(default=None, repr=False)

    def __post_init__(self) -> None:
        if not 0.0 < self.alpha <= 1.0:
            raise ValueError("alpha must be in (0, 1]")

    def observe(self, throughput_mbps: float) -> None:
        if throughput_mbps < 0:
            raise ValueError("throughput must be non-negative")
        if self._estimate_mbps is None:
            self._estimate_mbps = throughput_mbps
        else:
            self._estimate_mbps = (
                self.alpha * throughput_mbps
                + (1.0 - self.alpha) * self._estimate_mbps
            )

    def predict_mbps(self) -> float:
        """Current estimate (0 before any observation)."""
        return self._estimate_mbps if self._estimate_mbps is not None else 0.0


@dataclass
class BufferAwareEstimator:
    """Buffer-level safety scaling on top of a throughput estimate.

    With a comfortable buffer the raw estimate passes through; as the
    buffer approaches empty the estimate is discounted down to
    ``min_scale`` — trading throughput for stall protection exactly like
    buffer-based rate adaptation.
    """

    target_buffer_s: float = 2.0
    min_scale: float = 0.5

    def __post_init__(self) -> None:
        if self.target_buffer_s <= 0:
            raise ValueError("target_buffer_s must be positive")
        if not 0.0 < self.min_scale <= 1.0:
            raise ValueError("min_scale must be in (0, 1]")

    def scale(self, buffer_s: float) -> float:
        if buffer_s < 0:
            raise ValueError("buffer_s must be non-negative")
        frac = min(1.0, buffer_s / self.target_buffer_s)
        return self.min_scale + (1.0 - self.min_scale) * frac

    def estimate_mbps(self, throughput_mbps: float, buffer_s: float) -> float:
        return throughput_mbps * self.scale(buffer_s)


@dataclass
class CrossLayerBandwidthPredictor:
    """Fuse PHY-layer rate indicators with the application-layer EWMA.

    ``predict_mbps`` blends the PHY ceiling (goodput implied by the current
    RSS) with the recent application history; a pending blockage forecast
    discounts the prediction by the expected reflection-path penalty before
    the blockage actually happens — the cross-layer edge.
    """

    ewma: EwmaThroughputPredictor = field(default_factory=EwmaThroughputPredictor)
    phy_weight: float = 0.6
    blockage_discount: float = 0.55  # expected rate fraction on reflection
    streaming_efficiency: float = 0.95

    def __post_init__(self) -> None:
        if not 0.0 <= self.phy_weight <= 1.0:
            raise ValueError("phy_weight must be in [0, 1]")
        if not 0.0 < self.blockage_discount <= 1.0:
            raise ValueError("blockage_discount must be in (0, 1]")

    def observe_throughput(self, throughput_mbps: float) -> None:
        self.ewma.observe(throughput_mbps)

    def phy_rate_mbps(self, rss_dbm: float) -> float:
        """Goodput ceiling implied by the current RSS."""
        return app_rate_mbps(rss_dbm) * self.streaming_efficiency

    def predict_mbps(
        self,
        rss_dbm: float | None = None,
        blockage_predicted: bool = False,
    ) -> float:
        app_est = self.ewma.predict_mbps()
        if rss_dbm is None:
            prediction = app_est
        else:
            phy_est = self.phy_rate_mbps(rss_dbm)
            if app_est <= 0.0:
                prediction = phy_est
            else:
                # The PHY rate is a ceiling: never predict above it.
                blended = (
                    self.phy_weight * phy_est + (1.0 - self.phy_weight) * app_est
                )
                prediction = min(blended, phy_est)
        if blockage_predicted:
            prediction *= self.blockage_discount
        return prediction
