"""Link-rate providers: what rate does each (user, instant) get?

The session simulator is agnostic to where rates come from; two providers
cover the paper's two evaluation styles:

* :class:`CapacityRateProvider` — the calibrated WLAN capacity models
  (Table 1): every user sees the aggregate testbed capacity when the AP
  transmits to them, and airtime sharing happens naturally in the frame
  scheduler.  An optional :class:`~repro.mac.events.LinkRateTimeline`
  multiplies in blockage/outage effects.
* :class:`ChannelRateProvider` — the beam-level geometric channel
  (Fig. 3): per-user rates follow from the RSS of the AP's beam toward the
  user's *current position*, multicast rates from the group's designed beam
  (default-codebook common beam or the custom multi-lobe beam).

Rates are application-layer goodput in Mbps, ready for byte/second math.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Protocol, runtime_checkable

import numpy as np

from ..mac.events import LinkRateTimeline
from ..mac.wlan import STREAMING_GOODPUT_EFFICIENCY, WlanCapacityModel
from ..mmwave.beams import combine_weights
from ..mmwave.channel import Channel
from ..mmwave.codebook import Codebook
from ..mmwave.blockage import bodies_from_positions
from ..mmwave.mcs import app_rate_mbps
from ..traces import UserStudy

__all__ = ["RateProvider", "CapacityRateProvider", "ChannelRateProvider"]


@runtime_checkable
class RateProvider(Protocol):
    """Minimal interface the scheduler/session needs."""

    def unicast_rate_mbps(self, user_index: int, sample_index: int) -> float:
        """Goodput when the AP unicasts to one user at one study sample."""
        ...

    def multicast_rate_mbps(
        self, member_indices: tuple[int, ...], sample_index: int
    ) -> float:
        """Goodput of a multicast transmission to a group."""
        ...

    def rss_dbm(self, user_index: int, sample_index: int) -> float | None:
        """PHY hint for cross-layer adaptation (None if not modeled)."""
        ...


@dataclass
class CapacityRateProvider:
    """Rates from the calibrated aggregate-capacity model.

    When the AP transmits to any single user it achieves the aggregate
    capacity for the current user count (airtime division is the
    scheduler's job).  Multicast reaches the whole group in one
    transmission at ``multicast_rate_fraction`` of that rate — below 1.0
    models the group-minimum-MCS penalty without beam geometry.
    """

    model: WlanCapacityModel
    num_users: int
    timeline: LinkRateTimeline | None = None
    multicast_rate_fraction: float = 1.0
    goodput_efficiency: float = STREAMING_GOODPUT_EFFICIENCY

    def __post_init__(self) -> None:
        if self.num_users < 1:
            raise ValueError("num_users must be >= 1")
        if not 0.0 < self.multicast_rate_fraction <= 1.0:
            raise ValueError("multicast_rate_fraction must be in (0, 1]")

    def _base_rate(self) -> float:
        # A single user suffers no inter-user contention, so a larger share
        # of the transport rate becomes video payload (fits the paper's
        # 1-user rows, where 374 Mbps carries the 364 Mbps video at 30 FPS).
        efficiency = 0.98 if self.num_users == 1 else self.goodput_efficiency
        return self.model.aggregate_mbps(self.num_users) * efficiency

    def _multiplier(self, user_index: int, sample_index: int) -> float:
        if self.timeline is None:
            return 1.0
        sample = min(sample_index, self.timeline.multiplier.shape[1] - 1)
        return float(self.timeline.multiplier[user_index, sample])

    def unicast_rate_mbps(self, user_index: int, sample_index: int) -> float:
        return self._base_rate() * self._multiplier(user_index, sample_index)

    def multicast_rate_mbps(
        self, member_indices: tuple[int, ...], sample_index: int
    ) -> float:
        if not member_indices:
            raise ValueError("need at least one member")
        worst = min(self._multiplier(u, sample_index) for u in member_indices)
        return self._base_rate() * self.multicast_rate_fraction * worst

    def rss_dbm(self, user_index: int, sample_index: int) -> float | None:
        return None


@dataclass
class ChannelRateProvider:
    """Rates from the beam-level 60 GHz channel at the users' trace positions.

    Unicast beams are chosen as the codebook beam steered nearest the user's
    LoS direction (a sector sweep would pick the same beam in the open; the
    full sweep lives in :mod:`repro.mmwave.beams` for the Fig. 3
    experiments).  Multicast beams follow the paper's design: best common
    codebook beam, or the custom multi-lobe combination when
    ``use_custom_beams`` is set and it wins.

    Results are memoized per (user/group, sample) — traces are deterministic.
    """

    channel: Channel
    codebook: Codebook
    study: UserStudy
    use_custom_beams: bool = True
    include_bodies: bool = True
    goodput_efficiency: float = STREAMING_GOODPUT_EFFICIENCY
    _unicast_cache: dict = field(default_factory=dict, repr=False)
    _multicast_cache: dict = field(default_factory=dict, repr=False)
    _rss_cache: dict = field(default_factory=dict, repr=False)

    def _sample(self, sample_index: int) -> int:
        return min(sample_index, self.study.num_samples - 1)

    def _bodies(self, sample_index: int, exclude: int | None):
        if not self.include_bodies:
            return ()
        positions = self.study.positions_at(self._sample(sample_index))
        return bodies_from_positions(positions, exclude=exclude)

    def _user_rss(self, user_index: int, sample_index: int) -> float:
        key = (user_index, self._sample(sample_index))
        if key not in self._rss_cache:
            s = self._sample(sample_index)
            position = self.study.traces[user_index].positions[s]
            az, el = self.channel.ap.steering_to(position)
            beam = self.codebook.nearest_beam(az, el)
            bodies = self._bodies(s, exclude=user_index)
            self._rss_cache[key] = self.channel.rss_dbm(
                beam.weights, position, bodies
            )
        return self._rss_cache[key]

    def unicast_rate_mbps(self, user_index: int, sample_index: int) -> float:
        key = (user_index, self._sample(sample_index))
        if key not in self._unicast_cache:
            rss = self._user_rss(user_index, sample_index)
            if rss < self.channel.budget.outage_rss_dbm:
                rate = 0.0
            else:
                rate = app_rate_mbps(rss) * self.goodput_efficiency
            self._unicast_cache[key] = rate
        return self._unicast_cache[key]

    def multicast_rate_mbps(
        self, member_indices: tuple[int, ...], sample_index: int
    ) -> float:
        if not member_indices:
            raise ValueError("need at least one member")
        if len(member_indices) == 1:
            return self.unicast_rate_mbps(member_indices[0], sample_index)
        s = self._sample(sample_index)
        key = (tuple(sorted(member_indices)), s)
        if key not in self._multicast_cache:
            positions = [self.study.traces[u].positions[s] for u in member_indices]
            # Each receiver's RSS must exclude their *own* body (the device
            # is in front of them), so the per-user sweeps use per-user
            # blocker sets rather than one shared set.
            weight_matrix = self.codebook.weight_matrix
            per_user_rss = np.stack(
                [
                    self.channel.rss_matrix_dbm(
                        weight_matrix, pos, self._bodies(s, exclude=u)
                    )
                    for u, pos in zip(member_indices, positions)
                ]
            )  # (U, B)
            common = per_user_rss.min(axis=0)
            best_min = float(common.max())
            if self.use_custom_beams:
                best_beams = [
                    int(np.argmax(per_user_rss[i]))
                    for i in range(len(member_indices))
                ]
                combined = combine_weights(
                    [self.codebook[b].weights for b in best_beams],
                    [
                        float(per_user_rss[i, b])
                        for i, b in enumerate(best_beams)
                    ],
                )
                combined_min = min(
                    self.channel.rss_dbm(
                        combined, pos, self._bodies(s, exclude=u)
                    )
                    for u, pos in zip(member_indices, positions)
                )
                best_min = max(best_min, float(combined_min))
            if best_min < self.channel.budget.outage_rss_dbm:
                rate = 0.0
            else:
                rate = app_rate_mbps(best_min) * self.goodput_efficiency
            self._multicast_cache[key] = rate
        return self._multicast_cache[key]

    def rss_dbm(self, user_index: int, sample_index: int) -> float | None:
        return self._user_rss(user_index, sample_index)
