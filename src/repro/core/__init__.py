"""Core system: similarity, grouping, adaptation, rates, the session simulator."""

from .adaptation import (
    AdaptationDecision,
    AdaptationInputs,
    AdaptationPolicy,
    BufferPolicy,
    CrossLayerPolicy,
    FixedQualityPolicy,
    ProactivePrefetchPolicy,
    ThroughputPolicy,
    quality_below,
)
from .bandwidth import (
    BufferAwareEstimator,
    CrossLayerBandwidthPredictor,
    EwmaThroughputPredictor,
)
from .client import BufferedFrame, ClientBuffer
from .grouping import (
    GroupingResult,
    exhaustive_grouping,
    greedy_similarity_grouping,
    no_grouping,
    qoe_aware_grouping,
)
from .mpc import MpcPolicy
from .multiap import (
    ApAssignment,
    MultiApDeployment,
    assign_groups,
    concurrent_frame_time,
    coordinated_frame_time,
    single_ap_frame_time,
)
from .qoe import QoEReport, QoEWeights, UserSessionStats
from .rates import CapacityRateProvider, ChannelRateProvider, RateProvider
from .policies import PolicyInfo, adaptation_policy_catalog, grouping_strategy_catalog
from .session import SessionConfig, StreamingSession, measure_max_fps
from .similarity import (
    VisibilityMaps,
    compute_visibility_maps,
    group_iou,
    group_iou_samples,
    iou_series,
    pairwise_iou_samples,
)
from .utility import (
    AllocationResult,
    UserAllocationInput,
    UtilityModel,
    UtilityOptimalPolicy,
    allocate_qualities,
    allocate_qualities_dp,
    allocate_qualities_greedy,
    assignment_utility,
    quality_rate_table,
)

__all__ = [
    "AdaptationDecision",
    "AdaptationInputs",
    "AdaptationPolicy",
    "BufferPolicy",
    "CrossLayerPolicy",
    "FixedQualityPolicy",
    "ProactivePrefetchPolicy",
    "ThroughputPolicy",
    "quality_below",
    "BufferAwareEstimator",
    "CrossLayerBandwidthPredictor",
    "EwmaThroughputPredictor",
    "BufferedFrame",
    "ClientBuffer",
    "GroupingResult",
    "exhaustive_grouping",
    "greedy_similarity_grouping",
    "no_grouping",
    "qoe_aware_grouping",
    "MpcPolicy",
    "ApAssignment",
    "MultiApDeployment",
    "assign_groups",
    "concurrent_frame_time",
    "coordinated_frame_time",
    "single_ap_frame_time",
    "QoEReport",
    "QoEWeights",
    "UserSessionStats",
    "CapacityRateProvider",
    "ChannelRateProvider",
    "RateProvider",
    "PolicyInfo",
    "adaptation_policy_catalog",
    "grouping_strategy_catalog",
    "SessionConfig",
    "StreamingSession",
    "measure_max_fps",
    "AllocationResult",
    "UserAllocationInput",
    "UtilityModel",
    "UtilityOptimalPolicy",
    "allocate_qualities",
    "allocate_qualities_dp",
    "allocate_qualities_greedy",
    "assignment_utility",
    "quality_rate_table",
    "VisibilityMaps",
    "compute_visibility_maps",
    "group_iou",
    "group_iou_samples",
    "iou_series",
    "pairwise_iou_samples",
]
