"""Core system: similarity, grouping, adaptation, rates, the session simulator."""

from .adaptation import (
    AdaptationDecision,
    AdaptationInputs,
    AdaptationPolicy,
    BufferPolicy,
    CrossLayerPolicy,
    FixedQualityPolicy,
    ProactivePrefetchPolicy,
    ThroughputPolicy,
    quality_below,
)
from .bandwidth import (
    BufferAwareEstimator,
    CrossLayerBandwidthPredictor,
    EwmaThroughputPredictor,
)
from .client import BufferedFrame, ClientBuffer
from .grouping import (
    GroupingResult,
    exhaustive_grouping,
    greedy_similarity_grouping,
    no_grouping,
)
from .mpc import MpcPolicy
from .multiap import (
    ApAssignment,
    MultiApDeployment,
    assign_groups,
    concurrent_frame_time,
    coordinated_frame_time,
    single_ap_frame_time,
)
from .qoe import QoEReport, QoEWeights, UserSessionStats
from .rates import CapacityRateProvider, ChannelRateProvider, RateProvider
from .session import SessionConfig, StreamingSession, measure_max_fps
from .similarity import (
    VisibilityMaps,
    compute_visibility_maps,
    group_iou,
    group_iou_samples,
    iou_series,
    pairwise_iou_samples,
)

__all__ = [
    "AdaptationDecision",
    "AdaptationInputs",
    "AdaptationPolicy",
    "BufferPolicy",
    "CrossLayerPolicy",
    "FixedQualityPolicy",
    "ProactivePrefetchPolicy",
    "ThroughputPolicy",
    "quality_below",
    "BufferAwareEstimator",
    "CrossLayerBandwidthPredictor",
    "EwmaThroughputPredictor",
    "BufferedFrame",
    "ClientBuffer",
    "GroupingResult",
    "exhaustive_grouping",
    "greedy_similarity_grouping",
    "no_grouping",
    "MpcPolicy",
    "ApAssignment",
    "MultiApDeployment",
    "assign_groups",
    "concurrent_frame_time",
    "coordinated_frame_time",
    "single_ap_frame_time",
    "QoEReport",
    "QoEWeights",
    "UserSessionStats",
    "CapacityRateProvider",
    "ChannelRateProvider",
    "RateProvider",
    "SessionConfig",
    "StreamingSession",
    "measure_max_fps",
    "VisibilityMaps",
    "compute_visibility_maps",
    "group_iou",
    "group_iou_samples",
    "iou_series",
    "pairwise_iou_samples",
]
