"""Quality-of-experience accounting for streaming sessions.

The standard streaming QoE decomposition: delivered quality (bitrate),
re-buffering (stalls), and quality instability (switches).  The composite
score follows the widely used linear form

    QoE = mean_bitrate - lambda * stall_time_per_s - mu * switch_rate

normalized per played second so sessions of different lengths compare.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..obs import metrics as _metrics
from ..obs import trace as _trace

__all__ = ["QoEWeights", "UserSessionStats", "QoEReport"]

# Shared core-layer instrumentation: declared here (the QoE accounting
# module) and emitted by the session simulator and the open-loop sweeps.
FRAMES_PLAYED = _metrics.counter(
    "core.frames_played", unit="frames", layer="core",
    help="frames played out across all client buffers",
)
STALL_SECONDS = _metrics.counter(
    "core.stall_seconds", unit="s", layer="core",
    help="playback stall time accumulated across all users",
)
QUALITY_SWITCHES = _metrics.counter(
    "core.quality_switches", unit="switches", layer="core",
    help="quality-level changes committed by the adaptation policy",
)
QOE_SAMPLE = _trace.event_type(
    "core.qoe_sample", layer="core",
    help="one frame-rate QoE sample (per user per played second in the "
         "closed loop; per frame with user -1 in open-loop sweeps)",
    fields=("user", "fps", "frame"),
)
FRAME_PLAYED = _trace.event_type(
    "core.frame_played", layer="core",
    help="a client buffer played out one frame (the end of the frame's "
         "cross-layer span); on_time compares arrival against the playback "
         "deadline",
    fields=("user", "frame", "quality", "on_time"),
)
PLAYBACK_STATE = _trace.event_type(
    "core.playback_state", layer="core",
    help="a client's playback state changed (playing, stalled, resumed)",
    fields=("user", "state"),
)
ADAPTATION_DECISION = _trace.event_type(
    "core.adaptation_decision", layer="core",
    help="the adaptation policy committed a quality/prefetch decision for "
         "one user; policy names which strategy decided (see "
         "docs/POLICIES.md)",
    fields=("user", "quality", "prefetch_extra", "throughput_mbps", "policy"),
)


@dataclass(frozen=True)
class QoEWeights:
    """Weights of the composite QoE score."""

    stall_penalty_mbps: float = 500.0  # one second of stall ≈ losing 500 Mbps quality
    switch_penalty_mbps: float = 30.0

    def __post_init__(self) -> None:
        if self.stall_penalty_mbps < 0 or self.switch_penalty_mbps < 0:
            raise ValueError("penalties must be non-negative")


@dataclass
class UserSessionStats:
    """Per-user streaming outcome over one session."""

    user_id: int
    frames_played: int = 0
    frames_on_time: int = 0
    stall_time_s: float = 0.0
    stall_count: int = 0
    quality_switches: int = 0
    bitrate_samples_mbps: list[float] = field(default_factory=list)
    fps_samples: list[float] = field(default_factory=list)

    @property
    def mean_bitrate_mbps(self) -> float:
        if not self.bitrate_samples_mbps:
            return 0.0
        return float(np.mean(self.bitrate_samples_mbps))

    @property
    def mean_fps(self) -> float:
        if not self.fps_samples:
            return 0.0
        return float(np.mean(self.fps_samples))

    @property
    def on_time_fraction(self) -> float:
        if self.frames_played == 0:
            return 0.0
        return self.frames_on_time / self.frames_played

    def score(self, weights: QoEWeights, session_length_s: float) -> float:
        """Composite QoE (Mbps-equivalent, higher is better)."""
        if session_length_s <= 0:
            raise ValueError("session_length_s must be positive")
        per_s_stall = self.stall_time_s / session_length_s
        per_s_switch = self.quality_switches / session_length_s
        return (
            self.mean_bitrate_mbps
            - weights.stall_penalty_mbps * per_s_stall
            - weights.switch_penalty_mbps * per_s_switch
        )


@dataclass
class QoEReport:
    """Session-level QoE: all users plus aggregates."""

    users: list[UserSessionStats]
    session_length_s: float
    weights: QoEWeights = field(default_factory=QoEWeights)

    def __post_init__(self) -> None:
        if not self.users:
            raise ValueError("a report needs at least one user")

    @property
    def mean_fps(self) -> float:
        return float(np.mean([u.mean_fps for u in self.users]))

    @property
    def min_fps(self) -> float:
        return float(np.min([u.mean_fps for u in self.users]))

    @property
    def mean_bitrate_mbps(self) -> float:
        return float(np.mean([u.mean_bitrate_mbps for u in self.users]))

    @property
    def total_stall_time_s(self) -> float:
        return float(sum(u.stall_time_s for u in self.users))

    @property
    def total_quality_switches(self) -> int:
        return int(sum(u.quality_switches for u in self.users))

    def mean_score(self) -> float:
        return float(
            np.mean([u.score(self.weights, self.session_length_s) for u in self.users])
        )

    def summary(self) -> dict[str, float]:
        """Flat dict for tabular experiment output."""
        return {
            "users": float(len(self.users)),
            "mean_fps": self.mean_fps,
            "min_fps": self.min_fps,
            "mean_bitrate_mbps": self.mean_bitrate_mbps,
            "stall_time_s": self.total_stall_time_s,
            "quality_switches": float(self.total_quality_switches),
            "qoe_score": self.mean_score(),
        }
