"""Multicast grouping based on viewport similarity (paper §4.2).

Given each user's frame demand and the rates the PHY can offer, pick the
multicast groups that minimize total frame airtime subject to the paper's
admission constraint ``T_m(k) <= 1/F``.  Three policies:

* :func:`no_grouping` — pure unicast (the baseline in Fig. 3e);
* :func:`greedy_similarity_grouping` — the paper's approach: consider user
  pairs in order of viewport similarity, merge while multicast actually
  shortens the frame's airtime and the deadline holds;
* :func:`exhaustive_grouping` — optimal partition by enumeration, feasible
  for the paper's <= 7-user scale; used as the gold standard in ablations.

The multicast rate of a candidate group comes from a caller-supplied
``rate_fn(members) -> Mbps`` so the same grouper works with the calibrated
capacity models (Table 1) and the beam-level channel (Fig. 3e): the rate a
group gets depends on which beam the AP can design for it.
"""

from __future__ import annotations

from dataclasses import dataclass
from itertools import combinations
from typing import Callable, Sequence

import numpy as np

from ..mac.scheduler import FramePlan, UserDemand, plan_frame
from ..obs import metrics as _metrics
from ..obs import trace as _trace
from .qoe import QoEWeights
from .similarity import group_iou  # noqa: F401  (scalar reference, re-exported)

__all__ = [
    "GroupingResult",
    "no_grouping",
    "greedy_similarity_grouping",
    "qoe_aware_grouping",
    "exhaustive_grouping",
]

RateFn = Callable[[tuple[int, ...]], float]

_C_GROUPING = _metrics.counter(
    "core.grouping_decisions", unit="decisions", layer="core",
    help="frame partitions committed by a grouping policy (one per frame "
         "planned, any policy)",
)
_EV_GROUP = _trace.event_type(
    "core.group_decision", layer="core",
    help="a grouping policy committed a partition: how many multicast "
         "groups and how many users share beams this frame",
    fields=("policy", "groups", "grouped_users", "user_ids", "frame"),
)


def _record(result: "GroupingResult", frame: int | None = None) -> "GroupingResult":
    """Count and trace a committed grouping decision, pass it through."""
    _C_GROUPING.inc()
    if _trace._RECORDER is not None:
        _EV_GROUP.emit(
            policy=result.policy,
            groups=len(result.plan.groups),
            grouped_users=len(result.plan.grouped_users),
            user_ids=sorted(result.plan.demands),
            **_trace.correlation(frame=frame),
        )
    return result


@dataclass(frozen=True)
class GroupingResult:
    """A chosen partition plus its delivery plan."""

    plan: FramePlan
    policy: str

    @property
    def groups(self) -> list[tuple[int, ...]]:
        return [members for members, _ in self.plan.groups]

    @property
    def total_time_s(self) -> float:
        return self.plan.total_time_s()

    @property
    def achievable_fps(self) -> float:
        return self.plan.achievable_fps()


def no_grouping(
    demands: Sequence[UserDemand], frame: int | None = None
) -> GroupingResult:
    """Pure unicast baseline.

    ``frame`` is a trace-only correlation field shared by every grouping
    policy; it never changes the partition.
    """
    return _record(
        GroupingResult(plan=plan_frame(list(demands), frame=frame),
                       policy="unicast"),
        frame=frame,
    )


def _visibility_map(demand: UserDemand) -> frozenset:
    return frozenset(demand.cell_bytes)


def _member_rows(
    demand_list: list[UserDemand],
) -> tuple[dict[int, np.ndarray], int]:
    """One boolean membership row per user over the sorted cell universe."""
    universe = sorted({c for d in demand_list for c in d.cell_bytes})
    index = {cell: i for i, cell in enumerate(universe)}
    rows: dict[int, np.ndarray] = {}
    for d in demand_list:
        row = np.zeros(len(universe), dtype=bool)
        if d.cell_bytes:
            row[[index[cell] for cell in d.cell_bytes]] = True
        rows[d.user_id] = row
    return rows, len(universe)


def _group_iou_matrix(
    groups: list[tuple[int, ...]],
    rows: dict[int, np.ndarray],
    num_cells: int,
) -> np.ndarray:
    """IoU of every merged group pair, as a symmetric (G, G) matrix.

    Entry (a, b) equals ``group_iou`` over the member maps of ``a`` and
    ``b`` combined, bit-identically: intersection/union member counts are
    exact integers and the final division matches the scalar
    ``len(inter) / len(union)``.
    """
    inter_rows = np.empty((len(groups), num_cells), dtype=bool)
    union_rows = np.empty((len(groups), num_cells), dtype=bool)
    for gi, g in enumerate(groups):
        stacked = [rows[u] for u in g]
        inter_rows[gi] = np.logical_and.reduce(stacked)
        union_rows[gi] = np.logical_or.reduce(stacked)
    ii = inter_rows.astype(np.int64)
    uu = union_rows.astype(np.int64)
    inter_count = ii @ ii.T
    union_sizes = uu.sum(axis=1)
    union_count = union_sizes[:, None] + union_sizes[None, :] - uu @ uu.T
    return np.where(union_count > 0, inter_count / np.maximum(union_count, 1), 1.0)


def greedy_similarity_grouping(
    demands: Sequence[UserDemand],
    multicast_rate_fn: RateFn,
    target_fps: float = 30.0,
    min_iou: float = 0.05,
    frame: int | None = None,
) -> GroupingResult:
    """Greedy merge of high-similarity users into multicast groups.

    Start with singletons.  Repeatedly take the pair of groups whose merged
    visibility maps have the highest IoU and merge them if doing so strictly
    reduces the plan's total airtime; stop when no merge helps.  Finally
    verify the paper's constraint ``T_m(k) <= 1/F``; if the best plan still
    misses the deadline it is returned anyway (the session simulator then
    reports the sub-30 FPS, exactly like Table 1 does).

    Groups whose pairwise IoU is below ``min_iou`` are never merged —
    multicasting nearly-disjoint viewports only adds beam complexity.
    """
    demand_list = list(demands)
    groups: list[tuple[int, ...]] = [(d.user_id,) for d in demand_list]
    rows, num_cells = _member_rows(demand_list)

    def plan_for(partition: list[tuple[int, ...]]) -> FramePlan:
        multicast_groups = [
            (g, multicast_rate_fn(g)) for g in partition if len(g) > 1
        ]
        return plan_frame(demand_list, groups=multicast_groups)

    best_plan = plan_for(groups)
    improved = True
    while improved and len(groups) > 1:
        improved = False
        iou_matrix = _group_iou_matrix(groups, rows, num_cells)
        candidates = []
        for ia, ib in combinations(range(len(groups)), 2):
            iou = float(iou_matrix[ia, ib])
            if iou >= min_iou:
                candidates.append((iou, groups[ia], groups[ib]))
        # Highest-similarity merges first, with a deterministic tiebreak.
        candidates.sort(key=lambda c: (-c[0], c[1], c[2]))
        for _, ga, gb in candidates:
            merged = tuple(sorted(ga + gb))
            trial = [g for g in groups if g not in (ga, gb)] + [merged]
            trial_plan = plan_for(trial)
            if trial_plan.total_time_s() < best_plan.total_time_s() - 1e-12:
                groups = trial
                best_plan = trial_plan
                improved = True
                break
    return _record(
        GroupingResult(plan=best_plan, policy="greedy-similarity"), frame=frame
    )


def _predicted_qoe(
    plan: FramePlan,
    demand_list: list[UserDemand],
    target_fps: float,
    weights: QoEWeights,
) -> float:
    """Predicted per-user QoE (Mbps-equivalent) of delivering ``plan``.

    Maps the plan's airtime onto the session QoE decomposition of
    :mod:`repro.core.qoe` before any session runs: the sustainable frame
    rate bounds each user's delivered bitrate, and the fraction of the
    target rate the plan misses is charged as predicted stall time at the
    same ``stall_penalty_mbps`` the closed loop uses.  Switches are a
    session-history effect and predict to zero here.
    """
    fps = plan.achievable_fps(cap_fps=target_fps)
    stall_fraction = max(0.0, 1.0 - fps / target_fps)
    score = 0.0
    for d in demand_list:
        bitrate_mbps = d.total_bytes * 8.0 * fps / 1e6
        score += bitrate_mbps - weights.stall_penalty_mbps * stall_fraction
    return score / max(1, len(demand_list))


def qoe_aware_grouping(
    demands: Sequence[UserDemand],
    multicast_rate_fn: RateFn,
    target_fps: float = 30.0,
    min_iou: float = 0.05,
    weights: QoEWeights | None = None,
    frame: int | None = None,
) -> GroupingResult:
    """Merge users when the merge improves *predicted QoE*, not raw airtime.

    Same candidate generation as :func:`greedy_similarity_grouping` (group
    pairs above ``min_iou``, most-similar first) but each candidate merge
    is scored by the QoE delta it predicts via :func:`_predicted_qoe`, in
    the QoE-impact-driven clustering spirit of Perfecto et al.
    (arXiv:1811.07388).  Each round commits the single best
    strictly-improving merge.  The practical difference from the airtime
    grouper: once the plan already sustains ``target_fps`` the frame rate
    is capped, further airtime savings predict zero QoE delta, and merging
    stops — beam complexity is never added for QoE the users cannot see.

    Deterministic under input order: demands are canonicalized by user id
    before any tie-breaking comparison, so shuffled inputs produce
    bit-identical partitions.
    """
    qoe_weights = weights if weights is not None else QoEWeights()
    demand_list = sorted(demands, key=lambda d: d.user_id)
    groups: list[tuple[int, ...]] = [(d.user_id,) for d in demand_list]
    rows, num_cells = _member_rows(demand_list)

    def plan_for(partition: list[tuple[int, ...]]) -> FramePlan:
        multicast_groups = [
            (g, multicast_rate_fn(g)) for g in partition if len(g) > 1
        ]
        return plan_frame(demand_list, groups=multicast_groups)

    best_plan = plan_for(groups)
    best_qoe = _predicted_qoe(best_plan, demand_list, target_fps, qoe_weights)
    improved = True
    while improved and len(groups) > 1:
        improved = False
        iou_matrix = _group_iou_matrix(groups, rows, num_cells)
        candidates = []
        for ia, ib in combinations(range(len(groups)), 2):
            iou = float(iou_matrix[ia, ib])
            if iou >= min_iou:
                candidates.append((iou, groups[ia], groups[ib]))
        # Most-similar candidates first; the strict `>` below means the
        # earliest candidate wins exact QoE ties, deterministically.
        candidates.sort(key=lambda c: (-c[0], c[1], c[2]))
        best_merge: tuple[list[tuple[int, ...]], FramePlan, float] | None = None
        for _, ga, gb in candidates:
            merged = tuple(sorted(ga + gb))
            trial = [g for g in groups if g not in (ga, gb)] + [merged]
            trial_plan = plan_for(trial)
            trial_qoe = _predicted_qoe(
                trial_plan, demand_list, target_fps, qoe_weights
            )
            if trial_qoe > best_qoe + 1e-12 and (
                best_merge is None or trial_qoe > best_merge[2]
            ):
                best_merge = (trial, trial_plan, trial_qoe)
        if best_merge is not None:
            groups, best_plan, best_qoe = best_merge
            improved = True
    return _record(
        GroupingResult(plan=best_plan, policy="qoe-aware"), frame=frame
    )


def _partitions(items: list[int]):
    """All set partitions of ``items`` (Bell-number enumeration)."""
    if not items:
        yield []
        return
    first, rest = items[0], items[1:]
    for partition in _partitions(rest):
        # first joins an existing block…
        for i in range(len(partition)):
            yield partition[:i] + [[first] + partition[i]] + partition[i + 1 :]
        # …or starts its own.
        yield [[first]] + partition


def exhaustive_grouping(
    demands: Sequence[UserDemand],
    multicast_rate_fn: RateFn,
    target_fps: float = 30.0,
    max_users: int = 9,
    frame: int | None = None,
) -> GroupingResult:
    """Optimal partition by full enumeration (small N only).

    Bell(9) = 21147 partitions is the practical ceiling; beyond that the
    grouper refuses rather than silently taking minutes.
    """
    demand_list = list(demands)
    if len(demand_list) > max_users:
        raise ValueError(
            f"exhaustive grouping limited to {max_users} users "
            f"(got {len(demand_list)}); use greedy_similarity_grouping"
        )
    ids = [d.user_id for d in demand_list]
    best_plan: FramePlan | None = None
    for partition in _partitions(ids):
        multicast_groups = [
            (tuple(sorted(block)), multicast_rate_fn(tuple(sorted(block))))
            for block in partition
            if len(block) > 1
        ]
        plan = plan_frame(demand_list, groups=multicast_groups)
        if best_plan is None or plan.total_time_s() < best_plan.total_time_s():
            best_plan = plan
    if best_plan is None:  # unreachable: _partitions always yields once
        raise RuntimeError("exhaustive grouping evaluated no partition")
    return _record(
        GroupingResult(plan=best_plan, policy="exhaustive"), frame=frame
    )
