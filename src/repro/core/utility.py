"""Rate-utility optimal quality allocation (Park, Chou & Hwang style).

Replaces the greedy budget fill of :class:`~repro.core.adaptation
.CrossLayerPolicy` with an explicit utility objective, following the
rate-utility optimized volumetric streaming formulation of Park, Chou &
Hwang (arXiv:1804.09864): each visible cell contributes a concave
(logarithmic) utility of the rate spent on it, weighted by how much of it
the user actually sees and how far away it is.  With the repo's uniform
per-user quality ladder the per-cell sum collapses to a per-user form

    U_u(q) = w_u * log1p(r_u(q) / r0),
    w_u    = visible_fraction^a / (1 + distance / d0),

where ``r_u(q)`` comes from the per-quality effective-rate table (the
ladder bitrates of :data:`~repro.pointcloud.QUALITIES` scaled by the
visibility culling the rate providers in :mod:`repro.core.rates` carry).

Two allocators maximize summed utility subject to the airtime/throughput
budget the MAC reports:

* :func:`allocate_qualities_dp` — exact dynamic program over the small
  discretized quality lattice (a Pareto-frontier sweep over (rate,
  utility) states; never exceeds the budget, provably weakly dominates
  any other feasible assignment on summed utility);
* :func:`allocate_qualities_greedy` — the Lagrangian fallback for venue
  scale: marginal-utility-per-Mbps upgrades from an all-low base, O(n log n).

:class:`UtilityOptimalPolicy` wraps the same utility model in the
per-user :class:`~repro.core.adaptation.AdaptationPolicy` protocol so the
closed-loop session can run it in place of ``CrossLayerPolicy``.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

from ..pointcloud import QUALITY_ORDER
from .adaptation import (
    AdaptationDecision,
    AdaptationInputs,
    _effective_bitrate,
    quality_below,
)
from .bandwidth import BufferAwareEstimator, CrossLayerBandwidthPredictor

__all__ = [
    "UtilityModel",
    "UserAllocationInput",
    "AllocationResult",
    "quality_rate_table",
    "assignment_utility",
    "allocate_qualities",
    "allocate_qualities_dp",
    "allocate_qualities_greedy",
    "UtilityOptimalPolicy",
]


@dataclass(frozen=True)
class UtilityModel:
    """Distance/visibility-weighted log-rate utility.

    ``rate_floor_mbps`` is the knee of the log curve (rates far below it
    buy utility almost linearly, rates far above it saturate);
    ``visibility_exponent`` sharpens or softens how much a culled viewport
    discounts utility; ``distance_scale_m`` sets how fast utility decays
    with viewing distance (content a user stands next to is worth more
    than the same bits across the room).
    """

    rate_floor_mbps: float = 25.0
    visibility_exponent: float = 1.0
    distance_scale_m: float = 4.0

    def __post_init__(self) -> None:
        if self.rate_floor_mbps <= 0:
            raise ValueError("rate_floor_mbps must be positive")
        if self.visibility_exponent <= 0:
            raise ValueError("visibility_exponent must be positive")
        if self.distance_scale_m <= 0:
            raise ValueError("distance_scale_m must be positive")

    def weight(self, visible_fraction: float, distance_m: float = 0.0) -> float:
        """The user's utility weight (visibility and distance discounts)."""
        vis = max(0.05, min(1.0, visible_fraction)) ** self.visibility_exponent
        return vis / (1.0 + max(0.0, distance_m) / self.distance_scale_m)

    def cell_utility(self, rate_mbps: float, weight: float = 1.0) -> float:
        """Utility one cell (or cell aggregate) earns from ``rate_mbps``."""
        return weight * math.log1p(max(0.0, rate_mbps) / self.rate_floor_mbps)

    def user_utility(
        self,
        rate_mbps: float,
        visible_fraction: float = 1.0,
        distance_m: float = 0.0,
    ) -> float:
        """Summed per-cell utility of streaming a user at ``rate_mbps``."""
        return self.cell_utility(
            rate_mbps, self.weight(visible_fraction, distance_m)
        )


@dataclass(frozen=True)
class UserAllocationInput:
    """One user as the allocator sees them."""

    user_id: int
    visible_fraction: float = 1.0
    distance_m: float = 0.0


@dataclass(frozen=True)
class AllocationResult:
    """A quality per user, plus the budget accounting behind it.

    ``feasible`` is False when even the all-low assignment exceeds the
    budget; the allocator then returns the all-low floor (a session must
    still stream *something*) and lets the caller decide what to shed.
    """

    qualities: tuple[tuple[int, str], ...]  # (user_id, quality), sorted
    total_rate_mbps: float
    total_utility: float
    budget_mbps: float
    feasible: bool
    method: str  # "dp" | "greedy"

    def quality_for(self, user_id: int) -> str:
        """The quality assigned to ``user_id``."""
        for uid, quality in self.qualities:
            if uid == user_id:
                return quality
        raise KeyError(f"no allocation for user {user_id}")

    def as_dict(self) -> dict[int, str]:
        """The assignment as a plain ``{user_id: quality}`` dict."""
        return dict(self.qualities)


def quality_rate_table(visible_fraction: float) -> tuple[tuple[str, float], ...]:
    """Per-quality effective rates (Mbps) for one user, ladder order.

    The same visibility-scaled bitrates the adaptation policies budget
    with: ladder bitrate times the visible fraction (floored at 5% so an
    empty viewport still costs headers and keep-alive cells).
    """
    return tuple(
        (name, _effective_bitrate(name, visible_fraction))
        for name in QUALITY_ORDER
    )


def _user_options(
    users: list[UserAllocationInput], model: UtilityModel
) -> list[list[tuple[str, float, float]]]:
    """Per user (sorted by id): ``(quality, rate_mbps, utility)`` choices."""
    options = []
    for user in users:
        weight = model.weight(user.visible_fraction, user.distance_m)
        options.append(
            [
                (name, rate, model.cell_utility(rate, weight))
                for name, rate in quality_rate_table(user.visible_fraction)
            ]
        )
    return options


def _sorted_users(
    users: list[UserAllocationInput] | tuple[UserAllocationInput, ...],
) -> list[UserAllocationInput]:
    ordered = sorted(users, key=lambda u: u.user_id)
    if not ordered:
        raise ValueError("need at least one user to allocate")
    ids = [u.user_id for u in ordered]
    if len(set(ids)) != len(ids):
        raise ValueError(f"duplicate user ids in allocation input: {ids}")
    return ordered


def assignment_utility(
    users: list[UserAllocationInput] | tuple[UserAllocationInput, ...],
    qualities: dict[int, str],
    model: UtilityModel | None = None,
) -> tuple[float, float]:
    """``(total_utility, total_rate_mbps)`` of an arbitrary assignment.

    Scores any per-user quality choice — e.g. the greedy budget fill a
    heuristic policy would make — with the *same* utility model the
    allocators maximize, so assignments are comparable apples-to-apples.
    """
    model = model if model is not None else UtilityModel()
    total_utility = 0.0
    total_rate = 0.0
    for user in _sorted_users(list(users)):
        quality = qualities[user.user_id]
        rate = _effective_bitrate(quality, user.visible_fraction)
        total_rate += rate
        total_utility += model.user_utility(
            rate, user.visible_fraction, user.distance_m
        )
    return total_utility, total_rate


def allocate_qualities_dp(
    users: list[UserAllocationInput] | tuple[UserAllocationInput, ...],
    budget_mbps: float,
    model: UtilityModel | None = None,
) -> AllocationResult:
    """Exact DP over the quality lattice: max summed utility within budget.

    Sweeps users in id order, carrying the Pareto frontier of
    ``(total_rate, total_utility)`` states (dominated and over-budget
    states are pruned each step, so the frontier stays small for the
    3-level ladder).  The returned assignment never exceeds
    ``budget_mbps`` and weakly dominates every other feasible assignment
    on summed utility — including the equal-share greedy fill of
    ``CrossLayerPolicy``; if even all-low busts the budget the all-low
    floor is returned with ``feasible=False``.
    """
    model = model if model is not None else UtilityModel()
    ordered = _sorted_users(list(users))
    options = _user_options(ordered, model)

    base_rate = sum(opts[0][1] for opts in options)
    if base_rate > budget_mbps:
        qualities = tuple((u.user_id, QUALITY_ORDER[0]) for u in ordered)
        utility, rate = assignment_utility(ordered, dict(qualities), model)
        return AllocationResult(
            qualities=qualities,
            total_rate_mbps=rate,
            total_utility=utility,
            budget_mbps=budget_mbps,
            feasible=False,
            method="dp",
        )

    # Frontier states: (total_rate, total_utility, choices-so-far).
    frontier: list[tuple[float, float, tuple[str, ...]]] = [(0.0, 0.0, ())]
    for opts in options:
        grown = [
            (rate_sum + rate, utility_sum + utility, choices + (name,))
            for rate_sum, utility_sum, choices in frontier
            for name, rate, utility in opts
            if rate_sum + rate <= budget_mbps
        ]
        # Prune to the Pareto frontier: sorted by (rate, -utility, choices)
        # a state survives only if it strictly improves utility over every
        # cheaper state.  The choices tuple in the key keeps equal-cost,
        # equal-utility ties deterministic (lower lattice positions win).
        grown.sort(key=lambda s: (s[0], -s[1], s[2]))
        frontier = []
        best_utility = -math.inf
        for state in grown:
            if state[1] > best_utility:
                frontier.append(state)
                best_utility = state[1]

    best = max(frontier, key=lambda s: (s[1], -s[0]))
    qualities = tuple(
        (user.user_id, name) for user, name in zip(ordered, best[2])
    )
    return AllocationResult(
        qualities=qualities,
        total_rate_mbps=best[0],
        total_utility=best[1],
        budget_mbps=budget_mbps,
        feasible=True,
        method="dp",
    )


def allocate_qualities_greedy(
    users: list[UserAllocationInput] | tuple[UserAllocationInput, ...],
    budget_mbps: float,
    model: UtilityModel | None = None,
) -> AllocationResult:
    """Greedy Lagrangian allocation: marginal utility per Mbps, descending.

    Starts everyone at the ladder floor and applies single-step upgrades
    in order of marginal utility per marginal Mbps while the budget
    holds — the water-filling the Lagrangian of the concave objective
    prescribes.  Linear-ish time: the venue-scale fallback when the exact
    DP would be overkill.
    """
    model = model if model is not None else UtilityModel()
    ordered = _sorted_users(list(users))
    options = _user_options(ordered, model)

    level = {u.user_id: 0 for u in ordered}
    spent = sum(opts[0][1] for opts in options)
    if spent > budget_mbps:
        qualities = tuple((u.user_id, QUALITY_ORDER[0]) for u in ordered)
        utility, rate = assignment_utility(ordered, dict(qualities), model)
        return AllocationResult(
            qualities=qualities,
            total_rate_mbps=rate,
            total_utility=utility,
            budget_mbps=budget_mbps,
            feasible=False,
            method="greedy",
        )

    # Every single-step upgrade, best bang-per-Mbps first.  Concavity of
    # the log utility makes each user's step ratios non-increasing up the
    # ladder, so one sorted pass respects the ladder order; the explicit
    # from-level guard below keeps it correct even under exact ties.
    steps = []
    for user, opts in zip(ordered, options):
        for idx in range(1, len(opts)):
            delta_rate = opts[idx][1] - opts[idx - 1][1]
            delta_utility = opts[idx][2] - opts[idx - 1][2]
            ratio = (
                math.inf if delta_rate <= 1e-12 else delta_utility / delta_rate
            )
            steps.append((-ratio, user.user_id, idx, delta_rate))
    steps.sort()
    for _, user_id, idx, delta_rate in steps:
        if level[user_id] != idx - 1:
            continue  # a cheaper rung for this user was skipped: stop here
        if spent + delta_rate > budget_mbps:
            continue
        level[user_id] = idx
        spent += delta_rate

    qualities = tuple(
        (u.user_id, QUALITY_ORDER[level[u.user_id]]) for u in ordered
    )
    utility, rate = assignment_utility(ordered, dict(qualities), model)
    return AllocationResult(
        qualities=qualities,
        total_rate_mbps=rate,
        total_utility=utility,
        budget_mbps=budget_mbps,
        feasible=True,
        method="greedy",
    )


def allocate_qualities(
    users: list[UserAllocationInput] | tuple[UserAllocationInput, ...],
    budget_mbps: float,
    model: UtilityModel | None = None,
    dp_max_users: int = 12,
) -> AllocationResult:
    """Allocate qualities: exact DP at session scale, greedy at venue scale."""
    if len(list(users)) <= dp_max_users:
        return allocate_qualities_dp(users, budget_mbps, model)
    return allocate_qualities_greedy(users, budget_mbps, model)


@dataclass
class UtilityOptimalPolicy:
    """Per-user adaptation on the rate-utility objective.

    Budgets exactly like :class:`~repro.core.adaptation.CrossLayerPolicy`
    (cross-layer bandwidth prediction, buffer guard, ARQ/FEC airtime
    shrink) but picks the quality maximizing ``utility - price * rate``
    instead of the highest quality that fits: ``airtime_price_per_mbps``
    is the Lagrangian shadow price of the shared medium, inflated by the
    observed retransmission overhead, so marginal upgrades that buy
    little utility (low visibility, saturated log) are declined even when
    they nominally fit the budget.  Blockage prefetch, loss backoff and
    regroup hints match ``CrossLayerPolicy`` so the comparison isolates
    the quality objective.
    """

    policy_name = "utility-optimal"

    model: UtilityModel = field(default_factory=UtilityModel)
    safety: float = 0.9
    airtime_price_per_mbps: float = 0.002
    prefetch_on_blockage_frames: int = 15
    loss_backoff_threshold: float = 0.05
    buffer_guard: BufferAwareEstimator = field(default_factory=BufferAwareEstimator)
    predictors: dict[int, CrossLayerBandwidthPredictor] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if not 0.0 < self.safety <= 1.0:
            raise ValueError("safety must be in (0, 1]")
        if self.airtime_price_per_mbps < 0:
            raise ValueError("airtime_price_per_mbps must be non-negative")
        if self.prefetch_on_blockage_frames < 0:
            raise ValueError("prefetch_on_blockage_frames must be non-negative")
        if not 0.0 <= self.loss_backoff_threshold <= 1.0:
            raise ValueError("loss_backoff_threshold must be in [0, 1]")

    def decide(self, inputs: AdaptationInputs) -> AdaptationDecision:
        """Pick the utility-maximizing quality under the predicted budget."""
        predictor = self.predictors.setdefault(
            inputs.user_id, CrossLayerBandwidthPredictor()
        )
        if inputs.observed_throughput_mbps > 0:
            predictor.observe_throughput(inputs.observed_throughput_mbps)
        predicted = predictor.predict_mbps(
            rss_dbm=inputs.rss_dbm, blockage_predicted=inputs.blockage_predicted
        )
        budget = (
            self.buffer_guard.estimate_mbps(predicted, inputs.buffer_level_s)
            * self.safety
        )
        if inputs.retx_overhead > 0:
            budget /= 1.0 + inputs.retx_overhead

        price = self.airtime_price_per_mbps * (1.0 + inputs.retx_overhead)
        weight = self.model.weight(inputs.visible_fraction)
        quality = QUALITY_ORDER[0]
        best_score = -math.inf
        for name, rate in quality_rate_table(inputs.visible_fraction):
            if rate > budget:
                continue
            score = self.model.cell_utility(rate, weight) - price * rate
            if score > best_score:
                quality = name
                best_score = score
        if inputs.residual_loss_rate > self.loss_backoff_threshold:
            quality = quality_below(quality)
        prefetch = (
            self.prefetch_on_blockage_frames if inputs.blockage_predicted else 0
        )
        return AdaptationDecision(
            quality=quality,
            prefetch_extra_frames=prefetch,
            request_regroup=inputs.blockage_predicted,
        )
