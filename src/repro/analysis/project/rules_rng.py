"""R5xx — RNG provenance rules.

Every random stream in the repo must descend from an explicit seed carried
by a spec, parameter, or venue/config attribute.  These rules catch the
three ways that contract breaks across module boundaries:

- **R501** — an RNG constructor seeded from *ambient* state: an entropy /
  clock / process read in the seed expression, a mutable module global, or
  a bare ``SeedSequence()`` (which draws OS entropy);
- **R502** — legacy global-stream sampling (``np.random.rand`` /
  ``random.random``) in *worker-reachable* code, where each process owns
  an independent copy of the hidden stream and serial-vs-sharded replay
  silently diverges;
- **R503** — an RNG object escaping into a module-level global (bound at
  module scope or written through ``global``), i.e. one hidden stream
  shared by every caller in the process but duplicated across workers.
"""

from __future__ import annotations

import ast

from .context import ProjectContext, format_chain
from .model import RNG_CONSTRUCTORS, FunctionInfo, ModuleInfo

__all__ = ["run_rng_rules"]

# Seed expressions must not read these: different value per run/process.
_AMBIENT_CALL_PREFIXES = (
    "time.",
    "os.",
    "datetime.",
    "secrets.",
    "uuid.",
    "socket.",
    "platform.",
    "random.",  # seeding one stream from another hidden global stream
)

# numpy.random attributes that are *not* global-stream sampling.
_NP_RANDOM_OK = frozenset(
    {
        "numpy.random.default_rng",
        "numpy.random.Generator",
        "numpy.random.RandomState",
        "numpy.random.SeedSequence",
        "numpy.random.BitGenerator",
        "numpy.random.PCG64",
        "numpy.random.Philox",
    }
)

# Constructors whose zero-argument form is already flagged per-file (D102);
# the project tier only adds the ambient-derivation analysis for them.
_EMPTY_OK = frozenset(
    {"numpy.random.default_rng", "numpy.random.RandomState", "random.Random"}
)


def _seed_exprs(node: ast.Call) -> list[ast.expr]:
    return [*node.args, *[kw.value for kw in node.keywords]]


def _ambient_source(
    ctx: ProjectContext, module: ModuleInfo, expr: ast.expr
) -> tuple[ast.AST, str] | None:
    """The first ambient ingredient of a seed expression, if any."""
    for sub in ast.walk(expr):
        if isinstance(sub, ast.Call):
            resolved = module.resolve_call_name(sub.func)
            if resolved is None:
                continue
            if resolved in RNG_CONSTRUCTORS:
                continue  # nested SeedSequence([...]) etc. — checked itself
            if resolved.startswith(_AMBIENT_CALL_PREFIXES) or resolved in (
                "id",
                "hash",
                "input",
            ):
                return sub, f"call to `{resolved}`"
        elif isinstance(sub, ast.Name) and isinstance(sub.ctx, ast.Load):
            if sub.id in module.aliases:
                continue  # imported module/function name, not data
            symbol = ctx.model.resolve(module, sub.id)
            if symbol is not None and symbol.kind == "global":
                info = ctx.model.global_by_qualname(symbol.qualname)
                if info is not None and info.kind in ("container", "rng", "other"):
                    return sub, (
                        f"module global `{info.qualname}` "
                        f"(kind: {info.kind})"
                    )
    return None


def _check_constructor_call(
    ctx: ProjectContext, module: ModuleInfo, node: ast.Call
) -> None:
    resolved = module.resolve_call_name(node.func)
    if resolved not in RNG_CONSTRUCTORS:
        return
    exprs = _seed_exprs(node)
    if not exprs:
        if resolved == "numpy.random.SeedSequence":
            ctx.add(
                module,
                node,
                "R501",
                "`numpy.random.SeedSequence()` without entropy draws from "
                "the OS; derive it from the spec/venue seed instead",
            )
        # Zero-arg default_rng()/Random() is the per-file D102 finding.
        return
    for expr in exprs:
        hit = _ambient_source(ctx, module, expr)
        if hit is not None:
            where, what = hit
            ctx.add(
                module,
                where,
                "R501",
                f"`{resolved}` is seeded from ambient state ({what}); "
                "RNG streams must derive from an explicit spec/seed "
                "parameter so every worker reproduces them",
            )
            return


def _function_bodies(
    module: ModuleInfo,
) -> list[tuple[FunctionInfo | None, list[ast.stmt]]]:
    """Module scope plus every function body, each walked exactly once."""
    bodies: list[tuple[FunctionInfo | None, list[ast.stmt]]] = [
        (None, module.tree.body)
    ]
    for key in sorted(module.functions):
        bodies.append((module.functions[key], module.functions[key].node.body))
    return bodies


def _walk_own(body: list[ast.stmt]):
    """Walk statements without descending into nested def/class bodies."""
    stack: list[ast.AST] = list(body)
    while stack:
        node = stack.pop(0)
        yield node
        for child in ast.iter_child_nodes(node):
            if isinstance(
                child,
                (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef),
            ):
                continue
            stack.append(child)


def run_rng_rules(ctx: ProjectContext) -> None:
    """Emit R501/R502/R503 findings into ``ctx`` (see module docstring)."""
    for module in ctx.model.sorted_modules():
        for func, body in _function_bodies(module):
            qualname = module.scope_node if func is None else func.qualname
            worker_chain = ctx.worker_chains.get(qualname)
            for node in _walk_own(body):
                if isinstance(node, ast.Call):
                    _check_constructor_call(ctx, module, node)
                    if worker_chain is not None:
                        _check_global_stream(ctx, module, node, worker_chain)
                elif isinstance(node, ast.Global) and func is not None:
                    _check_rng_escape_global(ctx, module, func, node)
        _check_module_scope_rng(ctx, module)


def _check_global_stream(
    ctx: ProjectContext,
    module: ModuleInfo,
    node: ast.Call,
    chain: tuple[str, ...],
) -> None:
    resolved = module.resolve_call_name(node.func)
    if resolved is None:
        return
    legacy = (
        resolved.startswith("numpy.random.") and resolved not in _NP_RANDOM_OK
    ) or (
        resolved.startswith("random.")
        and resolved not in ("random.Random",)
    )
    if legacy:
        ctx.add(
            module,
            node,
            "R502",
            f"`{resolved}` samples the process-global stream inside "
            f"worker-reachable code ({format_chain(chain)}); each worker "
            "owns an independent hidden stream, so sharded replay "
            "diverges — thread a seeded Generator instead",
        )


def _check_rng_escape_global(
    ctx: ProjectContext,
    module: ModuleInfo,
    func: FunctionInfo,
    node: ast.Global,
) -> None:
    """``global X`` + ``X = default_rng(...)`` inside the same function."""
    declared = set(node.names)
    for stmt in _walk_own(func.node.body):
        if not isinstance(stmt, ast.Assign):
            continue
        if not isinstance(stmt.value, ast.Call):
            continue
        resolved = module.resolve_call_name(stmt.value.func)
        if resolved not in RNG_CONSTRUCTORS:
            continue
        for target in stmt.targets:
            if isinstance(target, ast.Name) and target.id in declared:
                ctx.add(
                    module,
                    stmt,
                    "R503",
                    f"`{func.qualname}` rebinds module global "
                    f"`{module.name}.{target.id}` to an RNG; a "
                    "module-held stream is shared by every caller in the "
                    "process but duplicated across workers — return the "
                    "generator or thread it explicitly",
                )


def _check_module_scope_rng(ctx: ProjectContext, module: ModuleInfo) -> None:
    for name in sorted(module.globals):
        info = module.globals[name]
        if info.kind != "rng":
            continue
        node = ast.Name(id=name)
        node.lineno, node.col_offset = info.lineno, info.col - 1
        ctx.add(
            module,
            node,
            "R503",
            f"module-level RNG `{info.qualname}`: one hidden stream "
            "shared by every caller and silently re-created per worker "
            "process; construct generators from the spec/seed at the "
            "call site instead",
        )
