"""P7xx — cache-purity rules for the spec-keyed result cache.

An experiment's ``run_one`` result is cached on disk keyed by the sha256
of its spec (``repro.runner.cache``): the contract is that the result is a
*pure function of the spec*.  Any ambient read inside the ``run_one`` /
shard-engine call tree poisons that cache — the stored result encodes
state (environment, clock, process id, working directory) that the key
does not, so a cache hit can silently disagree with a fresh run.

- **P701** — environment reads (``os.environ`` / ``os.getenv``);
- **P702** — clock reads (``time.time`` / ``time.perf_counter`` /
  ``datetime.now`` …): even "harmless" elapsed-time measurement is
  flagged inside the cached tree, because a measured value that reaches
  the result dict is unreproducible by construction (measure in the
  executor, outside ``run_one``, as ``RunReport.elapsed_s`` does);
- **P703** — process / host identity reads (``os.getpid``, ``os.getcwd``,
  ``Path.cwd``, ``platform.*``, ``socket.gethostname``, ``tempfile.*``).
"""

from __future__ import annotations

import ast

from ..visitor import dotted_name
from .context import ProjectContext, format_chain
from .model import ModuleInfo

__all__ = ["run_purity_rules"]

_CLOCK_CALLS = frozenset(
    {
        "time.time",
        "time.time_ns",
        "time.monotonic",
        "time.monotonic_ns",
        "time.perf_counter",
        "time.perf_counter_ns",
        "time.process_time",
        "time.process_time_ns",
        "datetime.datetime.now",
        "datetime.datetime.utcnow",
        "datetime.datetime.today",
        "datetime.date.today",
    }
)

_IDENTITY_CALLS = frozenset(
    {
        "os.getpid",
        "os.getppid",
        "os.getcwd",
        "os.getlogin",
        "os.uname",
        "pathlib.Path.cwd",
        "platform.node",
        "platform.platform",
        "platform.uname",
        "socket.gethostname",
        "socket.getfqdn",
        "tempfile.gettempdir",
        "tempfile.mkdtemp",
        "tempfile.mkstemp",
        "getpass.getuser",
    }
)


def _resolved(module: ModuleInfo, expr: ast.expr) -> str | None:
    return module.resolve_call_name(expr)


def run_purity_rules(ctx: ProjectContext) -> None:
    """Emit P701/P702/P703 findings for the cached call tree into ``ctx``."""
    for module, func in ctx.cache_functions():
        chain = ctx.cache_chains[func.qualname]
        via = format_chain(chain)
        for node in ast.walk(func.node):
            if isinstance(node, ast.Call):
                resolved = _resolved(module, node.func)
                if resolved is None:
                    continue
                if resolved == "os.getenv" or resolved.startswith(
                    "os.environ"
                ):
                    ctx.add(
                        module,
                        node,
                        "P701",
                        f"environment read `{resolved}` inside the cached "
                        f"run_one call tree ({via}); the spec key does not "
                        "cover the environment, so cached results go stale "
                        "silently — put the value in the spec instead",
                    )
                elif resolved in _CLOCK_CALLS:
                    ctx.add(
                        module,
                        node,
                        "P702",
                        f"clock read `{resolved}` inside the cached run_one "
                        f"call tree ({via}); results must be a pure "
                        "function of the spec — measure timing in the "
                        "executor (RunReport.elapsed_s), not in the unit",
                    )
                elif resolved in _IDENTITY_CALLS:
                    ctx.add(
                        module,
                        node,
                        "P703",
                        f"process/host identity read `{resolved}` inside "
                        f"the cached run_one call tree ({via}); identity "
                        "varies per worker and is invisible to the spec "
                        "key — derive names/paths from the spec instead",
                    )
            elif isinstance(node, (ast.Attribute, ast.Subscript)):
                base = node.value if isinstance(node, ast.Subscript) else node
                dotted = dotted_name(base)
                if dotted is None:
                    continue
                head, _, rest = dotted.partition(".")
                resolved_head = module.aliases.get(head, head)
                full = f"{resolved_head}.{rest}" if rest else resolved_head
                if full == "os.environ" and isinstance(
                    node, ast.Subscript
                ):
                    ctx.add(
                        module,
                        node,
                        "P701",
                        f"environment read `os.environ[...]` inside the "
                        f"cached run_one call tree ({via}); the spec key "
                        "does not cover the environment — put the value "
                        "in the spec instead",
                    )
