"""Structural discovery of the project's concurrency entry points.

An *entry point* is a function whose body executes in a context where
hidden shared state or ambient reads break the repo's guarantees:

- ``worker`` — functions handed to a multiprocessing pool / executor
  (``pool.imap_unordered(fn, ...)``, ``executor.submit(fn, ...)``),
  directly or wrapped in ``functools.partial``;
- ``run_one`` — functions registered as an experiment's ``run_one=``
  (their return value is keyed by spec sha256 in the result cache, so
  their whole call tree must be a pure function of the spec);
- ``shard`` — the scenario shard engines, named explicitly because they
  are invoked through the run_one fan-out but are entry points in their
  own right (``repro lint --project`` must keep guarding them even if an
  experiment stops calling them).

Detection is structural (call shapes), not name-based, so the fixture
packages in the test suite — and future subsystems like a live
conferencing worker — are discovered without configuration.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass

from ..visitor import dotted_name
from .model import ModuleInfo, ProjectModel

__all__ = ["EntryPoint", "find_entry_points", "KNOWN_SHARD_ENTRY_POINTS"]

# Pool / executor methods whose first argument runs in another process.
_POOL_METHODS = frozenset(
    {
        "map",
        "map_async",
        "imap",
        "imap_unordered",
        "apply",
        "apply_async",
        "starmap",
        "starmap_async",
        "submit",
    }
)

# Repo-specific shard engines (kept as explicit entries even though the
# venue experiment reaches them through run_one); silently skipped when
# the scanned tree does not define them (fixture packages).
KNOWN_SHARD_ENTRY_POINTS = (
    "repro.scenario.shard.ShardEngine.run",
    "repro.scenario.shard.run_shard",
)


@dataclass(frozen=True, order=True)
class EntryPoint:
    """One discovered entry point: where reachability starts."""

    qualname: str
    kind: str  # "worker" | "run_one" | "shard"
    via: str  # the site that marked it (for the report's meta section)


def _partial_target(node: ast.expr) -> ast.expr | None:
    """``functools.partial(f, ...)`` -> the wrapped function expression."""
    if (
        isinstance(node, ast.Call)
        and node.args
        and dotted_name(node.func) in ("functools.partial", "partial")
    ):
        return node.args[0]
    return None


class _EntryScanner(ast.NodeVisitor):
    """Finds pool submissions and Experiment(run_one=...) registrations."""

    def __init__(self, model: ProjectModel, module: ModuleInfo) -> None:
        self.model = model
        self.module = module
        self.found: list[EntryPoint] = []
        # Local partial wrappers: name -> wrapped function expression, so
        # ``worker = partial(f, ...); pool.imap(worker, ...)`` resolves.
        self.partials: dict[str, ast.expr] = {}

    def _resolve_function(self, expr: ast.expr) -> str | None:
        target = _partial_target(expr)
        if target is not None:
            expr = target
        if isinstance(expr, ast.Name) and expr.id in self.partials:
            expr = self.partials[expr.id]
            inner = _partial_target(expr)
            if inner is not None:
                expr = inner
        dotted = dotted_name(expr)
        if dotted is None:
            return None
        resolved = self.model.resolve(self.module, dotted)
        if resolved is not None and resolved.kind == "function":
            return resolved.qualname
        # A bare name may be a function nested in the current scope; fall
        # back to any project function with a matching suffix inside this
        # module (nested defs are module.func.<locals>.name).
        if isinstance(expr, ast.Name):
            suffix = f".<locals>.{expr.id}"
            matches = sorted(
                info.qualname
                for info in self.module.functions.values()
                if info.qualname.endswith(suffix)
            )
            if len(matches) == 1:
                return matches[0]
        return None

    def visit_Assign(self, node: ast.Assign) -> None:
        if _partial_target(node.value) is not None:
            for target in node.targets:
                if isinstance(target, ast.Name):
                    self.partials[target.id] = node.value
        self.generic_visit(node)

    def visit_Call(self, node: ast.Call) -> None:
        func = node.func
        # pool.imap_unordered(fn, ...) and friends.
        if (
            isinstance(func, ast.Attribute)
            and func.attr in _POOL_METHODS
            and node.args
        ):
            qualname = self._resolve_function(node.args[0])
            if qualname is not None:
                self.found.append(
                    EntryPoint(
                        qualname=qualname,
                        kind="worker",
                        via=f"{self.module.name}:{node.lineno}",
                    )
                )
        # Experiment(..., run_one=fn, ...): the spec-keyed cache boundary.
        callee = dotted_name(func)
        if callee is not None and callee.split(".")[-1] == "Experiment":
            for kw in node.keywords:
                if kw.arg == "run_one":
                    qualname = self._resolve_function(kw.value)
                    if qualname is not None:
                        self.found.append(
                            EntryPoint(
                                qualname=qualname,
                                kind="run_one",
                                via=f"{self.module.name}:{node.lineno}",
                            )
                        )
        self.generic_visit(node)


def find_entry_points(model: ProjectModel) -> list[EntryPoint]:
    """Every entry point in the model, sorted for deterministic reports."""
    found: list[EntryPoint] = []
    for module in model.sorted_modules():
        scanner = _EntryScanner(model, module)
        scanner.visit(module.tree)
        found.extend(scanner.found)
    for qualname in KNOWN_SHARD_ENTRY_POINTS:
        if model.function_by_qualname(qualname) is not None:
            found.append(
                EntryPoint(qualname=qualname, kind="shard", via="builtin")
            )
    return sorted(set(found))
