"""Whole-program analysis tier layered on the per-file lint engine.

The per-file rules (D/U/S/H families) see one module at a time; the rules
that guard the repo's headline guarantees — bit-identical serial-vs-sharded
replay, sha256 spec-keyed result caching, spec-ordered multiprocessing
merges — are *whole-program* invariants.  This package parses all of a
package tree once into a :class:`~repro.analysis.project.model.ProjectModel`
(per-module symbol tables + an import graph), resolves a conservative call
graph over it, computes reachability from the known concurrency entry
points (the multiprocessing worker function, the scenario shard engines,
every experiment's ``run_one``), and runs three interprocedural rule
families on top:

- **R5xx — RNG provenance**: ambient-seeded RNG construction, legacy
  global-stream sampling in worker-reachable code, RNG objects escaping
  into module globals.
- **G6xx — shared-state safety**: worker-reachable mutation of
  module-level mutable containers (import-time-only registration is
  certified safe), ``global`` rebinding in worker-reachable code.
- **P7xx — cache purity**: ambient reads (environment, clocks, process /
  host identity) inside the ``run_one`` call trees whose results feed the
  spec-keyed cache.

Entry: :func:`~repro.analysis.project.report.analyze_project`.
"""

from __future__ import annotations

from .callgraph import CallGraph, build_call_graph
from .entrypoints import EntryPoint, find_entry_points
from .model import ProjectModel, build_project
from .report import PROJECT_RULE_CATALOG, ProjectReport, analyze_project

__all__ = [
    "CallGraph",
    "EntryPoint",
    "PROJECT_RULE_CATALOG",
    "ProjectModel",
    "ProjectReport",
    "analyze_project",
    "build_call_graph",
    "build_project",
    "find_entry_points",
]
