"""Conservative call-graph construction and reachability over the model.

Nodes are function qualnames plus one ``module.<module>`` pseudo-node per
module (its import-time body).  Edges are added for:

- direct calls to names resolvable through the module symbol tables and
  import aliases (including relative imports and package re-exports);
- constructor calls (``Cls(...)`` links to ``Cls.__init__``);
- method calls on ``self``, on locals whose type is inferred from a
  constructor assignment or parameter annotation, and on ``self.attr``
  receivers typed from ``__init__`` assignments;
- *references* to project functions in non-call position (callbacks:
  ``pool.imap_unordered(worker_fn, ...)``, ``functools.partial(f, ...)``,
  ``Experiment(run_one=run_one)``) — a referenced function is assumed
  callable by the receiver;
- as a last resort, attribute calls whose method name is defined by
  exactly **one** project class (unique-name linking); ambiguous names are
  dropped rather than over-approximated into everything.

Function-scope ``import`` statements do **not** splice the imported
module's body into the caller: Python imports are once-per-process and
idempotent, so module-scope registration stays *import-time* even when the
import is triggered lazily from a worker (that is exactly the certification
G6xx relies on).

Everything iterates in sorted order, so edge sets and BFS traversal orders
— and therefore the reachability chains quoted in findings — are
deterministic regardless of file discovery order.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field

from ..visitor import dotted_name
from .model import ClassInfo, FunctionInfo, ModuleInfo, ProjectModel

__all__ = ["CallGraph", "build_call_graph", "LocalTypes"]


@dataclass
class CallGraph:
    """Edges between function/module nodes, plus reachability queries."""

    model: ProjectModel
    edges: dict[str, set[str]] = field(default_factory=dict)
    # method name -> sorted qualnames of every project method with that name
    method_index: dict[str, list[str]] = field(default_factory=dict)

    def add_edge(self, src: str, dst: str) -> None:
        self.edges.setdefault(src, set()).add(dst)

    def callees(self, src: str) -> list[str]:
        return sorted(self.edges.get(src, ()))

    def reachable(self, roots: list[str]) -> dict[str, tuple[str, ...]]:
        """BFS from ``roots``: node -> shortest call chain (root first).

        Deterministic: roots and adjacency are visited in sorted order, so
        ties in chain length always break the same way.
        """
        chains: dict[str, tuple[str, ...]] = {}
        frontier = sorted(set(roots))
        for root in frontier:
            chains[root] = (root,)
        while frontier:
            nxt: list[str] = []
            for node in frontier:
                for callee in self.callees(node):
                    if callee not in chains:
                        chains[callee] = chains[node] + (callee,)
                        nxt.append(callee)
            frontier = sorted(nxt)
        return chains


class LocalTypes:
    """Best-effort local variable -> project class types for one function."""

    def __init__(
        self,
        model: ProjectModel,
        module: ModuleInfo,
        func: FunctionInfo | None,
    ) -> None:
        self.model = model
        self.module = module
        self.types: dict[str, str] = {}  # var name -> class qualname
        if func is None:
            return
        if func.class_name is not None and func.params:
            cls = module.classes.get(func.class_name)
            if cls is not None and func.params[0] in ("self", "cls"):
                self.types[func.params[0]] = cls.qualname
        for arg in (
            *func.node.args.posonlyargs,
            *func.node.args.args,
            *func.node.args.kwonlyargs,
        ):
            if arg.annotation is not None:
                self._note(arg.arg, arg.annotation)
        for node in ast.walk(func.node):
            if isinstance(node, ast.Assign) and isinstance(node.value, ast.Call):
                for target in node.targets:
                    if isinstance(target, ast.Name):
                        self._note(target.id, node.value.func)
            elif isinstance(node, ast.AnnAssign) and isinstance(
                node.target, ast.Name
            ):
                self._note(node.target.id, node.annotation)

    def _note(self, name: str, expr: ast.expr) -> None:
        dotted = dotted_name(expr)
        if dotted is None:
            return
        resolved = self.model.resolve(self.module, dotted)
        if resolved is not None and resolved.kind == "class":
            self.types.setdefault(name, resolved.qualname)

    def class_of(self, name: str) -> ClassInfo | None:
        qualname = self.types.get(name)
        if qualname is None:
            return None
        return self.model.class_by_qualname(qualname)


def _method_lookup(
    model: ProjectModel, cls: ClassInfo | None, name: str
) -> FunctionInfo | None:
    """A method by name on ``cls`` or (project-resolvable) base classes."""
    seen = 0
    while cls is not None and seen < 8:
        if name in cls.methods:
            return cls.methods[name]
        nxt: ClassInfo | None = None
        owner = model.modules.get(cls.module)
        if owner is not None:
            for base in cls.bases:
                resolved = model.resolve(owner, base)
                if resolved is not None and resolved.kind == "class":
                    nxt = model.class_by_qualname(resolved.qualname)
                    if nxt is not None and name in nxt.methods:
                        return nxt.methods[name]
        cls = nxt
        seen += 1
    return None


class _EdgeCollector(ast.NodeVisitor):
    """Collects call/reference edges for one function (or module) body."""

    def __init__(
        self,
        graph: CallGraph,
        module: ModuleInfo,
        src: str,
        func: FunctionInfo | None,
    ) -> None:
        self.graph = graph
        self.model = graph.model
        self.module = module
        self.src = src
        self.func = func
        self.locals = LocalTypes(self.model, module, func)
        # Nested function defs callable from this scope, by bare name.
        self.nested: dict[str, str] = {}
        if func is not None:
            for info in module.functions.values():
                if info.parent == func.qualname:
                    self.nested[info.name] = info.qualname

    # -- resolution helpers -------------------------------------------------

    def _link(self, qualname: str) -> None:
        self.graph.add_edge(self.src, qualname)

    def _link_symbol(self, kind: str, qualname: str) -> None:
        if kind == "function":
            self._link(qualname)
        elif kind == "class":
            cls = self.model.class_by_qualname(qualname)
            if cls is not None and "__init__" in cls.methods:
                self._link(cls.methods["__init__"].qualname)

    def _resolve_expr(self, node: ast.expr) -> None:
        """Add an edge for a function-valued expression, if resolvable."""
        dotted = dotted_name(node)
        if dotted is None:
            return
        head, _, rest = dotted.partition(".")
        if not rest and head in self.nested:
            self._link(self.nested[head])
            return
        resolved = self.model.resolve(self.module, dotted)
        if resolved is not None:
            self._link_symbol(resolved.kind, resolved.qualname)

    def _resolve_method_call(self, node: ast.Call) -> bool:
        """Attribute calls: typed receivers first, unique-name fallback."""
        func = node.func
        if not isinstance(func, ast.Attribute):
            return False
        target: FunctionInfo | None = None
        base = func.value
        if isinstance(base, ast.Name):
            cls = self.locals.class_of(base.id)
            if cls is not None:
                target = _method_lookup(self.model, cls, func.attr)
        elif (
            isinstance(base, ast.Attribute)
            and isinstance(base.value, ast.Name)
        ):
            # self.attr.method() via __init__-harvested attribute types.
            cls = self.locals.class_of(base.value.id)
            if cls is not None:
                attr_type = cls.attr_types.get(base.attr)
                if attr_type is not None:
                    resolved = self.model.resolve(
                        self.model.modules[cls.module], attr_type
                    )
                    if resolved is not None and resolved.kind == "class":
                        target = _method_lookup(
                            self.model,
                            self.model.class_by_qualname(resolved.qualname),
                            func.attr,
                        )
        if target is not None:
            self._link(target.qualname)
            return True
        # Unique-name fallback — but never for attributes of imported
        # modules/objects (``np.mean`` is numpy's, not a project method).
        if isinstance(base, ast.Name) and base.id in self.module.aliases:
            return False
        candidates = self.graph.method_index.get(func.attr, [])
        if len(candidates) == 1:
            self._link(candidates[0])
            return True
        return False

    # -- visitors -----------------------------------------------------------

    def visit_Call(self, node: ast.Call) -> None:
        dotted = dotted_name(node.func)
        linked = False
        if dotted is not None:
            head, _, rest = dotted.partition(".")
            if not rest and head in self.nested:
                self._link(self.nested[head])
                linked = True
            else:
                resolved = self.model.resolve(self.module, dotted)
                if resolved is not None and resolved.kind in ("function", "class"):
                    self._link_symbol(resolved.kind, resolved.qualname)
                    linked = True
        if not linked:
            self._resolve_method_call(node)
        # Function-valued arguments are callbacks: whoever receives them
        # may call them (pool.imap_unordered(fn, ...), partial(fn, ...),
        # Experiment(run_one=fn), env.process(driver(env))).
        for arg in node.args:
            self._resolve_expr(arg)
        for kw in node.keywords:
            if kw.value is not None:
                self._resolve_expr(kw.value)
        # Recurse into the whole call (nested calls in func/args/keywords);
        # re-adding an edge is a no-op, so double-visiting stays harmless.
        self.generic_visit(node)

    def _skip_nested(self, node: ast.AST) -> None:
        # Nested defs get their own collector; only the def *name* is a
        # local symbol here (calls to it are linked by visit_Call).
        del node

    visit_FunctionDef = _skip_nested
    visit_AsyncFunctionDef = _skip_nested
    visit_ClassDef = _skip_nested

    def run(self, body: list[ast.stmt]) -> None:
        for stmt in body:
            self.visit(stmt)


def build_call_graph(model: ProjectModel) -> CallGraph:
    """Collect edges for every function and module body in the model."""
    graph = CallGraph(model=model)
    index: dict[str, set[str]] = {}
    for module in model.sorted_modules():
        for cls_name in sorted(module.classes):
            cls = module.classes[cls_name]
            for meth_name, meth in sorted(cls.methods.items()):
                index.setdefault(meth_name, set()).add(meth.qualname)
    graph.method_index = {
        name: sorted(quals) for name, quals in sorted(index.items())
    }
    for module in model.sorted_modules():
        collector = _EdgeCollector(graph, module, module.scope_node, None)
        collector.run(module.tree.body)
        for key in sorted(module.functions):
            func = module.functions[key]
            collector = _EdgeCollector(graph, module, func.qualname, func)
            collector.run(func.node.body)
    return graph
