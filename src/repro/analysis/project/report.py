"""Run the whole-program analysis and assemble a deterministic report.

:func:`analyze_project` builds the model, the call graph, and the three
reachability closures, runs the R5xx/G6xx/P7xx rule families, and returns
a :class:`ProjectReport` whose JSON form is **byte-identical** across
repeated runs and across file discovery orders: every collection is sorted
and nothing reads a clock, the environment, or unsorted hashes.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from pathlib import Path
from typing import Any

from ..findings import Finding
from .callgraph import build_call_graph
from .context import ProjectContext
from .entrypoints import find_entry_points
from .model import build_project
from .rules_purity import run_purity_rules
from .rules_rng import run_rng_rules
from .rules_state import run_state_rules

__all__ = ["PROJECT_RULE_CATALOG", "ProjectReport", "analyze_project"]


@dataclass(frozen=True)
class ProjectRuleMeta:
    """Identity metadata for one project-tier rule (no per-file visitor)."""

    rule_id: str
    family: str
    severity: str
    summary: str


PROJECT_RULE_CATALOG: tuple[ProjectRuleMeta, ...] = (
    ProjectRuleMeta(
        "R501", "rng-provenance", "error",
        "RNG constructors must derive from a spec/seed parameter, never "
        "from ambient state (clocks, entropy, mutable module globals)",
    ),
    ProjectRuleMeta(
        "R502", "rng-provenance", "error",
        "no process-global RNG sampling (np.random.* / random.*) in "
        "worker-reachable code",
    ),
    ProjectRuleMeta(
        "R503", "rng-provenance", "error",
        "RNG objects must not escape into module-level globals",
    ),
    ProjectRuleMeta(
        "G601", "shared-state", "error",
        "no worker-reachable mutation of module-level mutable containers "
        "(import-time registration is certified safe)",
    ),
    ProjectRuleMeta(
        "G602", "shared-state", "error",
        "no worker-reachable `global` rebinding of module-level names",
    ),
    ProjectRuleMeta(
        "P701", "cache-purity", "error",
        "no environment reads (os.environ / os.getenv) inside cached "
        "run_one call trees",
    ),
    ProjectRuleMeta(
        "P702", "cache-purity", "error",
        "no clock reads inside cached run_one call trees",
    ),
    ProjectRuleMeta(
        "P703", "cache-purity", "error",
        "no process/host identity reads (getpid, cwd, hostname, tempdir) "
        "inside cached run_one call trees",
    ),
)


@dataclass
class ProjectReport:
    """Everything one whole-program analysis produced."""

    root: str  # repo-relative POSIX root that was scanned
    modules: int
    findings: list[Finding] = field(default_factory=list)
    entry_points: list[dict[str, str]] = field(default_factory=list)
    certified: list[dict[str, str]] = field(default_factory=list)
    parse_errors: list[dict[str, str]] = field(default_factory=list)

    def active(self) -> list[Finding]:
        return [f for f in self.findings if not f.suppressed]

    def to_jsonable(self) -> dict[str, Any]:
        """Canonical JSON shape — stable key and element order."""
        return {
            "version": 1,
            "root": self.root,
            "modules": self.modules,
            "entry_points": self.entry_points,
            "certified": self.certified,
            "parse_errors": self.parse_errors,
            "findings": [
                {
                    "path": f.path,
                    "line": f.line,
                    "col": f.col,
                    "rule": f.rule,
                    "severity": f.severity,
                    "suppressed": f.suppressed,
                    "message": f.message,
                }
                for f in self.findings
            ],
        }


def analyze_project(root: Path | str) -> ProjectReport:
    """Whole-program analysis of one package root (see module docstring)."""
    from ..paths import repo_relative

    model = build_project(root)
    graph = build_call_graph(model)
    entries = find_entry_points(model)

    worker_roots = sorted({e.qualname for e in entries})
    cache_roots = sorted(
        {e.qualname for e in entries if e.kind in ("run_one", "shard")}
    )
    import_roots = sorted(
        module.scope_node for module in model.sorted_modules()
    )

    ctx = ProjectContext(
        model=model,
        graph=graph,
        entry_points=entries,
        worker_chains=graph.reachable(worker_roots),
        cache_chains=graph.reachable(cache_roots),
        import_chains=graph.reachable(import_roots),
    )
    run_rng_rules(ctx)
    run_state_rules(ctx)
    run_purity_rules(ctx)

    certified = sorted(
        {tuple(sorted(item.items())) for item in ctx.certified}
    )
    report = ProjectReport(
        root=repo_relative(root),
        modules=len(model.modules),
        findings=sorted(ctx.findings),
        entry_points=[
            {"qualname": e.qualname, "kind": e.kind, "via": e.via}
            for e in entries
        ],
        certified=[dict(item) for item in certified],
        parse_errors=[
            {"path": path, "error": err}
            for path, err in sorted(model.errors.items())
        ],
    )
    return report
