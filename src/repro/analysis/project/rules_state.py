"""G6xx — shared-state safety rules.

Module-level mutable containers (``runner/registry.py:_REGISTRY``,
``obs/spans.py:SPAN_TYPES``, …) are how the repo registers experiments,
span types, and metrics.  Mutating one **at import time** is safe: imports
are once-per-process and idempotent, so every worker rebuilds the same
table from the same module body.  Mutating one from *worker-reachable*
code after import is a silent cross-process divergence hazard — the
parent's copy and each worker's copy drift independently, and nothing
merges them back.

- **G601** — worker-reachable mutation of a module-level mutable
  container (subscript store/delete or a mutating method call), resolved
  across modules through import aliases;
- **G602** — worker-reachable ``global`` rebinding of a module-level
  name (the rebound value exists only in whichever process ran it).

Functions that mutate module containers but are reachable *only* from
module scope are certified import-time-safe and listed in the report's
``certified`` section instead of being flagged.
"""

from __future__ import annotations

import ast

from ..visitor import dotted_name
from .context import ProjectContext, format_chain
from .model import GlobalInfo, ModuleInfo, ProjectModel

__all__ = ["run_state_rules"]

# Methods that mutate the builtin containers in place.
_MUTATORS = frozenset(
    {
        "append",
        "appendleft",
        "add",
        "update",
        "pop",
        "popleft",
        "popitem",
        "setdefault",
        "clear",
        "extend",
        "extendleft",
        "insert",
        "remove",
        "discard",
        "sort",
        "reverse",
    }
)


def _container_global(
    model: ProjectModel, module: ModuleInfo, expr: ast.expr
) -> GlobalInfo | None:
    """Resolve an expression to a module-level *container* global."""
    dotted = dotted_name(expr)
    if dotted is None:
        return None
    symbol = model.resolve(module, dotted)
    if symbol is None or symbol.kind != "global":
        return None
    info = model.global_by_qualname(symbol.qualname)
    if info is not None and info.kind == "container":
        return info
    return None


def _mutations(
    model: ProjectModel, module: ModuleInfo, body: list[ast.stmt]
) -> list[tuple[ast.AST, GlobalInfo, str]]:
    """(site, global, how) for every container mutation in ``body``."""
    out: list[tuple[ast.AST, GlobalInfo, str]] = []
    for node in ast.walk(ast.Module(body=body, type_ignores=[])):
        if isinstance(node, (ast.Assign, ast.AugAssign)):
            targets = (
                node.targets if isinstance(node, ast.Assign) else [node.target]
            )
            for target in targets:
                if isinstance(target, ast.Subscript):
                    info = _container_global(model, module, target.value)
                    if info is not None:
                        out.append((node, info, "subscript store"))
        elif isinstance(node, ast.Delete):
            for target in node.targets:
                if isinstance(target, ast.Subscript):
                    info = _container_global(model, module, target.value)
                    if info is not None:
                        out.append((node, info, "subscript delete"))
        elif isinstance(node, ast.Call) and isinstance(node.func, ast.Attribute):
            if node.func.attr in _MUTATORS:
                info = _container_global(model, module, node.func.value)
                if info is not None:
                    out.append((node, info, f".{node.func.attr}() call"))
    return out


def run_state_rules(ctx: ProjectContext) -> None:
    """Emit G601/G602 findings and import-time certifications into ``ctx``."""
    model = ctx.model
    for module in model.sorted_modules():
        for key in sorted(module.functions):
            func = module.functions[key]
            sites = _mutations(model, module, func.node.body)
            # Strip sites that belong to nested defs: they are separate
            # call-graph nodes and are visited under their own qualname.
            own_sites = [
                s for s in sites
                if _owns_site(module, func.qualname, s[0])
            ]
            if not own_sites:
                _check_global_rebind(ctx, module, func)
                continue
            chain = ctx.worker_chains.get(func.qualname)
            if chain is None:
                if ctx.import_reachable(func.qualname):
                    for _site, info, how in own_sites:
                        ctx.certified.append(
                            {
                                "function": func.qualname,
                                "global": info.qualname,
                                "how": how,
                                "why": "reachable from module scope only "
                                "(import-time registration)",
                            }
                        )
                _check_global_rebind(ctx, module, func)
                continue
            for site, info, how in own_sites:
                ctx.add(
                    module,
                    site,
                    "G601",
                    f"worker-reachable code mutates module-level container "
                    f"`{info.qualname}` ({how}) — reachable via "
                    f"{format_chain(chain)}; post-import mutation diverges "
                    "silently across processes (each worker owns a copy); "
                    "register at import time or pass state explicitly",
                )
            _check_global_rebind(ctx, module, func)


def _owns_site(module: ModuleInfo, qualname: str, site: ast.AST) -> bool:
    """True if ``site`` is lexically in ``qualname``'s own body (not a
    nested def's)."""
    line = getattr(site, "lineno", None)
    if line is None:
        return True
    best: str | None = None
    best_span = None
    for info in module.functions.values():
        node = info.node
        end = getattr(node, "end_lineno", None)
        if end is None:
            continue
        if node.lineno <= line <= end:
            span = end - node.lineno
            if best_span is None or span < best_span:
                best, best_span = info.qualname, span
    return best is None or best == qualname


def _check_global_rebind(
    ctx: ProjectContext, module: ModuleInfo, func
) -> None:
    chain = ctx.worker_chains.get(func.qualname)
    if chain is None:
        return
    declared: set[str] = set()
    for node in ast.walk(func.node):
        if isinstance(node, ast.Global):
            declared.update(node.names)
    if not declared:
        return
    for node in ast.walk(func.node):
        if isinstance(node, (ast.Assign, ast.AugAssign, ast.AnnAssign)):
            targets = (
                node.targets
                if isinstance(node, ast.Assign)
                else [node.target]
            )
            for target in targets:
                if isinstance(target, ast.Name) and target.id in declared:
                    if not _owns_site(module, func.qualname, node):
                        continue
                    ctx.add(
                        module,
                        node,
                        "G602",
                        f"worker-reachable `{func.qualname}` rebinds module "
                        f"global `{module.name}.{target.id}` — reachable "
                        f"via {format_chain(chain)}; the new binding exists "
                        "only in whichever process ran it",
                    )
