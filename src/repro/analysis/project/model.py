"""The project model: every module of a package parsed and indexed once.

:func:`build_project` walks a package root, parses each ``.py`` file, and
builds per-module symbol tables (functions, classes with methods, module
globals classified by mutability/kind), an import-alias map that resolves
*relative* imports against the module's package, and the module-level
import graph.  The model is purely syntactic — nothing is imported or
executed — and its construction is deterministic: modules are keyed and
iterated in sorted dotted-name order regardless of file discovery order.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from pathlib import Path
from typing import Iterable

from ..paths import repo_relative
from ..visitor import _collect_noqa, dotted_name

__all__ = [
    "ClassInfo",
    "FunctionInfo",
    "GlobalInfo",
    "ModuleInfo",
    "ProjectModel",
    "ResolvedSymbol",
    "build_project",
    "module_aliases",
]

# Calls at module scope producing these are containers: worker-side
# mutation of one is a cross-process divergence hazard (G6xx).
_CONTAINER_FACTORIES = frozenset(
    {
        "dict",
        "list",
        "set",
        "collections.defaultdict",
        "collections.OrderedDict",
        "collections.deque",
        "collections.Counter",
    }
)

# RNG constructors; a module global bound to one is flagged by R503.
RNG_CONSTRUCTORS = frozenset(
    {
        "numpy.random.default_rng",
        "numpy.random.Generator",
        "numpy.random.RandomState",
        "numpy.random.SeedSequence",
        "numpy.random.PCG64",
        "numpy.random.Philox",
        "random.Random",
        "random.SystemRandom",
    }
)


@dataclass(frozen=True)
class FunctionInfo:
    """One function or method definition in the project."""

    qualname: str  # e.g. repro.runner.executor._execute_one
    module: str  # dotted module name
    name: str  # bare name
    node: ast.FunctionDef | ast.AsyncFunctionDef = field(repr=False)
    params: tuple[str, ...]
    class_name: str | None = None  # bare enclosing class name, if a method
    parent: str | None = None  # qualname of the enclosing function, if nested


@dataclass(frozen=True)
class ClassInfo:
    """One class definition: its methods, bases, and instance-attr types."""

    qualname: str
    module: str
    name: str
    node: ast.ClassDef = field(repr=False)
    methods: dict[str, FunctionInfo] = field(default_factory=dict)
    bases: tuple[str, ...] = ()  # source-level dotted base names
    # instance attribute -> source-level dotted class name, harvested from
    # ``self.attr = ClassName(...)`` assignments in methods (one level).
    attr_types: dict[str, str] = field(default_factory=dict)


@dataclass(frozen=True)
class GlobalInfo:
    """One module-level binding, classified for the shared-state rules."""

    qualname: str  # module.NAME
    module: str
    name: str
    kind: str  # "container" | "rng" | "constant" | "other"
    lineno: int
    col: int


@dataclass
class ModuleInfo:
    """Everything the project rules need to know about one module."""

    name: str  # dotted module name
    path: Path
    relpath: str  # repo-relative POSIX path used in reports
    tree: ast.Module = field(repr=False)
    is_package: bool = False
    aliases: dict[str, str] = field(default_factory=dict)
    functions: dict[str, FunctionInfo] = field(default_factory=dict)
    classes: dict[str, ClassInfo] = field(default_factory=dict)
    globals: dict[str, GlobalInfo] = field(default_factory=dict)
    imports: tuple[str, ...] = ()  # dotted modules imported at module scope
    # ``# repro: noqa`` suppressions, 1-based line -> rule ids (None = all).
    noqa: dict[int, "frozenset[str] | None"] = field(default_factory=dict)

    @property
    def scope_node(self) -> str:
        """Call-graph node name standing for this module's import-time body."""
        return f"{self.name}.<module>"

    def resolve_call_name(self, expr: ast.expr) -> str | None:
        """Import-aware dotted name of an expression (like FileContext)."""
        raw = dotted_name(expr)
        if raw is None:
            return None
        head, _, rest = raw.partition(".")
        resolved_head = self.aliases.get(head, head)
        return f"{resolved_head}.{rest}" if rest else resolved_head


@dataclass(frozen=True)
class ResolvedSymbol:
    """The project-local resolution of a dotted source name."""

    kind: str  # "function" | "class" | "global" | "module"
    qualname: str
    module: str  # defining module


def module_aliases(
    tree: ast.Module, module_name: str, is_package: bool
) -> dict[str, str]:
    """Local name -> dotted target, resolving relative imports.

    ``from .cache import ResultCache`` inside ``repro.runner.executor``
    maps ``ResultCache -> repro.runner.cache.ResultCache``; absolute
    imports behave like the per-file map.  Imports anywhere in the module
    count (several modules import lazily inside functions).
    """
    package = module_name if is_package else module_name.rpartition(".")[0]
    aliases: dict[str, str] = {}
    for node in ast.walk(tree):
        if isinstance(node, ast.Import):
            for item in node.names:
                local = item.asname or item.name.split(".")[0]
                target = item.name if item.asname else item.name.split(".")[0]
                aliases[local] = target
        elif isinstance(node, ast.ImportFrom):
            base = node.module or ""
            if node.level:
                parts = package.split(".") if package else []
                climb = node.level - 1
                if climb > len(parts):
                    continue  # relative import escaping the scanned root
                anchor = parts[: len(parts) - climb] if climb else parts
                base = ".".join([*anchor, node.module] if node.module else anchor)
            for item in node.names:
                if item.name == "*":
                    continue
                target = f"{base}.{item.name}" if base else item.name
                aliases[item.asname or item.name] = target
    return aliases


def _scope_imports(
    body: Iterable[ast.stmt], module_name: str, is_package: bool
) -> list[str]:
    """Dotted modules imported by the given statements (module scope)."""
    package = module_name if is_package else module_name.rpartition(".")[0]
    out: list[str] = []
    for node in _scope_stmts(body):
        if isinstance(node, ast.Import):
            out.extend(item.name for item in node.names)
        elif isinstance(node, ast.ImportFrom):
            base = node.module or ""
            if node.level:
                parts = package.split(".") if package else []
                climb = node.level - 1
                if climb > len(parts):
                    continue
                anchor = parts[: len(parts) - climb] if climb else parts
                base = ".".join([*anchor, node.module] if node.module else anchor)
            if base:
                out.append(base)
                # ``from pkg import sub`` may name submodules; record both
                # candidates — resolution just ignores the ones that don't
                # exist in the project.
                out.extend(f"{base}.{item.name}" for item in node.names)
    return out


def _classify_global(value: ast.expr | None, aliases: dict[str, str]) -> str:
    """Container / rng / constant / other, from the assigned expression."""
    if value is None:
        return "other"
    if isinstance(value, (ast.Dict, ast.List, ast.Set, ast.DictComp,
                          ast.ListComp, ast.SetComp)):
        return "container"
    if isinstance(value, ast.Constant) or (
        isinstance(value, (ast.Tuple, ast.UnaryOp, ast.BinOp))
    ):
        return "constant"
    if isinstance(value, ast.Call):
        raw = dotted_name(value.func)
        if raw is not None:
            head, _, rest = raw.partition(".")
            resolved = aliases.get(head, head) + (f".{rest}" if rest else "")
            if resolved in _CONTAINER_FACTORIES:
                return "container"
            if resolved in RNG_CONSTRUCTORS:
                return "rng"
            if resolved == "frozenset" or raw == "frozenset":
                return "constant"
    return "other"


def _function_params(node: ast.FunctionDef | ast.AsyncFunctionDef) -> tuple[str, ...]:
    a = node.args
    names = [arg.arg for arg in (*a.posonlyargs, *a.args, *a.kwonlyargs)]
    if a.vararg:
        names.append(a.vararg.arg)
    if a.kwarg:
        names.append(a.kwarg.arg)
    return tuple(names)


def _scope_stmts(body: Iterable[ast.stmt]) -> Iterable[ast.stmt]:
    """Statements of one scope, descending through compound statements
    (``if``/``for``/``try``/``with``) but not into nested def/class bodies
    — a ``def`` inside a ``try:`` is still a local of the enclosing scope.
    """
    for node in body:
        yield node
        if isinstance(
            node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)
        ):
            continue
        for child in ast.iter_child_nodes(node):
            if isinstance(child, ast.stmt):
                yield from _scope_stmts([child])
            elif isinstance(child, ast.excepthandler):
                yield from _scope_stmts(child.body)


def _harvest_functions(
    module: ModuleInfo,
    body: Iterable[ast.stmt],
    prefix: str,
    class_name: str | None,
    parent: str | None,
) -> None:
    """Register functions/classes under ``prefix`` (recursing into both)."""
    for node in _scope_stmts(body):
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            qualname = f"{prefix}.{node.name}"
            info = FunctionInfo(
                qualname=qualname,
                module=module.name,
                name=node.name,
                node=node,
                params=_function_params(node),
                class_name=class_name,
                parent=parent,
            )
            module.functions[_local_key(qualname, module.name)] = info
            # Nested defs resolve through the parent's local scope.
            _harvest_functions(
                module, node.body, f"{qualname}.<locals>", None, qualname
            )
        elif isinstance(node, ast.ClassDef):
            class_qual = f"{prefix}.{node.name}"
            bases = tuple(
                b for b in (dotted_name(base) for base in node.bases)
                if b is not None
            )
            cls = ClassInfo(
                qualname=class_qual,
                module=module.name,
                name=node.name,
                node=node,
                bases=bases,
            )
            for item in node.body:
                if isinstance(item, (ast.FunctionDef, ast.AsyncFunctionDef)):
                    meth_qual = f"{class_qual}.{item.name}"
                    info = FunctionInfo(
                        qualname=meth_qual,
                        module=module.name,
                        name=item.name,
                        node=item,
                        params=_function_params(item),
                        class_name=node.name,
                        parent=None,
                    )
                    cls.methods[item.name] = info
                    module.functions[_local_key(meth_qual, module.name)] = info
                    _harvest_functions(
                        module, item.body, f"{meth_qual}.<locals>",
                        None, meth_qual,
                    )
            _harvest_attr_types(cls)
            if class_name is None and parent is None:
                module.classes[node.name] = cls


def _harvest_attr_types(cls: ClassInfo) -> None:
    """``self.attr = ClassName(...)`` assignments -> instance attr types."""
    for meth in cls.methods.values():
        for node in ast.walk(meth.node):
            if not (isinstance(node, ast.Assign) and isinstance(node.value, ast.Call)):
                continue
            ctor = dotted_name(node.value.func)
            if ctor is None:
                continue
            for target in node.targets:
                if (
                    isinstance(target, ast.Attribute)
                    and isinstance(target.value, ast.Name)
                    and target.value.id == "self"
                ):
                    cls.attr_types.setdefault(target.attr, ctor)


def _local_key(qualname: str, module_name: str) -> str:
    """Module-local lookup key: the qualname minus the module prefix."""
    return qualname[len(module_name) + 1 :]


def _harvest_globals(module: ModuleInfo) -> None:
    for node in module.tree.body:
        targets: list[ast.expr] = []
        value: ast.expr | None = None
        if isinstance(node, ast.Assign):
            targets, value = node.targets, node.value
        elif isinstance(node, ast.AnnAssign):
            targets, value = [node.target], node.value
        else:
            continue
        kind = _classify_global(value, module.aliases)
        for target in targets:
            if isinstance(target, ast.Name):
                module.globals[target.id] = GlobalInfo(
                    qualname=f"{module.name}.{target.id}",
                    module=module.name,
                    name=target.id,
                    kind=kind,
                    lineno=node.lineno,
                    col=node.col_offset + 1,
                )


@dataclass
class ProjectModel:
    """All modules of one scanned package tree, plus resolution helpers."""

    root: Path
    root_package: str
    modules: dict[str, ModuleInfo] = field(default_factory=dict)
    # Modules that failed to parse: relpath -> error text (reported as E000
    # by the caller; kept here so the report stays deterministic).
    errors: dict[str, str] = field(default_factory=dict)

    # -- resolution ---------------------------------------------------------

    def module_for(self, dotted: str) -> tuple[ModuleInfo | None, str]:
        """Longest project-module prefix of ``dotted`` and the remainder."""
        parts = dotted.split(".")
        for cut in range(len(parts), 0, -1):
            name = ".".join(parts[:cut])
            if name in self.modules:
                return self.modules[name], ".".join(parts[cut:])
        return None, dotted

    def resolve(
        self, module: ModuleInfo, dotted: str, _depth: int = 0
    ) -> ResolvedSymbol | None:
        """Resolve a source-level dotted name to a project symbol.

        Follows the module's import aliases, then chases re-exports
        (``from .registry import register`` in a package ``__init__``)
        up to a small depth so names imported via package facades resolve
        to their defining module.
        """
        if _depth > 8 or not dotted:
            return None
        head, _, rest = dotted.partition(".")
        target = module.aliases.get(head)
        if target is None:
            # A name defined in this module itself.
            resolved = self._lookup_in(module, dotted)
            if resolved is not None:
                return resolved
            if head in self.modules and rest:
                owner = self.modules[head]
                return self._lookup_in(owner, rest) or ResolvedSymbol(
                    "module", owner.name, owner.name
                )
            return None
        full = f"{target}.{rest}" if rest else target
        owner, remainder = self.module_for(full)
        if owner is None:
            return None
        if not remainder:
            return ResolvedSymbol("module", owner.name, owner.name)
        hit = self._lookup_in(owner, remainder)
        if hit is not None:
            return hit
        # Re-export chase: the owner may alias the first remainder segment.
        if remainder.partition(".")[0] in owner.aliases:
            return self.resolve(owner, remainder, _depth=_depth + 1)
        return None

    def _lookup_in(self, module: ModuleInfo, local: str) -> ResolvedSymbol | None:
        """Look a module-local dotted path up in one module's tables."""
        if local in module.functions:
            return ResolvedSymbol(
                "function", module.functions[local].qualname, module.name
            )
        seg, _, tail = local.partition(".")
        if seg in module.classes:
            cls = module.classes[seg]
            if not tail:
                return ResolvedSymbol("class", cls.qualname, module.name)
            if tail in cls.methods:
                return ResolvedSymbol(
                    "function", cls.methods[tail].qualname, module.name
                )
            return None
        if seg in module.globals and not tail:
            return ResolvedSymbol(
                "global", module.globals[seg].qualname, module.name
            )
        return None

    def function_by_qualname(self, qualname: str) -> FunctionInfo | None:
        owner, remainder = self.module_for(qualname)
        if owner is None or not remainder:
            return None
        return owner.functions.get(remainder)

    def class_by_qualname(self, qualname: str) -> ClassInfo | None:
        owner, remainder = self.module_for(qualname)
        if owner is None:
            return None
        return owner.classes.get(remainder)

    def global_by_qualname(self, qualname: str) -> GlobalInfo | None:
        owner, remainder = self.module_for(qualname)
        if owner is None:
            return None
        return owner.globals.get(remainder)

    def sorted_modules(self) -> list[ModuleInfo]:
        return [self.modules[name] for name in sorted(self.modules)]


def _module_name(py_file: Path, root: Path, root_package: str) -> tuple[str, bool]:
    """Dotted module name for a file under ``root``; flags packages."""
    rel = py_file.relative_to(root)
    parts = list(rel.parts)
    is_package = parts[-1] == "__init__.py"
    if is_package:
        parts = parts[:-1]
    else:
        parts[-1] = parts[-1][: -len(".py")]
    return ".".join([root_package, *parts]) if parts else root_package, is_package


def build_project(root: Path | str) -> ProjectModel:
    """Parse every ``.py`` under a package root into a :class:`ProjectModel`.

    ``root`` must be a package directory (contain ``__init__.py``); its
    directory name becomes the root package name.  Construction order is
    the sorted file list, so two builds over the same tree are identical
    regardless of how the caller discovered the files.
    """
    root = Path(root).resolve()
    root_package = root.name
    model = ProjectModel(root=root, root_package=root_package)
    files = sorted(
        p for p in root.rglob("*.py") if "__pycache__" not in p.parts
    )
    for py_file in files:
        name, is_package = _module_name(py_file, root, root_package)
        relpath = repo_relative(py_file)
        try:
            source = py_file.read_text(encoding="utf-8")
            tree = ast.parse(source, filename=str(py_file))
        except (SyntaxError, OSError, UnicodeDecodeError) as err:
            model.errors[relpath] = str(err)
            continue
        module = ModuleInfo(
            name=name,
            path=py_file,
            relpath=relpath,
            tree=tree,
            is_package=is_package,
            aliases=module_aliases(tree, name, is_package),
            noqa=_collect_noqa(source.splitlines()),
        )
        module.imports = tuple(_scope_imports(tree.body, name, is_package))
        _harvest_functions(module, tree.body, name, None, None)
        _harvest_globals(module)
        model.modules[name] = module
    return model
