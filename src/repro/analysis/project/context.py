"""Shared state the project rule families run against."""

from __future__ import annotations

import ast
from dataclasses import dataclass, field

from ..findings import Finding
from .callgraph import CallGraph
from .entrypoints import EntryPoint
from .model import FunctionInfo, ModuleInfo, ProjectModel

__all__ = ["ProjectContext", "format_chain"]


def format_chain(chain: tuple[str, ...]) -> str:
    """Render a reachability chain for a finding message."""
    if len(chain) <= 1:
        return chain[0] if chain else "<entry>"
    return " -> ".join(chain)


@dataclass
class ProjectContext:
    """Model + call graph + reachability, shared by R5xx/G6xx/P7xx."""

    model: ProjectModel
    graph: CallGraph
    entry_points: list[EntryPoint]
    # qualname -> shortest chain from an entry of the given closure
    worker_chains: dict[str, tuple[str, ...]] = field(default_factory=dict)
    cache_chains: dict[str, tuple[str, ...]] = field(default_factory=dict)
    import_chains: dict[str, tuple[str, ...]] = field(default_factory=dict)
    findings: list[Finding] = field(default_factory=list)
    # Import-time-only mutators the shared-state rules certified as safe.
    certified: list[dict] = field(default_factory=list)
    _seen: set[tuple[str, int, int, str]] = field(default_factory=set)

    def worker_reachable(self, qualname: str) -> bool:
        return qualname in self.worker_chains

    def cache_reachable(self, qualname: str) -> bool:
        return qualname in self.cache_chains

    def import_reachable(self, qualname: str) -> bool:
        return qualname in self.import_chains

    def add(
        self,
        module: ModuleInfo,
        node: ast.AST,
        rule_id: str,
        message: str,
        severity: str = "error",
    ) -> None:
        line = getattr(node, "lineno", 1)
        col = getattr(node, "col_offset", 0) + 1
        key = (module.relpath, line, col, rule_id)
        if key in self._seen:
            return
        self._seen.add(key)
        ids = module.noqa.get(line, ())
        suppressed = ids is None or (
            ids != () and rule_id.upper() in ids
        )
        self.findings.append(
            Finding(
                path=module.relpath,
                line=line,
                col=col,
                rule=rule_id,
                message=message,
                suppressed=suppressed,
                severity=severity,
            )
        )

    def worker_functions(self) -> list[tuple[ModuleInfo, FunctionInfo]]:
        """Worker-reachable project functions, in deterministic order."""
        return self._functions_in(self.worker_chains)

    def cache_functions(self) -> list[tuple[ModuleInfo, FunctionInfo]]:
        """run_one/shard-reachable project functions (cache boundary)."""
        return self._functions_in(self.cache_chains)

    def _functions_in(
        self, chains: dict[str, tuple[str, ...]]
    ) -> list[tuple[ModuleInfo, FunctionInfo]]:
        out: list[tuple[ModuleInfo, FunctionInfo]] = []
        for qualname in sorted(chains):
            func = self.model.function_by_qualname(qualname)
            if func is not None:
                out.append((self.model.modules[func.module], func))
        return out
