"""Determinism rules (D1xx).

Every experiment must be bit-for-bit reproducible from its seed: no
wall-clock reads, no unseeded or process-global RNG streams, and no
iteration over bare ``set``s (string hashing is randomized per process, so
set order leaks ``PYTHONHASHSEED`` into results).
"""

from __future__ import annotations

import ast

from ..visitor import Rule

__all__ = ["DETERMINISM_RULES"]

# Wall-clock reads that differ run to run.  time.perf_counter / monotonic /
# process_time are fine for *measuring* elapsed time (they never feed
# simulation state) and are the sanctioned replacements.
_WALL_CLOCK_CALLS = frozenset(
    {
        "time.time",
        "time.time_ns",
        "time.localtime",
        "time.gmtime",
        "datetime.datetime.now",
        "datetime.datetime.utcnow",
        "datetime.datetime.today",
        "datetime.date.today",
    }
)

# numpy.random attributes that are fine to call: constructing explicit
# generators/seeds is how deterministic streams are made.
_NP_RANDOM_OK = frozenset(
    {
        "numpy.random.default_rng",
        "numpy.random.Generator",
        "numpy.random.RandomState",
        "numpy.random.SeedSequence",
        "numpy.random.BitGenerator",
        "numpy.random.PCG64",
        "numpy.random.Philox",
    }
)

# RNG constructors that must be given an explicit seed.
_SEEDED_CONSTRUCTORS = frozenset(
    {"numpy.random.default_rng", "numpy.random.RandomState", "random.Random"}
)


class WallClockRule(Rule):
    """D101: flags wall-clock reads that would leak real time into results."""

    rule_id = "D101"
    family = "determinism"
    summary = (
        "no wall-clock reads (time.time / datetime.now) in library code; "
        "use time.perf_counter for elapsed-time measurement"
    )

    def visit_Call(self, node: ast.Call) -> None:
        resolved = self.ctx.resolve(node.func)
        if resolved in _WALL_CLOCK_CALLS:
            self.report(
                node,
                f"wall-clock read `{resolved}()` breaks run-to-run "
                "determinism; use time.perf_counter() for timing or pass "
                "timestamps in explicitly",
            )
        self.generic_visit(node)


class UnseededRngRule(Rule):
    """D102: flags RNG constructors called without an explicit seed."""

    rule_id = "D102"
    family = "determinism"
    summary = "RNG constructors must receive an explicit seed"

    def visit_Call(self, node: ast.Call) -> None:
        resolved = self.ctx.resolve(node.func)
        if (
            resolved in _SEEDED_CONSTRUCTORS
            and not node.args
            and not node.keywords
        ):
            self.report(
                node,
                f"`{resolved}()` without a seed draws OS entropy; pass an "
                "explicit seed so runs reproduce",
            )
        self.generic_visit(node)


class GlobalRngRule(Rule):
    """D103: flags the module-global numpy/random RNG (hidden shared state)."""

    rule_id = "D103"
    family = "determinism"
    summary = (
        "no module-level random.* / np.random.* sampling; "
        "thread a seeded Generator instead"
    )

    def visit_Call(self, node: ast.Call) -> None:
        resolved = self.ctx.resolve(node.func)
        if resolved is not None:
            if (
                resolved.startswith("numpy.random.")
                and resolved not in _NP_RANDOM_OK
            ):
                self.report(
                    node,
                    f"`{resolved}` uses numpy's process-global stream; "
                    "thread an explicit np.random.default_rng(seed)",
                )
            elif (
                resolved.startswith("random.")
                and resolved not in ("random.Random", "random.SystemRandom")
            ) or resolved == "random.SystemRandom":
                self.report(
                    node,
                    f"`{resolved}` uses process-global (or OS) randomness; "
                    "thread an explicit random.Random(seed) or numpy "
                    "Generator",
                )
        self.generic_visit(node)


def _is_set_expr(node: ast.expr) -> bool:
    """Syntactically-evident set expressions whose iteration order can vary."""
    if isinstance(node, (ast.Set, ast.SetComp)):
        return True
    if isinstance(node, ast.Call) and isinstance(node.func, ast.Name):
        if node.func.id in ("set", "frozenset"):
            return True
    if isinstance(node, ast.BinOp) and isinstance(
        node.op, (ast.BitOr, ast.BitAnd, ast.Sub, ast.BitXor)
    ):
        # a | b etc. where either side is evidently a set
        return _is_set_expr(node.left) or _is_set_expr(node.right)
    return False


class SetIterationRule(Rule):
    """D104: flags iterating bare sets where the order can reach results."""

    rule_id = "D104"
    family = "determinism"
    summary = "don't iterate bare sets into results; sort first"

    def __init__(self, ctx) -> None:
        super().__init__(ctx)
        self._set_names: list[set[str]] = [set()]

    # -- scope tracking: names assigned set expressions in this function ----

    def _walk_scope(self, node: ast.AST) -> None:
        self._set_names.append(set())
        for child in ast.walk(node):
            if isinstance(child, ast.Assign) and _is_set_expr(child.value):
                for target in child.targets:
                    if isinstance(target, ast.Name):
                        self._set_names[-1].add(target.id)
            elif isinstance(child, ast.AnnAssign) and child.value is not None:
                if _is_set_expr(child.value) and isinstance(
                    child.target, ast.Name
                ):
                    self._set_names[-1].add(child.target.id)
        self.generic_visit(node)
        self._set_names.pop()

    visit_FunctionDef = _walk_scope
    visit_AsyncFunctionDef = _walk_scope

    def _iterates_set(self, node: ast.expr) -> bool:
        if _is_set_expr(node):
            return True
        if isinstance(node, ast.Name):
            return any(node.id in scope for scope in self._set_names)
        return False

    def _flag(self, iter_node: ast.expr, where: str) -> None:
        self.report(
            iter_node,
            f"iterating a bare set {where} makes order depend on "
            "PYTHONHASHSEED; wrap it in sorted(...)",
        )

    def visit_For(self, node: ast.For) -> None:
        if self._iterates_set(node.iter):
            self._flag(node.iter, "in a for-loop")
        self.generic_visit(node)

    def _visit_comp(self, node) -> None:
        for gen in node.generators:
            if self._iterates_set(gen.iter):
                self._flag(gen.iter, "in a comprehension")
        self.generic_visit(node)

    visit_ListComp = _visit_comp
    visit_GeneratorExp = _visit_comp
    visit_DictComp = _visit_comp

    def visit_SetComp(self, node: ast.SetComp) -> None:
        # Building a set *from* a set keeps order irrelevant.
        self.generic_visit(node)

    def visit_Call(self, node: ast.Call) -> None:
        # list(set(...)), tuple(set(...)), enumerate(set(...)) materialize
        # the nondeterministic order.
        if (
            isinstance(node.func, ast.Name)
            and node.func.id in ("list", "tuple", "enumerate")
            and node.args
            and self._iterates_set(node.args[0])
        ):
            self._flag(node.args[0], f"via {node.func.id}(...)")
        self.generic_visit(node)


# Identifier tokens that mark a dict as shard/room/AP-keyed.  Matching is
# per underscore-separated token, so `by_room` and `shard_results` hit but
# `maps` and `shape` don't.
_SHARD_TOKENS = frozenset(
    {"shard", "shards", "room", "rooms", "ap", "aps"}
)
_DICT_ITER_METHODS = ("items", "keys", "values")


def _shardish_name(name: str) -> bool:
    return bool(_SHARD_TOKENS & set(name.lower().split("_")))


class ShardDictIterationRule(Rule):
    """D105: flags unsorted iteration over shard/room/AP-keyed dicts.

    Dict iteration follows insertion order, and for dicts keyed by shard,
    room, or AP the insertion order is exactly what sharding changes —
    which worker finished first, which shard a room landed in.  Results
    folded out of such an iteration silently depend on the partition;
    ``sorted(...)`` restores the venue order the merge contract promises.
    """

    rule_id = "D105"
    family = "determinism"
    summary = (
        "iterate shard/room/AP-keyed dicts via sorted(...), not "
        "insertion order"
    )

    def _base_name(self, node: ast.expr) -> str | None:
        if isinstance(node, ast.Name):
            return node.id
        if isinstance(node, ast.Attribute):
            return node.attr
        return None

    def _flag_if_shardish(self, iter_node: ast.expr, where: str) -> None:
        if not isinstance(iter_node, ast.Call) or iter_node.args:
            return
        func = iter_node.func
        if not (
            isinstance(func, ast.Attribute)
            and func.attr in _DICT_ITER_METHODS
        ):
            return
        name = self._base_name(func.value)
        if name is not None and _shardish_name(name):
            self.report(
                iter_node,
                f"`{name}.{func.attr}()` iterates a shard/room-keyed dict "
                f"in insertion order {where}; insertion order follows the "
                "shard partition, so wrap it in sorted(...)",
            )

    def visit_For(self, node: ast.For) -> None:
        self._flag_if_shardish(node.iter, "in a for-loop")
        self.generic_visit(node)

    def _visit_comp(self, node) -> None:
        for gen in node.generators:
            self._flag_if_shardish(gen.iter, "in a comprehension")
        self.generic_visit(node)

    visit_ListComp = _visit_comp
    visit_GeneratorExp = _visit_comp
    visit_DictComp = _visit_comp
    visit_SetComp = _visit_comp


DETERMINISM_RULES = (
    WallClockRule,
    UnseededRngRule,
    GlobalRngRule,
    SetIterationRule,
    ShardDictIterationRule,
)
