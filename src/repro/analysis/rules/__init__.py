"""Rule registry: every lint rule, grouped by family."""

from __future__ import annotations

from ..visitor import Rule
from .determinism import DETERMINISM_RULES
from .docs import DOCS_RULES
from .hygiene import HYGIENE_RULES
from .simproc import SIMPROC_RULES
from .units import UNITS_RULES

ALL_RULES: tuple[type[Rule], ...] = (
    *DETERMINISM_RULES,
    *UNITS_RULES,
    *SIMPROC_RULES,
    *HYGIENE_RULES,
    *DOCS_RULES,
)

__all__ = ["ALL_RULES", "rules_by_family", "rule_ids"]


def rules_by_family() -> dict[str, list[type[Rule]]]:
    """All registered rules grouped by family, in registration order."""
    families: dict[str, list[type[Rule]]] = {}
    for rule in ALL_RULES:
        families.setdefault(rule.family, []).append(rule)
    return families


def rule_ids() -> list[str]:
    """Every registered rule id, in registration order."""
    return [rule.rule_id for rule in ALL_RULES]
