"""Documentation-hygiene rules (H5xx).

The repo's public-API convention is explicit: every library module lists
its exported names in ``__all__``.  H501 enforces the matching
documentation contract — every module-level function or class *exported
via* ``__all__`` must carry a docstring, because ``docs/ARCHITECTURE.md``
and the generated ``docs/METRICS.md`` lean on them.  Modules without an
``__all__`` (scripts, test fixtures, inline snippets) are out of scope by
design.
"""

from __future__ import annotations

import ast

from ..visitor import Rule

__all__ = ["DOCS_RULES"]


def _exported_names(module: ast.Module) -> frozenset[str]:
    """String entries of a module-level ``__all__`` list/tuple, if any."""
    names: set[str] = set()
    for stmt in module.body:
        targets: list[ast.expr] = []
        if isinstance(stmt, ast.Assign):
            targets = stmt.targets
            value = stmt.value
        elif isinstance(stmt, ast.AnnAssign) and stmt.value is not None:
            targets = [stmt.target]
            value = stmt.value
        else:
            continue
        if not any(
            isinstance(t, ast.Name) and t.id == "__all__" for t in targets
        ):
            continue
        if isinstance(value, (ast.List, ast.Tuple)):
            for elt in value.elts:
                if isinstance(elt, ast.Constant) and isinstance(elt.value, str):
                    names.add(elt.value)
    return frozenset(names)


class PublicDocstringRule(Rule):
    """H501: flags ``__all__``-exported functions/classes with no docstring."""

    rule_id = "H501"
    family = "docs"
    summary = (
        "functions and classes exported via __all__ must carry a docstring"
    )

    def visit_Module(self, node: ast.Module) -> None:
        exported = _exported_names(node)
        if not exported:
            return
        for stmt in node.body:
            if not isinstance(
                stmt, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)
            ):
                continue
            if stmt.name not in exported:
                continue
            if ast.get_docstring(stmt) is None:
                kind = "class" if isinstance(stmt, ast.ClassDef) else "function"
                self.report(
                    stmt,
                    f"exported {kind} `{stmt.name}` has no docstring; one "
                    "sentence on what it is/returns is the repo convention",
                )
        # Module-level exports only by design: nested helpers and methods
        # are judged in review, not by lint.


DOCS_RULES = (PublicDocstringRule,)
