"""Unit-consistency rules (U2xx).

The repo's convention (core/rates.py, net/*) is to carry units in name
suffixes: ``rate_mbps``, ``wire_bytes``, ``payload_bits``, ``airtime_s``,
``latency_ms``.  Additive arithmetic (``+``, ``-``, comparisons, ``+=``)
between two *different* unit suffixes is almost always a missing ``* 8`` /
``/ 8`` / ``* 1e6`` style conversion — multiplication and division are
exempt because they legitimately change units (that is what a conversion
factor is).
"""

from __future__ import annotations

import ast

from ..visitor import Rule, final_attr

__all__ = ["UNITS_RULES", "unit_of_name"]

# Longest suffixes first so `_mbps` wins over a hypothetical `_s` clash.
_SUFFIX_UNITS: tuple[tuple[str, str], ...] = (
    ("_mbps", "mbps"),
    ("_gbps", "gbps"),
    ("_kbps", "kbps"),
    ("_bytes", "bytes"),
    ("_bits", "bits"),
    ("_ms", "ms"),
    ("_us", "us"),
    ("_ns", "ns"),
    ("_s", "s"),
)

# Hints appended to the finding message for the common conversions.
_CONVERSIONS = {
    frozenset(("bits", "bytes")): "bytes * 8 -> bits",
    frozenset(("s", "ms")): "s * 1e3 -> ms",
    frozenset(("mbps", "bits")): "mbps * 1e6 -> bits/s",
    frozenset(("mbps", "bytes")): "bytes * 8 / 1e6 / seconds -> mbps",
}


def unit_of_name(name: str) -> str | None:
    """The unit a snake_case identifier carries in its suffix, if any."""
    for suffix, unit in _SUFFIX_UNITS:
        if name.endswith(suffix):
            return unit
    return None


def _unit_of(node: ast.expr) -> str | None:
    """Infer the unit of an expression, conservatively.

    Only expressions that *directly* name a suffixed identifier (a name, an
    attribute, or a call of one — ``total_time_s()`` is seconds) carry a
    unit.  ``*``/``/`` results are unknown by design: wrapping an operand
    in an explicit conversion factor is exactly how mixing is sanctioned.
    """
    if isinstance(node, ast.UnaryOp):
        return _unit_of(node.operand)
    if isinstance(node, (ast.Name, ast.Attribute, ast.Call)):
        name = final_attr(node)
        if name is not None:
            return unit_of_name(name)
    return None


def _compatible(left: str, right: str) -> bool:
    return left == right


def _hint(left: str, right: str) -> str:
    conversion = _CONVERSIONS.get(frozenset((left, right)))
    return f" (e.g. {conversion})" if conversion else ""


class UnitMixRule(Rule):
    """U201: flags arithmetic mixing differently-suffixed unit variables."""

    rule_id = "U201"
    family = "units"
    summary = (
        "additive arithmetic / comparison must not mix unit suffixes "
        "(_mbps/_bits/_bytes/_s/_ms) without an explicit conversion"
    )

    def _check_pair(
        self, node: ast.AST, left: ast.expr, right: ast.expr, verb: str
    ) -> None:
        lu, ru = _unit_of(left), _unit_of(right)
        if lu is not None and ru is not None and not _compatible(lu, ru):
            self.report(
                node,
                f"{verb} mixes `{lu}` and `{ru}` with no conversion "
                f"factor{_hint(lu, ru)}",
            )

    def visit_BinOp(self, node: ast.BinOp) -> None:
        if isinstance(node.op, (ast.Add, ast.Sub)):
            verb = "addition" if isinstance(node.op, ast.Add) else "subtraction"
            self._check_pair(node, node.left, node.right, verb)
        self.generic_visit(node)

    def visit_AugAssign(self, node: ast.AugAssign) -> None:
        if isinstance(node.op, (ast.Add, ast.Sub)):
            self._check_pair(node, node.target, node.value, "augmented assignment")
        self.generic_visit(node)

    def visit_Compare(self, node: ast.Compare) -> None:
        left = node.left
        for op, right in zip(node.ops, node.comparators):
            if isinstance(op, (ast.Lt, ast.LtE, ast.Gt, ast.GtE, ast.Eq, ast.NotEq)):
                self._check_pair(node, left, right, "comparison")
            left = right
        self.generic_visit(node)


class UnitAssignRule(Rule):
    """U202: flags assigning one unit suffix directly to another."""

    rule_id = "U202"
    family = "units"
    summary = (
        "assigning a unit-suffixed expression to a name with a different "
        "unit suffix needs a conversion"
    )

    def visit_Assign(self, node: ast.Assign) -> None:
        value_unit = _unit_of(node.value)
        if value_unit is not None:
            for target in node.targets:
                if isinstance(target, ast.Name):
                    target_unit = unit_of_name(target.id)
                    if target_unit is not None and target_unit != value_unit:
                        self.report(
                            node,
                            f"`{target.id}` ({target_unit}) assigned a "
                            f"`{value_unit}` value with no conversion"
                            f"{_hint(target_unit, value_unit)}",
                        )
        self.generic_visit(node)


UNITS_RULES = (UnitMixRule, UnitAssignRule)
