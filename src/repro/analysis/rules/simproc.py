"""Sim-process rules (S3xx).

``repro.sim.Environment`` processes are generators: an
``env.timeout(...)`` or ``env.event()`` whose result is neither yielded,
assigned, nor passed onward schedules a wake-up nobody waits for — the
process falls straight through, silently compressing simulated time.
Blocking ``time.sleep`` stalls the real thread without advancing the
virtual clock at all.
"""

from __future__ import annotations

import ast

from ..visitor import Rule, final_attr

__all__ = ["SIMPROC_RULES"]


def _is_env_receiver(node: ast.expr) -> bool:
    """True for ``env.x`` / ``self.env.x`` / ``self._env.x`` receivers."""
    name = final_attr(node)
    return name is not None and name.lstrip("_") == "env"


def _contains_yield(fn: ast.FunctionDef | ast.AsyncFunctionDef) -> bool:
    """Whether ``fn`` itself is a generator (nested defs don't count)."""
    stack: list[ast.AST] = list(fn.body)
    while stack:
        node = stack.pop()
        if isinstance(node, (ast.Yield, ast.YieldFrom)):
            return True
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda)):
            continue
        stack.extend(ast.iter_child_nodes(node))
    return False


class DroppedEventRule(Rule):
    """S301: flags sim events created but never yielded/held (dropped)."""

    rule_id = "S301"
    family = "simproc"
    summary = (
        "env.timeout(...) / env.event() results must be yielded or bound; "
        "a discarded event is a silent no-op"
    )

    def visit_Expr(self, node: ast.Expr) -> None:
        call = node.value
        if isinstance(call, ast.Call) and isinstance(call.func, ast.Attribute):
            if call.func.attr in ("timeout", "event") and _is_env_receiver(
                call.func.value
            ):
                self.report(
                    node,
                    f"result of `.{call.func.attr}(...)` is discarded — the "
                    "process never waits on it; `yield` it (or bind it for "
                    "an any_of/all_of race)",
                )
        self.generic_visit(node)


class BlockingSleepRule(Rule):
    """S302: flags blocking ``time.sleep`` inside simulation library code."""

    rule_id = "S302"
    family = "simproc"
    summary = "no blocking time.sleep in simulation library code"

    def visit_Call(self, node: ast.Call) -> None:
        if self.ctx.resolve(node.func) == "time.sleep":
            self.report(
                node,
                "time.sleep blocks the real thread without advancing "
                "virtual time; yield env.timeout(...) inside a process",
            )
        self.generic_visit(node)


class YieldBareCallRule(Rule):
    """S303: flags yielding a bare call result that is not an engine event."""

    rule_id = "S303"
    family = "simproc"
    summary = (
        "yielding a generator call inside a process suspends forever; "
        "wrap it in env.process(...)"
    )

    def __init__(self, ctx) -> None:
        super().__init__(ctx)
        # Names of generator functions defined in this module.
        self._generator_names: set[str] = set()
        for node in ast.walk(ctx.tree):
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                if _contains_yield(node):
                    self._generator_names.add(node.name)

    def visit_Yield(self, node: ast.Yield) -> None:
        value = node.value
        if isinstance(value, ast.Call):
            name = final_attr(value.func)
            if name in self._generator_names:
                self.report(
                    node,
                    f"`yield {name}(...)` hands the engine a raw generator, "
                    "not an Event; wrap it: `yield env.process("
                    f"{name}(...))`",
                )
        self.generic_visit(node)


SIMPROC_RULES = (DroppedEventRule, BlockingSleepRule, YieldBareCallRule)
