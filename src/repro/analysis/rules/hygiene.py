"""API-hygiene rules (H4xx).

Library code must survive ``python -O`` (which strips every ``assert``),
must not share mutable default arguments across calls, and every
``*Config`` dataclass must validate its fields in ``__post_init__`` — the
repo-wide convention (see net/config.py, core/session.py).  Documentation
hygiene (H5xx) lives in :mod:`repro.analysis.rules.docs`.
"""

from __future__ import annotations

import ast

from ..visitor import Rule, final_attr

__all__ = ["HYGIENE_RULES"]


class AssertRule(Rule):
    """H401: flags ``assert`` in library code (stripped by ``python -O``)."""

    rule_id = "H401"
    family = "hygiene"
    summary = "no assert for control flow in library code (`-O` strips it)"

    def visit_Assert(self, node: ast.Assert) -> None:
        self.report(
            node,
            "assert disappears under `python -O`; raise an explicit "
            "exception (ValueError / RuntimeError) instead",
        )
        self.generic_visit(node)


_MUTABLE_DISPLAYS = (ast.List, ast.Dict, ast.Set, ast.ListComp, ast.DictComp, ast.SetComp)
_MUTABLE_CALLS = frozenset({"list", "dict", "set", "bytearray", "defaultdict", "deque"})


def _is_mutable_default(node: ast.expr | None) -> bool:
    if node is None:
        return False
    if isinstance(node, _MUTABLE_DISPLAYS):
        return True
    if isinstance(node, ast.Call):
        name = final_attr(node.func)
        return name in _MUTABLE_CALLS
    return False


class MutableDefaultRule(Rule):
    """H402: flags mutable default arguments (shared across calls)."""

    rule_id = "H402"
    family = "hygiene"
    summary = "no mutable default arguments"

    def _check(self, node: ast.FunctionDef | ast.AsyncFunctionDef) -> None:
        for default in (*node.args.defaults, *node.args.kw_defaults):
            if _is_mutable_default(default):
                self.report(
                    default,
                    f"mutable default argument in `{node.name}` is shared "
                    "across calls; default to None and build inside",
                )
        self.generic_visit(node)

    visit_FunctionDef = _check
    visit_AsyncFunctionDef = _check


def _is_dataclass_decorator(node: ast.expr) -> bool:
    if isinstance(node, ast.Call):
        node = node.func
    return final_attr(node) == "dataclass"


class ConfigValidationRule(Rule):
    """H403: flags ``*Config`` dataclasses without ``__post_init__`` checks."""

    rule_id = "H403"
    family = "hygiene"
    summary = (
        "*Config dataclasses must validate fields in __post_init__ "
        "(repo convention) or be field-free"
    )

    def visit_ClassDef(self, node: ast.ClassDef) -> None:
        is_dataclass = any(
            _is_dataclass_decorator(dec) for dec in node.decorator_list
        )
        if is_dataclass and node.name.endswith("Config"):
            has_fields = any(
                isinstance(stmt, ast.AnnAssign) for stmt in node.body
            )
            has_post_init = any(
                isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef))
                and stmt.name == "__post_init__"
                for stmt in node.body
            )
            if has_fields and not has_post_init:
                self.report(
                    node,
                    f"dataclass `{node.name}` has fields but no "
                    "__post_init__ validation; validate ranges/modes like "
                    "the other *Config classes do",
                )
        self.generic_visit(node)


HYGIENE_RULES = (AssertRule, MutableDefaultRule, ConfigValidationRule)
