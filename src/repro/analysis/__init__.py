"""Repo-specific static analysis: determinism, units, and sim-process lints.

The reproduction's claims rest on bit-for-bit deterministic simulations and
correct Mbps/bits/bytes/seconds arithmetic across ``core``, ``mac``, ``net``
and ``sim``.  Generic linters cannot check either property, so this package
implements an AST-level analyzer with four repo-specific rule families:

* **determinism** (``D1xx``) — wall-clock reads, unseeded or global RNG
  streams, and iteration over bare ``set``s in library code;
* **units** (``U2xx``) — arithmetic mixing incompatible unit suffixes
  (``_mbps``/``_bits``/``_bytes``/``_s``/``_ms``) without a conversion;
* **sim-process** (``S3xx``) — dropped ``env.timeout(...)`` events and
  blocking ``time.sleep`` inside simulation code;
* **hygiene** (``H4xx``) — control-flow ``assert``s (stripped by ``-O``),
  mutable default arguments, unvalidated ``*Config`` dataclasses.

Run it with ``python -m repro.analysis src/repro`` or ``repro lint``.
Suppress a finding in place with ``# repro: noqa[RULE]``.
"""

from __future__ import annotations

from .baseline import load_baseline, write_baseline
from .engine import AnalysisEngine, analyze_paths, analyze_source
from .findings import Finding
from .rules import ALL_RULES, rules_by_family

__all__ = [
    "AnalysisEngine",
    "Finding",
    "ALL_RULES",
    "analyze_paths",
    "analyze_source",
    "load_baseline",
    "write_baseline",
    "rules_by_family",
]
