"""Machine-readable lint output: canonical JSON and SARIF 2.1.0.

Both serializers are deterministic — findings arrive sorted, rule
metadata is sorted by id, and paths are normalized to repo-relative POSIX
— so the rendered documents are **byte-identical** across runs and across
file discovery orders.  The SARIF form is what CI uploads as an artifact
(and what code-scanning UIs ingest); the JSON form is the stable
integration surface for scripts.
"""

from __future__ import annotations

import json
from typing import Any, Iterable

from .findings import Finding
from .paths import repo_relative

__all__ = [
    "rule_metadata",
    "to_json_document",
    "to_sarif",
    "render",
]

_TOOL_NAME = "repro-lint"
_SARIF_SCHEMA = "https://json.schemastore.org/sarif-2.1.0.json"
_SARIF_VERSION = "2.1.0"


def rule_metadata() -> list[dict[str, str]]:
    """Identity metadata for every rule — per-file tiers and project tier.

    Imported lazily so serialization stays usable even if one rule module
    fails to import (the catalog then simply omits that family).
    """
    from .project.report import PROJECT_RULE_CATALOG
    from .rules import ALL_RULES

    entries: dict[str, dict[str, str]] = {}
    for rule in ALL_RULES:
        entries[rule.rule_id] = {
            "id": rule.rule_id,
            "family": rule.family,
            "severity": rule.severity,
            "summary": rule.summary,
        }
    for meta in PROJECT_RULE_CATALOG:
        entries[meta.rule_id] = {
            "id": meta.rule_id,
            "family": meta.family,
            "severity": meta.severity,
            "summary": meta.summary,
        }
    return [entries[rule_id] for rule_id in sorted(entries)]


def _finding_json(finding: Finding) -> dict[str, Any]:
    return {
        "path": repo_relative(finding.path),
        "line": finding.line,
        "col": finding.col,
        "rule": finding.rule,
        "severity": finding.severity,
        "suppressed": finding.suppressed,
        "message": finding.message,
    }


def to_json_document(
    findings: Iterable[Finding],
    project: dict[str, Any] | None = None,
) -> dict[str, Any]:
    """The canonical JSON report shape (``repro lint --format json``)."""
    doc: dict[str, Any] = {
        "version": 1,
        "tool": _TOOL_NAME,
        "rules": rule_metadata(),
        "findings": [_finding_json(f) for f in sorted(findings)],
    }
    if project is not None:
        doc["project"] = project
    return doc


def to_sarif(
    findings: Iterable[Finding],
    project: dict[str, Any] | None = None,
) -> dict[str, Any]:
    """A single-run SARIF 2.1.0 log for the given findings."""
    results = []
    for f in sorted(findings):
        result: dict[str, Any] = {
            "ruleId": f.rule,
            "level": f.severity if f.severity in ("error", "warning") else "note",
            "message": {"text": f.message},
            "locations": [
                {
                    "physicalLocation": {
                        "artifactLocation": {
                            "uri": repo_relative(f.path),
                            "uriBaseId": "SRCROOT",
                        },
                        "region": {
                            "startLine": f.line,
                            "startColumn": f.col,
                        },
                    }
                }
            ],
        }
        if f.suppressed:
            result["suppressions"] = [{"kind": "inSource"}]
        results.append(result)

    run: dict[str, Any] = {
        "tool": {
            "driver": {
                "name": _TOOL_NAME,
                "informationUri": "https://example.invalid/repro-lint",
                "rules": [
                    {
                        "id": meta["id"],
                        "shortDescription": {"text": meta["summary"]},
                        "defaultConfiguration": {
                            "level": meta["severity"]
                            if meta["severity"] in ("error", "warning")
                            else "note"
                        },
                        "properties": {"family": meta["family"]},
                    }
                    for meta in rule_metadata()
                ],
            }
        },
        "originalUriBaseIds": {"SRCROOT": {"uri": "file:///"}},
        "columnKind": "utf16CodeUnits",
        "results": results,
    }
    if project is not None:
        run["properties"] = {"project": project}
    return {
        "$schema": _SARIF_SCHEMA,
        "version": _SARIF_VERSION,
        "runs": [run],
    }


def render(
    fmt: str,
    findings: Iterable[Finding],
    project: dict[str, Any] | None = None,
) -> str:
    """Serialize findings as ``json`` or ``sarif`` text (trailing newline)."""
    if fmt == "json":
        doc = to_json_document(findings, project)
    elif fmt == "sarif":
        doc = to_sarif(findings, project)
    else:
        raise ValueError(f"unknown machine format: {fmt!r}")
    return json.dumps(doc, indent=2) + "\n"
