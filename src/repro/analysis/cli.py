"""CLI for the analyzer: ``python -m repro.analysis`` / ``repro lint``.

Two tiers share this entry point:

- the default per-file tier (D1xx/U2xx/S3xx/H4xx/H5xx style rules);
- ``--project``: the whole-program tier (R5xx/G6xx/P7xx) — symbol
  tables, call graph, reachability from the concurrency entry points.

Exit status is 0 when no unsuppressed finding remains, 1 otherwise, 2 for
usage errors — so the CI lint job fails a PR that introduces a violation.
``--format json|sarif`` prints a machine-readable document instead of the
text listing (or writes it to ``--output`` and prints the summary).
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path

from .baseline import apply_baseline, load_baseline, write_baseline
from .engine import AnalysisEngine
from .rules import ALL_RULES, rules_by_family
from .sarif import render


def _default_target() -> Path:
    """Lint the installed ``repro`` package when no path is given."""
    return Path(__file__).resolve().parents[1]


def _list_rules() -> str:
    from .project.report import PROJECT_RULE_CATALOG

    lines = []
    for family, rules in sorted(rules_by_family().items()):
        lines.append(f"{family}:")
        for rule in rules:
            lines.append(f"  {rule.rule_id}  {rule.summary}")
    families: dict[str, list] = {}
    for meta in PROJECT_RULE_CATALOG:
        families.setdefault(meta.family, []).append(meta)
    for family in sorted(families):
        lines.append(f"{family} (--project):")
        for meta in sorted(families[family], key=lambda m: m.rule_id):
            lines.append(f"  {meta.rule_id}  {meta.summary}")
    return "\n".join(lines)


def build_parser() -> argparse.ArgumentParser:
    """The ``repro lint`` argument parser."""
    parser = argparse.ArgumentParser(
        prog="python -m repro.analysis",
        description=(
            "Repo-specific static analysis: determinism, unit-suffix, "
            "sim-process, and API-hygiene lints; with --project, "
            "whole-program RNG-provenance, shared-state, and cache-purity "
            "analysis."
        ),
        epilog="Suppress a finding in place with `# repro: noqa[RULE]`.",
    )
    parser.add_argument(
        "paths",
        nargs="*",
        type=Path,
        help="files or directories to lint (default: the repro package)",
    )
    parser.add_argument(
        "--project",
        action="store_true",
        help=(
            "run the whole-program tier (R5xx/G6xx/P7xx) over one package "
            "root instead of the per-file rules"
        ),
    )
    parser.add_argument(
        "--format",
        dest="fmt",
        choices=("text", "json", "sarif"),
        default="text",
        help="output format (default: text)",
    )
    parser.add_argument(
        "--output",
        type=Path,
        metavar="FILE",
        help="write the json/sarif document to FILE instead of stdout",
    )
    parser.add_argument(
        "--select",
        metavar="RULES",
        help="comma-separated rule ids or family names to run (default: all)",
    )
    parser.add_argument(
        "--baseline",
        type=Path,
        metavar="FILE",
        help="JSON baseline: findings listed there are suppressed",
    )
    parser.add_argument(
        "--write-baseline",
        type=Path,
        metavar="FILE",
        help="write current unsuppressed findings to FILE and exit 0",
    )
    parser.add_argument(
        "--show-suppressed",
        action="store_true",
        help="also print noqa'd/baselined findings",
    )
    parser.add_argument(
        "--list-rules",
        action="store_true",
        help="print every rule id and summary, then exit",
    )
    parser.add_argument(
        "-q", "--quiet", action="store_true", help="print only the summary line"
    )
    return parser


def _select_rules(spec: str | None):
    if spec is None:
        return None
    wanted = {part.strip().lower() for part in spec.split(",") if part.strip()}
    families = rules_by_family()
    selected = [
        rule
        for rule in ALL_RULES
        if rule.rule_id.lower() in wanted or rule.family in wanted
    ]
    unknown = wanted - {r.rule_id.lower() for r in ALL_RULES} - set(families)
    if unknown:
        raise SystemExit(
            f"unknown rule/family in --select: {', '.join(sorted(unknown))}"
        )
    return selected


def _emit_document(args, findings, project_meta) -> None:
    text = render(args.fmt, findings, project_meta)
    if args.output is not None:
        args.output.write_text(text, encoding="utf-8")
    else:
        sys.stdout.write(text)


def main(argv: list[str] | None = None) -> int:
    """Entry point for ``repro lint`` (returns a process exit status)."""
    parser = build_parser()
    args = parser.parse_args(argv)

    if args.list_rules:
        print(_list_rules())
        return 0

    project_meta = None
    if args.project:
        from .project import analyze_project

        if len(args.paths) > 1:
            parser.error("--project takes a single package root")
        if args.select is not None:
            parser.error("--select applies to the per-file tier only")
        root = args.paths[0] if args.paths else _default_target()
        report = analyze_project(root)
        findings = report.findings
        project_meta = {
            "root": report.root,
            "modules": report.modules,
            "entry_points": report.entry_points,
            "certified": report.certified,
            "parse_errors": report.parse_errors,
        }
    else:
        rules = _select_rules(args.select)
        paths = args.paths or [_default_target()]
        findings = AnalysisEngine(rules).analyze_paths(paths)

    if args.baseline is not None:
        findings = apply_baseline(findings, load_baseline(args.baseline))

    if args.write_baseline is not None:
        count = write_baseline(args.write_baseline, findings)
        print(f"wrote {count} finding(s) to {args.write_baseline}")
        return 0

    active = [f for f in findings if not f.suppressed]
    suppressed = len(findings) - len(active)
    summary = f"{len(active)} finding(s)"
    if suppressed:
        summary += f", {suppressed} suppressed"

    if args.fmt != "text":
        _emit_document(args, findings, project_meta)
        if args.output is not None:
            print(f"{summary}; wrote {args.fmt} report to {args.output}")
        return 1 if active else 0

    shown = findings if args.show_suppressed else active
    if not args.quiet:
        for finding in shown:
            print(finding.format())
    print(summary)
    return 1 if active else 0


if __name__ == "__main__":
    sys.exit(main())
