"""CLI for the analyzer: ``python -m repro.analysis`` / ``repro lint``.

Exit status is 0 when no unsuppressed finding remains, 1 otherwise, 2 for
usage errors — so the CI lint job fails a PR that introduces a violation.
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path

from .baseline import apply_baseline, load_baseline, write_baseline
from .engine import AnalysisEngine
from .rules import ALL_RULES, rules_by_family


def _default_target() -> Path:
    """Lint the installed ``repro`` package when no path is given."""
    return Path(__file__).resolve().parents[1]


def _list_rules() -> str:
    lines = []
    for family, rules in sorted(rules_by_family().items()):
        lines.append(f"{family}:")
        for rule in rules:
            lines.append(f"  {rule.rule_id}  {rule.summary}")
    return "\n".join(lines)


def build_parser() -> argparse.ArgumentParser:
    """The ``repro lint`` argument parser."""
    parser = argparse.ArgumentParser(
        prog="python -m repro.analysis",
        description=(
            "Repo-specific static analysis: determinism, unit-suffix, "
            "sim-process, and API-hygiene lints."
        ),
        epilog="Suppress a finding in place with `# repro: noqa[RULE]`.",
    )
    parser.add_argument(
        "paths",
        nargs="*",
        type=Path,
        help="files or directories to lint (default: the repro package)",
    )
    parser.add_argument(
        "--select",
        metavar="RULES",
        help="comma-separated rule ids or family names to run (default: all)",
    )
    parser.add_argument(
        "--baseline",
        type=Path,
        metavar="FILE",
        help="JSON baseline: findings listed there are suppressed",
    )
    parser.add_argument(
        "--write-baseline",
        type=Path,
        metavar="FILE",
        help="write current unsuppressed findings to FILE and exit 0",
    )
    parser.add_argument(
        "--show-suppressed",
        action="store_true",
        help="also print noqa'd/baselined findings",
    )
    parser.add_argument(
        "--list-rules",
        action="store_true",
        help="print every rule id and summary, then exit",
    )
    parser.add_argument(
        "-q", "--quiet", action="store_true", help="print only the summary line"
    )
    return parser


def _select_rules(spec: str | None):
    if spec is None:
        return None
    wanted = {part.strip().lower() for part in spec.split(",") if part.strip()}
    families = rules_by_family()
    selected = [
        rule
        for rule in ALL_RULES
        if rule.rule_id.lower() in wanted or rule.family in wanted
    ]
    unknown = wanted - {r.rule_id.lower() for r in ALL_RULES} - set(families)
    if unknown:
        raise SystemExit(
            f"unknown rule/family in --select: {', '.join(sorted(unknown))}"
        )
    return selected


def main(argv: list[str] | None = None) -> int:
    """Entry point for ``repro lint`` (returns a process exit status)."""
    parser = build_parser()
    args = parser.parse_args(argv)

    if args.list_rules:
        print(_list_rules())
        return 0

    rules = _select_rules(args.select)
    paths = args.paths or [_default_target()]
    findings = AnalysisEngine(rules).analyze_paths(paths)

    if args.baseline is not None:
        findings = apply_baseline(findings, load_baseline(args.baseline))

    if args.write_baseline is not None:
        count = write_baseline(args.write_baseline, findings)
        print(f"wrote {count} finding(s) to {args.write_baseline}")
        return 0

    active = [f for f in findings if not f.suppressed]
    shown = findings if args.show_suppressed else active
    if not args.quiet:
        for finding in shown:
            print(finding.format())
    suppressed = len(findings) - len(active)
    summary = f"{len(active)} finding(s)"
    if suppressed:
        summary += f", {suppressed} suppressed"
    print(summary)
    return 1 if active else 0


if __name__ == "__main__":
    sys.exit(main())
