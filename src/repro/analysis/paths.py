"""Repo-relative path normalization shared by baselines and project reports.

Findings and baseline records key on file paths; keying the *raw* string as
given on the command line means a baseline written from one invocation root
silently fails to suppress from another (``src/repro/x.py`` vs
``/abs/src/repro/x.py`` vs ``repro/x.py``).  Everything that persists or
compares paths goes through :func:`repo_relative`: resolve to an absolute
path, strip the repository root (detected by walking up to a directory
holding ``pyproject.toml`` or ``.git``), and render with POSIX separators.
Paths outside any repository fall back to their absolute POSIX form, which
is still stable for a fixed checkout.
"""

from __future__ import annotations

import functools
from pathlib import Path

__all__ = ["find_repo_root", "repo_relative"]

_ROOT_MARKERS = ("pyproject.toml", ".git")


@functools.lru_cache(maxsize=256)
def find_repo_root(start: Path) -> Path | None:
    """The nearest ancestor of ``start`` that looks like a repo root."""
    candidate = start if start.is_dir() else start.parent
    for directory in (candidate, *candidate.parents):
        if any((directory / marker).exists() for marker in _ROOT_MARKERS):
            return directory
    return None


def repo_relative(path: Path | str) -> str:
    """Normalize a path to repo-relative POSIX form (or absolute POSIX)."""
    p = Path(path)
    if not p.is_absolute():
        p = Path.cwd() / p
    p = p.resolve()
    root = find_repo_root(p)
    if root is not None:
        try:
            return p.relative_to(root).as_posix()
        except ValueError:
            pass
    return p.as_posix()
