"""Baseline files: accept today's findings, fail only on new ones.

A baseline is a JSON list of ``{"path", "rule", "line"}`` records.  It lets
the lint gate land before every legacy violation is fixed: known findings
are demoted to suppressed, anything new still fails.  The repo's goal state
is an *empty* baseline — the tree itself lints clean.

Paths are normalized to **repo-relative POSIX** form on both write and
load, so a baseline written from the repo root still matches findings
produced from a subdirectory, an absolute invocation, or Windows
separators — and the file itself is byte-stable across machines.
"""

from __future__ import annotations

import json
from pathlib import Path, PurePosixPath, PureWindowsPath
from typing import Iterable

from .findings import Finding
from .paths import repo_relative

__all__ = ["load_baseline", "write_baseline", "apply_baseline"]


def _norm_path(path: str) -> str:
    """Canonical repo-relative POSIX form of a finding/baseline path."""
    # Normalize separators first so a Windows-written baseline loads
    # anywhere, then strip the repo prefix from absolute/cwd-relative
    # paths.  Already-relative POSIX paths that exist under the repo root
    # pass through unchanged.
    text = str(PureWindowsPath(path).as_posix()) if "\\" in path else path
    pure = PurePosixPath(text)
    if not pure.is_absolute() and not Path(text).exists():
        # A repo-relative record loaded from elsewhere: keep verbatim.
        return str(pure)
    return repo_relative(text)


def _norm_key(key: tuple[str, str, int]) -> tuple[str, str, int]:
    path, rule, line = key
    return (_norm_path(path), rule, line)


def load_baseline(path: Path | str) -> set[tuple[str, str, int]]:
    """Read baseline keys; a missing file is an empty baseline."""
    path = Path(path)
    if not path.exists():
        return set()
    records = json.loads(path.read_text(encoding="utf-8"))
    if not isinstance(records, list):
        raise ValueError(f"baseline {path} must be a JSON list")
    keys: set[tuple[str, str, int]] = set()
    for record in records:
        keys.add(
            _norm_key(
                (str(record["path"]), str(record["rule"]), int(record["line"]))
            )
        )
    return keys


def write_baseline(path: Path | str, findings: Iterable[Finding]) -> int:
    """Persist the unsuppressed findings as the new baseline; returns count."""
    records = sorted(
        {
            (_norm_path(f.path), f.rule, f.line)
            for f in findings
            if not f.suppressed
        }
    )
    Path(path).write_text(
        json.dumps(
            [
                {"path": rec_path, "rule": rule, "line": line}
                for rec_path, rule, line in records
            ],
            indent=2,
        )
        + "\n",
        encoding="utf-8",
    )
    return len(records)


def apply_baseline(
    findings: Iterable[Finding], baseline: set[tuple[str, str, int]]
) -> list[Finding]:
    """Mark findings present in the baseline as suppressed."""
    return [
        f.as_suppressed() if _norm_key(f.key()) in baseline else f
        for f in findings
    ]
