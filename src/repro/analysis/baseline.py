"""Baseline files: accept today's findings, fail only on new ones.

A baseline is a JSON list of ``{"path", "rule", "line"}`` records.  It lets
the lint gate land before every legacy violation is fixed: known findings
are demoted to suppressed, anything new still fails.  The repo's goal state
is an *empty* baseline — the tree itself lints clean.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Iterable

from .findings import Finding

__all__ = ["load_baseline", "write_baseline", "apply_baseline"]


def load_baseline(path: Path | str) -> set[tuple[str, str, int]]:
    """Read baseline keys; a missing file is an empty baseline."""
    path = Path(path)
    if not path.exists():
        return set()
    records = json.loads(path.read_text(encoding="utf-8"))
    if not isinstance(records, list):
        raise ValueError(f"baseline {path} must be a JSON list")
    keys: set[tuple[str, str, int]] = set()
    for record in records:
        keys.add((str(record["path"]), str(record["rule"]), int(record["line"])))
    return keys


def write_baseline(path: Path | str, findings: Iterable[Finding]) -> int:
    """Persist the unsuppressed findings as the new baseline; returns count."""
    records = [
        {"path": f.path, "rule": f.rule, "line": f.line}
        for f in sorted(findings)
        if not f.suppressed
    ]
    Path(path).write_text(
        json.dumps(records, indent=2) + "\n", encoding="utf-8"
    )
    return len(records)


def apply_baseline(
    findings: Iterable[Finding], baseline: set[tuple[str, str, int]]
) -> list[Finding]:
    """Mark findings present in the baseline as suppressed."""
    return [
        f.as_suppressed() if f.key() in baseline else f for f in findings
    ]
