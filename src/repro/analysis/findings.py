"""Finding records produced by the lint rules."""

from __future__ import annotations

from dataclasses import dataclass, field, replace


@dataclass(frozen=True, order=True)
class Finding:
    """One rule violation at a source location.

    Orders by (path, line, col, rule) so reports and baselines are stable
    across runs regardless of rule execution order.
    """

    path: str
    line: int
    col: int
    rule: str
    message: str = field(compare=False)
    suppressed: bool = field(default=False, compare=False)
    # "warning" for the per-file style rules, "error" for the project-tier
    # invariant rules; carried into the JSON/SARIF serializations.
    severity: str = field(default="warning", compare=False)

    def format(self) -> str:
        tag = " (suppressed)" if self.suppressed else ""
        return f"{self.path}:{self.line}:{self.col}: {self.rule} {self.message}{tag}"

    def key(self) -> tuple[str, str, int]:
        """Identity used by baselines: where and what, ignoring the column."""
        return (self.path, self.rule, self.line)

    def as_suppressed(self) -> "Finding":
        return replace(self, suppressed=True)
