"""``python -m repro.analysis`` dispatches to the analyzer CLI."""

import sys

from .cli import main

sys.exit(main())
