"""The analysis engine: collect files, parse, run rules, filter findings."""

from __future__ import annotations

import ast
from pathlib import Path
from typing import Iterable, Sequence

from .findings import Finding
from .rules import ALL_RULES
from .visitor import FileContext, Rule

__all__ = ["AnalysisEngine", "analyze_paths", "analyze_source"]

_SKIP_DIRS = frozenset({"__pycache__", ".git", ".venv", "node_modules"})


def iter_python_files(paths: Iterable[Path]) -> list[Path]:
    """Expand files/directories into a sorted, de-duplicated .py file list."""
    seen: dict[Path, None] = {}
    for path in paths:
        if path.is_dir():
            for sub in sorted(path.rglob("*.py")):
                if not any(part in _SKIP_DIRS for part in sub.parts):
                    seen.setdefault(sub, None)
        elif path.suffix == ".py":
            seen.setdefault(path, None)
    return sorted(seen)


class AnalysisEngine:
    """Runs a rule set over source files and accumulates findings."""

    def __init__(self, rules: Sequence[type[Rule]] | None = None) -> None:
        self.rules: tuple[type[Rule], ...] = tuple(
            ALL_RULES if rules is None else rules
        )

    def analyze_source(self, source: str, path: str = "<string>") -> list[Finding]:
        """Lint one in-memory module; parse errors become E000 findings."""
        try:
            tree = ast.parse(source, filename=path)
        except SyntaxError as err:
            return [
                Finding(
                    path=path,
                    line=err.lineno or 1,
                    col=(err.offset or 0) + 1,
                    rule="E000",
                    message=f"syntax error: {err.msg}",
                )
            ]
        ctx = FileContext(path=path, source=source, tree=tree)
        for rule_cls in self.rules:
            rule_cls(ctx).run()
        return sorted(ctx.findings)

    def analyze_file(self, path: Path) -> list[Finding]:
        try:
            source = path.read_text(encoding="utf-8")
        except (OSError, UnicodeDecodeError) as err:
            return [
                Finding(
                    path=str(path),
                    line=1,
                    col=1,
                    rule="E001",
                    message=f"unreadable file: {err}",
                )
            ]
        return self.analyze_source(source, path=str(path))

    def analyze_paths(self, paths: Iterable[Path | str]) -> list[Finding]:
        findings: list[Finding] = []
        for path in iter_python_files(Path(p) for p in paths):
            findings.extend(self.analyze_file(path))
        return sorted(findings)


def analyze_paths(
    paths: Iterable[Path | str], rules: Sequence[type[Rule]] | None = None
) -> list[Finding]:
    """Convenience wrapper: lint files/dirs with the full (or given) rule set."""
    return AnalysisEngine(rules).analyze_paths(paths)


def analyze_source(
    source: str,
    path: str = "<string>",
    rules: Sequence[type[Rule]] | None = None,
) -> list[Finding]:
    """Convenience wrapper for one in-memory module (used by the tests)."""
    return AnalysisEngine(rules).analyze_source(source, path=path)
