"""Visitor framework shared by every lint rule.

A :class:`FileContext` is built once per file (source lines, import alias
map, ``# repro: noqa`` suppressions); each :class:`Rule` is an
``ast.NodeVisitor`` that walks the module tree and emits
:class:`~repro.analysis.findings.Finding` records through the context.
"""

from __future__ import annotations

import ast
import re
from typing import ClassVar, Iterable

from .findings import Finding

__all__ = ["FileContext", "Rule", "dotted_name", "final_attr"]

# ``# repro: noqa`` suppresses every rule on the line; ``# repro: noqa[D101]``
# (comma-separated ids allowed) suppresses just those rules.
_NOQA_RE = re.compile(r"#\s*repro:\s*noqa(?:\[([A-Za-z0-9_,\s]+)\])?")


def _collect_noqa(lines: Iterable[str]) -> dict[int, frozenset[str] | None]:
    """Map 1-based line numbers to suppressed rule ids (None = all rules)."""
    noqa: dict[int, frozenset[str] | None] = {}
    for lineno, text in enumerate(lines, start=1):
        match = _NOQA_RE.search(text)
        if match is None:
            continue
        ids = match.group(1)
        if ids is None:
            noqa[lineno] = None
        else:
            noqa[lineno] = frozenset(
                part.strip().upper() for part in ids.split(",") if part.strip()
            )
    return noqa


def _collect_aliases(tree: ast.Module) -> dict[str, str]:
    """Map local names to the dotted module/object they were imported as.

    ``import numpy as np`` yields ``np -> numpy``;
    ``from numpy.random import default_rng`` yields
    ``default_rng -> numpy.random.default_rng``.  Imports anywhere in the
    file count (the repo imports lazily inside functions in a few places).
    """
    aliases: dict[str, str] = {}
    for node in ast.walk(tree):
        if isinstance(node, ast.Import):
            for item in node.names:
                local = item.asname or item.name.split(".")[0]
                target = item.name if item.asname else item.name.split(".")[0]
                aliases[local] = target
        elif isinstance(node, ast.ImportFrom) and node.module and node.level == 0:
            for item in node.names:
                if item.name == "*":
                    continue
                aliases[item.asname or item.name] = f"{node.module}.{item.name}"
    return aliases


def dotted_name(node: ast.expr) -> str | None:
    """The source-level dotted path of a Name/Attribute chain, else None."""
    parts: list[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        return ".".join(reversed(parts))
    return None


def final_attr(node: ast.expr) -> str | None:
    """The last segment of a Name/Attribute/Call name (``a.b.c()`` -> c)."""
    if isinstance(node, ast.Call):
        node = node.func
    if isinstance(node, ast.Attribute):
        return node.attr
    if isinstance(node, ast.Name):
        return node.id
    return None


class FileContext:
    """Everything rules need to know about one source file."""

    def __init__(self, path: str, source: str, tree: ast.Module) -> None:
        self.path = path
        self.source = source
        self.tree = tree
        self.lines = source.splitlines()
        self.noqa = _collect_noqa(self.lines)
        self.aliases = _collect_aliases(tree)
        self.findings: list[Finding] = []

    def resolve(self, node: ast.expr) -> str | None:
        """Import-aware dotted name: ``np.random.default_rng`` with
        ``import numpy as np`` resolves to ``numpy.random.default_rng``."""
        raw = dotted_name(node)
        if raw is None:
            return None
        head, _, rest = raw.partition(".")
        resolved_head = self.aliases.get(head, head)
        return f"{resolved_head}.{rest}" if rest else resolved_head

    def is_suppressed(self, rule_id: str, line: int) -> bool:
        if line not in self.noqa:
            return False
        ids = self.noqa[line]
        return ids is None or rule_id.upper() in ids

    def add(
        self,
        rule_id: str,
        node: ast.AST,
        message: str,
        severity: str = "warning",
    ) -> None:
        line = getattr(node, "lineno", 1)
        col = getattr(node, "col_offset", 0) + 1
        self.findings.append(
            Finding(
                path=self.path,
                line=line,
                col=col,
                rule=rule_id,
                message=message,
                suppressed=self.is_suppressed(rule_id, line),
                severity=severity,
            )
        )


class Rule(ast.NodeVisitor):
    """One lint rule: a visitor plus identity metadata.

    Subclasses set ``rule_id`` (family letter + number), ``family`` and
    ``summary``, then implement ``visit_*`` methods calling
    :meth:`report`.  A fresh instance runs per file, so per-file state can
    live on ``self``.
    """

    rule_id: ClassVar[str] = "X000"
    family: ClassVar[str] = "misc"
    summary: ClassVar[str] = ""
    severity: ClassVar[str] = "warning"

    def __init__(self, ctx: FileContext) -> None:
        self.ctx = ctx

    def report(self, node: ast.AST, message: str) -> None:
        self.ctx.add(self.rule_id, node, message, severity=self.severity)

    def run(self) -> None:
        self.visit(self.ctx.tree)
