"""Draco-like compression and decode models.

The paper compresses the soldier video with Google's Draco codec.  Two
codec properties matter to the streaming experiments and are modeled here:

* **Rate**: compressed bytes per point.  Calibrated from the paper's
  reported bitrates (330K pts -> 235 Mbps, 550K pts -> 364 Mbps at 30 FPS),
  which work out to ~2.7-3.0 bytes/point — consistent with Draco geometry +
  color at typical quantization.  Denser clouds compress slightly better
  (more spatial coherence), which the linear-in-1/sqrt(density) term captures.
* **Decode throughput**: the paper picks 550K points as "the highest point
  density that can be decompressed by Draco at 30 FPS on the client
  laptops", i.e. a decode ceiling of 16.5M points/s.  The client model uses
  this to cap achievable FPS regardless of network rate.
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["CompressionModel", "DecoderModel", "DEFAULT_COMPRESSION", "DEFAULT_DECODER"]


@dataclass(frozen=True)
class CompressionModel:
    """Compressed-size model: bytes = points * bytes_per_point(points).

    ``bytes_per_point`` interpolates between the two calibration anchors from
    the paper; outside that range it extrapolates smoothly and is clamped to
    stay positive.
    """

    # Anchors: (points_per_frame, bytes_per_point) from the paper's bitrates.
    anchor_low: tuple[float, float] = (330_000.0, 235e6 / 8 / 30 / 330_000.0)
    anchor_high: tuple[float, float] = (550_000.0, 364e6 / 8 / 30 / 550_000.0)

    def bytes_per_point(self, points_per_frame: float) -> float:
        """Compressed bytes per point at a given frame density."""
        if points_per_frame <= 0:
            raise ValueError("points_per_frame must be positive")
        (n0, b0), (n1, b1) = self.anchor_low, self.anchor_high
        # Linear in 1/sqrt(n): denser clouds are more coherent and compress
        # slightly better per point.
        x0, x1 = n0**-0.5, n1**-0.5
        x = points_per_frame**-0.5
        slope = (b1 - b0) / (x1 - x0)
        return max(0.5, b0 + slope * (x - x0))

    def frame_bytes(self, points_per_frame: float) -> float:
        """Compressed size of a whole frame in bytes."""
        return points_per_frame * self.bytes_per_point(points_per_frame)

    def cell_bytes(self, cell_points: float, frame_points: float) -> float:
        """Compressed size of one cell carrying ``cell_points`` points.

        Cells are coded independently (each is "independently prefetchable
        and decodable"), with the per-point rate determined by the frame's
        overall density plus a small fixed per-cell header.
        """
        if cell_points <= 0:
            return 0.0
        header_bytes = 64.0  # cell metadata: id, quantization params, counts
        return cell_points * self.bytes_per_point(frame_points) + header_bytes

    def bitrate_mbps(self, points_per_frame: float, fps: float = 30.0) -> float:
        """Streaming bitrate of a full (non-culled) video in Mbps."""
        return self.frame_bytes(points_per_frame) * 8.0 * fps / 1e6


@dataclass(frozen=True)
class DecoderModel:
    """Client-side decode throughput model.

    ``points_per_second`` is the sustained Draco decode rate of the modeled
    client (Intel i7 laptop in the paper).  550K points/frame at 30 FPS was
    the paper's decode limit, giving the 16.5M points/s default.
    """

    points_per_second: float = 550_000.0 * 30.0

    def decode_time(self, points: float) -> float:
        """Seconds to decode ``points`` worth of compressed cells."""
        if points < 0:
            raise ValueError("points must be non-negative")
        return points / self.points_per_second

    def max_fps(self, points_per_frame: float) -> float:
        """Highest frame rate the decoder sustains at this density."""
        if points_per_frame <= 0:
            raise ValueError("points_per_frame must be positive")
        return self.points_per_second / points_per_frame


DEFAULT_COMPRESSION = CompressionModel()
DEFAULT_DECODER = DecoderModel()
