"""Point-cloud frame container.

A frame is an ``(N, 3)`` array of points in meters, in a right-handed world
frame with +Z up and the ground at z = 0 — the convention shared by the
traces, the room model, and the mmWave channel.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..geometry import AABB

__all__ = ["PointCloudFrame"]


@dataclass(frozen=True)
class PointCloudFrame:
    """One frame of a volumetric video.

    Attributes:
        points: ``(N, 3)`` float array of point positions in meters.
        nominal_points: the point count this frame *represents*.  The
            experiments run on down-sampled geometry for speed; bitrate and
            decode-time computations use ``nominal_points`` so the network
            numbers match the full-density video (see DESIGN.md §1).
    """

    points: np.ndarray
    nominal_points: int = 0
    _bounds: AABB = field(init=False, repr=False)

    def __post_init__(self) -> None:
        pts = np.asarray(self.points, dtype=np.float64)
        if pts.ndim != 2 or pts.shape[1] != 3:
            raise ValueError("points must have shape (N, 3)")
        if len(pts) == 0:
            raise ValueError("a frame must contain at least one point")
        object.__setattr__(self, "points", pts)
        nominal = self.nominal_points or len(pts)
        if nominal < len(pts):
            raise ValueError(
                "nominal_points must be >= the sampled point count "
                f"({nominal} < {len(pts)})"
            )
        object.__setattr__(self, "nominal_points", int(nominal))
        object.__setattr__(self, "_bounds", AABB.of_points(pts))

    def __len__(self) -> int:
        return len(self.points)

    @property
    def bounds(self) -> AABB:
        """Tight bounding box of the sampled points."""
        return self._bounds

    @property
    def scale_factor(self) -> float:
        """nominal points per sampled point (>= 1)."""
        return self.nominal_points / len(self.points)

    def transformed(self, offset: np.ndarray) -> "PointCloudFrame":
        """A copy translated by ``offset``."""
        return PointCloudFrame(
            self.points + np.asarray(offset, dtype=np.float64),
            nominal_points=self.nominal_points,
        )

    def subsample(self, fraction: float, seed: int = 0) -> "PointCloudFrame":
        """Randomly keep ``fraction`` of the points (at least one).

        ``nominal_points`` scales down proportionally, so bitrate stays
        consistent with the retained geometry.
        """
        if not 0.0 < fraction <= 1.0:
            raise ValueError("fraction must be in (0, 1]")
        rng = np.random.default_rng(seed)
        n = max(1, int(round(len(self.points) * fraction)))
        idx = rng.choice(len(self.points), size=n, replace=False)
        return PointCloudFrame(
            self.points[idx],
            nominal_points=max(n, int(round(self.nominal_points * fraction))),
        )
