"""Octree partitioning — the adaptive alternative to the uniform cell grid.

Production volumetric codecs (ViVo's cells, GROOT's PD-tree) partition
adaptively: dense regions split deeper so every transmitted unit carries a
comparable payload, while empty space costs nothing.  This module provides
an octree whose leaves serve the same role as :class:`CellGrid` cells —
each leaf is independently prefetchable/decodable and carries a stable id —
so the visibility, similarity and scheduling machinery runs unchanged on
either partitioner via the shared :class:`FrameOccupancy` interface.

Compared to the uniform grid at similar leaf counts, the octree:

* equalizes per-cell payload (fewer tiny cells on silhouettes);
* adapts the partition depth to content density per frame;
* keeps leaf ids stable across frames by deriving them from the spatial
  path through a *fixed* root cube, not from the content.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..geometry import AABB
from .cloud import PointCloudFrame

__all__ = ["Octree", "OctreeOccupancy", "build_octree"]


@dataclass(frozen=True)
class _Leaf:
    """One octree leaf: path id, bounds, sampled point count."""

    leaf_id: int
    bounds: AABB
    count: int


@dataclass(frozen=True)
class Octree:
    """An octree over a fixed root cube.

    Leaf ids encode the root-to-leaf octant path in base 8 (offset per
    depth level), so the same region of space always maps to the same id
    regardless of frame content — the property IoU similarity requires.
    """

    root: AABB
    max_depth: int
    max_points_per_leaf: int
    leaves: tuple[_Leaf, ...]
    _scale_factor: float = 1.0

    def __len__(self) -> int:
        return len(self.leaves)

    @property
    def cell_ids(self) -> np.ndarray:
        return np.array([leaf.leaf_id for leaf in self.leaves], dtype=np.int64)

    def occupancy(self) -> "OctreeOccupancy":
        """Adapt the octree to the :class:`FrameOccupancy`-like interface."""
        order = np.argsort([leaf.leaf_id for leaf in self.leaves])
        leaves = [self.leaves[i] for i in order]
        return OctreeOccupancy(
            tree=self,
            cell_ids=np.array([l.leaf_id for l in leaves], dtype=np.int64),
            counts=np.array([l.count for l in leaves], dtype=np.int64),
            scale_factor=self._scale_factor,
            _bounds_by_id={l.leaf_id: l.bounds for l in leaves},
        )

    def depth_of(self, leaf_id: int) -> int:
        """Tree depth a leaf id encodes (root leaf = 0)."""
        depth = 0
        remaining = leaf_id
        while remaining >= _LEVEL_OFFSETS[depth + 1]:
            depth += 1
            if depth >= len(_LEVEL_OFFSETS) - 1:
                break
        return depth


# Leaf-id layout: level d uses ids in [offset(d), offset(d) + 8^d).
_MAX_LEVELS = 12
_LEVEL_OFFSETS = [0]
for _d in range(1, _MAX_LEVELS + 2):
    _LEVEL_OFFSETS.append(_LEVEL_OFFSETS[-1] + 8 ** (_d - 1))


def _leaf_id(depth: int, path_index: int) -> int:
    return _LEVEL_OFFSETS[depth] + path_index


@dataclass(frozen=True)
class OctreeOccupancy:
    """Octree leaves exposed with the :class:`FrameOccupancy` interface.

    Duck-type compatible with what :func:`compute_visibility` needs: a
    ``grid``-like object (self) offering ``cell_bounds_array`` and
    ``cell_centers``, plus parallel ``cell_ids``/``counts`` arrays.
    """

    tree: Octree
    cell_ids: np.ndarray
    counts: np.ndarray
    scale_factor: float
    _bounds_by_id: dict = field(repr=False, default_factory=dict)

    def __len__(self) -> int:
        return len(self.cell_ids)

    # -- FrameOccupancy interface ------------------------------------------

    @property
    def grid(self) -> "OctreeOccupancy":
        return self

    @property
    def total_points(self) -> float:
        return float(self.counts.sum() * self.scale_factor)

    def nominal_counts(self) -> np.ndarray:
        return self.counts * self.scale_factor

    def as_dict(self) -> dict[int, float]:
        return {
            int(c): float(n * self.scale_factor)
            for c, n in zip(self.cell_ids, self.counts)
        }

    # -- grid-like interface (used by the visibility computation) -----------

    @property
    def cell_size(self) -> float:
        """Mean leaf edge length (heterogeneous; for diagnostics only)."""
        sizes = [self._bounds_by_id[int(c)].size[0] for c in self.cell_ids]
        return float(np.mean(sizes)) if sizes else 0.0

    def cell_bounds_array(self, cell_ids: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
        lows = np.stack(
            [self._bounds_by_id[int(c)].lo for c in np.atleast_1d(cell_ids)]
        )
        highs = np.stack(
            [self._bounds_by_id[int(c)].hi for c in np.atleast_1d(cell_ids)]
        )
        return lows, highs

    def cell_centers(self, cell_ids: np.ndarray) -> np.ndarray:
        lows, highs = self.cell_bounds_array(cell_ids)
        return 0.5 * (lows + highs)


def _cube_around(bounds: AABB) -> AABB:
    """The smallest axis-aligned cube containing ``bounds``."""
    size = float(bounds.size.max())
    center = bounds.center
    half = 0.5 * size
    return AABB(center - half, center + half)


def build_octree(
    frame: PointCloudFrame,
    root: AABB | None = None,
    max_points_per_leaf: int = 400,
    max_depth: int = 6,
) -> Octree:
    """Build an octree over a frame by recursive occupancy splitting.

    Args:
        frame: the point-cloud frame to partition.
        root: fixed root cube; pass the *video-level* cube so leaf ids are
            stable across frames (defaults to this frame's bounding cube).
        max_points_per_leaf: sampled-point threshold above which a node
            splits (until ``max_depth``).
        max_depth: maximum subdivision depth.
    """
    if max_points_per_leaf < 1:
        raise ValueError("max_points_per_leaf must be >= 1")
    if not 0 <= max_depth <= _MAX_LEVELS:
        raise ValueError(f"max_depth must be in [0, {_MAX_LEVELS}]")
    root = _cube_around(root if root is not None else frame.bounds)
    points = frame.points

    leaves: list[_Leaf] = []

    def recurse(bounds: AABB, idx: np.ndarray, depth: int, path_index: int):
        if len(idx) == 0:
            return
        if depth >= max_depth or len(idx) <= max_points_per_leaf:
            leaves.append(
                _Leaf(
                    leaf_id=_leaf_id(depth, path_index),
                    bounds=bounds,
                    count=len(idx),
                )
            )
            return
        center = bounds.center
        pts = points[idx]
        octant = (
            (pts[:, 0] >= center[0]).astype(np.int64)
            + 2 * (pts[:, 1] >= center[1]).astype(np.int64)
            + 4 * (pts[:, 2] >= center[2]).astype(np.int64)
        )
        for o in range(8):
            sub_idx = idx[octant == o]
            if len(sub_idx) == 0:
                continue
            lo = np.where(
                [o & 1, o & 2, o & 4], center, bounds.lo
            ).astype(np.float64)
            hi = np.where(
                [o & 1, o & 2, o & 4], bounds.hi, center
            ).astype(np.float64)
            recurse(AABB(lo, hi), sub_idx, depth + 1, 8 * path_index + o)

    recurse(root, np.arange(len(points)), 0, 0)
    return Octree(
        root=root,
        max_depth=max_depth,
        max_points_per_leaf=max_points_per_leaf,
        leaves=tuple(leaves),
        _scale_factor=frame.scale_factor,
    )
