"""Volumetric video container and the paper's three quality levels.

The paper creates three versions of the soldier video by varying point
density — 330K, 430K and 550K points per frame — whose Draco-compressed
bitrates span "235 to 364 Mbps".  Those calibration points live here as
:data:`QUALITIES` and are consumed by the compression model and by Table 1.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..geometry import AABB
from .cloud import PointCloudFrame

__all__ = ["QualityLevel", "QUALITIES", "QUALITY_ORDER", "PointCloudVideo"]


@dataclass(frozen=True)
class QualityLevel:
    """One encoding quality of a volumetric video.

    Attributes:
        name: ``"low"`` / ``"medium"`` / ``"high"``.
        points_per_frame: nominal full-density point count.
        bitrate_mbps: Draco-compressed streaming bitrate at 30 FPS.  The low
            and high values are the endpoints the paper reports; medium is
            interpolated on point count.
    """

    name: str
    points_per_frame: int
    bitrate_mbps: float

    @property
    def bytes_per_frame(self) -> float:
        """Compressed frame size in bytes at 30 FPS."""
        return self.bitrate_mbps * 1e6 / 8.0 / 30.0

    @property
    def bytes_per_point(self) -> float:
        return self.bytes_per_frame / self.points_per_frame


QUALITIES: dict[str, QualityLevel] = {
    "low": QualityLevel("low", 330_000, 235.0),
    "medium": QualityLevel("medium", 430_000, 294.0),
    "high": QualityLevel("high", 550_000, 364.0),
}

QUALITY_ORDER: tuple[str, ...] = ("low", "medium", "high")


@dataclass
class PointCloudVideo:
    """An ordered sequence of point-cloud frames at a fixed frame rate."""

    name: str
    frames: list[PointCloudFrame]
    fps: float = 30.0
    quality: QualityLevel = field(default_factory=lambda: QUALITIES["high"])

    def __post_init__(self) -> None:
        if not self.frames:
            raise ValueError("a video needs at least one frame")
        if self.fps <= 0:
            raise ValueError("fps must be positive")

    def __len__(self) -> int:
        return len(self.frames)

    def __getitem__(self, index: int) -> PointCloudFrame:
        return self.frames[index]

    def __iter__(self):
        return iter(self.frames)

    @property
    def duration(self) -> float:
        """Video length in seconds."""
        return len(self.frames) / self.fps

    @property
    def bounds(self) -> AABB:
        """Union bounding box over all frames (the content volume)."""
        box = self.frames[0].bounds
        for frame in self.frames[1:]:
            box = box.union(frame.bounds)
        return box

    def frame_at(self, t: float) -> PointCloudFrame:
        """Frame displayed at time ``t`` seconds (clamped to the video)."""
        index = int(t * self.fps)
        index = max(0, min(index, len(self.frames) - 1))
        return self.frames[index]

    def translated(self, offset) -> "PointCloudVideo":
        """The video moved by ``offset`` (e.g. to place content in a room).

        Trace studies and the room channel share world coordinates; use
        this to put the content where the users actually look.
        """
        import numpy as np

        off = np.asarray(offset, dtype=np.float64)
        return PointCloudVideo(
            name=self.name,
            frames=[f.transformed(off) for f in self.frames],
            fps=self.fps,
            quality=self.quality,
        )

    def at_quality(self, name: str) -> "PointCloudVideo":
        """The same geometry re-labeled at another quality level.

        Quality only changes the nominal density/bitrate, not the sampled
        geometry, mirroring how the paper derives the three versions from
        one capture.
        """
        level = QUALITIES[name]
        frames = [
            PointCloudFrame(f.points, nominal_points=level.points_per_frame)
            for f in self.frames
        ]
        return PointCloudVideo(
            name=self.name.rsplit("-", 1)[0] + f"-{level.name}",
            frames=frames,
            fps=self.fps,
            quality=level,
        )
