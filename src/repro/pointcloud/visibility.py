"""Visibility-aware cell selection — the ViVo optimizations.

ViVo reduces volumetric streaming data through three "visibility-aware"
optimizations, all reproduced here on the cell grid:

* **Viewport visibility**: only cells whose AABB intersects the user's view
  frustum are fetched (frustum culling).
* **Occlusion visibility**: cells hidden behind dense nearer cells along the
  sight line are skipped.  We reproduce this with per-cell ray casting: the
  ray from the eye to a cell accumulates the point mass of the cells it
  crosses first, and the target is culled once that mass makes the surface
  in front opaque.
* **Distance visibility**: point density a user can perceive falls with
  distance, so far cells are fetched at reduced density (a fetch fraction).

:func:`compute_visibility` returns both the visible cell set (what Fig. 2's
IoU similarity is computed on) and the nominal point/byte cost (what the
streaming simulator charges to the network).
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..geometry import Frustum
from .cells import FrameOccupancy
from .compression import CompressionModel, DEFAULT_COMPRESSION

__all__ = [
    "VisibilityConfig",
    "VisibilityResult",
    "compute_visibility",
    "compute_visibility_batch",
]


@dataclass(frozen=True)
class VisibilityConfig:
    """Which ViVo optimizations are active and their parameters.

    ``VisibilityConfig.vanilla()`` disables everything (fetch the full
    cloud); the default enables all three, matching the paper's "multi-user
    ViVo" player.
    """

    viewport: bool = True
    occlusion: bool = True
    distance: bool = True
    # Occlusion: a cell is culled when the cells crossed by the sight ray
    # in front of it carry at least this fraction of the frame's points —
    # i.e. the surface in front of it is opaque.
    occlusion_opacity_fraction: float = 0.08
    # Distance: full density inside d_full; density decays ~ (d_full/d)^2
    # beyond, floored at min_fraction.
    distance_full_m: float = 1.8
    distance_min_fraction: float = 0.25

    def __post_init__(self) -> None:
        if not 0.0 < self.occlusion_opacity_fraction <= 1.0:
            raise ValueError("occlusion_opacity_fraction must be in (0, 1]")
        if self.distance_full_m <= 0:
            raise ValueError("distance_full_m must be positive")
        if not 0.0 < self.distance_min_fraction <= 1.0:
            raise ValueError("distance_min_fraction must be in (0, 1]")

    @staticmethod
    def vanilla() -> "VisibilityConfig":
        return VisibilityConfig(viewport=False, occlusion=False, distance=False)


@dataclass(frozen=True)
class VisibilityResult:
    """Outcome of visibility computation for one (frame, viewer) pair."""

    cell_ids: np.ndarray  # visible cells, sorted ascending
    fractions: np.ndarray  # fetch fraction per visible cell, in (0, 1]
    nominal_counts: np.ndarray  # full-density points per visible cell
    frame_nominal_points: float  # full-density points in the whole frame
    _visible_set: frozenset = field(init=False, repr=False)

    def __post_init__(self) -> None:
        if not (len(self.cell_ids) == len(self.fractions) == len(self.nominal_counts)):
            raise ValueError("parallel arrays must align")
        object.__setattr__(
            self, "_visible_set", frozenset(int(c) for c in self.cell_ids)
        )

    @property
    def visible_set(self) -> frozenset:
        """Visible cell ids as a set (the user's visibility map)."""
        return self._visible_set

    @property
    def requested_points(self) -> float:
        """Nominal points actually fetched after density reduction."""
        return float(np.sum(self.fractions * self.nominal_counts))

    @property
    def visible_fraction(self) -> float:
        """Fetched points as a fraction of the full frame (ViVo's saving)."""
        if self.frame_nominal_points <= 0:
            return 0.0
        return self.requested_points / self.frame_nominal_points

    def request_bytes(
        self, compression: CompressionModel = DEFAULT_COMPRESSION
    ) -> float:
        """Compressed bytes needed to fetch the visible cells."""
        per_cell = [
            compression.cell_bytes(f * n, self.frame_nominal_points)
            for f, n in zip(self.fractions, self.nominal_counts)
        ]
        return float(sum(per_cell))

    def cell_fraction(self, cell_id: int) -> float:
        """Fetch fraction for one cell (0 if not visible)."""
        pos = np.searchsorted(self.cell_ids, cell_id)
        if pos < len(self.cell_ids) and self.cell_ids[pos] == cell_id:
            return float(self.fractions[pos])
        return 0.0


def compute_visibility(
    occupancy: FrameOccupancy,
    frustum: Frustum,
    config: VisibilityConfig | None = None,
) -> VisibilityResult:
    """Apply the configured ViVo optimizations to one frame for one viewer."""
    config = config or VisibilityConfig()
    return compute_visibility_batch(occupancy, [frustum], config)[0]


def compute_visibility_batch(
    occupancy: FrameOccupancy,
    frustums: list[Frustum],
    config: VisibilityConfig | None = None,
) -> list[VisibilityResult]:
    """Visibility for many viewers of one frame, sharing per-frame arrays.

    Cell bounds, centers, and nominal counts depend only on the occupancy,
    so for a venue's worth of viewers they are computed once here instead
    of once per viewer.  Each viewer's result is identical to calling
    :func:`compute_visibility` alone.
    """
    config = config or VisibilityConfig()
    grid = occupancy.grid
    all_ids = occupancy.cell_ids
    all_nominal = occupancy.nominal_counts().astype(np.float64)
    frame_points = float(all_nominal.sum())

    all_lows = all_highs = all_centers = None
    if len(all_ids) and (config.viewport or config.occlusion):
        all_lows, all_highs = grid.cell_bounds_array(all_ids)
    if len(all_ids) and (config.occlusion or config.distance):
        all_centers = grid.cell_centers(all_ids)

    results = []
    for frustum in frustums:
        cell_ids, nominal = all_ids, all_nominal
        lows, highs, centers = all_lows, all_highs, all_centers

        # 1. Viewport: frustum-cull occupied cells.
        if config.viewport and len(cell_ids):
            mask = frustum.intersects_aabbs(lows, highs)
            cell_ids = cell_ids[mask]
            nominal = nominal[mask]
            lows, highs = lows[mask], highs[mask]
            if centers is not None:
                centers = centers[mask]

        # 2. Occlusion: angular-bin depth culling.
        if config.occlusion and len(cell_ids):
            keep = _occlusion_mask(
                centers, lows, highs, nominal, frustum, config, grid.cell_size
            )
            cell_ids = cell_ids[keep]
            nominal = nominal[keep]
            centers = centers[keep]

        # 3. Distance: reduced fetch fraction for far cells.
        if config.distance and len(cell_ids):
            dist = np.linalg.norm(centers - frustum.position, axis=1)
            fractions = np.where(
                dist <= config.distance_full_m,
                1.0,
                np.maximum(
                    config.distance_min_fraction,
                    (config.distance_full_m / np.maximum(dist, 1e-9)) ** 2,
                ),
            )
        else:
            fractions = np.ones(len(cell_ids))

        order = np.argsort(cell_ids)
        results.append(
            VisibilityResult(
                cell_ids=cell_ids[order],
                fractions=fractions[order],
                nominal_counts=nominal[order],
                frame_nominal_points=frame_points,
            )
        )
    return results


def _occlusion_mask(
    centers: np.ndarray,
    lows: np.ndarray,
    highs: np.ndarray,
    nominal: np.ndarray,
    frustum: Frustum,
    config: VisibilityConfig,
    cell_size: float,
) -> np.ndarray:
    """Boolean keep-mask implementing ray-based occlusion culling.

    For every candidate cell, cast the sight ray from the eye to the cell
    center and accumulate the point mass of the *other* cells the ray
    passes through on the way.  Once the accumulated mass exceeds the
    opacity fraction of the frame, the surface in front is opaque and the
    cell is culled — the point-level occlusion behaviour of ViVo reduced
    to cell granularity.

    Batched slab tests: targets are processed in chunks, each chunk testing
    (T, C, 3) segment-vs-box slabs in one shot.  Nominal counts are
    integer-valued, so the accumulated blocker mass is exact under any
    summation order and the keep decisions are bit-identical to
    :func:`_occlusion_mask_reference`.
    """
    n = len(centers)
    if n <= 1:
        return np.ones(n, dtype=bool)
    eye = frustum.position
    rel = centers - eye  # ray directions (to each cell center)
    threshold = config.occlusion_opacity_fraction * float(nominal.sum())

    # Shrink blocker boxes slightly so rays grazing a shared face do not
    # count neighbours as blockers.
    eps_box = 0.02 * cell_size
    b_lo = lows + eps_box
    b_hi = highs - eps_box
    lo_rel = b_lo - eye  # (C, 3), shared by every target ray
    outside_axis = (eye < b_lo) | (eye > b_hi)  # (C, 3)
    hi_rel = b_hi - eye

    keep = np.ones(n, dtype=bool)
    chunk = max(1, (1 << 18) // n)
    with np.errstate(divide="ignore", invalid="ignore"):
        for start in range(0, n, chunk):
            idx = np.arange(start, min(start + chunk, n))
            d = rel[idx]  # (T, 3)
            inv = np.where(np.abs(d) > 1e-12, 1.0 / d, np.inf)
            # Slab test of segments eye -> center_i against all boxes.
            t0 = lo_rel[None, :, :] * inv[:, None, :]  # (T, C, 3)
            t1 = hi_rel[None, :, :] * inv[:, None, :]
            # Degenerate axes: if the eye coordinate is outside the slab,
            # the box cannot be hit along that axis.
            degenerate = (np.abs(d) <= 1e-12)[:, None, :]  # (T, 1, 3)
            outside = degenerate & outside_axis[None, :, :]
            tmin = np.where(degenerate, -np.inf, np.minimum(t0, t1))
            tmax = np.where(degenerate, np.inf, np.maximum(t0, t1))
            enter = tmin.max(axis=2)  # (T, C)
            exit_ = tmax.min(axis=2)
            hit = (enter < exit_) & (exit_ > 0.0) & ~outside.any(axis=2)
            # Block only if crossed strictly before reaching the target cell.
            before = hit & (enter < 0.98) & (enter > 0.0)
            before[np.arange(len(idx)), idx] = False
            mass = before @ nominal  # exact: integer-valued counts
            keep[idx] = mass < threshold
    return keep


def _occlusion_mask_reference(
    grid,
    cell_ids: np.ndarray,
    nominal: np.ndarray,
    frustum: Frustum,
    config: VisibilityConfig,
) -> np.ndarray:
    """Scalar reference for :func:`_occlusion_mask` (one ray per iteration).

    Kept verbatim as the golden-equivalence baseline for the batched kernel
    (asserted by ``tests/pointcloud/test_visibility_kernels.py``) and timed
    against it by ``repro bench --kernels``.
    """
    n = len(cell_ids)
    if n <= 1:
        return np.ones(n, dtype=bool)
    centers = grid.cell_centers(cell_ids)
    lows, highs = grid.cell_bounds_array(cell_ids)
    eye = frustum.position
    rel = centers - eye
    threshold = config.occlusion_opacity_fraction * float(nominal.sum())

    keep = np.ones(n, dtype=bool)
    eps_box = 0.02 * grid.cell_size
    b_lo = lows + eps_box
    b_hi = highs - eps_box
    with np.errstate(divide="ignore", invalid="ignore"):
        for i in range(n):
            d = rel[i]
            inv = np.where(np.abs(d) > 1e-12, 1.0 / d, np.inf)
            t0 = (b_lo - eye) * inv
            t1 = (b_hi - eye) * inv
            degenerate = np.abs(d) <= 1e-12
            outside = degenerate & ((eye < b_lo) | (eye > b_hi))
            tmin = np.where(degenerate, -np.inf, np.minimum(t0, t1))
            tmax = np.where(degenerate, np.inf, np.maximum(t0, t1))
            enter = tmin.max(axis=1)
            exit_ = tmax.min(axis=1)
            hit = (enter < exit_) & (exit_ > 0.0) & ~outside.any(axis=1)
            before = hit & (enter < 0.98) & (enter > 0.0)
            before[i] = False
            if float(nominal[before].sum()) >= threshold:
                keep[i] = False
    return keep
