"""Visibility-aware cell selection — the ViVo optimizations.

ViVo reduces volumetric streaming data through three "visibility-aware"
optimizations, all reproduced here on the cell grid:

* **Viewport visibility**: only cells whose AABB intersects the user's view
  frustum are fetched (frustum culling).
* **Occlusion visibility**: cells hidden behind dense nearer cells along the
  sight line are skipped.  We reproduce this with per-cell ray casting: the
  ray from the eye to a cell accumulates the point mass of the cells it
  crosses first, and the target is culled once that mass makes the surface
  in front opaque.
* **Distance visibility**: point density a user can perceive falls with
  distance, so far cells are fetched at reduced density (a fetch fraction).

:func:`compute_visibility` returns both the visible cell set (what Fig. 2's
IoU similarity is computed on) and the nominal point/byte cost (what the
streaming simulator charges to the network).
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..geometry import Frustum
from .cells import FrameOccupancy
from .compression import CompressionModel, DEFAULT_COMPRESSION

__all__ = ["VisibilityConfig", "VisibilityResult", "compute_visibility"]


@dataclass(frozen=True)
class VisibilityConfig:
    """Which ViVo optimizations are active and their parameters.

    ``VisibilityConfig.vanilla()`` disables everything (fetch the full
    cloud); the default enables all three, matching the paper's "multi-user
    ViVo" player.
    """

    viewport: bool = True
    occlusion: bool = True
    distance: bool = True
    # Occlusion: a cell is culled when the cells crossed by the sight ray
    # in front of it carry at least this fraction of the frame's points —
    # i.e. the surface in front of it is opaque.
    occlusion_opacity_fraction: float = 0.08
    # Distance: full density inside d_full; density decays ~ (d_full/d)^2
    # beyond, floored at min_fraction.
    distance_full_m: float = 1.8
    distance_min_fraction: float = 0.25

    def __post_init__(self) -> None:
        if not 0.0 < self.occlusion_opacity_fraction <= 1.0:
            raise ValueError("occlusion_opacity_fraction must be in (0, 1]")
        if self.distance_full_m <= 0:
            raise ValueError("distance_full_m must be positive")
        if not 0.0 < self.distance_min_fraction <= 1.0:
            raise ValueError("distance_min_fraction must be in (0, 1]")

    @staticmethod
    def vanilla() -> "VisibilityConfig":
        return VisibilityConfig(viewport=False, occlusion=False, distance=False)


@dataclass(frozen=True)
class VisibilityResult:
    """Outcome of visibility computation for one (frame, viewer) pair."""

    cell_ids: np.ndarray  # visible cells, sorted ascending
    fractions: np.ndarray  # fetch fraction per visible cell, in (0, 1]
    nominal_counts: np.ndarray  # full-density points per visible cell
    frame_nominal_points: float  # full-density points in the whole frame
    _visible_set: frozenset = field(init=False, repr=False)

    def __post_init__(self) -> None:
        if not (len(self.cell_ids) == len(self.fractions) == len(self.nominal_counts)):
            raise ValueError("parallel arrays must align")
        object.__setattr__(
            self, "_visible_set", frozenset(int(c) for c in self.cell_ids)
        )

    @property
    def visible_set(self) -> frozenset:
        """Visible cell ids as a set (the user's visibility map)."""
        return self._visible_set

    @property
    def requested_points(self) -> float:
        """Nominal points actually fetched after density reduction."""
        return float(np.sum(self.fractions * self.nominal_counts))

    @property
    def visible_fraction(self) -> float:
        """Fetched points as a fraction of the full frame (ViVo's saving)."""
        if self.frame_nominal_points <= 0:
            return 0.0
        return self.requested_points / self.frame_nominal_points

    def request_bytes(
        self, compression: CompressionModel = DEFAULT_COMPRESSION
    ) -> float:
        """Compressed bytes needed to fetch the visible cells."""
        per_cell = [
            compression.cell_bytes(f * n, self.frame_nominal_points)
            for f, n in zip(self.fractions, self.nominal_counts)
        ]
        return float(sum(per_cell))

    def cell_fraction(self, cell_id: int) -> float:
        """Fetch fraction for one cell (0 if not visible)."""
        pos = np.searchsorted(self.cell_ids, cell_id)
        if pos < len(self.cell_ids) and self.cell_ids[pos] == cell_id:
            return float(self.fractions[pos])
        return 0.0


def compute_visibility(
    occupancy: FrameOccupancy,
    frustum: Frustum,
    config: VisibilityConfig | None = None,
) -> VisibilityResult:
    """Apply the configured ViVo optimizations to one frame for one viewer."""
    config = config or VisibilityConfig()
    grid = occupancy.grid
    cell_ids = occupancy.cell_ids
    nominal = occupancy.nominal_counts().astype(np.float64)
    frame_points = float(nominal.sum())

    # 1. Viewport: frustum-cull occupied cells.
    if config.viewport and len(cell_ids):
        lows, highs = grid.cell_bounds_array(cell_ids)
        mask = frustum.intersects_aabbs(lows, highs)
        cell_ids = cell_ids[mask]
        nominal = nominal[mask]

    # 2. Occlusion: angular-bin depth culling.
    if config.occlusion and len(cell_ids):
        keep = _occlusion_mask(grid, cell_ids, nominal, frustum, config)
        cell_ids = cell_ids[keep]
        nominal = nominal[keep]

    # 3. Distance: reduced fetch fraction for far cells.
    if config.distance and len(cell_ids):
        centers = grid.cell_centers(cell_ids)
        dist = np.linalg.norm(centers - frustum.position, axis=1)
        fractions = np.where(
            dist <= config.distance_full_m,
            1.0,
            np.maximum(
                config.distance_min_fraction,
                (config.distance_full_m / np.maximum(dist, 1e-9)) ** 2,
            ),
        )
    else:
        fractions = np.ones(len(cell_ids))

    order = np.argsort(cell_ids)
    return VisibilityResult(
        cell_ids=cell_ids[order],
        fractions=fractions[order],
        nominal_counts=nominal[order],
        frame_nominal_points=frame_points,
    )


def _occlusion_mask(
    grid,
    cell_ids: np.ndarray,
    nominal: np.ndarray,
    frustum: Frustum,
    config: VisibilityConfig,
) -> np.ndarray:
    """Boolean keep-mask implementing ray-based occlusion culling.

    For every candidate cell, cast the sight ray from the eye to the cell
    center and accumulate the point mass of the *other* cells the ray
    passes through on the way.  Once the accumulated mass exceeds the
    opacity fraction of the frame, the surface in front is opaque and the
    cell is culled — the point-level occlusion behaviour of ViVo reduced
    to cell granularity.  O(C^2) slab tests, vectorized over the blockers.
    """
    n = len(cell_ids)
    if n <= 1:
        return np.ones(n, dtype=bool)
    centers = grid.cell_centers(cell_ids)
    lows, highs = grid.cell_bounds_array(cell_ids)
    eye = frustum.position
    rel = centers - eye  # ray directions (to each cell center)
    threshold = config.occlusion_opacity_fraction * float(nominal.sum())

    keep = np.ones(n, dtype=bool)
    # Shrink blocker boxes slightly so rays grazing a shared face do not
    # count neighbours as blockers.
    eps_box = 0.02 * grid.cell_size
    b_lo = lows + eps_box
    b_hi = highs - eps_box
    with np.errstate(divide="ignore", invalid="ignore"):
        for i in range(n):
            d = rel[i]
            # Slab test of segment eye -> center_i against all boxes.
            inv = np.where(np.abs(d) > 1e-12, 1.0 / d, np.inf)
            t0 = (b_lo - eye) * inv
            t1 = (b_hi - eye) * inv
            # Degenerate axes: if the eye coordinate is outside the slab,
            # the box cannot be hit along that axis.
            degenerate = np.abs(d) <= 1e-12
            outside = degenerate & ((eye < b_lo) | (eye > b_hi))
            tmin = np.where(degenerate, -np.inf, np.minimum(t0, t1))
            tmax = np.where(degenerate, np.inf, np.maximum(t0, t1))
            enter = tmin.max(axis=1)
            exit_ = tmax.min(axis=1)
            hit = (enter < exit_) & (exit_ > 0.0) & ~outside.any(axis=1)
            # Block only if crossed strictly before reaching the target cell.
            before = hit & (enter < 0.98) & (enter > 0.0)
            before[i] = False
            if float(nominal[before].sum()) >= threshold:
                keep[i] = False
    return keep
