"""Volumetric video substrate: point clouds, cells, compression, visibility."""

from .cells import CellGrid, FrameOccupancy, PAPER_CELL_SIZES
from .cloud import PointCloudFrame
from .codec import CellCodec, EncodedCell
from .compression import (
    DEFAULT_COMPRESSION,
    DEFAULT_DECODER,
    CompressionModel,
    DecoderModel,
)
from .octree import Octree, OctreeOccupancy, build_octree
from .synthesis import HumanoidModel, synthesize_frame, synthesize_video
from .video import QUALITIES, QUALITY_ORDER, PointCloudVideo, QualityLevel
from .visibility import (
    VisibilityConfig,
    VisibilityResult,
    compute_visibility,
    compute_visibility_batch,
)

__all__ = [
    "CellGrid",
    "FrameOccupancy",
    "PAPER_CELL_SIZES",
    "PointCloudFrame",
    "CellCodec",
    "EncodedCell",
    "CompressionModel",
    "DecoderModel",
    "DEFAULT_COMPRESSION",
    "DEFAULT_DECODER",
    "Octree",
    "OctreeOccupancy",
    "build_octree",
    "HumanoidModel",
    "synthesize_frame",
    "synthesize_video",
    "QUALITIES",
    "QUALITY_ORDER",
    "PointCloudVideo",
    "QualityLevel",
    "VisibilityConfig",
    "VisibilityResult",
    "compute_visibility",
    "compute_visibility_batch",
]
