"""A working per-cell point-cloud codec (Draco-style, pure Python).

The rest of the library *models* compression (bytes/point calibrated to the
paper's bitrates).  This module actually implements the classical pipeline
those numbers come from, at cell granularity so every cell is independently
decodable — the property ViVo-style streaming depends on:

1. **quantize** point coordinates to ``quantization_bits`` per axis inside
   the cell's bounding box (Draco's position quantization);
2. **order** the quantized points along a Morton (Z-order) curve so that
   spatially adjacent points become numerically adjacent;
3. **delta-encode** consecutive Morton codes (small, highly skewed values);
4. **entropy-code** the varint-packed deltas with DEFLATE.

Decoding inverts the pipeline; the reconstruction error is bounded by the
quantization step.  At the typical 10-11 bits used for human-scale cells
the measured output lands in the same ~2-4 bytes/point band as the
calibrated :class:`~repro.pointcloud.compression.CompressionModel`, which
ties the model to an executable artifact.
"""

from __future__ import annotations

import struct
import zlib
from dataclasses import dataclass

import numpy as np

from ..geometry import AABB

__all__ = ["CellCodec", "EncodedCell"]

_MAGIC = b"RPC1"


def _part1by2(x: np.ndarray) -> np.ndarray:
    """Spread the low 21 bits of x so there are two zero bits between each."""
    x = x.astype(np.uint64) & np.uint64(0x1FFFFF)
    x = (x | (x << np.uint64(32))) & np.uint64(0x1F00000000FFFF)
    x = (x | (x << np.uint64(16))) & np.uint64(0x1F0000FF0000FF)
    x = (x | (x << np.uint64(8))) & np.uint64(0x100F00F00F00F00F)
    x = (x | (x << np.uint64(4))) & np.uint64(0x10C30C30C30C30C3)
    x = (x | (x << np.uint64(2))) & np.uint64(0x1249249249249249)
    return x


def _compact1by2(x: np.ndarray) -> np.ndarray:
    """Inverse of :func:`_part1by2`."""
    x = x.astype(np.uint64) & np.uint64(0x1249249249249249)
    x = (x ^ (x >> np.uint64(2))) & np.uint64(0x10C30C30C30C30C3)
    x = (x ^ (x >> np.uint64(4))) & np.uint64(0x100F00F00F00F00F)
    x = (x ^ (x >> np.uint64(8))) & np.uint64(0x1F0000FF0000FF)
    x = (x ^ (x >> np.uint64(16))) & np.uint64(0x1F00000000FFFF)
    x = (x ^ (x >> np.uint64(32))) & np.uint64(0x1FFFFF)
    return x


def _morton_encode(ijk: np.ndarray) -> np.ndarray:
    """Interleave (N, 3) integer coordinates into Morton codes."""
    return (
        _part1by2(ijk[:, 0])
        | (_part1by2(ijk[:, 1]) << np.uint64(1))
        | (_part1by2(ijk[:, 2]) << np.uint64(2))
    )


def _morton_decode(codes: np.ndarray) -> np.ndarray:
    out = np.empty((len(codes), 3), dtype=np.uint64)
    out[:, 0] = _compact1by2(codes)
    out[:, 1] = _compact1by2(codes >> np.uint64(1))
    out[:, 2] = _compact1by2(codes >> np.uint64(2))
    return out


def _varint_pack(values: np.ndarray) -> bytes:
    """LEB128-style varint packing of non-negative integers."""
    out = bytearray()
    for v in values:
        v = int(v)
        while True:
            byte = v & 0x7F
            v >>= 7
            if v:
                out.append(byte | 0x80)
            else:
                out.append(byte)
                break
    return bytes(out)


def _varint_unpack(data: bytes, count: int) -> np.ndarray:
    out = np.empty(count, dtype=np.uint64)
    pos = 0
    for i in range(count):
        shift = 0
        value = 0
        while True:
            byte = data[pos]
            pos += 1
            value |= (byte & 0x7F) << shift
            if not byte & 0x80:
                break
            shift += 7
        out[i] = value
    return out


@dataclass(frozen=True)
class EncodedCell:
    """One independently decodable compressed cell."""

    payload: bytes
    num_points: int
    bounds: AABB
    quantization_bits: int

    @property
    def num_bytes(self) -> int:
        return len(self.payload)

    @property
    def bytes_per_point(self) -> float:
        if self.num_points == 0:
            return 0.0
        return len(self.payload) / self.num_points


@dataclass(frozen=True)
class CellCodec:
    """Encoder/decoder for cell payloads.

    ``quantization_bits`` per axis bounds the reconstruction error at
    ``cell_extent / 2^bits`` (e.g. a 50 cm cell at 10 bits: ~0.5 mm).
    """

    quantization_bits: int = 10
    compression_level: int = 6

    def __post_init__(self) -> None:
        if not 1 <= self.quantization_bits <= 21:
            raise ValueError("quantization_bits must be in [1, 21]")
        if not 0 <= self.compression_level <= 9:
            raise ValueError("compression_level must be in [0, 9]")

    # -- encode -----------------------------------------------------------

    def encode(self, points: np.ndarray, bounds: AABB | None = None) -> EncodedCell:
        """Compress an ``(N, 3)`` point set into one cell payload."""
        points = np.asarray(points, dtype=np.float64)
        if points.ndim != 2 or points.shape[1] != 3 or len(points) == 0:
            raise ValueError("need a non-empty (N, 3) point array")
        bounds = bounds or AABB.of_points(points)
        scale = np.maximum(bounds.size, 1e-12)
        levels = (1 << self.quantization_bits) - 1
        ijk = np.clip(
            np.round((points - bounds.lo) / scale * levels), 0, levels
        ).astype(np.uint64)

        codes = np.sort(_morton_encode(ijk))
        deltas = np.empty_like(codes)
        deltas[0] = codes[0]
        deltas[1:] = codes[1:] - codes[:-1]
        raw = _varint_pack(deltas)
        compressed = zlib.compress(raw, self.compression_level)
        header = _MAGIC + struct.pack(
            "<IB6d", len(points), self.quantization_bits, *bounds.lo, *bounds.hi
        )
        return EncodedCell(
            payload=header + compressed,
            num_points=len(points),
            bounds=bounds,
            quantization_bits=self.quantization_bits,
        )

    # -- decode -----------------------------------------------------------

    def decode(self, cell: EncodedCell | bytes) -> np.ndarray:
        """Reconstruct the quantized point set, shape ``(N, 3)``."""
        payload = cell.payload if isinstance(cell, EncodedCell) else cell
        if payload[:4] != _MAGIC:
            raise ValueError("not a CellCodec payload")
        header_size = 4 + struct.calcsize("<IB6d")
        count, bits, *corners = struct.unpack("<IB6d", payload[4:header_size])
        lo = np.array(corners[:3])
        hi = np.array(corners[3:])
        raw = zlib.decompress(payload[header_size:])
        deltas = _varint_unpack(raw, count)
        codes = np.cumsum(deltas.astype(np.uint64))
        ijk = _morton_decode(codes).astype(np.float64)
        levels = (1 << bits) - 1
        return lo + ijk / levels * np.maximum(hi - lo, 1e-12)

    def max_error_m(self, bounds: AABB) -> float:
        """Worst-case per-axis reconstruction error for a cell."""
        levels = (1 << self.quantization_bits) - 1
        return float(np.max(bounds.size) / levels / 2.0)
