"""Spatial cell partitioning of point-cloud videos.

ViVo-style systems split the point cloud into independently prefetchable,
decodable cubic cells; the paper partitions at 25, 50 and 100 cm and computes
per-user visibility maps over those cells.  :class:`CellGrid` fixes the cell
lattice over a content volume so cell indices are stable across frames and
across users — a prerequisite for intersection-over-union similarity.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..geometry import AABB
from .cloud import PointCloudFrame

__all__ = ["CellGrid", "FrameOccupancy", "PAPER_CELL_SIZES"]

# Cell edge lengths used in the paper's Fig. 2 analysis, in meters.
PAPER_CELL_SIZES: tuple[float, ...] = (0.25, 0.50, 1.00)


@dataclass(frozen=True)
class CellGrid:
    """A fixed axis-aligned lattice of cubic cells covering ``bounds``.

    Cell ids are linear indices ``ix + nx * (iy + ny * iz)`` into the lattice,
    which stays identical for every frame and user of the same video.
    """

    bounds: AABB
    cell_size: float
    dims: tuple[int, int, int] = field(init=False)

    def __post_init__(self) -> None:
        if self.cell_size <= 0:
            raise ValueError("cell_size must be positive")
        extent = self.bounds.size
        dims = tuple(
            max(1, int(np.ceil(e / self.cell_size - 1e-9))) for e in extent
        )
        object.__setattr__(self, "dims", dims)

    @staticmethod
    def covering(frame_or_bounds, cell_size: float, margin: float = 0.0) -> "CellGrid":
        """Grid covering a frame, video, or AABB with an optional margin."""
        if isinstance(frame_or_bounds, AABB):
            bounds = frame_or_bounds
        else:
            bounds = frame_or_bounds.bounds
        if margin:
            bounds = bounds.expanded(margin)
        return CellGrid(bounds, cell_size)

    @property
    def num_cells(self) -> int:
        nx, ny, nz = self.dims
        return nx * ny * nz

    # -- index math --------------------------------------------------------

    def cell_index_of(self, points: np.ndarray) -> np.ndarray:
        """Linear cell index for each point in an ``(N, 3)`` array.

        Points outside the grid are clamped into the boundary cells; the
        grid is built to cover the content, so this only absorbs floating-
        point edge cases.
        """
        points = np.atleast_2d(np.asarray(points, dtype=np.float64))
        rel = (points - self.bounds.lo) / self.cell_size
        ijk = np.floor(rel).astype(np.int64)
        for axis in range(3):
            ijk[:, axis] = np.clip(ijk[:, axis], 0, self.dims[axis] - 1)
        nx, ny, _ = self.dims
        return ijk[:, 0] + nx * (ijk[:, 1] + ny * ijk[:, 2])

    def ijk_of(self, cell_id: int | np.ndarray) -> np.ndarray:
        """Inverse of the linear index: ``(..., 3)`` integer coordinates."""
        cell_id = np.asarray(cell_id, dtype=np.int64)
        nx, ny, _ = self.dims
        ix = cell_id % nx
        iy = (cell_id // nx) % ny
        iz = cell_id // (nx * ny)
        return np.stack([ix, iy, iz], axis=-1)

    def cell_bounds(self, cell_id: int) -> AABB:
        """The AABB of one cell."""
        ijk = self.ijk_of(cell_id).astype(np.float64)
        lo = self.bounds.lo + ijk * self.cell_size
        return AABB(lo, lo + self.cell_size)

    def cell_bounds_array(self, cell_ids: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
        """Vectorized ``(lows, highs)`` corner arrays for many cells."""
        ijk = self.ijk_of(np.asarray(cell_ids)).astype(np.float64)
        lows = self.bounds.lo + ijk * self.cell_size
        return lows, lows + self.cell_size

    def cell_centers(self, cell_ids: np.ndarray) -> np.ndarray:
        lows, highs = self.cell_bounds_array(cell_ids)
        return 0.5 * (lows + highs)

    # -- occupancy ----------------------------------------------------------

    def occupancy(self, frame: PointCloudFrame) -> "FrameOccupancy":
        """Which cells a frame occupies and with how many points."""
        idx = self.cell_index_of(frame.points)
        cell_ids, counts = np.unique(idx, return_counts=True)
        return FrameOccupancy(
            grid=self,
            cell_ids=cell_ids,
            counts=counts,
            scale_factor=frame.scale_factor,
        )


@dataclass(frozen=True)
class FrameOccupancy:
    """Occupied cells of one frame on a :class:`CellGrid`.

    ``counts`` are sampled-point counts; multiply by ``scale_factor`` for
    nominal (full-density) counts used in size computations.
    """

    grid: CellGrid
    cell_ids: np.ndarray
    counts: np.ndarray
    scale_factor: float = 1.0

    def __post_init__(self) -> None:
        if len(self.cell_ids) != len(self.counts):
            raise ValueError("cell_ids and counts must align")

    def __len__(self) -> int:
        return len(self.cell_ids)

    @property
    def total_points(self) -> float:
        """Nominal point count across all occupied cells."""
        return float(self.counts.sum() * self.scale_factor)

    def nominal_counts(self) -> np.ndarray:
        return self.counts * self.scale_factor

    def count_of(self, cell_id: int) -> float:
        """Nominal point count of one cell (0 if unoccupied)."""
        pos = np.searchsorted(self.cell_ids, cell_id)
        if pos < len(self.cell_ids) and self.cell_ids[pos] == cell_id:
            return float(self.counts[pos] * self.scale_factor)
        return 0.0

    def as_dict(self) -> dict[int, float]:
        return {
            int(c): float(n * self.scale_factor)
            for c, n in zip(self.cell_ids, self.counts)
        }
