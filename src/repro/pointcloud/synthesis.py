"""Procedural volumetric-video generator (the 8i "soldier" stand-in).

The paper streams the 8i dynamic voxelized point cloud "soldier" — a captured
human figure ~1.8 m tall, 30 FPS, with versions at 330K/430K/550K points per
frame.  That dataset is a multi-gigabyte download we cannot fetch, so this
module synthesizes a deterministic animated humanoid with the same spatial
envelope and point budgets.  Everything downstream (cell occupancy, frustum
culling, visibility fractions, frame sizes) consumes only geometric
statistics, which the synthetic figure reproduces.

The humanoid is a union of simple solids (sphere head, ellipsoid torso,
capsule limbs) whose surfaces are point-sampled; a low-frequency sway and a
walk-in-place arm/leg swing animate it over time so the occupied cells change
frame to frame, like a real capture.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from .cloud import PointCloudFrame
from .video import PointCloudVideo, QUALITIES, QualityLevel

__all__ = ["HumanoidModel", "synthesize_video", "synthesize_frame"]


@dataclass(frozen=True)
class _BodyPart:
    """A point-sampled solid: an ellipsoid at ``center`` with ``radii``.

    Capsule-like limbs are approximated by stretched ellipsoids, which is
    plenty for cell-occupancy purposes.
    """

    name: str
    center: np.ndarray
    radii: np.ndarray
    weight: float  # fraction of the point budget allotted to this part


@dataclass(frozen=True)
class HumanoidModel:
    """Static proportions of the synthetic figure (meters).

    Default proportions approximate the 8i soldier: ~1.8 m tall with a
    ~0.6 m arm span envelope, standing at the origin on the z = 0 floor.
    """

    height: float = 1.8
    shoulder_width: float = 0.45
    torso_depth: float = 0.25

    def parts(self, phase: float) -> list[_BodyPart]:
        """Body parts at animation ``phase`` (radians of the gait cycle).

        Proportions follow the 8i soldier: arms abducted from the torso, a
        rifle-like prop held forward (+X), a wide stance — giving the
        ~1.0 x 0.9 x 1.8 m envelope that spans multiple 25-50 cm cells in
        every axis, as the real capture does.
        """
        h = self.height
        sw = self.shoulder_width
        swing = 0.3 * np.sin(phase)  # arm/leg swing amplitude in radians
        sway = 0.05 * np.sin(0.5 * phase)  # lateral body sway in meters
        abduct = 0.45 + 0.1 * np.sin(0.7 * phase)  # arm out-to-side angle

        def limb(name, top, length, radius, swing_angle, side_angle, weight):
            # A limb hangs from `top`, swung in XZ and abducted in YZ.
            direction = np.array(
                [np.sin(swing_angle), np.sin(side_angle), -1.0]
            )
            direction /= np.linalg.norm(direction)
            center = top + 0.5 * length * direction
            half = 0.5 * length
            radii = np.abs(direction) * half
            radii = np.maximum(radii, radius)
            return _BodyPart(name, center, radii, weight)

        head_c = np.array([sway, 0.0, 0.93 * h])
        torso_c = np.array([sway, 0.0, 0.62 * h])
        hip = np.array([sway, 0.0, 0.48 * h])
        shoulder_l = torso_c + np.array([0.0, 0.5 * sw, 0.12 * h])
        shoulder_r = torso_c + np.array([0.0, -0.5 * sw, 0.12 * h])
        hip_l = hip + np.array([0.0, 0.15, 0.0])
        hip_r = hip + np.array([0.0, -0.15, 0.0])
        # The prop (rifle) is held forward of the chest, along +X.
        prop_c = np.array([0.35 + sway, -0.08, 0.70 * h])

        return [
            _BodyPart("head", head_c, np.array([0.10, 0.10, 0.12]), 0.09),
            _BodyPart(
                "torso",
                torso_c,
                np.array([0.5 * self.torso_depth, 0.5 * sw, 0.28 * h]),
                0.36,
            ),
            _BodyPart("prop", prop_c, np.array([0.38, 0.045, 0.045]), 0.07),
            limb("arm_l", shoulder_l, 0.55, 0.05, swing, abduct, 0.09),
            limb("arm_r", shoulder_r, 0.55, 0.05, 0.4 - swing, -abduct, 0.09),
            limb("leg_l", hip_l, 0.85, 0.08, -0.6 * swing, 0.18, 0.15),
            limb("leg_r", hip_r, 0.85, 0.08, 0.6 * swing, -0.18, 0.15),
        ]


def _sample_ellipsoid_surface(
    rng: np.random.Generator, center: np.ndarray, radii: np.ndarray, n: int
) -> np.ndarray:
    """Sample ``n`` points on (a thin shell around) an ellipsoid surface.

    Captured point clouds are surface scans, so we sample the surface with a
    small radial jitter rather than the volume.
    """
    u = rng.normal(size=(n, 3))
    u /= np.linalg.norm(u, axis=1, keepdims=True)
    jitter = 1.0 + rng.normal(scale=0.01, size=(n, 1))
    return center + u * radii * jitter


def synthesize_frame(
    frame_index: int,
    points: int = 8000,
    nominal_points: int = 0,
    model: HumanoidModel | None = None,
    fps: float = 30.0,
    seed: int = 8,
) -> PointCloudFrame:
    """Generate one frame of the synthetic humanoid video.

    Args:
        frame_index: position in the video; drives the gait animation.
        points: number of points actually sampled (keep modest for speed).
        nominal_points: the full-density count this frame represents
            (e.g. 550_000); defaults to ``points``.
        model: body proportions; defaults to the soldier-like figure.
        fps: video frame rate, used to convert frame index to time.
        seed: base RNG seed; combined with ``frame_index`` so every frame is
            deterministic yet distinct.
    """
    if points <= 0:
        raise ValueError("points must be positive")
    model = model or HumanoidModel()
    t = frame_index / fps
    phase = 2.0 * np.pi * 0.8 * t  # ~0.8 Hz gait cycle
    rng = np.random.default_rng(np.random.SeedSequence([seed, frame_index]))

    parts = model.parts(phase)
    total_w = sum(p.weight for p in parts)
    chunks = []
    remaining = points
    for i, part in enumerate(parts):
        n = int(round(points * part.weight / total_w))
        if i == len(parts) - 1:
            n = remaining
        n = max(1, min(n, remaining)) if remaining > 0 else 0
        if n == 0:
            continue
        remaining -= n
        chunks.append(_sample_ellipsoid_surface(rng, part.center, part.radii, n))
    pts = np.concatenate(chunks, axis=0)
    # Keep the figure above the floor.
    pts[:, 2] = np.clip(pts[:, 2], 0.0, None)
    return PointCloudFrame(pts, nominal_points=nominal_points or points)


def synthesize_video(
    quality: str | QualityLevel = "high",
    num_frames: int = 300,
    points_per_frame: int = 8000,
    fps: float = 30.0,
    seed: int = 8,
    model: HumanoidModel | None = None,
) -> PointCloudVideo:
    """Generate a full synthetic volumetric video.

    ``quality`` selects one of the paper's three versions (``"low"`` = 330K,
    ``"medium"`` = 430K, ``"high"`` = 550K nominal points/frame), which sets
    ``nominal_points`` on every frame and hence the streaming bitrate.
    """
    level = QUALITIES[quality] if isinstance(quality, str) else quality
    frames = [
        synthesize_frame(
            i,
            points=points_per_frame,
            nominal_points=level.points_per_frame,
            model=model,
            fps=fps,
            seed=seed,
        )
        for i in range(num_frames)
    ]
    return PointCloudVideo(
        name=f"synthetic-soldier-{level.name}", frames=frames, fps=fps, quality=level
    )
