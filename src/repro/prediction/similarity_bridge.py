"""Bridge between prediction and visibility: IoU of predicted vs. true maps.

Lives in its own module to keep :mod:`repro.prediction.metrics` free of a
circular import with :mod:`repro.core.similarity` (core depends on
prediction for the session simulator).
"""

from __future__ import annotations

from ..pointcloud import CellGrid, PointCloudVideo, VisibilityConfig, compute_visibility
from ..traces import Pose
from .base import ViewportPredictor

__all__ = ["predicted_visibility_iou"]


def _iou(a: frozenset, b: frozenset) -> float:
    union = a | b
    if not union:
        return 1.0
    return len(a & b) / len(union)


def predicted_visibility_iou(
    predictor: ViewportPredictor,
    trace: Trace,
    video: PointCloudVideo,
    grid: CellGrid,
    horizon_s: float = 0.5,
    stride: int = 5,
    min_history_s: float = 1.0,
    config: VisibilityConfig | None = None,
) -> float:
    """Mean IoU between predicted and actual visibility maps.

    This is the streaming-relevant accuracy: 1.0 means every prefetched
    cell was the right one.
    """
    config = config or VisibilityConfig()
    rate = trace.rate_hz
    start = int(round(min_history_s * rate))
    horizon_samples = int(round(horizon_s * rate))
    ious = []
    for end in range(start, len(trace) - horizon_samples, stride):
        history = trace.window(end, start)
        predicted: Pose = predictor.predict(history, horizon_s)
        actual = trace.pose(end + horizon_samples)
        frame_index = (end + horizon_samples) % len(video)
        occupancy = grid.occupancy(video[frame_index])
        vis_pred = compute_visibility(occupancy, predicted.frustum(), config)
        vis_true = compute_visibility(occupancy, actual.frustum(), config)
        ious.append(_iou(vis_pred.visible_set, vis_true.visible_set))
    if not ious:
        raise ValueError("trace too short for the horizon")
    return float(sum(ious) / len(ious))
