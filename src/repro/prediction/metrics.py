"""Prediction accuracy metrics.

Three views of "how good is a viewport prediction":

* raw pose error (meters / radians) — what predictor papers report;
* **visibility IoU** — overlap between the visibility map computed from the
  predicted pose and from the true pose.  This is the metric that matters
  for streaming: it measures how much of the prefetched content was right;
* per-study evaluation sweeps that aggregate either metric over users/time.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..traces import Pose, Trace, UserStudy
from .base import ViewportPredictor
from .multiuser import JointViewportPredictor
from .similarity_bridge import predicted_visibility_iou

__all__ = [
    "pose_errors",
    "PredictorEvaluation",
    "evaluate_predictor",
    "evaluate_joint_predictor",
    "predicted_visibility_iou",
]


def pose_errors(predicted: Pose, actual: Pose) -> tuple[float, float]:
    """(position error meters, orientation error radians)."""
    return predicted.distance_to(actual), predicted.angular_distance_to(actual)


@dataclass(frozen=True)
class PredictorEvaluation:
    """Aggregated prediction accuracy over a sweep."""

    position_errors_m: np.ndarray
    orientation_errors_rad: np.ndarray

    @property
    def mean_position_error_m(self) -> float:
        return float(np.mean(self.position_errors_m))

    @property
    def mean_orientation_error_deg(self) -> float:
        return float(np.rad2deg(np.mean(self.orientation_errors_rad)))

    @property
    def p95_position_error_m(self) -> float:
        return float(np.percentile(self.position_errors_m, 95))


def evaluate_predictor(
    predictor: ViewportPredictor,
    trace: Trace,
    horizon_s: float = 0.5,
    stride: int = 3,
    min_history_s: float = 1.0,
) -> PredictorEvaluation:
    """Sweep a single-user predictor over one trace."""
    start = int(round(min_history_s * trace.rate_hz))
    horizon_samples = int(round(horizon_s * trace.rate_hz))
    pos_errs, ori_errs = [], []
    for end in range(start, len(trace) - horizon_samples, stride):
        history = trace.window(end, start)
        predicted = predictor.predict(history, horizon_s)
        actual = trace.pose(end + horizon_samples)
        pe, oe = pose_errors(predicted, actual)
        pos_errs.append(pe)
        ori_errs.append(oe)
    if not pos_errs:
        raise ValueError("trace too short for the horizon")
    return PredictorEvaluation(
        position_errors_m=np.array(pos_errs),
        orientation_errors_rad=np.array(ori_errs),
    )


def evaluate_joint_predictor(
    predictor: JointViewportPredictor,
    study: UserStudy,
    horizon_s: float = 0.5,
    stride: int = 5,
    min_history_s: float = 1.0,
) -> PredictorEvaluation:
    """Sweep the joint predictor over all users of a study."""
    rate = study.rate_hz
    start = int(round(min_history_s * rate))
    horizon_samples = int(round(horizon_s * rate))
    n = study.num_samples
    pos_errs, ori_errs = [], []
    for end in range(start, n - horizon_samples, stride):
        histories = [t.window(end, start) for t in study.traces]
        result = predictor.predict(histories, horizon_s)
        for trace, predicted in zip(study.traces, result.poses):
            actual = trace.pose(end + horizon_samples)
            pe, oe = pose_errors(predicted, actual)
            pos_errs.append(pe)
            ori_errs.append(oe)
    if not pos_errs:
        raise ValueError("study too short for the horizon")
    return PredictorEvaluation(
        position_errors_m=np.array(pos_errs),
        orientation_errors_rad=np.array(ori_errs),
    )
