"""A small from-scratch MLP regressor and the MLP viewport predictor.

The paper cites multilayer perceptrons as the stronger single-user 6DoF
predictor.  No deep-learning stack is available offline, so this module
implements a compact two-layer MLP in numpy (tanh hidden layer, Adam
optimizer, standardized inputs/outputs) — plenty for the low-dimensional,
smooth regression task of pose extrapolation.

The :class:`MlpViewportPredictor` is trained offline on trace data: inputs
are a flattened history window (positions + Euler angles, expressed
relative to the window end), targets are the pose delta at the horizon.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..geometry import Quaternion
from ..traces import Pose, Trace
from .base import validate_horizon

__all__ = ["MlpRegressor", "MlpViewportPredictor"]


class MlpRegressor:
    """Two-layer perceptron trained with Adam on mean-squared error."""

    def __init__(
        self,
        input_dim: int,
        output_dim: int,
        hidden: int = 32,
        seed: int = 0,
    ) -> None:
        if min(input_dim, output_dim, hidden) <= 0:
            raise ValueError("dimensions must be positive")
        rng = np.random.default_rng(seed)
        scale1 = np.sqrt(2.0 / input_dim)
        scale2 = np.sqrt(2.0 / hidden)
        self.w1 = rng.normal(scale=scale1, size=(input_dim, hidden))
        self.b1 = np.zeros(hidden)
        self.w2 = rng.normal(scale=scale2, size=(hidden, output_dim))
        self.b2 = np.zeros(output_dim)
        self._x_mean = np.zeros(input_dim)
        self._x_std = np.ones(input_dim)
        self._y_mean = np.zeros(output_dim)
        self._y_std = np.ones(output_dim)
        self.trained = False

    # -- forward ----------------------------------------------------------

    def _forward(self, x: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
        h = np.tanh(x @ self.w1 + self.b1)
        return h, h @ self.w2 + self.b2

    def predict(self, x: np.ndarray) -> np.ndarray:
        """Predict targets for ``(N, input_dim)`` (or a single row)."""
        x = np.atleast_2d(np.asarray(x, dtype=np.float64))
        xs = (x - self._x_mean) / self._x_std
        _, out = self._forward(xs)
        return out * self._y_std + self._y_mean

    # -- training -----------------------------------------------------------

    def fit(
        self,
        x: np.ndarray,
        y: np.ndarray,
        epochs: int = 200,
        batch_size: int = 64,
        lr: float = 1e-3,
        seed: int = 0,
    ) -> float:
        """Train on (x, y); returns the final epoch's mean-squared error."""
        x = np.asarray(x, dtype=np.float64)
        y = np.asarray(y, dtype=np.float64)
        if x.ndim != 2 or y.ndim != 2 or len(x) != len(y):
            raise ValueError("x and y must be aligned 2D arrays")
        self._x_mean = x.mean(axis=0)
        self._x_std = np.maximum(x.std(axis=0), 1e-8)
        self._y_mean = y.mean(axis=0)
        self._y_std = np.maximum(y.std(axis=0), 1e-8)
        xs = (x - self._x_mean) / self._x_std
        ys = (y - self._y_mean) / self._y_std

        rng = np.random.default_rng(seed)
        params = [self.w1, self.b1, self.w2, self.b2]
        m = [np.zeros_like(p) for p in params]
        v = [np.zeros_like(p) for p in params]
        beta1, beta2, eps = 0.9, 0.999, 1e-8
        step = 0
        last_mse = float("inf")
        for _ in range(epochs):
            order = rng.permutation(len(xs))
            losses = []
            for start in range(0, len(xs), batch_size):
                idx = order[start : start + batch_size]
                xb, yb = xs[idx], ys[idx]
                h, out = self._forward(xb)
                err = out - yb
                losses.append(float(np.mean(err**2)))
                n = len(xb)
                g_w2 = h.T @ err * (2.0 / n)
                g_b2 = err.mean(axis=0) * 2.0
                dh = err @ self.w2.T * (1.0 - h**2)
                g_w1 = xb.T @ dh * (2.0 / n)
                g_b1 = dh.mean(axis=0) * 2.0
                grads = [g_w1, g_b1, g_w2, g_b2]
                step += 1
                for p, g, mi, vi in zip(params, grads, m, v):
                    mi *= beta1
                    mi += (1 - beta1) * g
                    vi *= beta2
                    vi += (1 - beta2) * g * g
                    m_hat = mi / (1 - beta1**step)
                    v_hat = vi / (1 - beta2**step)
                    p -= lr * m_hat / (np.sqrt(v_hat) + eps)
            last_mse = float(np.mean(losses))
        self.trained = True
        return last_mse


def _window_features(window: Trace) -> np.ndarray:
    """Flatten a history window relative to its final sample."""
    ref_pos = window.positions[-1]
    eulers = np.array(
        [Quaternion.from_array(q).to_euler() for q in window.orientations]
    )
    eulers = np.unwrap(eulers, axis=0)
    ref_euler = eulers[-1]
    rel_pos = window.positions - ref_pos
    rel_euler = eulers - ref_euler
    return np.concatenate([rel_pos.ravel(), rel_euler.ravel()])


@dataclass
class MlpViewportPredictor:
    """MLP-based 6DoF predictor; train with :meth:`fit_traces` first."""

    window_samples: int = 15
    hidden: int = 32
    seed: int = 0
    _model: MlpRegressor | None = field(default=None, repr=False)
    _horizon_s: float = field(default=0.5, repr=False)

    def fit_traces(
        self,
        traces: list[Trace],
        horizon_s: float = 0.5,
        epochs: int = 60,
        stride: int = 2,
    ) -> float:
        """Train on sliding windows from ``traces``; returns final MSE."""
        validate_horizon(horizon_s)
        self._horizon_s = horizon_s
        xs, ys = [], []
        for trace in traces:
            h_samples = int(round(horizon_s * trace.rate_hz))
            last_start = len(trace) - self.window_samples - h_samples
            for end in range(self.window_samples - 1, last_start, stride):
                window = trace.window(end, self.window_samples)
                future = trace.pose(end + h_samples)
                feat = _window_features(window)
                ref_pos = window.positions[-1]
                ref_euler = np.unwrap(
                    np.array(
                        [Quaternion.from_array(q).to_euler()
                         for q in window.orientations]
                    ),
                    axis=0,
                )[-1]
                fut_euler = np.array(future.orientation.to_euler())
                # Unwrap the future yaw relative to the window end.
                delta_euler = np.arctan2(
                    np.sin(fut_euler - ref_euler), np.cos(fut_euler - ref_euler)
                )
                ys.append(
                    np.concatenate([future.position - ref_pos, delta_euler])
                )
                xs.append(feat)
        if not xs:
            raise ValueError("traces too short for the window/horizon")
        x = np.array(xs)
        y = np.array(ys)
        self._model = MlpRegressor(
            input_dim=x.shape[1], output_dim=y.shape[1],
            hidden=self.hidden, seed=self.seed,
        )
        return self._model.fit(x, y, epochs=epochs, seed=self.seed)

    def predict(self, history: Trace, horizon_s: float) -> Pose:
        validate_horizon(horizon_s)
        if self._model is None or not self._model.trained:
            raise RuntimeError("call fit_traces before predict")
        window = history.window(len(history) - 1, self.window_samples)
        if len(window) < self.window_samples:
            # Too little history: fall back to holding the last pose.
            last = window.pose(len(window) - 1)
            return Pose(
                t=last.t + horizon_s,
                position=last.position,
                orientation=last.orientation,
            )
        feat = _window_features(window)
        delta = self._model.predict(feat)[0]
        # The model was trained at a fixed horizon; scale linearly for others.
        scale = horizon_s / self._horizon_s if self._horizon_s > 0 else 1.0
        delta = delta * scale
        ref = window.pose(len(window) - 1)
        ref_euler = np.array(ref.orientation.to_euler())
        yaw, pitch, roll = ref_euler + delta[3:]
        pitch = float(np.clip(pitch, -np.pi / 2 + 1e-6, np.pi / 2 - 1e-6))
        return Pose(
            t=ref.t + horizon_s,
            position=ref.position + delta[:3],
            orientation=Quaternion.from_euler(float(yaw), pitch, float(roll)),
        )
