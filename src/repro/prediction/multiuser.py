"""Joint multi-user viewport prediction (paper §4.1).

"In multi-user scenarios ... one user's movement may affect the viewport of
other users."  The joint predictor wraps a per-user base predictor and adds
two interaction corrections:

* **Collision avoidance**: people do not walk through each other.  When two
  users' independently predicted positions come closer than a personal-space
  radius, both predictions are pushed apart along their separation axis —
  mirroring how real users deflect, which independent extrapolation misses.
* **Shared attention**: all viewers of the same content exhibit correlated
  gaze (the basis of the paper's viewport similarity).  The joint model
  estimates the group's mean gaze point and pulls each user's predicted
  view direction slightly toward it, damping individual over-extrapolation.

The output feeds both the multicast grouper (predicted visibility maps) and
the blockage forecaster (predicted body positions).
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..geometry import Quaternion, normalize
from ..traces import Pose, Trace
from .base import ViewportPredictor, validate_horizon
from .linear import LinearRegressionPredictor

__all__ = ["JointPredictionResult", "JointViewportPredictor"]


@dataclass(frozen=True)
class JointPredictionResult:
    """Predicted poses for every user, aligned with the input trace order."""

    poses: tuple[Pose, ...]
    independent_poses: tuple[Pose, ...]

    def __len__(self) -> int:
        return len(self.poses)

    def positions(self) -> np.ndarray:
        return np.stack([p.position for p in self.poses])


@dataclass
class JointViewportPredictor:
    """Jointly predict all users' viewports with interaction corrections."""

    base: ViewportPredictor = field(default_factory=LinearRegressionPredictor)
    personal_space_m: float = 0.6
    attention_pull: float = 0.25  # 0 disables the shared-attention correction
    content_center: np.ndarray = field(
        default_factory=lambda: np.array([0.0, 0.0, 1.1])
    )

    def __post_init__(self) -> None:
        if not 0.0 <= self.attention_pull <= 1.0:
            raise ValueError("attention_pull must be in [0, 1]")
        if self.personal_space_m < 0:
            raise ValueError("personal_space_m must be non-negative")

    def predict(
        self, histories: list[Trace], horizon_s: float
    ) -> JointPredictionResult:
        validate_horizon(horizon_s)
        if not histories:
            raise ValueError("need at least one user history")
        independent = [self.base.predict(h, horizon_s) for h in histories]
        positions = np.stack([p.position for p in independent])

        positions = self._resolve_collisions(positions)
        poses = self._apply_attention(independent, positions)
        return JointPredictionResult(
            poses=tuple(poses), independent_poses=tuple(independent)
        )

    # -- corrections --------------------------------------------------------

    def _resolve_collisions(self, positions: np.ndarray) -> np.ndarray:
        """Push pairs of predictions apart to the personal-space radius.

        A few fixed-point iterations suffice — groups are small and the
        displacement per iteration is bounded.
        """
        out = positions.copy()
        n = len(out)
        for _ in range(4):
            moved = False
            for i in range(n):
                for j in range(i + 1, n):
                    delta = out[j, :2] - out[i, :2]
                    dist = float(np.linalg.norm(delta))
                    if dist >= self.personal_space_m or dist < 1e-9:
                        continue
                    push = 0.5 * (self.personal_space_m - dist)
                    direction = delta / dist
                    out[i, :2] -= push * direction
                    out[j, :2] += push * direction
                    moved = True
            if not moved:
                break
        return out

    def _apply_attention(
        self, independent: list[Pose], positions: np.ndarray
    ) -> list[Pose]:
        """Blend each view direction toward the group's mean gaze point."""
        if self.attention_pull <= 0 or len(independent) < 2:
            return [
                Pose(t=p.t, position=pos, orientation=p.orientation)
                for p, pos in zip(independent, positions)
            ]
        # Estimate the shared gaze point: average of where each predicted
        # view ray passes closest to the content axis, approximated by the
        # content center at each user's gaze height.
        gaze_points = []
        for pose, pos in zip(independent, positions):
            fwd = pose.orientation.forward()
            to_center = self.content_center - pos
            depth = max(0.5, float(np.dot(to_center, fwd)))
            gaze_points.append(pos + depth * fwd)
        shared = np.mean(gaze_points, axis=0)

        out = []
        for pose, pos in zip(independent, positions):
            own_dir = pose.orientation.forward()
            to_shared = normalize(shared - pos)
            blended = normalize(
                (1.0 - self.attention_pull) * own_dir
                + self.attention_pull * to_shared
            )
            out.append(
                Pose(t=pose.t, position=pos, orientation=Quaternion.look_at(blended))
            )
        return out
