"""Viewport predictor interface.

Predictors consume a short history window of a user's 6DoF trace and emit
the pose ``horizon_s`` into the future.  The paper notes that individual
6DoF viewports are predictable "using linear regression or multilayer
perceptron with high accuracy in real-time" — both are implemented in this
package — and proposes *joint* multi-user prediction on top (§4.1).
"""

from __future__ import annotations

from typing import Protocol, runtime_checkable

from ..traces import Pose, Trace

__all__ = ["ViewportPredictor", "validate_horizon"]


@runtime_checkable
class ViewportPredictor(Protocol):
    """Anything that can extrapolate a 6DoF trace."""

    def predict(self, history: Trace, horizon_s: float) -> Pose:
        """Pose expected ``horizon_s`` after the last sample of ``history``."""
        ...


def validate_horizon(horizon_s: float) -> float:
    """Shared argument check for predictors."""
    if horizon_s < 0:
        raise ValueError("horizon_s must be non-negative")
    return float(horizon_s)
