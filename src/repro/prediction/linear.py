"""Last-value and linear-regression viewport predictors.

Linear regression over a sliding window is the workhorse single-user 6DoF
predictor in ViVo and follow-up studies: fit ``value = a + b*t`` per
coordinate over the last ~0.5-1 s and extrapolate.  Orientation is
extrapolated in unwrapped Euler space (yaw can cross the ±pi seam, so the
window is unwrapped before fitting).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..geometry import Quaternion
from ..traces import Pose, Trace
from .base import validate_horizon

__all__ = ["LastValuePredictor", "LinearRegressionPredictor"]


@dataclass(frozen=True)
class LastValuePredictor:
    """Predicts the future pose to equal the current pose (the baseline)."""

    def predict(self, history: Trace, horizon_s: float) -> Pose:
        validate_horizon(horizon_s)
        last = history.pose(len(history) - 1)
        return Pose(
            t=last.t + horizon_s, position=last.position, orientation=last.orientation
        )


def _fit_linear(times: np.ndarray, values: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
    """Least-squares ``value = a + b*t`` per column; returns (a, b)."""
    t = times - times[-1]  # center at the window end for conditioning
    design = np.stack([np.ones_like(t), t], axis=1)
    coef, *_ = np.linalg.lstsq(design, values, rcond=None)
    return coef[0], coef[1]


@dataclass(frozen=True)
class LinearRegressionPredictor:
    """Windowed linear regression on position and unwrapped Euler angles.

    Attributes:
        window_s: history length used for the fit (0.5 s at 30 Hz = 15
            samples, matching prior 6DoF-prediction studies).
        max_speed_mps: clamp on extrapolated translational speed; guards the
            regression against glitchy windows.
    """

    window_s: float = 0.5
    max_speed_mps: float = 3.0

    def predict(self, history: Trace, horizon_s: float) -> Pose:
        validate_horizon(horizon_s)
        n = max(2, int(round(self.window_s * history.rate_hz)))
        window = history.window(len(history) - 1, n)
        t_pred = float(window.times[-1]) + horizon_s

        if len(window) < 2:
            last = window.pose(len(window) - 1)
            return Pose(t=t_pred, position=last.position, orientation=last.orientation)

        # Position: per-axis linear fit with a speed clamp.
        a, b = _fit_linear(window.times, window.positions)
        speed = float(np.linalg.norm(b))
        if speed > self.max_speed_mps:
            b = b * (self.max_speed_mps / speed)
        position = a + b * horizon_s

        # Orientation: fit on unwrapped yaw/pitch/roll.
        eulers = np.array(
            [Quaternion.from_array(q).to_euler() for q in window.orientations]
        )
        eulers = np.unwrap(eulers, axis=0)
        ea, eb = _fit_linear(window.times, eulers)
        yaw, pitch, roll = ea + eb * horizon_s
        pitch = float(np.clip(pitch, -np.pi / 2 + 1e-6, np.pi / 2 - 1e-6))
        orientation = Quaternion.from_euler(float(yaw), pitch, float(roll))

        return Pose(t=t_pred, position=position, orientation=orientation)
