"""Viewport prediction: single-user, joint multi-user, blockage forecasting."""

from .base import ViewportPredictor, validate_horizon
from .blockage import (
    BlockageForecast,
    BlockageForecaster,
    ForecastScore,
    score_forecasts,
)
from .linear import LastValuePredictor, LinearRegressionPredictor
from .metrics import (
    PredictorEvaluation,
    evaluate_joint_predictor,
    evaluate_predictor,
    pose_errors,
    predicted_visibility_iou,
)
from .mlp import MlpRegressor, MlpViewportPredictor
from .multiuser import JointPredictionResult, JointViewportPredictor

__all__ = [
    "ViewportPredictor",
    "validate_horizon",
    "BlockageForecast",
    "BlockageForecaster",
    "ForecastScore",
    "score_forecasts",
    "LastValuePredictor",
    "LinearRegressionPredictor",
    "PredictorEvaluation",
    "evaluate_joint_predictor",
    "evaluate_predictor",
    "pose_errors",
    "predicted_visibility_iou",
    "MlpRegressor",
    "MlpViewportPredictor",
    "JointPredictionResult",
    "JointViewportPredictor",
]
