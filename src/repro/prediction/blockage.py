"""Blockage forecasting from multi-user viewport prediction (paper §4.1).

"The holistic view of the multi-user viewport prediction available at the
AP will be used to infer possible blockages between users."  Given all
users' predicted positions at a horizon, the forecaster geometrically tests
which AP->user line-of-sight segments will be crossed by another user's
body and emits per-user warnings, which the proactive recovery policy in
:mod:`repro.mac.events` consumes.

Includes an evaluator that scores forecasts against the ground-truth
blockage timeline (precision/recall/lead time), used in ablation Abl-B.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..mmwave.blockage import (
    BlockageTimeline,
    bodies_from_positions,
    link_blockers,
)
from ..traces import UserStudy
from .multiuser import JointViewportPredictor

__all__ = ["BlockageForecast", "BlockageForecaster", "ForecastScore", "score_forecasts"]


@dataclass(frozen=True)
class BlockageForecast:
    """Per-user blockage warnings at one prediction instant.

    ``will_block[u]`` is True when user u's LoS to the AP is predicted to be
    blocked at ``t + horizon``; ``blockers[u]`` lists the predicted blocker
    indices (trace order).
    """

    t: float
    horizon_s: float
    will_block: tuple[bool, ...]
    blockers: tuple[tuple[int, ...], ...]


@dataclass
class BlockageForecaster:
    """Forecast LoS blockage ``horizon_s`` ahead from joint prediction.

    ``body_margin_m`` inflates the predicted blockers' radius so that a
    near-miss in the position prediction still raises a warning — recall
    matters more than precision here, because a false warning merely costs
    a little prefetching while a missed blockage costs a stall.
    """

    ap_position: np.ndarray
    predictor: JointViewportPredictor
    horizon_s: float = 0.5
    body_margin_m: float = 0.15

    def __post_init__(self) -> None:
        self.ap_position = np.asarray(self.ap_position, dtype=np.float64)
        if self.horizon_s < 0:
            raise ValueError("horizon_s must be non-negative")
        if self.body_margin_m < 0:
            raise ValueError("body_margin_m must be non-negative")

    def forecast_at(self, study: UserStudy, sample_index: int) -> BlockageForecast:
        """Forecast from trace history up to ``sample_index``."""
        histories = [
            t.window(sample_index, int(round(t.rate_hz)))  # last second
            for t in study.traces
        ]
        result = self.predictor.predict(histories, self.horizon_s)
        positions = result.positions()
        from ..mmwave.blockage import BODY_RADIUS_M

        will_block = []
        blockers = []
        for u in range(len(positions)):
            bodies = bodies_from_positions(
                positions, exclude=u, radius=BODY_RADIUS_M + self.body_margin_m
            )
            hit = link_blockers(self.ap_position, positions[u], bodies)
            # Map body indices back to user indices (receiver was excluded).
            others = [i for i in range(len(positions)) if i != u]
            blocker_users = tuple(others[i] for i in hit)
            will_block.append(bool(blocker_users))
            blockers.append(blocker_users)
        t_now = float(study.traces[0].times[sample_index])
        return BlockageForecast(
            t=t_now,
            horizon_s=self.horizon_s,
            will_block=tuple(will_block),
            blockers=tuple(blockers),
        )

    def forecast_session(
        self, study: UserStudy, stride: int = 1
    ) -> list[BlockageForecast]:
        """Forecasts over the whole session (skipping the cold-start second)."""
        start = int(round(study.rate_hz))  # need a second of history
        horizon_samples = int(round(self.horizon_s * study.rate_hz))
        end = study.num_samples - horizon_samples
        return [
            self.forecast_at(study, s) for s in range(start, max(start, end), stride)
        ]


@dataclass(frozen=True)
class ForecastScore:
    """Precision/recall of blockage warnings against ground truth."""

    true_positives: int
    false_positives: int
    false_negatives: int

    @property
    def precision(self) -> float:
        denom = self.true_positives + self.false_positives
        return self.true_positives / denom if denom else 1.0

    @property
    def recall(self) -> float:
        denom = self.true_positives + self.false_negatives
        return self.true_positives / denom if denom else 1.0

    @property
    def f1(self) -> float:
        p, r = self.precision, self.recall
        return 2 * p * r / (p + r) if (p + r) > 0 else 0.0


def score_forecasts(
    forecasts: list[BlockageForecast],
    timeline: BlockageTimeline,
    tolerance_samples: int = 3,
) -> ForecastScore:
    """Score per-(user, instant) warnings against the blockage timeline.

    A warning for user u at forecast target time t counts as a true
    positive when the ground truth marks u blocked within ±``tolerance``
    samples of t — small timing slack reflects that the scheduler only
    needs approximately-timed warnings.
    """
    tp = fp = fn = 0
    for fc in forecasts:
        target = fc.t + fc.horizon_s
        idx = int(round(target * timeline.rate_hz))
        if not 0 <= idx < timeline.num_samples:
            continue
        lo = max(0, idx - tolerance_samples)
        hi = min(timeline.num_samples, idx + tolerance_samples + 1)
        for u, warned in enumerate(fc.will_block):
            actual = bool(np.any(timeline.blocked[u, lo:hi]))
            if warned and actual:
                tp += 1
            elif warned and not actual:
                fp += 1
            elif not warned and actual:
                fn += 1
    return ForecastScore(true_positives=tp, false_positives=fp, false_negatives=fn)
