"""Packet-level transport: packetization, loss, ARQ, and multicast FEC.

The layer between the MAC scheduler's frame plans and the streaming
session: frames become MTU-sized PDUs, PDUs are lost with a PHY-derived
probability, and losses are recovered by block-ACK ARQ (unicast) or
rateless-style FEC (multicast) under a per-frame deadline budget.  The
``ideal`` mode reproduces the pre-transport fluid model bit-for-bit.
"""

from .arq import (
    ArqConfig,
    ArqOutcome,
    block_arq_process,
    expected_transmissions,
    simulate_block_arq,
)
from .config import TRANSPORT_MODES, TransportConfig
from .errormodel import (
    BLOCKED_PER,
    PER_AT_SENSITIVITY,
    PER_DECADE_DB,
    PER_FLOOR,
    PacketErrorModel,
    per_for_rss,
    per_for_sinr,
    per_from_margin_db,
    sample_packet_failures,
)
from .fec import (
    FecConfig,
    decode_threshold,
    repair_fraction,
    sample_decodes,
    total_packets_needed,
)
from .packetization import (
    DEFAULT_HEADER_BYTES,
    DEFAULT_MTU_BYTES,
    PacketizationConfig,
    PacketizedUnit,
    packet_count,
    packetize_bytes,
    packetize_cells,
    packetize_demand,
)
from .transport import FrameOutcome, TransportSimulator

__all__ = [
    "ArqConfig",
    "ArqOutcome",
    "block_arq_process",
    "expected_transmissions",
    "simulate_block_arq",
    "TRANSPORT_MODES",
    "TransportConfig",
    "BLOCKED_PER",
    "PER_AT_SENSITIVITY",
    "PER_DECADE_DB",
    "PER_FLOOR",
    "PacketErrorModel",
    "per_for_rss",
    "per_for_sinr",
    "per_from_margin_db",
    "sample_packet_failures",
    "FecConfig",
    "decode_threshold",
    "repair_fraction",
    "sample_decodes",
    "total_packets_needed",
    "DEFAULT_HEADER_BYTES",
    "DEFAULT_MTU_BYTES",
    "PacketizationConfig",
    "PacketizedUnit",
    "packet_count",
    "packetize_bytes",
    "packetize_cells",
    "packetize_demand",
    "FrameOutcome",
    "TransportSimulator",
]
