"""Split a frame's per-cell byte demands into MTU-sized PDUs.

The fluid scheduler moves fractional bytes; a real link moves packets.  A
cell is the smallest independently decodable unit (the codec operates per
cell), so each cell's bytes are packetized separately — a cell never shares
a PDU with another cell, and the last PDU of a cell is short rather than
padded.  Every PDU carries ``header_bytes`` of IP/UDP/RTP-style framing on
the wire, which is where the packetization tax on small cells comes from.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from ..mac.scheduler import UserDemand

__all__ = [
    "DEFAULT_MTU_BYTES",
    "DEFAULT_HEADER_BYTES",
    "PacketizationConfig",
    "PacketizedUnit",
    "packet_count",
    "packetize_bytes",
    "packetize_cells",
    "packetize_demand",
]

DEFAULT_MTU_BYTES = 1500
DEFAULT_HEADER_BYTES = 44  # IP (20) + UDP (8) + RTP-ish media framing (16)


@dataclass(frozen=True)
class PacketizationConfig:
    """MTU and per-PDU header overhead."""

    mtu_bytes: int = DEFAULT_MTU_BYTES
    header_bytes: int = DEFAULT_HEADER_BYTES

    def __post_init__(self) -> None:
        if self.header_bytes < 0:
            raise ValueError("header_bytes must be non-negative")
        if self.mtu_bytes <= self.header_bytes:
            raise ValueError("mtu_bytes must exceed header_bytes")

    @property
    def payload_bytes(self) -> int:
        """Application bytes one PDU can carry."""
        return self.mtu_bytes - self.header_bytes


@dataclass(frozen=True)
class PacketizedUnit:
    """One transmission unit (a frame, or one user's share of it) as PDUs."""

    num_packets: int
    app_bytes: float  # payload actually requested by the application
    wire_bytes: float  # payload + per-PDU headers, what the link carries

    def __add__(self, other: "PacketizedUnit") -> "PacketizedUnit":
        return PacketizedUnit(
            num_packets=self.num_packets + other.num_packets,
            app_bytes=self.app_bytes + other.app_bytes,
            wire_bytes=self.wire_bytes + other.wire_bytes,
        )

    @property
    def overhead_fraction(self) -> float:
        """Wire bytes per app byte, minus one (0 for an empty unit)."""
        if self.app_bytes <= 0:
            return 0.0
        return self.wire_bytes / self.app_bytes - 1.0

    def airtime_s(self, rate_mbps: float) -> float:
        """Seconds to carry this unit's wire bytes at ``rate_mbps``."""
        if self.wire_bytes <= 0:
            return 0.0
        if rate_mbps <= 0:
            return float("inf")
        return self.wire_bytes * 8.0 / (rate_mbps * 1e6)


def packet_count(nbytes: float, payload_bytes: int) -> int:
    """PDUs needed to carry ``nbytes`` of payload."""
    if nbytes < 0:
        raise ValueError("nbytes must be non-negative")
    if payload_bytes <= 0:
        raise ValueError("payload_bytes must be positive")
    return int(math.ceil(nbytes / payload_bytes))


def packetize_bytes(
    nbytes: float, config: PacketizationConfig = PacketizationConfig()
) -> PacketizedUnit:
    """Packetize one contiguous byte run (one cell, or one FEC block)."""
    n = packet_count(nbytes, config.payload_bytes)
    return PacketizedUnit(
        num_packets=n,
        app_bytes=float(nbytes),
        wire_bytes=float(nbytes) + n * config.header_bytes,
    )


def packetize_cells(
    cell_bytes: dict[int, float],
    config: PacketizationConfig = PacketizationConfig(),
) -> PacketizedUnit:
    """Packetize a per-cell demand map; cells never share a PDU."""
    unit = PacketizedUnit(num_packets=0, app_bytes=0.0, wire_bytes=0.0)
    for nbytes in cell_bytes.values():
        unit = unit + packetize_bytes(nbytes, config)
    return unit


def packetize_demand(
    demand: UserDemand, config: PacketizationConfig = PacketizationConfig()
) -> PacketizedUnit:
    """Packetize one user's whole frame demand."""
    return packetize_cells(demand.cell_bytes, config)
