"""Per-packet error probability from PHY state.

802.11ad defines each MCS's receive sensitivity at a reference packet error
rate (a few percent PSDU error with long PSDUs), and measured PER-vs-SNR
curves fall off roughly log-linearly — a "waterfall" of about one decade of
PER per couple of dB once past the knee.  This module turns the RSS/SINR
margin over the selected MCS's threshold (from :mod:`repro.mmwave.mcs` /
:mod:`repro.mmwave.sinr`) into a per-packet loss probability, and layers
blockage-driven burst loss on top: while a human body crosses the LoS
(:mod:`repro.mmwave.blockage`), the link drops 12+ dB and the PER saturates.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..mmwave.mcs import McsEntry, mcs_for_rss
from ..mmwave.sinr import NOISE_FLOOR_DBM, mcs_for_sinr

__all__ = [
    "PER_AT_SENSITIVITY",
    "PER_DECADE_DB",
    "PER_FLOOR",
    "BLOCKED_PER",
    "per_from_margin_db",
    "per_for_rss",
    "per_for_sinr",
    "PacketErrorModel",
    "sample_packet_failures",
]

# 802.11ad specifies sensitivity at <= 5% PSDU error (4096-octet PSDUs).
PER_AT_SENSITIVITY = 0.05
# Waterfall steepness: one decade of PER per this many dB of extra margin.
PER_DECADE_DB = 2.0
# Numerical floor — no link is truly error-free.
PER_FLOOR = 1e-7
# During an unmitigated body blockage the budget's 12+ dB hit saturates PER.
BLOCKED_PER = 0.9


def per_from_margin_db(margin_db: float) -> float:
    """PER at ``margin_db`` above (positive) or below (negative) the knee.

    At the knee (margin 0) the PER is the spec's reference
    :data:`PER_AT_SENSITIVITY`; each :data:`PER_DECADE_DB` of margin buys a
    decade.  Below the knee the same slope climbs until the packet is
    effectively always lost.
    """
    per = PER_AT_SENSITIVITY * 10.0 ** (-margin_db / PER_DECADE_DB)
    return float(min(1.0, max(PER_FLOOR, per)))


def per_for_rss(rss_dbm: float, entry: McsEntry | None = None) -> float:
    """Per-packet loss at an RSS under the (auto-)selected MCS.

    Rate selection picks the fastest MCS the RSS supports, which by
    construction leaves less than one MCS step of margin — so healthy links
    still see a small but non-zero PER.  Below the MCS 1 sensitivity the
    link is in outage and every packet is lost.
    """
    if entry is None:
        entry = mcs_for_rss(rss_dbm)
    if entry is None:
        return 1.0
    return per_from_margin_db(rss_dbm - entry.sensitivity_dbm)


def per_for_sinr(sinr_db: float) -> float:
    """Per-packet loss at a SINR (concurrent-AP experiments)."""
    entry = mcs_for_sinr(sinr_db)
    if entry is None:
        return 1.0
    threshold = entry.sensitivity_dbm - NOISE_FLOOR_DBM
    return per_from_margin_db(sinr_db - threshold)


@dataclass(frozen=True)
class PacketErrorModel:
    """Maps a link's PHY state to a per-packet error probability.

    ``base_per`` overrides the RSS-derived PER with a fixed value (loss
    sweeps); ``blocked_per`` is the burst-loss level while a blockage event
    covers the link.  With neither an override nor an RSS (the calibrated
    capacity providers report no PHY state) the link is treated as clean.
    """

    base_per: float | None = None
    blocked_per: float = BLOCKED_PER

    def __post_init__(self) -> None:
        if self.base_per is not None and not 0.0 <= self.base_per <= 1.0:
            raise ValueError("base_per must be in [0, 1]")
        if not 0.0 <= self.blocked_per <= 1.0:
            raise ValueError("blocked_per must be in [0, 1]")

    def per(self, rss_dbm: float | None = None, blocked: bool = False) -> float:
        base = self.base_per
        if base is None:
            base = per_for_rss(rss_dbm) if rss_dbm is not None else 0.0
        if blocked:
            return max(base, self.blocked_per)
        return base


def sample_packet_failures(
    rng: np.random.Generator, num_packets: int, per: float
) -> int:
    """How many of ``num_packets`` independent transmissions fail."""
    if num_packets < 0:
        raise ValueError("num_packets must be non-negative")
    if not 0.0 <= per <= 1.0:
        raise ValueError("per must be in [0, 1]")
    if num_packets == 0 or per == 0.0:
        return 0
    if per == 1.0:
        return num_packets
    return int(rng.binomial(num_packets, per))
