"""Transport-layer configuration and presets.

``TransportConfig(mode="ideal")`` is the default everywhere and reproduces
the fluid transfer-time model bit-for-bit — no packetization, no loss —
so every pre-existing experiment keeps its numbers.  The other modes engage
the packet-level pipeline:

* ``"arq"``    — block-ACK retransmission for unicast *and* multicast
  (the ARQ-only baseline whose multicast leg collapses under loss);
* ``"fec"``    — rateless-style FEC everywhere, no feedback;
* ``"hybrid"`` — the cross-layer recommendation: FEC for multicast
  (per-receiver ACKs don't scale), ARQ for unicast residuals.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace

from .arq import ArqConfig
from .errormodel import PacketErrorModel
from .fec import FecConfig
from .packetization import PacketizationConfig

__all__ = ["TRANSPORT_MODES", "TransportConfig"]

TRANSPORT_MODES = ("ideal", "arq", "fec", "hybrid")


@dataclass(frozen=True)
class TransportConfig:
    """Everything the packet-level transport simulator needs."""

    mode: str = "ideal"
    packetization: PacketizationConfig = field(default_factory=PacketizationConfig)
    error_model: PacketErrorModel = field(default_factory=PacketErrorModel)
    arq: ArqConfig = field(default_factory=ArqConfig)
    fec: FecConfig = field(default_factory=FecConfig)
    # Loss-recovery budget per frame, in units of the frame interval 1/F:
    # ARQ rounds and FEC transmission must finish within this much time or
    # the frame is late (undelivered) for the members still missing data.
    deadline_frames: float = 1.0
    seed: int = 0

    def __post_init__(self) -> None:
        if self.mode not in TRANSPORT_MODES:
            raise ValueError(
                f"unknown transport mode {self.mode!r}; pick from {TRANSPORT_MODES}"
            )
        if self.deadline_frames <= 0:
            raise ValueError("deadline_frames must be positive")

    @property
    def is_ideal(self) -> bool:
        return self.mode == "ideal"

    def deadline_s(self, target_fps: float) -> float:
        """The per-frame recovery budget in seconds at a frame rate."""
        if target_fps <= 0:
            raise ValueError("target_fps must be positive")
        return self.deadline_frames / target_fps

    def multicast_scheme(self) -> str:
        """Recovery scheme for multicast transmissions: ``arq`` or ``fec``."""
        return "arq" if self.mode == "arq" else "fec"

    def unicast_scheme(self) -> str:
        """Recovery scheme for unicast transmissions: ``arq`` or ``fec``."""
        return "fec" if self.mode == "fec" else "arq"

    def with_base_per(self, base_per: float | None) -> "TransportConfig":
        """A copy with the error model pinned to a fixed per-packet loss."""
        return replace(
            self, error_model=replace(self.error_model, base_per=base_per)
        )

    # -- presets ---------------------------------------------------------

    @classmethod
    def ideal(cls) -> "TransportConfig":
        return cls(mode="ideal")

    @classmethod
    def arq_only(cls, base_per: float | None = None, **kwargs) -> "TransportConfig":
        return cls(
            mode="arq", error_model=PacketErrorModel(base_per=base_per), **kwargs
        )

    @classmethod
    def fec_only(cls, base_per: float | None = None, **kwargs) -> "TransportConfig":
        return cls(
            mode="fec", error_model=PacketErrorModel(base_per=base_per), **kwargs
        )

    @classmethod
    def hybrid(cls, base_per: float | None = None, **kwargs) -> "TransportConfig":
        return cls(
            mode="hybrid", error_model=PacketErrorModel(base_per=base_per), **kwargs
        )

    @classmethod
    def preset(cls, mode: str, base_per: float | None = None) -> "TransportConfig":
        """Preset by mode name (the CLI's ``--transport`` values)."""
        if mode == "ideal":
            return cls.ideal()
        if mode == "arq":
            return cls.arq_only(base_per)
        if mode == "fec":
            return cls.fec_only(base_per)
        if mode == "hybrid":
            return cls.hybrid(base_per)
        raise ValueError(
            f"unknown transport mode {mode!r}; pick from {TRANSPORT_MODES}"
        )
