"""Block-ACK retransmission with a per-frame deadline budget.

Unicast 802.11ad delivery recovers losses with block acknowledgements: the
sender transmits a block of PDUs, collects a per-receiver bitmap, and
retransmits the union of missed PDUs, round after round, until everyone has
the block or the frame's deadline budget runs out.  The same mechanism
applied to a multicast group is the "ARQ-only multicast" baseline: every
round pays one feedback exchange *per member* (per-receiver ACKs do not
scale) and retransmits the union of all members' losses at the group rate,
so both the feedback overhead and the retransmission volume grow with group
size.

The round loop runs as a process on the :mod:`repro.sim` engine; each round
races its own completion against the frame deadline with
:func:`repro.sim.any_of`.  A round cut off by the deadline delivers nothing
(the block is only usable once acknowledged), and members still holding
losses at that point have missed the frame.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..obs import trace as _trace
from ..sim import Environment, Event, any_of

__all__ = [
    "ArqConfig",
    "ArqOutcome",
    "block_arq_process",
    "simulate_block_arq",
    "expected_transmissions",
]

ROUND_DONE = "arq-round-done"

_EV_ARQ_ROUND = _trace.event_type(
    "net.arq_round", layer="net",
    help="one block-ACK round completed (union retransmission + feedback); "
         "cost_s = data_s (PDU airtime) + overhead_s (per-member feedback "
         "and turnaround)",
    fields=("round", "packets", "pending_receivers", "cost_s", "data_s",
            "overhead_s", "frame", "users"),
)
_EV_ARQ_DEADLINE = _trace.event_type(
    "net.arq_deadline", layer="net",
    help="the frame deadline cut an ARQ round short; the block stays "
         "unacknowledged and wasted_s of airtime bought nothing",
    fields=("round", "pending_receivers", "wasted_s", "frame", "users"),
)


@dataclass(frozen=True)
class ArqConfig:
    """Block-ACK parameters."""

    max_rounds: int = 8
    feedback_time_s: float = 100e-6  # one member's BAR/BA exchange per round
    round_trip_s: float = 200e-6  # per-round turnaround/scheduling latency

    def __post_init__(self) -> None:
        if self.max_rounds < 1:
            raise ValueError("max_rounds must be >= 1")
        if self.feedback_time_s < 0 or self.round_trip_s < 0:
            raise ValueError("ARQ latencies must be non-negative")


@dataclass(frozen=True)
class ArqOutcome:
    """Result of one block's delivery attempt to one or more receivers."""

    delivered: tuple[bool, ...]  # per receiver, in input order
    airtime_s: float  # medium time consumed, including feedback
    rounds: int  # completed rounds
    packets_sent: int  # data PDUs, including retransmissions
    residual_packets: tuple[int, ...]  # per receiver, still missing at stop

    @property
    def all_delivered(self) -> bool:
        return all(self.delivered)


def block_arq_process(
    env: Environment,
    rng: np.random.Generator,
    num_packets: int,
    pers: list[float],
    packet_time_s: float,
    config: ArqConfig,
    deadline_event: Event | None = None,
    frame: int | None = None,
    receivers: tuple[int, ...] | None = None,
):
    """Process: deliver ``num_packets`` to every receiver via block-ACK rounds.

    ``pers`` holds one per-packet loss probability per receiver.  Each round
    transmits the union of outstanding packets, then charges one feedback
    slot per receiver plus the round-trip turnaround.  ``deadline_event``
    (shared across a frame's transmission units) cuts the loop short; the
    interrupted round is wasted airtime.

    ``frame`` and ``receivers`` are trace-only correlation fields (the frame
    index being delivered and the receiver user ids, when the caller knows
    them); they never influence the delivery outcome.

    Returns an :class:`ArqOutcome` (as the process's value).
    """
    num_receivers = len(pers)
    if num_receivers == 0:
        raise ValueError("need at least one receiver")
    if num_packets == 0:
        return ArqOutcome(
            delivered=(True,) * num_receivers,
            airtime_s=0.0,
            rounds=0,
            packets_sent=0,
            residual_packets=(0,) * num_receivers,
        )
    if packet_time_s <= 0 or not np.isfinite(packet_time_s):
        # Dead link: nothing can be transmitted; fail without burning time.
        return ArqOutcome(
            delivered=(False,) * num_receivers,
            airtime_s=0.0,
            rounds=0,
            packets_sent=0,
            residual_packets=(num_packets,) * num_receivers,
        )

    needs = np.ones((num_receivers, num_packets), dtype=bool)
    start = env.now
    rounds = 0
    packets_sent = 0
    overhead_s = num_receivers * config.feedback_time_s + config.round_trip_s
    while rounds < config.max_rounds:
        union = needs.any(axis=0)
        n_union = int(union.sum())
        if n_union == 0:
            break
        cost = n_union * packet_time_s + overhead_s
        round_start = env.now
        round_done = env.timeout(cost, value=ROUND_DONE)
        if deadline_event is not None:
            winner = yield any_of(env, [round_done, deadline_event])
        else:
            winner = yield round_done
        if winner != ROUND_DONE:
            # Deadline hit mid-round: the block was never acknowledged, so
            # the round delivers nothing and the frame is late.
            if _trace._RECORDER is not None:
                _EV_ARQ_DEADLINE.emit(
                    t=env.now,
                    round=rounds + 1,
                    pending_receivers=int(needs.any(axis=1).sum()),
                    wasted_s=env.now - round_start,
                    **_trace.correlation(frame=frame, users=receivers),
                )
            break
        rounds += 1
        packets_sent += n_union
        for r, per in enumerate(pers):
            listening = needs[r]
            if not listening.any():
                continue
            if per >= 1.0:
                continue  # receiver hears nothing
            if per <= 0.0:
                needs[r] = False
                continue
            failures = rng.random(num_packets) < per
            needs[r] &= failures
        if _trace._RECORDER is not None:
            _EV_ARQ_ROUND.emit(
                t=env.now,
                round=rounds,
                packets=n_union,
                pending_receivers=int(needs.any(axis=1).sum()),
                cost_s=cost,
                data_s=n_union * packet_time_s,
                overhead_s=overhead_s,
                **_trace.correlation(frame=frame, users=receivers),
            )
    residual = tuple(int(needs[r].sum()) for r in range(num_receivers))
    return ArqOutcome(
        delivered=tuple(n == 0 for n in residual),
        airtime_s=env.now - start,
        rounds=rounds,
        packets_sent=packets_sent,
        residual_packets=residual,
    )


def simulate_block_arq(
    rng: np.random.Generator,
    num_packets: int,
    pers: list[float],
    packet_time_s: float,
    config: ArqConfig = ArqConfig(),
    deadline_s: float | None = None,
) -> ArqOutcome:
    """Run :func:`block_arq_process` to completion on a private clock."""
    env = Environment()
    deadline_event = (
        env.timeout(deadline_s, value="deadline") if deadline_s is not None else None
    )
    holder: dict[str, ArqOutcome] = {}

    def runner():
        holder["outcome"] = yield from block_arq_process(
            env, rng, num_packets, pers, packet_time_s, config, deadline_event
        )

    env.process(runner())
    env.run_until_empty()
    return holder["outcome"]


def expected_transmissions(per: float, max_rounds: int | None = None) -> float:
    """Mean transmissions per packet under independent loss ``per``.

    Unlimited rounds give the classic ``1 / (1 - per)``; with a round cap
    the geometric series truncates.
    """
    if not 0.0 <= per < 1.0:
        raise ValueError("per must be in [0, 1)")
    if max_rounds is None:
        return 1.0 / (1.0 - per)
    return float(sum(per**r for r in range(max_rounds)))
