"""Systematic rateless-style FEC for multicast delivery.

Per-receiver ACKs do not scale to multicast groups, so instead of reacting
to losses the sender transmits the ``k`` source PDUs plus enough repair
PDUs that every member can reconstruct the block from *any*
``k·(1 + decode_inefficiency)`` received PDUs — the decoding behaviour of
rateless (LT/Raptor-style) codes.  The group's weakest member (highest
per-packet loss) dictates the repair budget: redundancy is sized so that
member still collects a decodable set with probability
``1 - target_residual``.

No feedback rounds, no retransmissions: one transmission, fixed overhead,
deterministic airtime — which is exactly why FEC multicast keeps its frame
rate where ARQ-only multicast collapses against the frame deadline.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

__all__ = [
    "FecConfig",
    "decode_threshold",
    "total_packets_needed",
    "repair_fraction",
    "sample_decodes",
]


@dataclass(frozen=True)
class FecConfig:
    """Redundancy policy for one FEC-protected block.

    ``overhead`` fixes the repair fraction (``n = k·(1 + overhead)``);
    ``None`` sizes it adaptively from the weakest member's loss rate.
    """

    overhead: float | None = None
    decode_inefficiency: float = 0.02  # rateless codes need k·(1+ε) symbols
    target_residual: float = 1e-3  # adaptive mode: P(member fails to decode)
    max_overhead: float = 4.0  # never send more than (1+this)·k packets

    def __post_init__(self) -> None:
        if self.overhead is not None and self.overhead < 0:
            raise ValueError("overhead must be non-negative")
        if self.decode_inefficiency < 0:
            raise ValueError("decode_inefficiency must be non-negative")
        if not 0.0 < self.target_residual < 1.0:
            raise ValueError("target_residual must be in (0, 1)")
        if self.max_overhead <= 0:
            raise ValueError("max_overhead must be positive")


def decode_threshold(k: int, config: FecConfig = FecConfig()) -> int:
    """Received PDUs a member needs to reconstruct a ``k``-packet block."""
    if k < 0:
        raise ValueError("k must be non-negative")
    if k == 0:
        return 0
    return max(k, int(math.ceil(k * (1.0 + config.decode_inefficiency))))


def total_packets_needed(
    k: int, worst_per: float, config: FecConfig = FecConfig()
) -> int:
    """Source + repair PDUs to transmit for a ``k``-packet block.

    Adaptive mode solves for the smallest ``n`` whose received count at the
    weakest member — mean ``n·(1-p)``, normal-approximated — clears the
    decode threshold with ``target_residual`` failure probability.  A cap of
    ``k·(1 + max_overhead)`` bounds the spend against outage-grade loss.
    """
    if k < 0:
        raise ValueError("k must be non-negative")
    if not 0.0 <= worst_per <= 1.0:
        raise ValueError("worst_per must be in [0, 1]")
    if k == 0:
        return 0
    k_eff = decode_threshold(k, config)
    cap = int(math.ceil(k * (1.0 + config.max_overhead)))
    if config.overhead is not None:
        return min(cap, max(k_eff, int(math.ceil(k * (1.0 + config.overhead)))))
    p = worst_per
    if p >= 1.0:
        return cap
    if p <= 0.0:
        return k_eff
    q = 1.0 - p
    # Solve n·q - z·sqrt(n·p·q) >= k_eff for n (quadratic in sqrt(n)).
    z = _normal_quantile(1.0 - config.target_residual)
    root = (z * math.sqrt(p * q) + math.sqrt(z * z * p * q + 4.0 * q * k_eff)) / (
        2.0 * q
    )
    n = int(math.ceil(root * root))
    return min(cap, max(n, k_eff))


def repair_fraction(
    k: int, worst_per: float, config: FecConfig = FecConfig()
) -> float:
    """Repair overhead as a fraction of the source block size."""
    if k <= 0:
        return 0.0
    return total_packets_needed(k, worst_per, config) / k - 1.0


def sample_decodes(
    rng: np.random.Generator,
    k: int,
    n_sent: int,
    pers: list[float],
    config: FecConfig = FecConfig(),
) -> tuple[bool, ...]:
    """Whether each member decodes a block of ``n_sent`` transmitted PDUs.

    Each member independently receives ``Binomial(n_sent, 1 - per)`` PDUs
    and decodes iff that clears the threshold — so a deadline-truncated
    transmission (``n_sent`` below plan) degrades gracefully instead of
    failing outright.
    """
    if n_sent < 0:
        raise ValueError("n_sent must be non-negative")
    k_eff = decode_threshold(k, config)
    results = []
    for per in pers:
        if not 0.0 <= per <= 1.0:
            raise ValueError("per must be in [0, 1]")
        if k == 0:
            results.append(True)
        elif n_sent < k_eff or per >= 1.0:
            results.append(False)
        elif per <= 0.0:
            results.append(True)
        else:
            received = int(rng.binomial(n_sent, 1.0 - per))
            results.append(received >= k_eff)
    return tuple(results)


def _normal_quantile(prob: float) -> float:
    """Inverse standard-normal CDF (Acklam's rational approximation)."""
    if not 0.0 < prob < 1.0:
        raise ValueError("prob must be in (0, 1)")
    # Coefficients for the central and tail rational approximations.
    a = (-3.969683028665376e01, 2.209460984245205e02, -2.759285104469687e02,
         1.383577518672690e02, -3.066479806614716e01, 2.506628277459239e00)
    b = (-5.447609879822406e01, 1.615858368580409e02, -1.556989798598866e02,
         6.680131188771972e01, -1.328068155288572e01)
    c = (-7.784894002430293e-03, -3.223964580411365e-01, -2.400758277161838e00,
         -2.549732539343734e00, 4.374664141464968e00, 2.938163982698783e00)
    d = (7.784695709041462e-03, 3.224671290700398e-01, 2.445134137142996e00,
         3.754408661907416e00)
    p_low = 0.02425
    if prob < p_low:
        q = math.sqrt(-2.0 * math.log(prob))
        return (((((c[0] * q + c[1]) * q + c[2]) * q + c[3]) * q + c[4]) * q + c[5]) / (
            (((d[0] * q + d[1]) * q + d[2]) * q + d[3]) * q + 1.0
        )
    if prob > 1.0 - p_low:
        q = math.sqrt(-2.0 * math.log(1.0 - prob))
        return -(((((c[0] * q + c[1]) * q + c[2]) * q + c[3]) * q + c[4]) * q + c[5]) / (
            (((d[0] * q + d[1]) * q + d[2]) * q + d[3]) * q + 1.0
        )
    q = prob - 0.5
    r = q * q
    return (((((a[0] * r + a[1]) * r + a[2]) * r + a[3]) * r + a[4]) * r + a[5]) * q / (
        ((((b[0] * r + b[1]) * r + b[2]) * r + b[3]) * r + b[4]) * r + 1.0
    )
