"""Packet-level delivery of a frame plan: goodput + residual-loss outcomes.

The fluid scheduler (:mod:`repro.mac.scheduler`) prices a frame plan as
``bytes / rate`` — delivery always succeeds, loss only slows it down.  The
:class:`TransportSimulator` replaces that math with a packet-level pipeline
run as processes on the :mod:`repro.sim` engine:

1. each transmission unit (a group's shared cells, a member's residual
   cells, a solo user's frame) is packetized into MTU-sized PDUs;
2. each PDU is lost independently with the link's per-packet error
   probability (:mod:`repro.net.errormodel`);
3. losses are recovered per the configured mode — block-ACK ARQ rounds
   (:mod:`repro.net.arq`) or proactive rateless FEC (:mod:`repro.net.fec`)
   — all racing one shared frame-deadline event;
4. the outcome is *effective goodput* (airtime actually burned, including
   feedback, retransmissions, and repair packets) plus *residual frame
   loss* (members whose frame did not completely arrive in time).

``mode="ideal"`` bypasses all of it and reproduces the fluid numbers
bit-for-bit.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..mac.scheduler import FramePlan
from ..sim import Environment, Event, any_of
from .arq import block_arq_process
from .config import TransportConfig
from .fec import sample_decodes, total_packets_needed
from .packetization import PacketizedUnit, packetize_cells

__all__ = ["FrameOutcome", "TransportSimulator", "DEADLINE", "TX_DONE"]

DEADLINE = "frame-deadline"
TX_DONE = "tx-done"


@dataclass
class FrameOutcome:
    """What actually happened to one frame's delivery."""

    airtime_s: float
    delivered: dict[int, bool]  # user id -> frame fully arrived in time
    app_bytes_delivered: float
    wire_bytes_sent: float
    packets_sent: int
    arq_rounds: int
    residual_loss: float  # fraction of users whose frame was lost
    retx_overhead: float  # extra airtime vs. the fluid model, as a fraction

    @property
    def delivered_fraction(self) -> float:
        if not self.delivered:
            return 1.0
        return sum(self.delivered.values()) / len(self.delivered)

    def effective_fps(self, cap_fps: float = 30.0) -> float:
        """Frame rate this delivery sustains, averaged over users.

        A user who got the frame sustains ``1 / airtime``; a user who lost
        it sustains 0 for this frame — the mean is
        ``delivered_fraction / airtime``.
        """
        frac = self.delivered_fraction
        if self.airtime_s <= 0:
            return cap_fps if frac > 0 else 0.0
        return min(cap_fps, frac / self.airtime_s)


class TransportSimulator:
    """Delivers :class:`~repro.mac.scheduler.FramePlan`\\ s over lossy links."""

    def __init__(
        self, config: TransportConfig, rng: np.random.Generator | None = None
    ) -> None:
        self.config = config
        self.rng = rng if rng is not None else np.random.default_rng(config.seed)

    def reseed(self, seed: int | None = None) -> None:
        """Reset the loss-sampling stream (for reproducible re-runs)."""
        self.rng = np.random.default_rng(
            self.config.seed if seed is None else seed
        )

    def link_per(self, rss_dbm: float | None = None, blocked: bool = False) -> float:
        """Per-packet loss for a link, via the configured error model."""
        return self.config.error_model.per(rss_dbm=rss_dbm, blocked=blocked)

    # -- delivery --------------------------------------------------------

    def frame_outcome(
        self, plan: FramePlan, pers: dict[int, float], target_fps: float = 30.0
    ) -> FrameOutcome:
        """Synchronously deliver one frame plan on a private clock."""
        env = Environment()
        holder: dict[str, FrameOutcome] = {}

        def runner():
            holder["outcome"] = yield from self.deliver(env, plan, pers, target_fps)

        env.process(runner())
        env.run_until_empty()
        return holder["outcome"]

    def deliver(
        self,
        env: Environment,
        plan: FramePlan,
        pers: dict[int, float],
        target_fps: float = 30.0,
    ):
        """Process: deliver ``plan``; returns a :class:`FrameOutcome`.

        ``pers`` maps user id -> per-packet loss probability.  All of the
        plan's transmission units share one deadline budget of
        ``deadline_frames / target_fps`` seconds, serialized in plan order
        (multicast groups first, then their residuals, then solo users) —
        the packet-level analogue of the fluid model's summed airtime.
        """
        demands = plan.demands
        if self.config.is_ideal:
            t = plan.total_time_s()
            ok = bool(np.isfinite(t))
            if ok and t > 0:
                yield env.timeout(t)
            delivered = {u: ok for u in demands}
            app = sum(d.total_bytes for d in demands.values()) if ok else 0.0
            return FrameOutcome(
                airtime_s=t if ok else 0.0,
                delivered=delivered,
                app_bytes_delivered=app,
                wire_bytes_sent=app,
                packets_sent=0,
                arq_rounds=0,
                residual_loss=0.0 if ok else 1.0,
                retx_overhead=0.0,
            )

        start = env.now
        deadline_event = env.timeout(
            self.config.deadline_s(target_fps), value=DEADLINE
        )
        stats = _DeliveryStats()
        delivered: dict[int, bool] = {}
        pk = self.config.packetization
        overhead_s = plan.beam_switch_overhead_s

        for members, rate in plan.groups:
            group_demands = [demands[m] for m in members]
            shared_cells = set(group_demands[0].cell_bytes)
            for d in group_demands[1:]:
                shared_cells &= set(d.cell_bytes)
            shared_map = {
                c: max(d.cell_bytes[c] for d in group_demands)
                for c in sorted(shared_cells)
            }
            shared_unit = packetize_cells(shared_map, pk)
            member_pers = [pers.get(m, 0.0) for m in members]
            if overhead_s > 0:
                yield env.timeout(overhead_s)
            if self.config.multicast_scheme() == "arq":
                ok = yield from self._arq_unit(
                    env, shared_unit, rate, member_pers, deadline_event, stats
                )
            else:
                ok = yield from self._fec_unit(
                    env, shared_unit, rate, member_pers, deadline_event, stats
                )
            for m, shared_ok, demand in zip(members, ok, group_demands):
                residual_map = {
                    c: b
                    for c, b in demand.cell_bytes.items()
                    if c not in shared_cells
                }
                if not shared_ok:
                    # The frame is unusable without its shared cells; the
                    # member's NACK suppresses the pointless residual leg.
                    delivered[m] = False
                    continue
                if not residual_map:
                    delivered[m] = True
                    continue
                if overhead_s > 0:
                    yield env.timeout(overhead_s)
                delivered[m] = yield from self._unicast_leg(
                    env,
                    packetize_cells(residual_map, pk),
                    demand.unicast_rate_mbps,
                    pers.get(m, 0.0),
                    deadline_event,
                    stats,
                )

        for u in plan.solo_users:
            demand = demands[u]
            if overhead_s > 0:
                yield env.timeout(overhead_s)
            delivered[u] = yield from self._unicast_leg(
                env,
                packetize_cells(demand.cell_bytes, pk),
                demand.unicast_rate_mbps,
                pers.get(u, 0.0),
                deadline_event,
                stats,
            )

        airtime = env.now - start
        num_users = len(demands)
        losses = sum(1 for ok in delivered.values() if not ok)
        app_delivered = sum(
            demands[u].total_bytes for u, ok in delivered.items() if ok
        )
        ideal_t = plan.total_time_s()
        if np.isfinite(ideal_t) and ideal_t > 0:
            retx_overhead = max(0.0, airtime / ideal_t - 1.0)
        else:
            retx_overhead = 0.0
        return FrameOutcome(
            airtime_s=airtime,
            delivered=delivered,
            app_bytes_delivered=app_delivered,
            wire_bytes_sent=stats.wire_bytes,
            packets_sent=stats.packets,
            arq_rounds=stats.arq_rounds,
            residual_loss=(losses / num_users) if num_users else 0.0,
            retx_overhead=retx_overhead,
        )

    # -- transmission units ---------------------------------------------

    def _unicast_leg(self, env, unit, rate, per, deadline_event, stats):
        if self.config.unicast_scheme() == "arq":
            ok = yield from self._arq_unit(
                env, unit, rate, [per], deadline_event, stats
            )
        else:
            ok = yield from self._fec_unit(
                env, unit, rate, [per], deadline_event, stats
            )
        return ok[0]

    def _arq_unit(
        self,
        env: Environment,
        unit: PacketizedUnit,
        rate_mbps: float,
        member_pers: list[float],
        deadline_event: Event,
        stats: "_DeliveryStats",
    ):
        if unit.num_packets == 0:
            return (True,) * len(member_pers)
        packet_time = _packet_time_s(unit, rate_mbps)
        outcome = yield env.process(
            block_arq_process(
                env,
                self.rng,
                unit.num_packets,
                member_pers,
                packet_time,
                self.config.arq,
                deadline_event,
            )
        )
        stats.packets += outcome.packets_sent
        stats.wire_bytes += outcome.packets_sent * _mean_packet_bytes(unit)
        stats.arq_rounds += outcome.rounds
        return outcome.delivered

    def _fec_unit(
        self,
        env: Environment,
        unit: PacketizedUnit,
        rate_mbps: float,
        member_pers: list[float],
        deadline_event: Event,
        stats: "_DeliveryStats",
    ):
        k = unit.num_packets
        if k == 0:
            return (True,) * len(member_pers)
        packet_time = _packet_time_s(unit, rate_mbps)
        if not np.isfinite(packet_time):
            return (False,) * len(member_pers)
        # The weakest member sets the repair budget.
        n = total_packets_needed(k, max(member_pers), self.config.fec)
        airtime = n * packet_time
        unit_start = env.now
        winner = yield any_of(
            env, [env.timeout(airtime, value=TX_DONE), deadline_event]
        )
        if winner == TX_DONE:
            n_sent = n
        else:
            # Deadline truncated the block; decoding degrades gracefully
            # with however many PDUs made it out.
            n_sent = int(n * (env.now - unit_start) / airtime) if airtime > 0 else 0
        stats.packets += n_sent
        stats.wire_bytes += n_sent * _mean_packet_bytes(unit)
        return sample_decodes(self.rng, k, n_sent, member_pers, self.config.fec)


@dataclass
class _DeliveryStats:
    packets: int = 0
    wire_bytes: float = 0.0
    arq_rounds: int = 0


def _mean_packet_bytes(unit: PacketizedUnit) -> float:
    if unit.num_packets == 0:
        return 0.0
    return unit.wire_bytes / unit.num_packets


def _packet_time_s(unit: PacketizedUnit, rate_mbps: float) -> float:
    if rate_mbps <= 0:
        return float("inf")
    return _mean_packet_bytes(unit) * 8.0 / (rate_mbps * 1e6)
