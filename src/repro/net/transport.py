"""Packet-level delivery of a frame plan: goodput + residual-loss outcomes.

The fluid scheduler (:mod:`repro.mac.scheduler`) prices a frame plan as
``bytes / rate`` — delivery always succeeds, loss only slows it down.  The
:class:`TransportSimulator` replaces that math with a packet-level pipeline
run as processes on the :mod:`repro.sim` engine:

1. each transmission unit (a group's shared cells, a member's residual
   cells, a solo user's frame) is packetized into MTU-sized PDUs;
2. each PDU is lost independently with the link's per-packet error
   probability (:mod:`repro.net.errormodel`);
3. losses are recovered per the configured mode — block-ACK ARQ rounds
   (:mod:`repro.net.arq`) or proactive rateless FEC (:mod:`repro.net.fec`)
   — all racing one shared frame-deadline event;
4. the outcome is *effective goodput* (airtime actually burned, including
   feedback, retransmissions, and repair packets) plus *residual frame
   loss* (members whose frame did not completely arrive in time).

``mode="ideal"`` bypasses all of it and reproduces the fluid numbers
bit-for-bit.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..mac.scheduler import FramePlan
from ..obs import metrics as _metrics
from ..obs import trace as _trace
from ..sim import Environment, Event, any_of
from .arq import block_arq_process
from .config import TransportConfig
from .fec import sample_decodes, total_packets_needed
from .packetization import PacketizedUnit, packetize_cells

__all__ = ["FrameOutcome", "TransportSimulator", "DEADLINE", "TX_DONE"]

DEADLINE = "frame-deadline"
TX_DONE = "tx-done"

# -- observability (no-ops unless recording/metrics are enabled) -------------

_C_PACKETS = _metrics.counter(
    "net.packets_sent", unit="packets", layer="net",
    help="data PDUs put on the air, including retransmissions and FEC repair",
)
_C_WIRE_BYTES = _metrics.counter(
    "net.wire_bytes_sent", unit="bytes", layer="net",
    help="wire bytes transmitted (payload + per-PDU header overhead)",
)
_C_APP_BYTES = _metrics.counter(
    "net.app_bytes_delivered", unit="bytes", layer="net",
    help="application bytes of frames that completely arrived in time",
)
_C_FRAMES_OK = _metrics.counter(
    "net.user_frames_delivered", unit="frames", layer="net",
    help="per-user frame deliveries that completed before the deadline",
)
_C_FRAMES_LOST = _metrics.counter(
    "net.user_frames_lost", unit="frames", layer="net",
    help="per-user frame deliveries that missed the deadline (residual loss)",
)
_C_ARQ_ROUNDS = _metrics.counter(
    "net.arq_rounds", unit="rounds", layer="net",
    help="completed block-ACK retransmission rounds across all units",
)
_C_FEC_REPAIR = _metrics.counter(
    "net.fec_repair_packets", unit="packets", layer="net",
    help="repair PDUs sent beyond the k source PDUs of FEC-protected blocks",
)
_H_AIRTIME = _metrics.histogram(
    "net.frame_airtime_s",
    edges=(0.005, 0.01, 0.02, 1.0 / 30.0, 0.05, 0.1, 0.2, 0.5),
    unit="s", layer="net",
    help="airtime burned per delivered frame plan (feedback + repair included)",
)
_H_RETX = _metrics.histogram(
    "net.retx_overhead",
    edges=(0.01, 0.05, 0.1, 0.25, 0.5, 1.0, 2.0),
    unit="fraction", layer="net",
    help="extra airtime vs. the fluid model, as a fraction of the ideal time",
)

_EV_UNIT_TX = _trace.event_type(
    "net.unit_tx", layer="net",
    help="one transmission unit (multicast shared cells, residuals, or a solo "
         "frame) finished its delivery attempt",
    fields=("scheme", "packets", "receivers", "delivered", "airtime_s",
            "frame", "users"),
)
_EV_FEC_TX = _trace.event_type(
    "net.fec_tx", layer="net",
    help="one FEC-protected block was transmitted (possibly deadline-"
         "truncated); airtime_s = source_s (the k source PDUs) + repair_s "
         "(repair PDUs and truncation remainder)",
    fields=("k", "n_planned", "n_sent", "truncated", "airtime_s", "source_s",
            "repair_s", "frame", "users"),
)
_EV_BEAM_SWITCH = _trace.event_type(
    "net.beam_switch", layer="net",
    help="the radio paid one beam-switch overhead before a transmission "
         "unit (a MAC-layer cost the frame budget has to absorb)",
    fields=("overhead_s", "frame"),
)
_EV_FRAME_OUTCOME = _trace.event_type(
    "net.frame_outcome", layer="net",
    help="a full frame plan finished: airtime, residual loss, recovery cost",
    fields=("airtime_s", "users", "lost", "packets", "arq_rounds",
            "retx_overhead", "deadline_s", "frame", "delivered_users",
            "lost_users"),
)


def _record_outcome(
    outcome: "FrameOutcome",
    deadline_s: float | None = None,
    frame: int | None = None,
) -> None:
    """Fold one frame outcome into the metrics registry and the trace."""
    if _metrics.REGISTRY.enabled:
        ok = sum(outcome.delivered.values())
        _C_PACKETS.inc(outcome.packets_sent)
        _C_WIRE_BYTES.inc(outcome.wire_bytes_sent)
        _C_APP_BYTES.inc(outcome.app_bytes_delivered)
        _C_FRAMES_OK.inc(ok)
        _C_FRAMES_LOST.inc(len(outcome.delivered) - ok)
        _C_ARQ_ROUNDS.inc(outcome.arq_rounds)
        _H_AIRTIME.observe(outcome.airtime_s)
        _H_RETX.observe(outcome.retx_overhead)
    if _trace._RECORDER is not None:
        fields = dict(
            airtime_s=outcome.airtime_s,
            users=len(outcome.delivered),
            lost=sum(1 for ok in outcome.delivered.values() if not ok),
            packets=outcome.packets_sent,
            arq_rounds=outcome.arq_rounds,
            retx_overhead=outcome.retx_overhead,
            delivered_users=sorted(
                u for u, ok in outcome.delivered.items() if ok
            ),
            lost_users=sorted(
                u for u, ok in outcome.delivered.items() if not ok
            ),
        )
        if deadline_s is not None:
            fields["deadline_s"] = deadline_s
        fields.update(_trace.correlation(frame=frame))
        _EV_FRAME_OUTCOME.emit(**fields)


@dataclass
class FrameOutcome:
    """What actually happened to one frame's delivery."""

    airtime_s: float
    delivered: dict[int, bool]  # user id -> frame fully arrived in time
    app_bytes_delivered: float
    wire_bytes_sent: float
    packets_sent: int
    arq_rounds: int
    residual_loss: float  # fraction of users whose frame was lost
    retx_overhead: float  # extra airtime vs. the fluid model, as a fraction

    @property
    def delivered_fraction(self) -> float:
        if not self.delivered:
            return 1.0
        return sum(self.delivered.values()) / len(self.delivered)

    def effective_fps(self, cap_fps: float = 30.0) -> float:
        """Frame rate this delivery sustains, averaged over users.

        A user who got the frame sustains ``1 / airtime``; a user who lost
        it sustains 0 for this frame — the mean is
        ``delivered_fraction / airtime``.
        """
        frac = self.delivered_fraction
        if self.airtime_s <= 0:
            return cap_fps if frac > 0 else 0.0
        return min(cap_fps, frac / self.airtime_s)


class TransportSimulator:
    """Delivers :class:`~repro.mac.scheduler.FramePlan`\\ s over lossy links."""

    def __init__(
        self, config: TransportConfig, rng: np.random.Generator | None = None
    ) -> None:
        self.config = config
        self.rng = rng if rng is not None else np.random.default_rng(config.seed)

    def reseed(self, seed: int | None = None) -> None:
        """Reset the loss-sampling stream (for reproducible re-runs)."""
        self.rng = np.random.default_rng(
            self.config.seed if seed is None else seed
        )

    def link_per(self, rss_dbm: float | None = None, blocked: bool = False) -> float:
        """Per-packet loss for a link, via the configured error model."""
        return self.config.error_model.per(rss_dbm=rss_dbm, blocked=blocked)

    # -- delivery --------------------------------------------------------

    def frame_outcome(
        self,
        plan: FramePlan,
        pers: dict[int, float],
        target_fps: float = 30.0,
        frame: int | None = None,
    ) -> FrameOutcome:
        """Synchronously deliver one frame plan on a private clock."""
        env = Environment()
        holder: dict[str, FrameOutcome] = {}

        def runner():
            holder["outcome"] = yield from self.deliver(
                env, plan, pers, target_fps, frame=frame
            )

        env.process(runner())
        env.run_until_empty()
        return holder["outcome"]

    def deliver(
        self,
        env: Environment,
        plan: FramePlan,
        pers: dict[int, float],
        target_fps: float = 30.0,
        frame: int | None = None,
    ):
        """Process: deliver ``plan``; returns a :class:`FrameOutcome`.

        ``pers`` maps user id -> per-packet loss probability.  All of the
        plan's transmission units share one deadline budget of
        ``deadline_frames / target_fps`` seconds, serialized in plan order
        (multicast groups first, then their residuals, then solo users) —
        the packet-level analogue of the fluid model's summed airtime.

        ``frame`` is a trace-only correlation field: the frame index this
        plan carries, attached to every event the delivery emits so span
        reconstruction can join them without heuristics.  It never affects
        the outcome.
        """
        demands = plan.demands
        deadline_s = self.config.deadline_s(target_fps)
        if self.config.is_ideal:
            t = plan.total_time_s()
            ok = bool(np.isfinite(t))
            if ok and t > 0:
                yield env.timeout(t)
            delivered = {u: ok for u in demands}
            app = sum(d.total_bytes for d in demands.values()) if ok else 0.0
            outcome = FrameOutcome(
                airtime_s=t if ok else 0.0,
                delivered=delivered,
                app_bytes_delivered=app,
                wire_bytes_sent=app,
                packets_sent=0,
                arq_rounds=0,
                residual_loss=0.0 if ok else 1.0,
                retx_overhead=0.0,
            )
            _record_outcome(outcome, deadline_s=deadline_s, frame=frame)
            return outcome

        start = env.now
        deadline_event = env.timeout(deadline_s, value=DEADLINE)
        stats = _DeliveryStats()
        delivered: dict[int, bool] = {}
        pk = self.config.packetization
        overhead_s = plan.beam_switch_overhead_s

        for members, rate in plan.groups:
            group_demands = [demands[m] for m in members]
            shared_cells = set(group_demands[0].cell_bytes)
            for d in group_demands[1:]:
                shared_cells &= set(d.cell_bytes)
            shared_map = {
                c: max(d.cell_bytes[c] for d in group_demands)
                for c in sorted(shared_cells)
            }
            shared_unit = packetize_cells(shared_map, pk)
            member_pers = [pers.get(m, 0.0) for m in members]
            if overhead_s > 0:
                yield env.timeout(overhead_s)
                self._emit_beam_switch(env, overhead_s, frame)
            if self.config.multicast_scheme() == "arq":
                ok = yield from self._arq_unit(
                    env, shared_unit, rate, member_pers, deadline_event, stats,
                    frame=frame, members=tuple(members),
                )
            else:
                ok = yield from self._fec_unit(
                    env, shared_unit, rate, member_pers, deadline_event, stats,
                    frame=frame, members=tuple(members),
                )
            for m, shared_ok, demand in zip(members, ok, group_demands):
                residual_map = {
                    c: b
                    for c, b in demand.cell_bytes.items()
                    if c not in shared_cells
                }
                if not shared_ok:
                    # The frame is unusable without its shared cells; the
                    # member's NACK suppresses the pointless residual leg.
                    delivered[m] = False
                    continue
                if not residual_map:
                    delivered[m] = True
                    continue
                if overhead_s > 0:
                    yield env.timeout(overhead_s)
                    self._emit_beam_switch(env, overhead_s, frame)
                delivered[m] = yield from self._unicast_leg(
                    env,
                    packetize_cells(residual_map, pk),
                    demand.unicast_rate_mbps,
                    pers.get(m, 0.0),
                    deadline_event,
                    stats,
                    frame=frame,
                    user=m,
                )

        for u in plan.solo_users:
            demand = demands[u]
            if overhead_s > 0:
                yield env.timeout(overhead_s)
                self._emit_beam_switch(env, overhead_s, frame)
            delivered[u] = yield from self._unicast_leg(
                env,
                packetize_cells(demand.cell_bytes, pk),
                demand.unicast_rate_mbps,
                pers.get(u, 0.0),
                deadline_event,
                stats,
                frame=frame,
                user=u,
            )

        airtime = env.now - start
        num_users = len(demands)
        losses = sum(1 for ok in delivered.values() if not ok)
        app_delivered = sum(
            demands[u].total_bytes for u, ok in delivered.items() if ok
        )
        ideal_t = plan.total_time_s()
        if np.isfinite(ideal_t) and ideal_t > 0:
            retx_overhead = max(0.0, airtime / ideal_t - 1.0)
        else:
            retx_overhead = 0.0
        outcome = FrameOutcome(
            airtime_s=airtime,
            delivered=delivered,
            app_bytes_delivered=app_delivered,
            wire_bytes_sent=stats.wire_bytes,
            packets_sent=stats.packets,
            arq_rounds=stats.arq_rounds,
            residual_loss=(losses / num_users) if num_users else 0.0,
            retx_overhead=retx_overhead,
        )
        _record_outcome(outcome, deadline_s=deadline_s, frame=frame)
        return outcome

    # -- transmission units ---------------------------------------------

    @staticmethod
    def _emit_beam_switch(
        env: Environment, overhead_s: float, frame: int | None
    ) -> None:
        if _trace._RECORDER is not None:
            _EV_BEAM_SWITCH.emit(
                t=env.now,
                overhead_s=overhead_s,
                **_trace.correlation(frame=frame),
            )

    def _unicast_leg(
        self, env, unit, rate, per, deadline_event, stats,
        frame=None, user=None,
    ):
        members = None if user is None else (user,)
        if self.config.unicast_scheme() == "arq":
            ok = yield from self._arq_unit(
                env, unit, rate, [per], deadline_event, stats,
                frame=frame, members=members,
            )
        else:
            ok = yield from self._fec_unit(
                env, unit, rate, [per], deadline_event, stats,
                frame=frame, members=members,
            )
        return ok[0]

    def _arq_unit(
        self,
        env: Environment,
        unit: PacketizedUnit,
        rate_mbps: float,
        member_pers: list[float],
        deadline_event: Event,
        stats: "_DeliveryStats",
        frame: int | None = None,
        members: tuple[int, ...] | None = None,
    ):
        if unit.num_packets == 0:
            return (True,) * len(member_pers)
        packet_time = _packet_time_s(unit, rate_mbps)
        unit_start = env.now
        outcome = yield env.process(
            block_arq_process(
                env,
                self.rng,
                unit.num_packets,
                member_pers,
                packet_time,
                self.config.arq,
                deadline_event,
                frame=frame,
                receivers=members,
            )
        )
        stats.packets += outcome.packets_sent
        stats.wire_bytes += outcome.packets_sent * _mean_packet_bytes(unit)
        stats.arq_rounds += outcome.rounds
        if _trace._RECORDER is not None:
            _EV_UNIT_TX.emit(
                t=env.now,
                scheme="arq",
                packets=outcome.packets_sent,
                receivers=len(member_pers),
                delivered=sum(outcome.delivered),
                airtime_s=env.now - unit_start,
                **_trace.correlation(frame=frame, users=members),
            )
        return outcome.delivered

    def _fec_unit(
        self,
        env: Environment,
        unit: PacketizedUnit,
        rate_mbps: float,
        member_pers: list[float],
        deadline_event: Event,
        stats: "_DeliveryStats",
        frame: int | None = None,
        members: tuple[int, ...] | None = None,
    ):
        k = unit.num_packets
        if k == 0:
            return (True,) * len(member_pers)
        packet_time = _packet_time_s(unit, rate_mbps)
        if not np.isfinite(packet_time):
            return (False,) * len(member_pers)
        # The weakest member sets the repair budget.
        n = total_packets_needed(k, max(member_pers), self.config.fec)
        airtime = n * packet_time
        unit_start = env.now
        winner = yield any_of(
            env, [env.timeout(airtime, value=TX_DONE), deadline_event]
        )
        if winner == TX_DONE:
            n_sent = n
        else:
            # Deadline truncated the block; decoding degrades gracefully
            # with however many PDUs made it out.
            n_sent = int(n * (env.now - unit_start) / airtime) if airtime > 0 else 0
        stats.packets += n_sent
        stats.wire_bytes += n_sent * _mean_packet_bytes(unit)
        _C_FEC_REPAIR.inc(max(0, n_sent - k))
        decoded = sample_decodes(self.rng, k, n_sent, member_pers, self.config.fec)
        if _trace._RECORDER is not None:
            elapsed = env.now - unit_start
            source_s = min(n_sent, k) * packet_time
            corr = _trace.correlation(frame=frame, users=members)
            _EV_FEC_TX.emit(
                t=env.now,
                k=k,
                n_planned=n,
                n_sent=n_sent,
                truncated=winner != TX_DONE,
                airtime_s=elapsed,
                source_s=source_s,
                repair_s=elapsed - source_s,
                **corr,
            )
            _EV_UNIT_TX.emit(
                t=env.now,
                scheme="fec",
                packets=n_sent,
                receivers=len(member_pers),
                delivered=sum(decoded),
                airtime_s=elapsed,
                **corr,
            )
        return decoded


@dataclass
class _DeliveryStats:
    packets: int = 0
    wire_bytes: float = 0.0
    arq_rounds: int = 0


def _mean_packet_bytes(unit: PacketizedUnit) -> float:
    if unit.num_packets == 0:
        return 0.0
    return unit.wire_bytes / unit.num_packets


def _packet_time_s(unit: PacketizedUnit, rate_mbps: float) -> float:
    if rate_mbps <= 0:
        return float("inf")
    return _mean_packet_bytes(unit) * 8.0 / (rate_mbps * 1e6)
