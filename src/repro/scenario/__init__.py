"""Venue-scale scenario composition: populations of sessions across APs.

Everything below the per-room tick reuses the existing stack — the
vectorized visibility/similarity kernels, the MAC frame scheduler, the
calibrated WLAN capacity models, and the sim event loop.  This package
adds the population layer on top: declarative venues
(:class:`VenueSpec`), seeded churn (:mod:`~repro.scenario.population`),
per-AP shard engines (:class:`ShardEngine`), and the shard planner whose
merge is bit-identical for any shard or worker count
(:mod:`~repro.scenario.planner`).
"""

from .planner import merge_shard_results, shard_rooms, venue_summary
from .population import (
    ARRIVE,
    DEPART,
    UserSession,
    room_schedule,
    room_sessions,
)
from .shard import ArchetypeLibrary, ShardEngine, run_shard
from .spec import RoomSpec, VenueSpec
from .systems import (
    SCALING_SYSTEM_SPECS,
    SystemSpec,
    capacity_model,
    rate_provider_for,
    session_config_for,
)

__all__ = [
    "ARRIVE",
    "DEPART",
    "ArchetypeLibrary",
    "RoomSpec",
    "SCALING_SYSTEM_SPECS",
    "ShardEngine",
    "SystemSpec",
    "UserSession",
    "VenueSpec",
    "capacity_model",
    "merge_shard_results",
    "rate_provider_for",
    "room_schedule",
    "room_sessions",
    "run_shard",
    "session_config_for",
    "shard_rooms",
    "venue_summary",
]
