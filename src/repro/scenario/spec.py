"""Declarative venue specifications for population-scale scenarios.

A :class:`VenueSpec` describes a whole venue — rooms, each served by its
own AP, with per-room capacities, content placement (which encoding plays
in the room), and churn parameters — without saying anything about *how*
it is executed.  The shard planner (:mod:`repro.scenario.planner`) turns a
venue into per-AP shard work units; the population process
(:mod:`repro.scenario.population`) derives every room's arrival/departure
sequence purely from ``(venue.seed, room_index)`` so any sharding of the
rooms replays the exact same venue.
"""

from __future__ import annotations

from dataclasses import dataclass, field, fields, replace
from typing import Any

from ..defaults import DEFAULT_SEED
from ..pointcloud import QUALITIES

__all__ = ["RoomSpec", "VenueSpec"]

_WLANS = ("ac", "ad")
_GROUPINGS = ("none", "greedy", "qoe")


@dataclass(frozen=True)
class RoomSpec:
    """One room: an AP, a capacity, content, and a churn process.

    Attributes:
        name: stable room identifier (also the trace ``room`` correlation
            field).
        ap: the AP serving the room (trace ``ap`` correlation field).
        capacity: admission limit — arrivals beyond it are rejected.
        initial_users: occupants already present at t=0.
        arrival_rate_hz: Poisson arrival intensity over the scenario.
        mean_dwell_s: mean of the exponential session-length distribution.
        quality: content placement — which encoding ladder rung the room's
            volumetric show plays at.
        flash_crowd_at_s: instant of an optional flash-crowd burst.
        flash_crowd_size: users arriving together in the burst (0 = none).
    """

    name: str
    ap: str
    capacity: int = 50
    initial_users: int = 0
    arrival_rate_hz: float = 0.2
    mean_dwell_s: float = 60.0
    quality: str = "high"
    flash_crowd_at_s: float | None = None
    flash_crowd_size: int = 0

    def __post_init__(self) -> None:
        if not self.name:
            raise ValueError("room name must be non-empty")
        if self.capacity < 1:
            raise ValueError("capacity must be >= 1")
        if self.initial_users < 0 or self.initial_users > self.capacity:
            raise ValueError("initial_users must be in [0, capacity]")
        if self.arrival_rate_hz < 0:
            raise ValueError("arrival_rate_hz must be non-negative")
        if self.mean_dwell_s <= 0:
            raise ValueError("mean_dwell_s must be positive")
        if self.quality not in QUALITIES:
            raise ValueError(
                f"unknown quality {self.quality!r}; "
                f"expected one of {sorted(QUALITIES)}"
            )
        if self.flash_crowd_size < 0:
            raise ValueError("flash_crowd_size must be non-negative")
        if self.flash_crowd_size and self.flash_crowd_at_s is None:
            raise ValueError("flash_crowd_size needs flash_crowd_at_s")


@dataclass(frozen=True)
class VenueSpec:
    """A venue: rooms plus the scenario-wide delivery parameters."""

    rooms: tuple[RoomSpec, ...]
    duration_s: float = 10.0
    tick_s: float = 1.0
    seed: int = DEFAULT_SEED
    archetypes: int = 8  # distinct viewer-behaviour archetypes per room
    wlan: str = "ad"  # "ac" | "ad" capacity calibration
    multicast_rate_fraction: float = 0.8
    grouping: str = "greedy"  # "none" | "greedy" | "qoe"
    min_group_iou: float = 0.05
    target_fps: float = 30.0
    cell_size: float = 0.5

    def __post_init__(self) -> None:
        if not self.rooms:
            raise ValueError("a venue needs at least one room")
        names = [room.name for room in self.rooms]
        if len(set(names)) != len(names):
            raise ValueError(f"room names must be unique, got {names}")
        if self.duration_s <= 0:
            raise ValueError("duration_s must be positive")
        if self.tick_s <= 0 or self.tick_s > self.duration_s:
            raise ValueError("tick_s must be in (0, duration_s]")
        if self.archetypes < 1:
            raise ValueError("archetypes must be >= 1")
        if self.wlan not in _WLANS:
            raise ValueError(f"wlan must be one of {_WLANS}")
        if not 0.0 < self.multicast_rate_fraction <= 1.0:
            raise ValueError("multicast_rate_fraction must be in (0, 1]")
        if self.grouping not in _GROUPINGS:
            raise ValueError(f"grouping must be one of {_GROUPINGS}")
        if self.target_fps <= 0:
            raise ValueError("target_fps must be positive")
        if self.cell_size <= 0:
            raise ValueError("cell_size must be positive")

    @property
    def num_rooms(self) -> int:
        return len(self.rooms)

    @property
    def num_ticks(self) -> int:
        """Delivery evaluation instants: one per tick over the scenario."""
        return max(1, int(round(self.duration_s / self.tick_s)))

    @property
    def total_capacity(self) -> int:
        return sum(room.capacity for room in self.rooms)

    def room_index(self, name: str) -> int:
        for i, room in enumerate(self.rooms):
            if room.name == name:
                return i
        raise KeyError(f"no room {name!r}")

    # -- construction -------------------------------------------------------

    @staticmethod
    def uniform(
        num_rooms: int,
        capacity: int,
        initial_users: int = 0,
        arrival_rate_hz: float = 0.2,
        mean_dwell_s: float = 60.0,
        quality: str = "high",
        flash_crowd_room: int = -1,
        flash_crowd_at_s: float = 0.0,
        flash_crowd_size: int = 0,
        **venue_kwargs: Any,
    ) -> "VenueSpec":
        """A venue of identical rooms (``room0``..), one AP per room.

        ``flash_crowd_room`` picks the single room that receives the burst
        (negative disables it) — the canonical "everyone rushes to the main
        stage" stress case.
        """
        if num_rooms < 1:
            raise ValueError("num_rooms must be >= 1")
        rooms = []
        for i in range(num_rooms):
            burst = flash_crowd_size if i == flash_crowd_room else 0
            rooms.append(
                RoomSpec(
                    name=f"room{i}",
                    ap=f"ap{i}",
                    capacity=capacity,
                    initial_users=initial_users,
                    arrival_rate_hz=arrival_rate_hz,
                    mean_dwell_s=mean_dwell_s,
                    quality=quality,
                    flash_crowd_at_s=flash_crowd_at_s if burst else None,
                    flash_crowd_size=burst,
                )
            )
        return VenueSpec(rooms=tuple(rooms), **venue_kwargs)

    def with_rooms(self, rooms: tuple[RoomSpec, ...]) -> "VenueSpec":
        return replace(self, rooms=rooms)

    # -- serialization ------------------------------------------------------

    def to_jsonable(self) -> dict[str, Any]:
        """JSON-able venue description (``repro scenario --spec`` files)."""
        return {
            "rooms": [
                {
                    "name": room.name,
                    "ap": room.ap,
                    "capacity": room.capacity,
                    "initial_users": room.initial_users,
                    "arrival_rate_hz": room.arrival_rate_hz,
                    "mean_dwell_s": room.mean_dwell_s,
                    "quality": room.quality,
                    "flash_crowd_at_s": room.flash_crowd_at_s,
                    "flash_crowd_size": room.flash_crowd_size,
                }
                for room in self.rooms
            ],
            "duration_s": self.duration_s,
            "tick_s": self.tick_s,
            "seed": self.seed,
            "archetypes": self.archetypes,
            "wlan": self.wlan,
            "multicast_rate_fraction": self.multicast_rate_fraction,
            "grouping": self.grouping,
            "min_group_iou": self.min_group_iou,
            "target_fps": self.target_fps,
            "cell_size": self.cell_size,
        }

    @staticmethod
    def from_jsonable(doc: dict[str, Any]) -> "VenueSpec":
        if "rooms" not in doc:
            raise ValueError("venue spec must have a 'rooms' list")
        room_names = {f.name for f in fields(RoomSpec)}
        venue_names = {f.name for f in fields(VenueSpec)} - {"rooms"}
        for i, room in enumerate(doc["rooms"]):
            unknown = sorted(set(room) - room_names)
            if unknown:
                raise ValueError(
                    f"rooms[{i}] has unknown field(s) {unknown}; "
                    f"valid fields: {sorted(room_names)}"
                )
        unknown = sorted(set(doc) - venue_names - {"rooms"})
        if unknown:
            raise ValueError(
                f"venue spec has unknown field(s) {unknown}; "
                f"valid fields: {sorted(venue_names)}"
            )
        rooms = tuple(RoomSpec(**room) for room in doc["rooms"])
        venue_fields = {k: v for k, v in doc.items() if k != "rooms"}
        return VenueSpec(rooms=rooms, **venue_fields)
