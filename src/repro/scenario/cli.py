"""``repro scenario`` — run a venue-scale scenario from the command line.

Two ways to describe the venue:

* uniform flags (``--rooms``, ``--capacity``, ``--initial``, ...) build
  identical rooms, optionally with a flash crowd in one of them;
* ``--spec venue.json`` loads a full :class:`~repro.scenario.VenueSpec`
  (the shape ``VenueSpec.to_jsonable`` writes), so rooms can differ in
  capacity, content quality, and churn.

Either way the venue routes through the registered ``venue_scale``
experiment, so sharding, the multiprocessing executor, result caching,
and deterministic spec-ordered merging are the same machinery ``repro
run venue_scale`` uses.
"""

from __future__ import annotations

import argparse
import json
import sys
import time
from pathlib import Path

from .spec import VenueSpec

__all__ = ["main"]


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro scenario",
        description="Run a venue-scale sharded population scenario.",
    )
    parser.add_argument(
        "--spec", type=Path, default=None,
        help="JSON venue spec (overrides the uniform-venue flags)",
    )
    parser.add_argument("--rooms", type=int, default=4, help="uniform rooms")
    parser.add_argument(
        "--capacity", type=int, default=200, help="per-room admission limit"
    )
    parser.add_argument(
        "--initial", type=int, default=150, help="occupants per room at t=0"
    )
    parser.add_argument(
        "--arrival-rate", type=float, default=2.0,
        help="per-room Poisson arrival rate (users/s)",
    )
    parser.add_argument(
        "--dwell", type=float, default=30.0, help="mean session length (s)"
    )
    parser.add_argument(
        "--duration", type=float, default=10.0, help="scenario length (s)"
    )
    parser.add_argument(
        "--tick", type=float, default=1.0, help="delivery evaluation period (s)"
    )
    parser.add_argument(
        "--quality", default="high", help="content quality in every room"
    )
    parser.add_argument(
        "--wlan", choices=["ac", "ad"], default="ad",
        help="per-AP capacity calibration",
    )
    parser.add_argument(
        "--archetypes", type=int, default=8,
        help="distinct viewer archetypes the population draws from",
    )
    parser.add_argument(
        "--grouping", choices=["none", "greedy", "qoe"], default="greedy",
        help="multicast grouping policy",
    )
    parser.add_argument(
        "--flash-crowd-room", type=int, default=-1,
        help="room index receiving a flash crowd (negative = none)",
    )
    parser.add_argument(
        "--flash-crowd-at", type=float, default=0.0,
        help="flash crowd instant (s)",
    )
    parser.add_argument(
        "--flash-crowd-size", type=int, default=0,
        help="users arriving together in the flash crowd",
    )
    parser.add_argument("--seed", type=int, default=None, help="venue seed")
    parser.add_argument(
        "--shards", type=int, default=4, help="shard count (work units)"
    )
    parser.add_argument(
        "--parallel", type=int, default=1, help="worker processes"
    )
    parser.add_argument(
        "--json", type=Path, default=None, dest="json_out",
        help="also write the merged result as JSON to this path",
    )
    return parser


def _venue_from_args(args: argparse.Namespace) -> VenueSpec:
    if args.spec is not None:
        doc = json.loads(args.spec.read_text(encoding="utf-8"))
        venue = VenueSpec.from_jsonable(doc)
        if args.seed is not None:
            venue = VenueSpec.from_jsonable({**doc, "seed": args.seed})
        return venue
    kwargs = {}
    if args.seed is not None:
        kwargs["seed"] = args.seed
    return VenueSpec.uniform(
        num_rooms=args.rooms,
        capacity=args.capacity,
        initial_users=args.initial,
        arrival_rate_hz=args.arrival_rate,
        mean_dwell_s=args.dwell,
        quality=args.quality,
        flash_crowd_room=args.flash_crowd_room,
        flash_crowd_at_s=args.flash_crowd_at,
        flash_crowd_size=args.flash_crowd_size,
        duration_s=args.duration,
        tick_s=args.tick,
        archetypes=args.archetypes,
        wlan=args.wlan,
        grouping=args.grouping,
    )


def main(argv: list[str] | None = None) -> int:
    """Run ``repro scenario`` and return a process exit status."""
    args = _build_parser().parse_args(argv)
    # Imported here so `--help` stays instant.
    from ..experiments.venue_scale import EXPERIMENT, room_specs_tuple
    from ..runner import run_experiment

    try:
        venue = _venue_from_args(args)
    except ValueError as exc:
        print(f"invalid venue spec: {exc}", file=sys.stderr)
        return 2
    overrides = {
        "room_specs": room_specs_tuple(venue),
        "duration_s": venue.duration_s,
        "tick_s": venue.tick_s,
        "seed": venue.seed,
        "archetypes": venue.archetypes,
        "wlan": venue.wlan,
        "multicast_rate_fraction": venue.multicast_rate_fraction,
        "grouping": venue.grouping,
        "min_group_iou": venue.min_group_iou,
        "target_fps": venue.target_fps,
        "num_shards": args.shards,
    }
    t0 = time.perf_counter()
    merged = run_experiment(
        "venue_scale", overrides, workers=max(1, args.parallel)
    )
    elapsed = time.perf_counter() - t0
    print(
        f"venue: {venue.num_rooms} room(s), capacity {venue.total_capacity}, "
        f"{venue.duration_s:g} s @ tick {venue.tick_s:g} s, "
        f"{args.shards} shard(s), {max(1, args.parallel)} worker(s)"
    )
    print(EXPERIMENT.format_result(merged))
    print(f"done in {elapsed:.1f} s")
    if args.json_out is not None:
        args.json_out.write_text(
            json.dumps(merged, indent=2, sort_keys=True) + "\n",
            encoding="utf-8",
        )
        print(f"wrote {args.json_out}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
