"""Seeded per-room population processes: who is in the room, and when.

The venue's entire churn is a pure function of ``(venue.seed, room_index,
room parameters)``: every room draws its arrivals, dwell times, and
archetypes from its own ``SeedSequence([seed, salt, room_index])`` stream,
independent of every other room.  That single property is what makes the
shard planner free to partition rooms however it likes — serial execution,
one shard per room, or any grouping in between replays bit-identical
populations (asserted by ``tests/scenario/test_churn_determinism.py``).

Draw order per room is fixed and documented: initial occupants (dwell,
archetype each), then Poisson arrivals (inter-arrival, dwell, archetype
each), then the flash-crowd burst (dwell, archetype each).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from .spec import VenueSpec

__all__ = ["UserSession", "room_sessions", "room_schedule", "ARRIVE", "DEPART"]

# Salt separating the population stream from any other venue-seeded stream.
_POPULATION_SALT = 0x5E55

# Event kinds in a room schedule; arrivals sort before departures at equal
# times so a full room admits nobody on the instant someone else leaves
# (the conservative reading of an admission limit).
ARRIVE = 0
DEPART = 1


@dataclass(frozen=True)
class UserSession:
    """One user's stay in one room (ids are unique within the room)."""

    user_id: int
    room: str
    archetype: int
    arrival_s: float
    departure_s: float

    def __post_init__(self) -> None:
        if self.departure_s < self.arrival_s:
            raise ValueError("departure before arrival")


def room_sessions(venue: VenueSpec, room_index: int) -> tuple[UserSession, ...]:
    """Every session the room sees over the scenario, in arrival order.

    Depends only on the venue seed, the room's own spec, and its index in
    the venue — never on sharding, worker count, or the other rooms.
    """
    room = venue.rooms[room_index]
    rng = np.random.default_rng(
        np.random.SeedSequence([venue.seed, _POPULATION_SALT, room_index])
    )
    sessions: list[UserSession] = []

    def _add(arrival_s: float) -> None:
        dwell = float(rng.exponential(room.mean_dwell_s))
        archetype = int(rng.integers(venue.archetypes))
        sessions.append(
            UserSession(
                user_id=len(sessions),
                room=room.name,
                archetype=archetype,
                arrival_s=arrival_s,
                departure_s=arrival_s + dwell,
            )
        )

    for _ in range(room.initial_users):
        _add(0.0)
    if room.arrival_rate_hz > 0:
        t = 0.0
        while True:
            t += float(rng.exponential(1.0 / room.arrival_rate_hz))
            if t >= venue.duration_s:
                break
            _add(t)
    if room.flash_crowd_size and room.flash_crowd_at_s is not None:
        for _ in range(room.flash_crowd_size):
            _add(float(room.flash_crowd_at_s))

    sessions.sort(key=lambda s: (s.arrival_s, s.user_id))
    return tuple(sessions)


def room_schedule(
    sessions: tuple[UserSession, ...], duration_s: float
) -> tuple[tuple[float, int, int], ...]:
    """The room's churn timeline: sorted ``(time, kind, user_id)`` events.

    Departures at or beyond ``duration_s`` are dropped (the scenario ends
    first); the ``(time, kind, user_id)`` sort is the total, deterministic
    order the shard engine replays.
    """
    events: list[tuple[float, int, int]] = []
    for s in sessions:
        if s.arrival_s >= duration_s:
            continue
        events.append((s.arrival_s, ARRIVE, s.user_id))
        if s.departure_s < duration_s:
            events.append((s.departure_s, DEPART, s.user_id))
    events.sort()
    return tuple(events)
