"""Declarative system configurations shared by scaling and venue runs.

The five systems of the headline scaling sweep (vanilla/ViVo on the two
WLAN calibrations, plus the similarity-multicast design) used to live as a
hand-rolled loop inside ``experiments/scaling.py``.  They are data, not
control flow — each is a :class:`SystemSpec`, and
:func:`session_config_for` builds the corresponding
:class:`~repro.core.SessionConfig`.  The venue shard engine reuses the
same WLAN selection through :func:`capacity_model`, so per-AP capacity in
a venue and the scaling ladder are calibrated identically.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..core import CapacityRateProvider, FixedQualityPolicy, SessionConfig
from ..mac import AC_MODEL, AD_MODEL
from ..mac.wlan import WlanCapacityModel
from ..pointcloud import PointCloudVideo, VisibilityConfig
from ..traces import UserStudy

__all__ = [
    "SystemSpec",
    "SCALING_SYSTEM_SPECS",
    "capacity_model",
    "rate_provider_for",
    "session_config_for",
]


def capacity_model(wlan: str) -> WlanCapacityModel:
    """The calibrated aggregate-capacity model for a WLAN flavour."""
    if wlan == "ac":
        return AC_MODEL
    if wlan == "ad":
        return AD_MODEL
    raise ValueError(f"unknown wlan {wlan!r}; expected 'ac' or 'ad'")


@dataclass(frozen=True)
class SystemSpec:
    """One end-to-end system configuration, as data.

    ``grouping`` of ``"none"`` means pure unicast; anything else enables
    the similarity multicast path and charges ``multicast_rate_fraction``
    (the group-minimum-MCS penalty) on the shared transmissions.
    """

    label: str
    wlan: str  # "ac" | "ad"
    vivo: bool  # visibility-aware fetching on?
    grouping: str  # "none" | "greedy" | "exhaustive"


# The paper's five-system ladder, in its presentation order.
SCALING_SYSTEM_SPECS: tuple[SystemSpec, ...] = (
    SystemSpec(label="802.11ac vanilla", wlan="ac", vivo=False, grouping="none"),
    SystemSpec(label="802.11ac ViVo", wlan="ac", vivo=True, grouping="none"),
    SystemSpec(label="802.11ad vanilla", wlan="ad", vivo=False, grouping="none"),
    SystemSpec(label="802.11ad ViVo", wlan="ad", vivo=True, grouping="none"),
    SystemSpec(
        label="802.11ad ViVo+multicast", wlan="ad", vivo=True, grouping="greedy"
    ),
)


def rate_provider_for(
    system: SystemSpec, num_users: int, multicast_rate_fraction: float
) -> CapacityRateProvider:
    """The calibrated rate provider for one system at one user count."""
    return CapacityRateProvider(
        model=capacity_model(system.wlan),
        num_users=num_users,
        multicast_rate_fraction=(
            multicast_rate_fraction if system.grouping != "none" else 1.0
        ),
    )


def session_config_for(
    system: SystemSpec,
    video: PointCloudVideo,
    study: UserStudy,
    quality: str,
    duration_s: float,
    multicast_rate_fraction: float,
) -> SessionConfig:
    """The streaming session configuration one system runs with."""
    return SessionConfig(
        video=video,
        study=study,
        rates=rate_provider_for(system, len(study), multicast_rate_fraction),
        visibility=(
            VisibilityConfig() if system.vivo else VisibilityConfig.vanilla()
        ),
        grouping=system.grouping,
        adaptation=FixedQualityPolicy(quality),
        duration_s=duration_s,
    )
