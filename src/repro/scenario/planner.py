"""Shard planning and deterministic, spec-ordered metric merging.

The planner decides *how the venue is cut*, never *what happens inside a
room*: rooms are pure functions of ``(venue, room_index)``, so the only
job here is to partition room indices into balanced contiguous shards
(one :class:`~repro.runner.RunSpec` each, executed by the existing
multiprocessing runner) and to merge the shard results back into one
venue report in room order — bit-identical whatever the shard count or
worker count was.
"""

from __future__ import annotations

import math

__all__ = ["shard_rooms", "merge_shard_results", "venue_summary"]


def shard_rooms(num_rooms: int, num_shards: int) -> tuple[tuple[int, ...], ...]:
    """Partition room indices into contiguous, balanced shards.

    The first ``num_rooms % num_shards`` shards get the extra room.  More
    shards than rooms collapses to one room per shard (empty shards are
    never emitted).
    """
    if num_rooms < 1:
        raise ValueError("num_rooms must be >= 1")
    if num_shards < 1:
        raise ValueError("num_shards must be >= 1")
    num_shards = min(num_shards, num_rooms)
    base, extra = divmod(num_rooms, num_shards)
    shards = []
    start = 0
    for s in range(num_shards):
        size = base + (1 if s < extra else 0)
        shards.append(tuple(range(start, start + size)))
        start += size
    return tuple(shards)


def merge_shard_results(shard_results: list[dict]) -> dict:
    """Fold per-shard room reports into one venue report, in room order.

    Merging is pure bookkeeping — concatenate the rooms, sort by the
    room's venue index, and compute venue aggregates from the sorted
    list — so the merged report is a deterministic function of the room
    results alone, independent of shard boundaries.
    """
    rooms = [
        room for shard in shard_results for room in shard["rooms"]
    ]
    rooms.sort(key=lambda room: room["room_index"])
    indices = [room["room_index"] for room in rooms]
    if len(set(indices)) != len(indices):
        raise ValueError(f"duplicate room indices across shards: {indices}")
    return {"rooms": rooms, "venue": venue_summary(rooms)}


def venue_summary(rooms: list[dict]) -> dict:
    """Venue-level aggregates over an ordered room list.

    Rooms report constant-size ``tick_stats`` folds (exact per-room fps
    sums and minima) instead of per-tick lists, so the venue aggregates
    here are sums-of-sums: still a deterministic function of the sorted
    room list, still independent of shard boundaries, but without any
    room ever materializing its tick history.
    """
    total_sessions = sum(room["sessions"] for room in rooms)
    arrivals = sum(room["arrivals"] for room in rooms)
    rejected = sum(room["rejected"] for room in rooms)
    departures = sum(room["departures"] for room in rooms)
    peak = sum(room["peak_active"] for room in rooms)
    airtime = math.fsum(room["total_airtime_s"] for room in rooms)
    active_ticks = sum(
        room["tick_stats"]["active_ticks"] for room in rooms
    )
    fps_sum = math.fsum(
        room["tick_stats"]["fps_sum"] for room in rooms
    )
    mean_fps = fps_sum / active_ticks if active_ticks else None
    minima = [
        room["tick_stats"]["min_fps"]
        for room in rooms
        if room["tick_stats"]["min_fps"] is not None
    ]
    worst_fps = min(minima) if minima else None
    return {
        "rooms": len(rooms),
        "sessions": total_sessions,
        "arrivals": arrivals,
        "rejected": rejected,
        "departures": departures,
        "peak_active": peak,
        "total_airtime_s": airtime,
        "mean_fps": mean_fps,
        "worst_tick_fps": worst_fps,
    }
