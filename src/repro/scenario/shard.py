"""The per-AP shard engine: rooms of churning users on the sim event loop.

A shard is a set of rooms one worker executes.  Each room gets its own
:class:`~repro.sim.Environment`; a single driver process replays the
room's precomputed churn schedule (:func:`~repro.scenario.population.
room_schedule`) interleaved with per-tick delivery evaluation, so the
venue scales as *rooms × ticks* rather than *users × frames*.

Scale comes from archetype pooling: every user follows one of the venue's
viewer archetypes, so per-tick visibility, compressed cell demands, and
pairwise viewport IoU are computed once per *archetype* (via the
vectorized kernels — :func:`~repro.pointcloud.compute_visibility_batch`
and :func:`~repro.core.similarity.pairwise_iou_matrix`) and shared by
reference across the hundreds of users mapped to them.  Multicast groups
are archetype clusters: same-archetype users have identical viewports
(IoU 1), and archetypes whose IoU clears ``venue.min_group_iou`` merge by
deterministic union-find over the ``(-iou, i, j)``-sorted pair list.

Everything a room does is a pure function of ``(venue, room_index)`` —
never of which shard or worker runs it — which is what makes the shard
planner's merge bit-identical across shard counts
(``tests/scenario/test_churn_determinism.py``).
"""

from __future__ import annotations

from dataclasses import dataclass

from ..core.similarity import pairwise_iou_matrix
from ..mac.scheduler import (
    UserDemand,
    multicast_frame_time,
    plan_frame,
    unicast_frame_time,
)
from ..net import transport as _transport
from ..obs import metrics as _metrics
from ..obs import trace as _trace
from ..obs.stream import ExactSum
from ..pointcloud import (
    CellGrid,
    DEFAULT_COMPRESSION,
    QUALITIES,
    VisibilityConfig,
    compute_visibility_batch,
    synthesize_video,
)
from ..sim import Environment
from ..traces import generate_user_study
from .population import ARRIVE, DEPART, room_schedule, room_sessions
from .spec import VenueSpec
from .systems import capacity_model
from ..core.rates import CapacityRateProvider

__all__ = ["ArchetypeLibrary", "ShardEngine", "run_shard"]

# Rooms are numbered into disjoint frame-id ranges so (unit, frame) span
# keys never collide when one shard traces several rooms.
FRAME_STRIDE = 1_000_000

# Tick evaluation sorts after same-instant churn: arrivals and departures
# at time t are admitted/released before the tick at t is evaluated.
_TICK = 2

_C_ARRIVALS = _metrics.counter(
    "scenario.users_arrived", unit="users", layer="scenario",
    help="arrivals admitted into a room (capacity permitting)",
)
_C_REJECTED = _metrics.counter(
    "scenario.admission_rejected", unit="users", layer="scenario",
    help="arrivals turned away because the room was at capacity",
)
_C_DEPARTURES = _metrics.counter(
    "scenario.users_departed", unit="users", layer="scenario",
    help="admitted users whose dwell time expired inside the scenario",
)
_C_TICKS = _metrics.counter(
    "scenario.room_ticks", unit="ticks", layer="scenario",
    help="per-room delivery evaluation instants processed",
)
_G_OCCUPANCY = _metrics.gauge(
    "scenario.room_occupancy", unit="users", layer="scenario",
    help="active users in the room currently being simulated (last write "
         "wins; per-room levels live in the trace's scenario.* events via "
         "the room/ap correlation fields)",
)

_EV_ARRIVAL = _trace.event_type(
    "scenario.user_arrival", layer="scenario",
    help="a user entered a room and was admitted",
    fields=("user", "active", "capacity"),
)
_EV_REJECTED = _trace.event_type(
    "scenario.user_rejected", layer="scenario",
    help="a user arrived at a full room and was turned away",
    fields=("user", "active", "capacity"),
)
_EV_DEPARTURE = _trace.event_type(
    "scenario.user_departure", layer="scenario",
    help="an admitted user's dwell ended and they left the room",
    fields=("user", "active"),
)
_EV_ROOM_TICK = _trace.event_type(
    "scenario.room_tick", layer="scenario",
    help="one delivery evaluation of a room: plan the active population's "
         "frame and record the airtime/fps it sustains",
    fields=("tick", "active", "groups_planned", "airtime_s", "fps", "frame"),
)


class ArchetypeLibrary:
    """Shared per-archetype content, visibility, and similarity caches.

    One library serves every room in a shard: content is cached per
    quality, and per-``(quality, tick)`` the archetype demands (compressed
    cell bytes), visibility maps, and multicast clustering are computed
    once with the vectorized kernels and reused by every room playing that
    quality.
    """

    def __init__(self, venue: VenueSpec) -> None:
        self.venue = venue
        # One behaviour trace per archetype; seeded by the venue seed so
        # archetype k means the same viewer everywhere in the venue.
        self.study = generate_user_study(
            num_users=venue.archetypes,
            duration_s=venue.duration_s,
            seed=venue.seed,
        )
        self._content: dict[str, tuple] = {}
        self._occupancy: dict[tuple[str, int], object] = {}
        self._ticks: dict[tuple[str, int], tuple] = {}

    def _content_for(self, quality: str):
        if quality not in self._content:
            video = synthesize_video(
                quality,
                num_frames=150,
                points_per_frame=6000,
                seed=self.venue.seed,
            )
            grid = CellGrid.covering(
                video.bounds, self.venue.cell_size, margin=0.05
            )
            self._content[quality] = (video, grid)
        return self._content[quality]

    def _occupancy_for(self, quality: str, tick: int):
        video, grid = self._content_for(quality)
        vf = tick % len(video)
        key = (quality, vf)
        if key not in self._occupancy:
            self._occupancy[key] = grid.occupancy(video[vf])
        return self._occupancy[key]

    def tick_content(self, quality: str, tick: int):
        """``(cell_bytes per archetype, clusters)`` for one (quality, tick).

        ``cell_bytes`` is a tuple of per-archetype ``{cell id: bytes}``
        dicts (shared by reference into every user's demand); ``clusters``
        is the multicast partition of archetype indices under the venue's
        IoU threshold (singletons included), or ``None`` when grouping is
        off.
        """
        key = (quality, tick)
        if key not in self._ticks:
            video, _ = self._content_for(quality)
            occ = self._occupancy_for(quality, tick)
            t = tick * self.venue.tick_s
            frustums = [
                trace.pose_at(t).frustum() for trace in self.study.traces
            ]
            results = compute_visibility_batch(
                occ, frustums, VisibilityConfig()
            )
            level = QUALITIES[quality]
            scale = level.points_per_frame / video.quality.points_per_frame
            cell_bytes = []
            for vis in results:
                demand = {}
                for cid, frac, count in zip(
                    vis.cell_ids, vis.fractions, vis.nominal_counts
                ):
                    points = frac * count * scale
                    demand[int(cid)] = DEFAULT_COMPRESSION.cell_bytes(
                        points, level.points_per_frame
                    )
                cell_bytes.append(demand)
            clusters = None
            if self.venue.grouping != "none":
                clusters = self._cluster(
                    [vis.visible_set for vis in results]
                )
            self._ticks[key] = (tuple(cell_bytes), clusters)
        return self._ticks[key]

    def _cluster(self, maps: list[frozenset]) -> tuple[tuple[int, ...], ...]:
        """Union-find archetype clustering over the pairwise IoU matrix.

        Pairs are processed in sorted ``(-iou, i, j)`` order; connectivity
        under a fixed threshold is order-independent, but the sort keeps
        the walk itself deterministic and inspectable.
        """
        n = len(maps)
        iou = pairwise_iou_matrix(maps)
        pairs = sorted(
            (-float(iou[i, j]), i, j)
            for i in range(n)
            for j in range(i + 1, n)
            if iou[i, j] >= self.venue.min_group_iou
        )
        parent = list(range(n))

        def find(x: int) -> int:
            while parent[x] != x:
                parent[x] = parent[parent[x]]
                x = parent[x]
            return x

        for _, i, j in pairs:
            ri, rj = find(i), find(j)
            if ri != rj:
                parent[max(ri, rj)] = min(ri, rj)
        groups: dict[int, list[int]] = {}
        for a in range(n):
            groups.setdefault(find(a), []).append(a)
        return tuple(
            tuple(groups[root]) for root in sorted(groups)
        )


class _TickStats:
    """Constant-size fold of a room's per-tick delivery results.

    The streaming-observability replacement for the per-room tick *list*
    the engine used to retain: every tick folds into exact sums
    (:class:`~repro.obs.stream.ExactSum`) the moment it is evaluated, so a
    room's memory footprint is independent of its duration while the
    derived aggregates (mean/min fps, total airtime) stay bit-identical
    across shard counts and to a retained-list fold.
    """

    __slots__ = (
        "ticks", "active_ticks", "fps_sum", "min_fps", "airtime",
        "max_airtime_s",
    )

    def __init__(self) -> None:
        self.ticks = 0
        self.active_ticks = 0
        self.fps_sum = ExactSum()
        self.min_fps: float | None = None
        self.airtime = ExactSum()
        self.max_airtime_s = 0.0

    def fold(self, active: int, airtime_s: float, fps: float) -> None:
        """Fold one evaluated tick in (idle ticks count, but not to fps)."""
        self.ticks += 1
        self.airtime.add(airtime_s)
        if airtime_s > self.max_airtime_s:
            self.max_airtime_s = airtime_s
        if active > 0:
            self.active_ticks += 1
            self.fps_sum.add(fps)
            if self.min_fps is None or fps < self.min_fps:
                self.min_fps = fps

    def to_jsonable(self) -> dict:
        return {
            "ticks": self.ticks,
            "active_ticks": self.active_ticks,
            "fps_sum": self.fps_sum.value(),
            "min_fps": self.min_fps,
            "max_airtime_s": self.max_airtime_s,
        }


@dataclass
class _RoomState:
    """Mutable per-room simulation state the driver process updates."""

    active: dict[int, int]  # user id -> archetype (sorted iteration only)
    admitted: set[int]
    arrivals: int = 0
    rejected: int = 0
    departures: int = 0
    peak_active: int = 0


class ShardEngine:
    """Executes one shard: its rooms, sequentially, each on its own loop."""

    def __init__(self, venue: VenueSpec, room_indices: tuple[int, ...]) -> None:
        if not room_indices:
            raise ValueError("a shard needs at least one room")
        self.venue = venue
        self.room_indices = tuple(sorted(room_indices))
        self.library = ArchetypeLibrary(venue)

    def run(self) -> dict:
        """Run every room in the shard; rooms report in venue order."""
        rooms = [self._run_room(ri) for ri in self.room_indices]
        return {"rooms": rooms}

    # -- one room --------------------------------------------------------------

    def _run_room(self, room_index: int) -> dict:
        venue = self.venue
        room = venue.rooms[room_index]
        sessions = room_sessions(venue, room_index)
        schedule = room_schedule(sessions, venue.duration_s)
        by_id = {s.user_id: s for s in sessions}

        timeline: list[tuple[float, int, int]] = list(schedule)
        timeline.extend(
            (tick * venue.tick_s, _TICK, tick)
            for tick in range(venue.num_ticks)
        )
        timeline.sort()

        state = _RoomState(active={}, admitted=set())
        stats = _TickStats()

        recorder = _trace.active()
        if recorder is not None:
            recorder.set_context(room=room.name, ap=room.ap)
        try:
            env = Environment()

            def driver(env):
                for at, kind, payload in timeline:
                    if at > env.now:
                        yield env.timeout(at - env.now)
                    if kind == ARRIVE:
                        self._on_arrival(room, state, by_id[payload])
                    elif kind == DEPART:
                        self._on_departure(state, payload)
                    else:
                        stats.fold(
                            *self._on_tick(room_index, room, state, payload)
                        )

            env.process(driver(env))
            env.run()
        finally:
            if recorder is not None:
                recorder.context.pop("room", None)
                recorder.context.pop("ap", None)

        return {
            "room": room.name,
            "ap": room.ap,
            "room_index": room_index,
            "sessions": len(sessions),
            "arrivals": state.arrivals,
            "rejected": state.rejected,
            "departures": state.departures,
            "peak_active": state.peak_active,
            "tick_stats": stats.to_jsonable(),
            "mean_fps": (
                stats.fps_sum.value() / stats.active_ticks
                if stats.active_ticks
                else venue.target_fps
            ),
            "total_airtime_s": stats.airtime.value(),
        }

    def _on_arrival(self, room, state: _RoomState, session) -> None:
        if len(state.active) >= room.capacity:
            state.rejected += 1
            _C_REJECTED.inc()
            _EV_REJECTED.emit(
                user=session.user_id,
                active=len(state.active),
                capacity=room.capacity,
            )
            return
        state.active[session.user_id] = session.archetype
        state.admitted.add(session.user_id)
        state.arrivals += 1
        state.peak_active = max(state.peak_active, len(state.active))
        _C_ARRIVALS.inc()
        _G_OCCUPANCY.set(len(state.active))
        _EV_ARRIVAL.emit(
            user=session.user_id,
            active=len(state.active),
            capacity=room.capacity,
        )

    def _on_departure(self, state: _RoomState, user_id: int) -> None:
        if user_id not in state.active:
            return  # the arrival was rejected; nothing to release
        del state.active[user_id]
        state.departures += 1
        _C_DEPARTURES.inc()
        _G_OCCUPANCY.set(len(state.active))
        _EV_DEPARTURE.emit(user=user_id, active=len(state.active))

    def _on_tick(
        self, room_index: int, room, state: _RoomState, tick: int
    ) -> tuple[int, float, float]:
        venue = self.venue
        _C_TICKS.inc()
        frame = room_index * FRAME_STRIDE + tick
        uids = sorted(state.active)
        if not uids:
            _EV_ROOM_TICK.emit(
                tick=tick, active=0, groups_planned=0,
                airtime_s=0.0, fps=venue.target_fps, frame=frame,
            )
            return (0, 0.0, venue.target_fps)

        cell_bytes, clusters = self.library.tick_content(room.quality, tick)
        rates = CapacityRateProvider(
            model=capacity_model(venue.wlan),
            num_users=len(uids),
            multicast_rate_fraction=(
                venue.multicast_rate_fraction
                if venue.grouping != "none"
                else 1.0
            ),
        )
        unicast = rates.unicast_rate_mbps(0, 0)
        demands = [
            UserDemand(
                user_id=uid,
                cell_bytes=cell_bytes[state.active[uid]],
                unicast_rate_mbps=unicast,
            )
            for uid in uids
        ]

        groups: list[tuple[tuple[int, ...], float]] = []
        if clusters is not None:
            demand_of = {d.user_id: d for d in demands}

            def group_time(members: tuple[int, ...]) -> float:
                group = [demand_of[u] for u in members]
                if len(members) < 2:
                    return unicast_frame_time(group)
                return multicast_frame_time(
                    group, rates.multicast_rate_mbps(members, 0)
                )

            by_cluster: dict[int, list[int]] = {}
            cluster_of = {
                arch: ci
                for ci, members in enumerate(clusters)
                for arch in members
            }
            for uid in uids:
                by_cluster.setdefault(
                    cluster_of[state.active[uid]], []
                ).append(uid)
            for ci in sorted(by_cluster):
                members = tuple(sorted(by_cluster[ci]))
                if len(members) < 2:
                    continue
                # The paper's admission principle, at cluster granularity:
                # serve the cluster by whichever partition delivers the
                # frame faster — one cluster-wide multicast (members eat
                # residual unicast legs), per-archetype multicasts
                # (identical viewports, residual-free), or pure unicast.
                by_arch: dict[int, list[int]] = {}
                for uid in members:
                    by_arch.setdefault(state.active[uid], []).append(uid)
                split = [
                    tuple(sorted(by_arch[arch])) for arch in sorted(by_arch)
                ]
                t_whole = group_time(members)
                t_split = sum(group_time(sub) for sub in split)
                t_solo = unicast_frame_time(
                    [demand_of[u] for u in members]
                )
                if venue.grouping == "qoe":
                    # QoE-aware admission: if plain unicast already fits
                    # this cluster's fair share of the frame deadline, the
                    # users cannot perceive any multicast speedup — skip
                    # the beam complexity entirely.
                    deadline_share = (
                        (1.0 / venue.target_fps) * (len(members) / len(uids))
                    )
                    if t_solo <= deadline_share:
                        continue
                best = min(t_whole, t_split, t_solo)
                if best == t_solo:
                    continue
                chosen = [members] if best == t_whole else split
                for sub in chosen:
                    if len(sub) >= 2:
                        groups.append(
                            (sub, rates.multicast_rate_mbps(sub, 0))
                        )

        plan = plan_frame(demands, groups, frame=frame)
        airtime = plan.total_time_s()
        fps = (
            venue.target_fps
            if airtime <= 0
            else min(venue.target_fps, 1.0 / airtime)
        )
        _EV_ROOM_TICK.emit(
            tick=tick, active=len(uids), groups_planned=len(groups),
            airtime_s=airtime, fps=fps, frame=frame,
        )
        if _trace._RECORDER is not None:
            _transport._EV_FRAME_OUTCOME.emit(
                airtime_s=airtime,
                users=len(uids),
                lost=0,
                packets=0,
                arq_rounds=0,
                retx_overhead=0.0,
                deadline_s=1.0 / venue.target_fps,
                frame=frame,
                delivered_users=uids,
                lost_users=[],
            )
        return (len(uids), airtime, fps)


def run_shard(venue: VenueSpec, room_indices: tuple[int, ...]) -> dict:
    """Convenience wrapper: build an engine for one shard and run it."""
    return ShardEngine(venue, room_indices).run()
