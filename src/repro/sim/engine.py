"""A minimal process-based discrete-event simulation engine.

The streaming session simulator needs interleaved server/client processes
with precise virtual time (frame deadlines, transfer times, re-buffering).
``simpy`` is not available offline, so this module provides the small subset
the library needs, with the same generator-based programming model:

    env = Environment()

    def player(env):
        yield env.timeout(1.0 / 30.0)
        ...

    env.process(player(env))
    env.run(until=10.0)

Processes are Python generators that ``yield`` events; :class:`Timeout`
fires after a delay, :class:`Event` when triggered, and yielding another
:class:`Process` waits for it to finish.  Events scheduled at equal times
fire in FIFO order of scheduling, which keeps runs deterministic.
"""

from __future__ import annotations

import heapq
import itertools
from typing import Any, Generator, Iterable

from ..obs import metrics as _metrics
from ..obs import trace as _trace

__all__ = [
    "Environment",
    "Event",
    "Timeout",
    "Process",
    "SimulationError",
    "all_of",
    "any_of",
]


# -- observability (all no-ops unless recording/metrics are enabled) --------

_C_SCHEDULED = _metrics.counter(
    "sim.events_scheduled", unit="events", layer="sim",
    help="entries pushed onto the event queue (timeouts, wakes, processes)",
)
_C_FIRED = _metrics.counter(
    "sim.events_fired", unit="events", layer="sim",
    help="queue entries popped and fired",
)
_C_SPAWNED = _metrics.counter(
    "sim.processes_spawned", unit="processes", layer="sim",
    help="generator processes started with env.process(...)",
)
_C_FINISHED = _metrics.counter(
    "sim.processes_finished", unit="processes", layer="sim",
    help="generator processes that ran to completion",
)

_EV_SCHEDULE = _trace.event_type(
    "sim.schedule", layer="sim",
    help="an event was scheduled onto the queue",
    fields=("at", "kind"),
)
_EV_FIRE = _trace.event_type(
    "sim.fire", layer="sim",
    help="a queue entry fired (the clock advanced to its time)",
    fields=("kind",),
)
_EV_PROCESS_SPAWN = _trace.event_type(
    "sim.process_spawn", layer="sim",
    help="a generator process was registered with the environment",
    fields=(),
)
_EV_PROCESS_FINISH = _trace.event_type(
    "sim.process_finish", layer="sim",
    help="a generator process returned (its completion event fires)",
    fields=(),
)


class SimulationError(RuntimeError):
    """Raised for illegal engine operations (double trigger, bad yield)."""


class Event:
    """A one-shot occurrence processes can wait on."""

    def __init__(self, env: "Environment") -> None:
        self.env = env
        self.triggered = False
        self.value: Any = None
        self._waiters: list[Process] = []

    def succeed(self, value: Any = None) -> "Event":
        """Trigger the event, waking every waiting process."""
        if self.triggered:
            raise SimulationError("event already triggered")
        self.triggered = True
        self.value = value
        for proc in self._waiters:
            self.env._schedule(self.env.now, proc, value)
        self._waiters.clear()
        return self

    def _add_waiter(self, proc: "Process") -> None:
        if self.triggered:
            self.env._schedule(self.env.now, proc, self.value)
        else:
            self._waiters.append(proc)


class Timeout(Event):
    """An event that fires ``delay`` after it was created."""

    def __init__(self, env: "Environment", delay: float, value: Any = None) -> None:
        if delay < 0:
            raise SimulationError(f"negative timeout delay {delay}")
        super().__init__(env)
        self.delay = delay
        env._schedule(env.now + delay, self, value)


class Process(Event):
    """A running generator; also an event that fires when it returns."""

    def __init__(self, env: "Environment", generator: Generator) -> None:
        super().__init__(env)
        self._generator = generator
        _C_SPAWNED.inc()
        if _trace._RECORDER is not None:
            _EV_PROCESS_SPAWN.emit(t=env.now)
        env._schedule(env.now, self, None)

    def _resume(self, value: Any) -> None:
        try:
            target = self._generator.send(value)
        except StopIteration as stop:
            _C_FINISHED.inc()
            if _trace._RECORDER is not None:
                _EV_PROCESS_FINISH.emit(t=self.env.now)
            if not self.triggered:
                self.succeed(getattr(stop, "value", None))
            return
        if isinstance(target, Process):
            target._add_waiter(self)
        elif isinstance(target, Event):
            target._add_waiter(self)
        else:
            raise SimulationError(
                f"process yielded {type(target).__name__}; yield an Event"
            )


class Environment:
    """Virtual clock plus the event queue."""

    def __init__(self, initial_time: float = 0.0) -> None:
        self.now = float(initial_time)
        self._queue: list[tuple[float, int, Event | Process, Any]] = []
        self._counter = itertools.count()

    # -- public API ----------------------------------------------------------

    def timeout(self, delay: float, value: Any = None) -> Timeout:
        return Timeout(self, delay, value)

    def event(self) -> Event:
        return Event(self)

    def process(self, generator: Generator) -> Process:
        return Process(self, generator)

    def run(self, until: float | None = None) -> None:
        """Execute events until the queue drains or ``until`` is reached.

        With ``until``, the clock is advanced to exactly ``until`` even if
        the last event fires earlier.
        """
        while self._queue:
            t, _, item, value = self._queue[0]
            if until is not None and t > until:
                break
            heapq.heappop(self._queue)
            self.now = t
            self._fire(item, value)
        if until is not None and self.now < until:
            self.now = float(until)

    def run_until_empty(self, max_events: int = 10_000_000) -> None:
        """Run with a safety cap on event count (guards runaway loops)."""
        fired = 0
        while self._queue:
            if fired >= max_events:
                raise SimulationError("event budget exhausted — runaway simulation?")
            t, _, item, value = heapq.heappop(self._queue)
            self.now = t
            self._fire(item, value)
            fired += 1

    def peek(self) -> float:
        """Time of the next scheduled event (inf if none)."""
        return self._queue[0][0] if self._queue else float("inf")

    # -- internals -------------------------------------------------------------

    def _schedule(self, time: float, item: Event | Process, value: Any) -> None:
        _C_SCHEDULED.inc()
        if _trace._RECORDER is not None:
            _EV_SCHEDULE.emit(t=self.now, at=time, kind=type(item).__name__)
        heapq.heappush(self._queue, (time, next(self._counter), item, value))

    def _fire(self, item: Event | Process, value: Any) -> None:
        _C_FIRED.inc()
        recorder = _trace._RECORDER
        if recorder is not None:
            # Keep the ambient trace clock on the firing event's time so
            # un-env'd code (schedulers, policies) lands at the right t.
            recorder.now = self.now
            _EV_FIRE.emit(t=self.now, kind=type(item).__name__)
        if isinstance(item, Process):
            item._resume(value)
        elif isinstance(item, Timeout):
            if not item.triggered:
                item.succeed(value)
        else:
            raise SimulationError(f"unexpected queue item {item!r}")


def all_of(env: Environment, events: Iterable[Event]) -> Event:
    """An event that fires once every listed event has fired.

    The combined event's value is the list of the listed events' values, in
    input order (a process's value is its return value).
    """
    events = list(events)
    done = env.event()
    values: list[Any] = [None] * len(events)
    remaining = len(events)
    if remaining == 0:
        done.succeed([])
        return done

    def waiter(index, ev):
        value = yield ev
        nonlocal remaining
        values[index] = value
        remaining -= 1
        if remaining == 0 and not done.triggered:
            done.succeed(list(values))

    for index, ev in enumerate(events):
        env.process(waiter(index, ev))
    return done


def any_of(env: Environment, events: Iterable[Event]) -> Event:
    """An event that fires as soon as *any* listed event fires.

    First event wins: the combined event's value is the winner's value.
    Ties at equal times resolve in input order (FIFO scheduling).  Used for
    deadline races — e.g. an ARQ round against its frame deadline.  Losing
    events are left untouched and may still fire later.
    """
    events = list(events)
    done = env.event()
    if not events:
        done.succeed(None)
        return done

    def waiter(ev):
        value = yield ev
        if not done.triggered:
            done.succeed(value)

    for ev in events:
        env.process(waiter(ev))
    return done
