"""Minimal discrete-event simulation engine (simpy-like subset)."""

from .engine import (
    Environment,
    Event,
    Process,
    SimulationError,
    Timeout,
    all_of,
    any_of,
)

__all__ = [
    "Environment",
    "Event",
    "Process",
    "SimulationError",
    "Timeout",
    "all_of",
    "any_of",
]
