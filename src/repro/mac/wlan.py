"""Calibrated WLAN capacity models for multi-user unicast (Table 1 substrate).

The paper measures per-user application throughput when N clients stream
concurrently over the same WLAN:

* 802.11ac: 374 Mbps for one user, 180 @2, 112 @3;
* 802.11ad: 1270 Mbps for one user, then 575, 382, 298, 231, 175, 144
  for 2-7 users.

These measurements fold together airtime sharing, MAC contention, beam
switching (ad) and rate anomalies — effects we cannot re-derive from first
principles without the authors' exact firmware.  Following DESIGN.md §1,
the models here are *calibrated*: aggregate efficiency relative to the
single-user rate is anchored at the measured points and interpolated /
extrapolated between them, with a parametric contention model available for
user counts beyond the measurement range and for ablations.
"""

from __future__ import annotations

from dataclasses import dataclass, field

__all__ = ["WlanCapacityModel", "AC_MODEL", "AD_MODEL", "STREAMING_GOODPUT_EFFICIENCY"]

# Fraction of the per-user transport rate that turns into video payload
# (fits the FPS rows of Table 1; covers application framing + request RTTs).
STREAMING_GOODPUT_EFFICIENCY = 0.95


@dataclass(frozen=True)
class WlanCapacityModel:
    """Per-user throughput of N users sharing one WLAN via unicast.

    ``efficiency_table`` maps user count -> aggregate efficiency (sum of
    per-user rates / single-user rate).  Between table entries we
    interpolate linearly; beyond the last entry the efficiency decays by
    ``extrapolation_slope`` per extra user, floored at
    ``extrapolation_floor``.
    """

    name: str
    single_user_mbps: float
    efficiency_table: dict[int, float] = field(default_factory=dict)
    extrapolation_slope: float = 0.02
    extrapolation_floor: float = 0.55

    def __post_init__(self) -> None:
        if self.single_user_mbps <= 0:
            raise ValueError("single_user_mbps must be positive")
        if 1 not in self.efficiency_table:
            object.__setattr__(
                self, "efficiency_table", {1: 1.0, **self.efficiency_table}
            )
        for n, e in self.efficiency_table.items():
            if n < 1 or not 0 < e <= 1.0:
                raise ValueError(f"bad efficiency entry {n}: {e}")

    def aggregate_efficiency(self, num_users: int) -> float:
        """Total capacity with N users, as a fraction of the 1-user rate."""
        if num_users < 1:
            raise ValueError("num_users must be >= 1")
        known = sorted(self.efficiency_table)
        if num_users in self.efficiency_table:
            return self.efficiency_table[num_users]
        last = known[-1]
        if num_users > last:
            decayed = self.efficiency_table[last] - self.extrapolation_slope * (
                num_users - last
            )
            return max(self.extrapolation_floor, decayed)
        # Interpolate between the bracketing known counts.
        lo = max(n for n in known if n < num_users)
        hi = min(n for n in known if n > num_users)
        frac = (num_users - lo) / (hi - lo)
        return float(
            self.efficiency_table[lo]
            + frac * (self.efficiency_table[hi] - self.efficiency_table[lo])
        )

    def aggregate_mbps(self, num_users: int) -> float:
        """Total transport-layer capacity shared by N unicast users."""
        return self.single_user_mbps * self.aggregate_efficiency(num_users)

    def per_user_mbps(self, num_users: int) -> float:
        """Fair-share transport rate each of N users obtains."""
        return self.aggregate_mbps(num_users) / num_users

    def per_user_goodput_mbps(self, num_users: int) -> float:
        """Video-payload goodput per user (applies the streaming efficiency)."""
        return self.per_user_mbps(num_users) * STREAMING_GOODPUT_EFFICIENCY

    def max_fps(self, num_users: int, bitrate_mbps: float, cap_fps: float = 30.0
                ) -> float:
        """Highest sustainable frame rate for a video of ``bitrate_mbps``.

        This is exactly the quantity Table 1 reports (capped at the
        content's 30 FPS).
        """
        if bitrate_mbps <= 0:
            raise ValueError("bitrate_mbps must be positive")
        fps = self.per_user_goodput_mbps(num_users) / bitrate_mbps * cap_fps
        return min(cap_fps, fps)


# 802.11ac: efficiencies derived from the paper's measured per-user rates.
AC_MODEL = WlanCapacityModel(
    name="802.11ac",
    single_user_mbps=374.0,
    efficiency_table={
        1: 1.0,
        2: 2 * 180.0 / 374.0,  # 0.963
        3: 3 * 112.0 / 374.0,  # 0.898
    },
    extrapolation_slope=0.05,
    extrapolation_floor=0.60,
)

# 802.11ad: same construction from the 1-7 user measurements.
AD_MODEL = WlanCapacityModel(
    name="802.11ad",
    single_user_mbps=1270.0,
    efficiency_table={
        1: 1.0,
        2: 2 * 575.0 / 1270.0,  # 0.906
        3: 3 * 382.0 / 1270.0,  # 0.902
        4: 4 * 298.0 / 1270.0,  # 0.939
        5: 5 * 231.0 / 1270.0,  # 0.909
        6: 6 * 175.0 / 1270.0,  # 0.827
        7: 7 * 144.0 / 1270.0,  # 0.794
    },
    extrapolation_slope=0.02,
    extrapolation_floor=0.55,
)
