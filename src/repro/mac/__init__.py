"""MAC layer: WLAN capacity models, frame scheduling, link-event recovery."""

from .events import LinkRateTimeline, RecoveryPolicy, apply_recovery
from .scheduler import (
    FramePlan,
    UserDemand,
    multicast_frame_time,
    overlap_bytes,
    plan_frame,
    unicast_frame_time,
)
from .wlan import AC_MODEL, AD_MODEL, STREAMING_GOODPUT_EFFICIENCY, WlanCapacityModel

__all__ = [
    "LinkRateTimeline",
    "RecoveryPolicy",
    "apply_recovery",
    "FramePlan",
    "UserDemand",
    "multicast_frame_time",
    "overlap_bytes",
    "plan_frame",
    "unicast_frame_time",
    "AC_MODEL",
    "AD_MODEL",
    "STREAMING_GOODPUT_EFFICIENCY",
    "WlanCapacityModel",
]
