"""Link-event timelines: blockage, outage, recovery.

Turns a :class:`~repro.mmwave.blockage.BlockageTimeline` into a per-sample
*rate-multiplier* timeline for each user under a chosen recovery policy:

* **reactive**: the radio discovers the blockage only when RSS collapses;
  it suffers an outage for the beam re-search latency (5-20 ms), then comes
  back on a reflection beam at reduced rate until LoS returns.
* **proactive** (the paper's cross-layer scheme): multi-user viewport
  prediction forecasts the blockage ``lead_s`` ahead, so the AP switches to
  the reflection beam *before* the blocker arrives — no outage, only the
  reflection-path rate penalty.  Mispredicted events (a miss) degrade to
  reactive handling.

The streaming simulator multiplies each user's nominal link rate by this
timeline, which is how proactive mitigation shows up as fewer stalls.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..mmwave.blockage import BeamSearchLatency, BlockageTimeline
from ..obs import metrics as _metrics
from ..obs import trace as _trace

__all__ = ["RecoveryPolicy", "LinkRateTimeline", "apply_recovery"]

_C_BLOCKAGES = _metrics.counter(
    "mac.blockage_events", unit="events", layer="mac",
    help="human-blockage intervals processed by the recovery policy",
)
_C_PROACTIVE = _metrics.counter(
    "mac.proactive_beam_switches", unit="events", layer="mac",
    help="blockages dodged by a predicted (proactive) beam switch",
)
_C_REACTIVE = _metrics.counter(
    "mac.reactive_outages", unit="events", layer="mac",
    help="blockages handled reactively: detection delay + beam re-search",
)
_EV_RECOVERY = _trace.event_type(
    "mac.beam_recovery", layer="mac",
    help="one blockage interval was resolved (beam decision: proactive "
         "switch vs. reactive re-search)",
    fields=("user", "predicted", "duration_s", "outage_s"),
)


@dataclass(frozen=True)
class RecoveryPolicy:
    """How the AP reacts to human blockage events."""

    proactive: bool
    # Rate on the fallback (reflection) beam relative to LoS. A wall
    # reflection costs ~8 dB, typically a few MCS steps.
    reflection_rate_fraction: float = 0.55
    # How far ahead the viewport predictor can flag a blockage.
    lead_s: float = 0.5
    # Probability a real event was predicted in time (predictor recall).
    prediction_recall: float = 0.9
    search_latency: BeamSearchLatency = BeamSearchLatency()
    # A *reactive* radio first has to notice the beam died: MCS-retry
    # cascades and rate-adaptation lag before the sector sweep even starts
    # (~100 ms in 802.11ad measurement studies such as BeamSpy).  The
    # proactive scheme pays none of this — the switch happens on the
    # predicted schedule.
    detection_delay_s: float = 0.08

    def __post_init__(self) -> None:
        if not 0.0 <= self.reflection_rate_fraction <= 1.0:
            raise ValueError("reflection_rate_fraction must be in [0, 1]")
        if not 0.0 <= self.prediction_recall <= 1.0:
            raise ValueError("prediction_recall must be in [0, 1]")

    @staticmethod
    def reactive() -> "RecoveryPolicy":
        return RecoveryPolicy(proactive=False)

    @staticmethod
    def proactive_default() -> "RecoveryPolicy":
        return RecoveryPolicy(proactive=True)


@dataclass(frozen=True)
class LinkRateTimeline:
    """Per-user, per-sample multiplier on the nominal link rate.

    1.0 = unobstructed LoS; 0.0 = outage (searching); intermediate =
    operating on a reflection beam.
    """

    multiplier: np.ndarray  # (num_users, num_samples) in [0, 1]
    rate_hz: float

    def mean_rate_fraction(self, user: int) -> float:
        return float(np.mean(self.multiplier[user]))

    def outage_fraction(self, user: int) -> float:
        return float(np.mean(self.multiplier[user] <= 0.0))


def apply_recovery(
    timeline: BlockageTimeline,
    policy: RecoveryPolicy,
    seed: int = 0,
) -> LinkRateTimeline:
    """Expand a blockage timeline into rate multipliers under a policy."""
    rng = np.random.default_rng(seed)
    n_users, n_samples = timeline.blocked.shape
    dt = 1.0 / timeline.rate_hz
    mult = np.ones((n_users, n_samples), dtype=np.float64)

    for user in range(n_users):
        for start, end in timeline.events(user):
            _C_BLOCKAGES.inc()
            predicted = policy.proactive and (
                rng.random() < policy.prediction_recall
            )
            if predicted:
                # Beam already on the reflection path when the blocker
                # arrives; hold it for the whole blocked interval.
                mult[user, start:end] = policy.reflection_rate_fraction
                _C_PROACTIVE.inc()
                outage_s = 0.0
            else:
                # Dead air until the loss is detected and the re-search
                # completes, then the reflection beam carries the rest.
                latency = policy.detection_delay_s + policy.search_latency.sample(
                    rng
                )
                outage_samples = int(np.ceil(latency / dt))
                cut = min(end, start + max(1, outage_samples))
                mult[user, start:cut] = 0.0
                mult[user, cut:end] = policy.reflection_rate_fraction
                _C_REACTIVE.inc()
                outage_s = (cut - start) * dt
            if _trace._RECORDER is not None:
                _EV_RECOVERY.emit(
                    t=start * dt,
                    user=user,
                    predicted=predicted,
                    duration_s=(end - start) * dt,
                    outage_s=outage_s,
                )
    return LinkRateTimeline(multiplier=mult, rate_hz=timeline.rate_hz)
