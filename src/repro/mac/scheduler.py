"""Frame transmission scheduling: unicast vs. viewport-similarity multicast.

Implements the paper's transmission-time model (§4.2).  For a multicast
group k the time to deliver one frame to every member is

    T_m(k) = S_m(k) / r_m  +  sum_i (S_i - S_m(k)) / r_i

where ``S_m(k)`` is the size of the group's overlapped (intersection) cells,
``r_m`` the multicast rate (set by the weakest member's MCS under the
group's beam), and ``S_i``/``r_i`` each member's total requested bytes and
unicast rate.  Groups are admitted subject to T_m(k) <= 1/F for the target
frame rate F.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..obs import metrics as _metrics
from ..obs import trace as _trace

__all__ = [
    "UserDemand",
    "overlap_bytes",
    "unicast_frame_time",
    "multicast_frame_time",
    "FramePlan",
    "plan_frame",
]

_C_PLANS = _metrics.counter(
    "mac.frame_plans_built", unit="plans", layer="mac",
    help="FramePlans constructed via plan_frame (includes candidate plans "
         "evaluated during grouping search)",
)
_C_GROUPS = _metrics.counter(
    "mac.multicast_groups_planned", unit="groups", layer="mac",
    help="multicast groups admitted into constructed frame plans",
)
_EV_PLAN = _trace.event_type(
    "mac.frame_plan", layer="mac",
    help="a frame delivery plan was built (grant decision: who shares a "
         "multicast beam, who goes solo)",
    fields=("users", "groups", "solo", "total_time_s", "user_ids", "frame"),
)


@dataclass(frozen=True)
class UserDemand:
    """One user's demand for one video frame.

    ``cell_bytes`` maps cell id -> compressed bytes this user needs from
    that cell (after the user's visibility/density reduction).
    """

    user_id: int
    cell_bytes: dict[int, float]
    unicast_rate_mbps: float

    def __post_init__(self) -> None:
        if self.unicast_rate_mbps < 0:
            raise ValueError("unicast_rate_mbps must be non-negative")

    @property
    def total_bytes(self) -> float:
        return float(sum(self.cell_bytes.values()))


def overlap_bytes(demands: list[UserDemand]) -> float:
    """S_m(k): bytes of the cells *every* group member requests.

    For a shared cell, members may want different densities (distance
    optimization); the multicast carries the maximum requested density and
    members discard excess points locally, so the shared size is the
    per-cell max over members.
    """
    if not demands:
        return 0.0
    shared = set(demands[0].cell_bytes)
    for d in demands[1:]:
        shared &= set(d.cell_bytes)
    return float(
        sum(max(d.cell_bytes[c] for d in demands) for c in sorted(shared))
    )


def _transfer_time_s(nbytes: float, rate_mbps: float) -> float:
    """Seconds to move ``nbytes`` at ``rate_mbps`` (inf if the link is down)."""
    if nbytes <= 0:
        return 0.0
    if rate_mbps <= 0:
        return float("inf")
    return nbytes * 8.0 / (rate_mbps * 1e6)


def unicast_frame_time(demands: list[UserDemand]) -> float:
    """Serialized airtime to unicast every user's full demand."""
    return float(sum(_transfer_time_s(d.total_bytes, d.unicast_rate_mbps)
                     for d in demands))


def multicast_frame_time(
    demands: list[UserDemand], multicast_rate_mbps: float
) -> float:
    """The paper's T_m(k) for one group.

    The shared cells go out once at the multicast rate; each member's
    residual cells follow via unicast at that member's own rate.
    """
    if not demands:
        return 0.0
    s_m = overlap_bytes(demands)
    t = _transfer_time_s(s_m, multicast_rate_mbps)
    shared = set(demands[0].cell_bytes)
    for d in demands[1:]:
        shared &= set(d.cell_bytes)
    for d in demands:
        residual = sum(b for c, b in d.cell_bytes.items() if c not in shared)
        t += _transfer_time_s(residual, d.unicast_rate_mbps)
    return float(t)


@dataclass
class FramePlan:
    """A complete delivery plan for one frame across all users.

    ``groups`` lists multicast groups (with their rates); users not covered
    by any group are served pure unicast.
    """

    demands: dict[int, UserDemand]
    groups: list[tuple[tuple[int, ...], float]] = field(default_factory=list)
    beam_switch_overhead_s: float = 0.0

    def __post_init__(self) -> None:
        covered: set[int] = set()
        for members, rate in self.groups:
            if rate < 0:
                raise ValueError("multicast rate must be non-negative")
            for m in members:
                if m in covered:
                    raise ValueError(f"user {m} appears in two groups")
                if m not in self.demands:
                    raise KeyError(f"group member {m} has no demand")
                covered.add(m)

    @property
    def grouped_users(self) -> set[int]:
        return {m for members, _ in self.groups for m in members}

    @property
    def solo_users(self) -> list[int]:
        return [u for u in self.demands if u not in self.grouped_users]

    def total_time_s(self) -> float:
        """Airtime to deliver the frame to everyone under this plan."""
        t = 0.0
        num_transmissions = 0
        for members, rate in self.groups:
            group_demands = [self.demands[m] for m in members]
            t += multicast_frame_time(group_demands, rate)
            num_transmissions += 1 + len(members)  # one multicast + residuals
        for u in self.solo_users:
            t += _transfer_time_s(
                self.demands[u].total_bytes, self.demands[u].unicast_rate_mbps
            )
            num_transmissions += 1
        return t + self.beam_switch_overhead_s * num_transmissions

    def achievable_fps(self, cap_fps: float = 30.0) -> float:
        """Frame rate this plan sustains (1 / total time, capped)."""
        t = self.total_time_s()
        if t <= 0:
            return cap_fps
        return min(cap_fps, 1.0 / t)

    def satisfies(self, target_fps: float) -> bool:
        """The paper's admission constraint T_m(k) <= 1/F."""
        return self.total_time_s() <= 1.0 / target_fps


def plan_frame(
    demands: list[UserDemand],
    groups: list[tuple[tuple[int, ...], float]] | None = None,
    beam_switch_overhead_s: float = 0.0,
    frame: int | None = None,
) -> FramePlan:
    """Build a :class:`FramePlan` from a demand list.

    ``frame`` is a trace-only correlation field (the frame index the plan
    is for, when the caller knows it); it never changes the plan.
    """
    plan = FramePlan(
        demands={d.user_id: d for d in demands},
        groups=groups or [],
        beam_switch_overhead_s=beam_switch_overhead_s,
    )
    _C_PLANS.inc()
    _C_GROUPS.inc(len(plan.groups))
    if _trace._RECORDER is not None:
        _EV_PLAN.emit(
            users=len(plan.demands),
            groups=len(plan.groups),
            solo=len(plan.solo_users),
            total_time_s=plan.total_time_s(),
            user_ids=sorted(plan.demands),
            **_trace.correlation(frame=frame),
        )
    return plan
