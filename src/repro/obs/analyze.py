"""Deadline critical-path attribution over a reconstructed trace.

For every frame delivery attempt the transport traced, decompose the
frame's end-to-end latency into named layer segments — where did the
budget actually go?  The segments come from the events' own duration
fields (never from timestamp subtraction across taps):

* ``first_tx``   (net) — first-round data airtime: round-1 ARQ PDUs, FEC
  source PDUs, or the whole airtime of an ideal-mode (fluid) frame;
* ``arq_retx``   (net) — data airtime of ARQ rounds 2+ (union
  retransmissions);
* ``arq_feedback`` (mac) — per-member block-ACK feedback and round
  turnaround, every round;
* ``fec_repair`` (net) — FEC repair PDUs beyond the k source PDUs
  (including the deadline-truncation remainder);
* ``deadline_waste`` (net) — the partial ARQ round the deadline cut
  short: airtime that delivered nothing;
* ``beam_switch`` (mac) — beam-switch overheads paid before transmission
  units;
* ``capture_wait`` (core) / ``fanout`` (net) — live-conferencing
  placeholders (capture-to-uplink wait, N×N replication airtime);
  declared so the ROADMAP's ReVo-style live scenario lands with blame
  decomposition in place, zero-width in every current trace;
* ``unattributed`` (net) — the residual between the frame's recorded
  latency and the sum of the segments above (floating-point drift and
  any untraced gap), kept explicit so per-frame totals sum *exactly* to
  the frame's end-to-end latency — ``tests/obs/test_analyze.py`` asserts
  the equality with ``==``, not approximately.

The module's entry point, :func:`analyze`, folds per-frame attributions
into a blame table over all frames and over the *problem* frames (late or
lost) — the deadline critical path the paper's cross-layer argument is
about — plus a per-layer rollup and the worst offending frames.  The
output is canonical JSON: same trace in, bit-identical report out.
"""

from __future__ import annotations

import math
from typing import Any, Iterable, Mapping

from .spans import FrameSpans

__all__ = [
    "AttributionSegment",
    "SEGMENTS",
    "SEGMENT_ORDER",
    "attribute_frame",
    "fold_event_into_segments",
    "close_attribution",
    "analyze",
    "format_report",
]


class AttributionSegment:
    """One named destination for frame-latency blame."""

    __slots__ = ("name", "layer", "help")

    def __init__(self, name: str, layer: str, help: str) -> None:
        if not name:
            raise ValueError("segment name must be non-empty")
        self.name = name
        self.layer = layer
        self.help = help

    def describe(self) -> dict[str, Any]:
        """Static metadata — the METRICS.md generator input."""
        return {"name": self.name, "layer": self.layer, "help": self.help}


SEGMENTS: dict[str, AttributionSegment] = {}


def _segment(name: str, layer: str, help: str) -> AttributionSegment:
    declared = AttributionSegment(name, layer, help)
    SEGMENTS[name] = declared
    return declared


SEG_FIRST_TX = _segment(
    "first_tx", "net",
    "first-round data airtime: round-1 ARQ PDUs, FEC source PDUs, or the "
    "whole airtime of an ideal-mode frame",
)
SEG_ARQ_RETX = _segment(
    "arq_retx", "net",
    "data airtime of ARQ rounds 2+ — union retransmissions of lost PDUs",
)
SEG_ARQ_FEEDBACK = _segment(
    "arq_feedback", "mac",
    "per-member block-ACK feedback plus round turnaround, every ARQ round",
)
SEG_FEC_REPAIR = _segment(
    "fec_repair", "net",
    "FEC repair airtime beyond the k source PDUs (truncation remainder "
    "included)",
)
SEG_DEADLINE_WASTE = _segment(
    "deadline_waste", "net",
    "the partial ARQ round the frame deadline cut short; delivered nothing",
)
SEG_BEAM_SWITCH = _segment(
    "beam_switch", "mac",
    "beam-switch overheads paid before transmission units",
)
SEG_CAPTURE_WAIT = _segment(
    "capture_wait", "core",
    "live conferencing only: time a captured frame waited at the sender "
    "before its uplink began (zero-width placeholder in current traces)",
)
SEG_FANOUT = _segment(
    "fanout", "net",
    "live conferencing only: airtime replicating a captured frame toward "
    "its remote viewers (zero-width placeholder in current traces)",
)
SEG_UNATTRIBUTED = _segment(
    "unattributed", "net",
    "residual between the frame's recorded latency and the summed segments "
    "(float drift / untraced gaps); keeps per-frame totals exact",
)

SEGMENT_ORDER: tuple[str, ...] = tuple(SEGMENTS)

_PROBLEM_STATUSES = ("late", "lost")


def fold_event_into_segments(
    seg: dict[str, float], ev: Mapping[str, Any]
) -> bool:
    """Fold one event's reported durations into a per-frame segment dict.

    Returns whether the event carried a latency breakdown at all — the
    streaming accumulator and :func:`attribute_frame` share this single
    set of fold rules so the two paths cannot drift.
    """
    name = ev.get("event")
    if name == "net.arq_round":
        data_s = float(ev.get("data_s", 0.0))
        if int(ev.get("round", 1)) <= 1:
            seg[SEG_FIRST_TX.name] += data_s
        else:
            seg[SEG_ARQ_RETX.name] += data_s
        seg[SEG_ARQ_FEEDBACK.name] += float(ev.get("overhead_s", 0.0))
        return True
    if name == "net.arq_deadline":
        seg[SEG_DEADLINE_WASTE.name] += float(ev.get("wasted_s", 0.0))
        return True
    if name == "net.fec_tx":
        seg[SEG_FIRST_TX.name] += float(ev.get("source_s", 0.0))
        seg[SEG_FEC_REPAIR.name] += float(ev.get("repair_s", 0.0))
        return True
    if name == "net.beam_switch":
        seg[SEG_BEAM_SWITCH.name] += float(ev.get("overhead_s", 0.0))
        return True
    if name == "core.capture_wait":
        seg[SEG_CAPTURE_WAIT.name] += float(ev.get("wait_s", 0.0))
        return True
    if name == "net.fanout":
        seg[SEG_FANOUT.name] += float(ev.get("airtime_s", 0.0))
        return True
    return False


def close_attribution(
    seg: dict[str, float], airtime: float, saw_breakdown: bool
) -> None:
    """Make the segment dict sum *exactly* to the frame's latency.

    Without any breakdown events the whole latency is one uninterrupted
    first transmission (ideal/fluid delivery); then the residual is pushed
    into ``unattributed`` until the ``fsum`` over all segments equals the
    recorded latency bit-for-bit.
    """
    if not saw_breakdown:
        seg[SEG_FIRST_TX.name] = airtime
    for _ in range(8):
        diff = airtime - math.fsum(seg.values())
        if diff == 0.0:
            break
        seg[SEG_UNATTRIBUTED.name] += diff


def attribute_frame(fs: FrameSpans) -> dict[str, float]:
    """Decompose one frame attempt's latency into the segment catalog.

    Returns ``{segment name: seconds}`` over every declared segment.  The
    values sum (under :func:`math.fsum`) *exactly* to ``fs.airtime_s``:
    the ``unattributed`` residual is iterated until the equality holds in
    floating point, so the invariant is enforced by construction.
    """
    seg = {name: 0.0 for name in SEGMENT_ORDER}
    saw_breakdown = False
    for ev in fs.events:
        saw_breakdown |= fold_event_into_segments(seg, ev)
    close_attribution(seg, fs.airtime_s, saw_breakdown)
    return seg


def analyze(
    events: Iterable[Mapping[str, Any]], top: int = 5
) -> dict[str, Any]:
    """Full attribution report over a flat trace event list.

    Folds every event (in ``seq`` order) through the single-pass
    :class:`repro.obs.stream.AnalyzeAccumulator` — the same machinery the
    bounded-memory streaming path and the cross-shard merge use, so batch
    and streamed reports are bit-identical *by construction* — and
    finalizes blame tables for all frames, late frames, lost frames, and
    the late+lost union (``problem``), plus the ``top`` worst frames by
    delivery latency.  Deterministic: the report is a pure function of
    the event list.
    """
    from .stream import AnalyzeAccumulator

    acc = AnalyzeAccumulator(top=top)
    for ev in sorted(events, key=lambda ev: int(ev.get("seq", 0))):
        acc.add_event(ev)
    return acc.finalize()


def format_report(report: Mapping[str, Any]) -> str:
    """Human-readable rendering of an :func:`analyze` report."""
    from ..experiments.common import format_table

    frames = report["frames"]
    lines = [
        f"frames: {frames['total']} total — {frames['on_time']} on time, "
        f"{frames['late']} late, {frames['lost']} lost"
        + (
            f", {frames['incomplete']} incomplete"
            if frames["incomplete"]
            else ""
        ),
    ]
    problem = report["blame"]["problem"]
    scope, entry = (
        ("late/lost frames", problem)
        if problem["frames"]
        else ("all frames", report["blame"]["all"])
    )
    lines.append(
        f"blame over {scope} ({entry['frames']} frame(s), "
        f"{entry['airtime_s'] * 1e3:.2f} ms of latency):"
    )
    rows = []
    for name in SEGMENT_ORDER:
        cell = entry["segments"][name]
        if cell["seconds"] == 0.0:
            continue
        rows.append([
            name,
            SEGMENTS[name].layer,
            f"{cell['seconds'] * 1e3:.3f}",
            f"{cell['share'] * 100:.1f}%",
        ])
    lines.append(format_table(["segment", "layer", "ms", "share"], rows))
    layer_bits = ", ".join(
        f"{layer} {seconds * 1e3:.3f} ms"
        for layer, seconds in entry["by_layer"].items()
        if seconds != 0.0
    )
    if layer_bits:
        lines.append(f"by layer: {layer_bits}")
    by_shard = report.get("by_shard") or []
    if by_shard:
        lines.append("per-shard latency attribution:")
        rows = []
        for entry in by_shard:
            top_seg = max(
                SEGMENT_ORDER,
                key=lambda name: entry["segments"][name]["seconds"],
            )
            rows.append([
                entry["room"],
                entry["ap"],
                entry["frames"],
                entry["late"],
                entry["lost"],
                f"{entry['airtime_s'] * 1e3:.2f}",
                top_seg,
            ])
        lines.append(
            format_table(
                ["room", "ap", "frames", "late", "lost", "ms", "top segment"],
                rows,
            )
        )
    admission = report.get("admission") or []
    if admission:
        lines.append("admission by room:")
        rows = [
            [
                row["room"],
                row["ap"],
                row["arrivals"],
                row["rejected"],
                row["departures"],
                row["peak_occupancy"],
                row["capacity"] if row["capacity"] is not None else "-",
            ]
            for row in admission
        ]
        lines.append(
            format_table(
                ["room", "ap", "arrivals", "rejected", "departures",
                 "peak", "capacity"],
                rows,
            )
        )
    hist = report.get("latency_hist")
    if hist and hist["count"]:
        mean_ms = hist["sum"] / hist["count"] * 1e3
        lines.append(
            f"frame latency: {hist['count']} sample(s), "
            f"mean {mean_ms:.2f} ms"
        )
    if report["worst_frames"]:
        lines.append("worst frames by delivery latency:")
        for row in report["worst_frames"]:
            deadline = row["deadline_s"]
            budget = (
                f" (deadline {deadline * 1e3:.2f} ms)"
                if deadline is not None
                else ""
            )
            lost = (
                f", lost users {row['lost_users']}" if row["lost_users"] else ""
            )
            lines.append(
                f"  {row['unit'] or '(no unit)'} frame {row['frame']}"
                f"#{row['occurrence']}: {row['status']}, "
                f"{row['airtime_s'] * 1e3:.2f} ms{budget}{lost}"
            )
    return "\n".join(lines)
