"""Deadline critical-path attribution over a reconstructed trace.

For every frame delivery attempt the transport traced, decompose the
frame's end-to-end latency into named layer segments — where did the
budget actually go?  The segments come from the events' own duration
fields (never from timestamp subtraction across taps):

* ``first_tx``   (net) — first-round data airtime: round-1 ARQ PDUs, FEC
  source PDUs, or the whole airtime of an ideal-mode (fluid) frame;
* ``arq_retx``   (net) — data airtime of ARQ rounds 2+ (union
  retransmissions);
* ``arq_feedback`` (mac) — per-member block-ACK feedback and round
  turnaround, every round;
* ``fec_repair`` (net) — FEC repair PDUs beyond the k source PDUs
  (including the deadline-truncation remainder);
* ``deadline_waste`` (net) — the partial ARQ round the deadline cut
  short: airtime that delivered nothing;
* ``beam_switch`` (mac) — beam-switch overheads paid before transmission
  units;
* ``unattributed`` (net) — the residual between the frame's recorded
  latency and the sum of the segments above (floating-point drift and
  any untraced gap), kept explicit so per-frame totals sum *exactly* to
  the frame's end-to-end latency — ``tests/obs/test_analyze.py`` asserts
  the equality with ``==``, not approximately.

The module's entry point, :func:`analyze`, folds per-frame attributions
into a blame table over all frames and over the *problem* frames (late or
lost) — the deadline critical path the paper's cross-layer argument is
about — plus a per-layer rollup and the worst offending frames.  The
output is canonical JSON: same trace in, bit-identical report out.
"""

from __future__ import annotations

import math
from typing import Any, Iterable, Mapping

from .spans import FrameSpans, Reconstruction, reconstruct

__all__ = [
    "AttributionSegment",
    "SEGMENTS",
    "SEGMENT_ORDER",
    "attribute_frame",
    "analyze",
    "format_report",
]


class AttributionSegment:
    """One named destination for frame-latency blame."""

    __slots__ = ("name", "layer", "help")

    def __init__(self, name: str, layer: str, help: str) -> None:
        if not name:
            raise ValueError("segment name must be non-empty")
        self.name = name
        self.layer = layer
        self.help = help

    def describe(self) -> dict[str, Any]:
        """Static metadata — the METRICS.md generator input."""
        return {"name": self.name, "layer": self.layer, "help": self.help}


SEGMENTS: dict[str, AttributionSegment] = {}


def _segment(name: str, layer: str, help: str) -> AttributionSegment:
    declared = AttributionSegment(name, layer, help)
    SEGMENTS[name] = declared
    return declared


SEG_FIRST_TX = _segment(
    "first_tx", "net",
    "first-round data airtime: round-1 ARQ PDUs, FEC source PDUs, or the "
    "whole airtime of an ideal-mode frame",
)
SEG_ARQ_RETX = _segment(
    "arq_retx", "net",
    "data airtime of ARQ rounds 2+ — union retransmissions of lost PDUs",
)
SEG_ARQ_FEEDBACK = _segment(
    "arq_feedback", "mac",
    "per-member block-ACK feedback plus round turnaround, every ARQ round",
)
SEG_FEC_REPAIR = _segment(
    "fec_repair", "net",
    "FEC repair airtime beyond the k source PDUs (truncation remainder "
    "included)",
)
SEG_DEADLINE_WASTE = _segment(
    "deadline_waste", "net",
    "the partial ARQ round the frame deadline cut short; delivered nothing",
)
SEG_BEAM_SWITCH = _segment(
    "beam_switch", "mac",
    "beam-switch overheads paid before transmission units",
)
SEG_UNATTRIBUTED = _segment(
    "unattributed", "net",
    "residual between the frame's recorded latency and the summed segments "
    "(float drift / untraced gaps); keeps per-frame totals exact",
)

SEGMENT_ORDER: tuple[str, ...] = tuple(SEGMENTS)

_PROBLEM_STATUSES = ("late", "lost")


def attribute_frame(fs: FrameSpans) -> dict[str, float]:
    """Decompose one frame attempt's latency into the segment catalog.

    Returns ``{segment name: seconds}`` over every declared segment.  The
    values sum (under :func:`math.fsum`) *exactly* to ``fs.airtime_s``:
    the ``unattributed`` residual is iterated until the equality holds in
    floating point, so the invariant is enforced by construction.
    """
    seg = {name: 0.0 for name in SEGMENT_ORDER}
    saw_breakdown = False
    for ev in fs.events:
        name = ev.get("event")
        if name == "net.arq_round":
            saw_breakdown = True
            data_s = float(ev.get("data_s", 0.0))
            if int(ev.get("round", 1)) <= 1:
                seg[SEG_FIRST_TX.name] += data_s
            else:
                seg[SEG_ARQ_RETX.name] += data_s
            seg[SEG_ARQ_FEEDBACK.name] += float(ev.get("overhead_s", 0.0))
        elif name == "net.arq_deadline":
            saw_breakdown = True
            seg[SEG_DEADLINE_WASTE.name] += float(ev.get("wasted_s", 0.0))
        elif name == "net.fec_tx":
            saw_breakdown = True
            seg[SEG_FIRST_TX.name] += float(ev.get("source_s", 0.0))
            seg[SEG_FEC_REPAIR.name] += float(ev.get("repair_s", 0.0))
        elif name == "net.beam_switch":
            saw_breakdown = True
            seg[SEG_BEAM_SWITCH.name] += float(ev.get("overhead_s", 0.0))
    airtime = fs.airtime_s
    if not saw_breakdown:
        # Ideal (fluid) delivery emits only the outcome event: the whole
        # latency is one uninterrupted first transmission.
        seg[SEG_FIRST_TX.name] = airtime
    # Close the books exactly: push the residual into `unattributed` until
    # the fsum over all segments equals the recorded latency bit-for-bit.
    for _ in range(8):
        diff = airtime - math.fsum(seg.values())
        if diff == 0.0:
            break
        seg[SEG_UNATTRIBUTED.name] += diff
    return seg


def _fold(totals: dict[str, float], seg: Mapping[str, float]) -> None:
    for name, seconds in seg.items():
        totals[name] = totals.get(name, 0.0) + seconds


def _blame_entry(
    frames: list[tuple[FrameSpans, dict[str, float]]]
) -> dict[str, Any]:
    """Aggregate per-frame attributions into one blame-table row."""
    totals = {name: 0.0 for name in SEGMENT_ORDER}
    for _, seg in frames:
        _fold(totals, seg)
    airtime = math.fsum(fs.airtime_s for fs, _ in frames)
    segments = {}
    for name in SEGMENT_ORDER:
        seconds = totals[name]
        segments[name] = {
            "seconds": seconds,
            "share": (seconds / airtime) if airtime > 0 else 0.0,
        }
    by_layer: dict[str, float] = {}
    for name in SEGMENT_ORDER:
        layer = SEGMENTS[name].layer
        by_layer[layer] = by_layer.get(layer, 0.0) + totals[name]
    return {
        "frames": len(frames),
        "airtime_s": airtime,
        "segments": segments,
        "by_layer": {layer: by_layer[layer] for layer in sorted(by_layer)},
    }


def analyze(
    events: Iterable[Mapping[str, Any]], top: int = 5
) -> dict[str, Any]:
    """Full attribution report over a flat trace event list.

    Reconstructs spans, attributes every closed frame attempt, and folds
    the result into blame tables for all frames, late frames, lost frames,
    and the late+lost union (``problem``), plus the ``top`` worst frames
    by delivery latency.  Deterministic: the report is a pure function of
    the event list.
    """
    recon: Reconstruction = reconstruct(events)
    attributed = [(fs, attribute_frame(fs)) for fs in recon.closed_frames()]

    by_status: dict[str, list[tuple[FrameSpans, dict[str, float]]]] = {
        "on_time": [], "late": [], "lost": [],
    }
    for fs, seg in attributed:
        by_status[fs.status].append((fs, seg))
    problem = by_status["late"] + by_status["lost"]

    worst = sorted(
        attributed,
        key=lambda pair: (-pair[0].airtime_s, pair[0].key()),
    )[: max(0, top)]

    num_events = 0
    for fs in recon.frames:
        num_events += len(fs.events)
    num_events += len(recon.unframed)

    # Venue runs tag every frame with the shard's room/AP context; fold a
    # per-shard blame table so latency attributes to the room that paid it.
    shards: dict[tuple[str, str], list[tuple[FrameSpans, dict[str, float]]]]
    shards = {}
    for fs, seg in attributed:
        if fs.room is None and fs.ap is None:
            continue
        shards.setdefault((fs.room or "", fs.ap or ""), []).append((fs, seg))
    by_shard = [
        {
            "room": room,
            "ap": ap,
            "late": sum(1 for fs, _ in shards[(room, ap)] if fs.status == "late"),
            "lost": sum(1 for fs, _ in shards[(room, ap)] if fs.status == "lost"),
            **_blame_entry(shards[(room, ap)]),
        }
        for room, ap in sorted(shards)
    ]

    return {
        "schema": "repro.obs.analyze/1",
        "num_events": num_events,
        "units": recon.units,
        "frames": {
            "total": len(recon.frames),
            "closed": len(attributed),
            "incomplete": len(recon.frames) - len(attributed),
            "on_time": len(by_status["on_time"]),
            "late": len(by_status["late"]),
            "lost": len(by_status["lost"]),
        },
        "blame": {
            "all": _blame_entry(attributed),
            "late": _blame_entry(by_status["late"]),
            "lost": _blame_entry(by_status["lost"]),
            "problem": _blame_entry(problem),
        },
        "by_shard": by_shard,
        "worst_frames": [
            {
                "unit": fs.unit,
                "frame": fs.frame,
                "occurrence": fs.occurrence,
                "status": fs.status,
                "airtime_s": fs.airtime_s,
                "deadline_s": fs.deadline_s,
                "lost_users": list(fs.lost_users),
                "segments": {name: seg[name] for name in SEGMENT_ORDER},
            }
            for fs, seg in worst
        ],
    }


def format_report(report: Mapping[str, Any]) -> str:
    """Human-readable rendering of an :func:`analyze` report."""
    from ..experiments.common import format_table

    frames = report["frames"]
    lines = [
        f"frames: {frames['total']} total — {frames['on_time']} on time, "
        f"{frames['late']} late, {frames['lost']} lost"
        + (
            f", {frames['incomplete']} incomplete"
            if frames["incomplete"]
            else ""
        ),
    ]
    problem = report["blame"]["problem"]
    scope, entry = (
        ("late/lost frames", problem)
        if problem["frames"]
        else ("all frames", report["blame"]["all"])
    )
    lines.append(
        f"blame over {scope} ({entry['frames']} frame(s), "
        f"{entry['airtime_s'] * 1e3:.2f} ms of latency):"
    )
    rows = []
    for name in SEGMENT_ORDER:
        cell = entry["segments"][name]
        if cell["seconds"] == 0.0:
            continue
        rows.append([
            name,
            SEGMENTS[name].layer,
            f"{cell['seconds'] * 1e3:.3f}",
            f"{cell['share'] * 100:.1f}%",
        ])
    lines.append(format_table(["segment", "layer", "ms", "share"], rows))
    layer_bits = ", ".join(
        f"{layer} {seconds * 1e3:.3f} ms"
        for layer, seconds in entry["by_layer"].items()
        if seconds != 0.0
    )
    if layer_bits:
        lines.append(f"by layer: {layer_bits}")
    by_shard = report.get("by_shard") or []
    if by_shard:
        lines.append("per-shard latency attribution:")
        rows = []
        for entry in by_shard:
            top_seg = max(
                SEGMENT_ORDER,
                key=lambda name: entry["segments"][name]["seconds"],
            )
            rows.append([
                entry["room"],
                entry["ap"],
                entry["frames"],
                entry["late"],
                entry["lost"],
                f"{entry['airtime_s'] * 1e3:.2f}",
                top_seg,
            ])
        lines.append(
            format_table(
                ["room", "ap", "frames", "late", "lost", "ms", "top segment"],
                rows,
            )
        )
    if report["worst_frames"]:
        lines.append("worst frames by delivery latency:")
        for row in report["worst_frames"]:
            deadline = row["deadline_s"]
            budget = (
                f" (deadline {deadline * 1e3:.2f} ms)"
                if deadline is not None
                else ""
            )
            lost = (
                f", lost users {row['lost_users']}" if row["lost_users"] else ""
            )
            lines.append(
                f"  {row['unit'] or '(no unit)'} frame {row['frame']}"
                f"#{row['occurrence']}: {row['status']}, "
                f"{row['airtime_s'] * 1e3:.2f} ms{budget}{lost}"
            )
    return "\n".join(lines)
