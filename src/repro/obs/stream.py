"""Bounded-memory streaming aggregation of trace timelines.

The batch observability pipeline (``load_events`` → ``reconstruct`` →
``analyze``) holds the whole trace, every span group, and every per-frame
attribution in memory at once — fine for a loss sweep, hostile at venue
scale (ROADMAP: 10 rooms / ~11k sessions and growing).  This module is
the single-pass alternative: every event is folded into constant-size
accumulators the moment it is seen, closed frame groups are dropped as
soon as their attribution lands, and the only per-key residual is one
occurrence counter per distinct ``(unit, frame)``.

Bit-identity with the batch path is *by construction*, not by luck:

* :func:`repro.obs.analyze.analyze` is itself a fold over
  :class:`AnalyzeAccumulator`, so batch and streamed reports can only
  differ if the event order differs — and trace files are written in
  ``seq`` order, which is exactly the order batch sorts into.
* Cross-frame sums use :class:`ExactSum` (Shewchuk's exact partials, the
  machinery behind :func:`math.fsum`): the rounded total is the correctly
  rounded value of the *real* sum, so it is invariant under event
  reordering across frames and under accumulator merging at any shard
  boundary — ``tests/obs/test_stream.py`` asserts both with ``==``.

The cross-shard contract for :meth:`AnalyzeAccumulator.merge`: each
accumulator must have consumed a *unit-disjoint* slice of the timeline
(the shard planner splits at room/spec boundaries, so ``(unit, frame)``
span groups never straddle accumulators), and merging in spec order
yields the same report as one accumulator over the concatenated stream.
"""

from __future__ import annotations

import bisect
import math
from pathlib import Path
from typing import Any, Iterable, Mapping

from .analyze import (
    SEGMENTS,
    SEGMENT_ORDER,
    close_attribution,
    fold_event_into_segments,
)
from .spans import iter_events

__all__ = [
    "ExactSum",
    "LATENCY_HIST_EDGES",
    "LatencyHistogram",
    "AnalyzeAccumulator",
    "stream_analyze",
]


class ExactSum:
    """An exactly-rounded, mergeable running sum of floats.

    Maintains Shewchuk's non-overlapping partials (the :func:`math.fsum`
    algorithm) so :meth:`value` is the correctly rounded sum of the *real*
    (infinite-precision) total.  Because the real total is independent of
    addition order, so is the rounded value — which is what makes
    shard-split accumulation bit-identical to a single pass, where a plain
    ``+=`` would drift by a few ulps per reordering.
    """

    __slots__ = ("_partials",)

    def __init__(self, value: float = 0.0) -> None:
        self._partials: list[float] = [float(value)] if value else []

    def add(self, x: float) -> None:
        """Fold one float in exactly."""
        partials = self._partials
        x = float(x)
        i = 0
        for y in partials:
            if abs(x) < abs(y):
                x, y = y, x
            hi = x + y
            lo = y - (hi - x)
            if lo:
                partials[i] = lo
                i += 1
            x = hi
        partials[i:] = [x]

    def merge(self, other: "ExactSum") -> None:
        """Fold another exact sum in; exact, so order never matters."""
        for y in other._partials:
            self.add(y)

    def value(self) -> float:
        """The correctly rounded total (bit-identical to ``math.fsum`` of
        every value ever added, in any order)."""
        return math.fsum(self._partials)


# Fixed latency-histogram bucket edges (seconds): sub-frame-time buckets
# around the 30/60 fps deadlines up to a one-second overflow.
LATENCY_HIST_EDGES: tuple[float, ...] = (
    0.005, 0.01, 0.0167, 0.0333, 0.05, 0.1, 0.2, 0.5, 1.0,
)


class LatencyHistogram:
    """A fixed-edge histogram whose merge is order-invariant.

    Bucket counts are integers (exact under any ordering) and the running
    sum is an :class:`ExactSum`, so histograms built from differently
    ordered or differently sharded event streams finalize bit-identically
    (property-tested with hypothesis in ``tests/obs/test_stream.py``).
    """

    __slots__ = ("edges", "_counts", "_sum", "_count")

    def __init__(self, edges: Iterable[float] = LATENCY_HIST_EDGES) -> None:
        self.edges = tuple(float(e) for e in edges)
        if any(b <= a for a, b in zip(self.edges, self.edges[1:])):
            raise ValueError("histogram edges must strictly increase")
        self._counts = [0] * (len(self.edges) + 1)
        self._sum = ExactSum()
        self._count = 0

    def observe(self, value: float) -> None:
        """Record one sample (first bucket whose edge >= value)."""
        self._counts[bisect.bisect_left(self.edges, value)] += 1
        self._sum.add(value)
        self._count += 1

    def merge(self, other: "LatencyHistogram") -> None:
        """Fold another histogram in (edges must match)."""
        if self.edges != other.edges:
            raise ValueError("cannot merge histograms with different edges")
        self._counts = [a + b for a, b in zip(self._counts, other._counts)]
        self._sum.merge(other._sum)
        self._count += other._count

    def to_jsonable(self) -> dict[str, Any]:
        """Canonical JSON shape (mirrors the metrics-registry histogram)."""
        return {
            "edges": list(self.edges),
            "counts": list(self._counts),
            "sum": self._sum.value(),
            "count": self._count,
        }


class _BlameAcc:
    """One blame-table row under construction: exact per-segment sums."""

    __slots__ = ("frames", "airtime", "seg")

    def __init__(self) -> None:
        self.frames = 0
        self.airtime = ExactSum()
        self.seg = {name: ExactSum() for name in SEGMENT_ORDER}

    def fold(self, seg: Mapping[str, float], airtime_s: float) -> None:
        self.frames += 1
        self.airtime.add(airtime_s)
        for name in SEGMENT_ORDER:
            self.seg[name].add(seg[name])

    def merge(self, other: "_BlameAcc") -> None:
        self.frames += other.frames
        self.airtime.merge(other.airtime)
        for name in SEGMENT_ORDER:
            self.seg[name].merge(other.seg[name])

    def copy(self) -> "_BlameAcc":
        clone = _BlameAcc()
        clone.merge(self)
        return clone

    def finalize(self) -> dict[str, Any]:
        """The canonical blame-entry shape of the analyze report."""
        airtime = self.airtime.value()
        totals = {name: self.seg[name].value() for name in SEGMENT_ORDER}
        segments = {
            name: {
                "seconds": totals[name],
                "share": (totals[name] / airtime) if airtime > 0 else 0.0,
            }
            for name in SEGMENT_ORDER
        }
        by_layer: dict[str, float] = {}
        for name in SEGMENT_ORDER:
            layer = SEGMENTS[name].layer
            by_layer[layer] = by_layer.get(layer, 0.0) + totals[name]
        return {
            "frames": self.frames,
            "airtime_s": airtime,
            "segments": segments,
            "by_layer": {layer: by_layer[layer] for layer in sorted(by_layer)},
        }


class _OpenFrame:
    """In-flight span group: just enough state to attribute it at close."""

    __slots__ = (
        "unit", "frame", "occurrence", "room", "ap", "seg", "saw_breakdown",
    )

    def __init__(self, unit: str | None, frame: int, occurrence: int) -> None:
        self.unit = unit
        self.frame = frame
        self.occurrence = occurrence
        self.room: str | None = None
        self.ap: str | None = None
        self.seg = {name: 0.0 for name in SEGMENT_ORDER}
        self.saw_breakdown = False


# Events that describe a finished delivery after the fact; they never open
# or close a span group (mirrors repro.obs.spans._ANNOTATION_EVENTS).
_ANNOTATION_EVENTS = ("core.frame_played", "core.qoe_sample")

_ADMISSION_EVENTS = {
    "scenario.user_arrival": "arrivals",
    "scenario.user_rejected": "rejected",
    "scenario.user_departure": "departures",
}


class AnalyzeAccumulator:
    """Single-pass, mergeable construction of the ``analyze`` report.

    Feed events in ``seq`` order via :meth:`add_event`; closed frames are
    attributed immediately (sharing the exact fold rules of
    :func:`repro.obs.analyze.attribute_frame`) and dropped, so memory
    stays bounded by the number of *concurrently open* frames, not the
    trace length.  :meth:`merge` folds another accumulator built from a
    unit-disjoint stream slice; :meth:`finalize` emits the canonical
    report dict (``repro.obs.analyze/2``).
    """

    def __init__(self, top: int = 5) -> None:
        self.top = max(0, int(top))
        self.num_events = 0
        self.frames_total = 0
        self.status_counts = {"on_time": 0, "late": 0, "lost": 0}
        self.blame_all = _BlameAcc()
        self.blame_late = _BlameAcc()
        self.blame_lost = _BlameAcc()
        self.latency_hist = LatencyHistogram()
        self._units: set[str] = set()
        # (room, ap) -> [_BlameAcc, late, lost]
        self._shards: dict[tuple[str, str], list[Any]] = {}
        # (room, ap) -> admission tallies
        self._admission: dict[tuple[str, str], dict[str, Any]] = {}
        # decision event name -> policy label -> count
        self._policies: dict[str, dict[str, int]] = {}
        # sorted [( (-airtime, key), worst-frame entry ), ...], len <= top
        self._worst: list[tuple[tuple, dict[str, Any]]] = []
        # (unit, frame) -> open group / occurrence counter
        self._open: dict[tuple[str | None, int], _OpenFrame] = {}
        self._occurrences: dict[tuple[str | None, int], int] = {}

    # -- folding ---------------------------------------------------------

    def add_event(self, ev: Mapping[str, Any]) -> None:
        """Fold one trace event; must be called in ``seq`` order."""
        self.num_events += 1
        name = ev.get("event")
        unit = ev.get("unit")
        unit_s = None if unit is None else str(unit)
        if unit_s is not None:
            self._units.add(unit_s)

        policy = ev.get("policy")
        if policy is not None and name:
            per = self._policies.setdefault(str(name), {})
            label = str(policy)
            per[label] = per.get(label, 0) + 1

        counter = _ADMISSION_EVENTS.get(name or "")
        if counter is not None:
            self._fold_admission(ev, counter)

        frame = ev.get("frame")
        if frame is None or name in _ANNOTATION_EVENTS:
            # Unframed events and after-the-fact annotations contribute to
            # the event count (and the tallies above) but never to a span
            # group — exactly the batch reconstruction's accounting.
            return

        gk = (unit_s, int(frame))
        group = self._open.get(gk)
        if group is None:
            index = self._occurrences.get(gk, 0)
            self._occurrences[gk] = index + 1
            group = _OpenFrame(unit_s, int(frame), index)
            self._open[gk] = group
            self.frames_total += 1
        if group.room is None and ev.get("room") is not None:
            group.room = str(ev["room"])
        if group.ap is None and ev.get("ap") is not None:
            group.ap = str(ev["ap"])
        group.saw_breakdown |= fold_event_into_segments(group.seg, ev)
        if name == "net.frame_outcome":
            self._close(group, ev)
            del self._open[gk]

    def _fold_admission(self, ev: Mapping[str, Any], counter: str) -> None:
        key = (str(ev.get("room") or ""), str(ev.get("ap") or ""))
        row = self._admission.get(key)
        if row is None:
            row = {
                "arrivals": 0, "rejected": 0, "departures": 0,
                "peak_occupancy": 0, "capacity": None,
            }
            self._admission[key] = row
        row[counter] += 1
        active = ev.get("active")
        if active is not None:
            row["peak_occupancy"] = max(row["peak_occupancy"], int(active))
        capacity = ev.get("capacity")
        if capacity is not None:
            cap = int(capacity)
            if row["capacity"] is None or cap > row["capacity"]:
                row["capacity"] = cap

    def _close(self, group: _OpenFrame, outcome: Mapping[str, Any]) -> None:
        airtime = float(outcome.get("airtime_s", 0.0))
        close_attribution(group.seg, airtime, group.saw_breakdown)

        lost_users = [int(u) for u in outcome.get("lost_users", ())]
        deadline = outcome.get("deadline_s")
        deadline_f = None if deadline is None else float(deadline)
        if lost_users:
            status = "lost"
        elif deadline_f is not None and airtime > deadline_f:
            status = "late"
        else:
            status = "on_time"

        self.status_counts[status] += 1
        self.blame_all.fold(group.seg, airtime)
        if status == "late":
            self.blame_late.fold(group.seg, airtime)
        elif status == "lost":
            self.blame_lost.fold(group.seg, airtime)
        self.latency_hist.observe(airtime)

        if group.room is not None or group.ap is not None:
            sk = (group.room or "", group.ap or "")
            shard = self._shards.get(sk)
            if shard is None:
                shard = [_BlameAcc(), 0, 0]
                self._shards[sk] = shard
            shard[0].fold(group.seg, airtime)
            if status == "late":
                shard[1] += 1
            elif status == "lost":
                shard[2] += 1

        if self.top:
            entry = {
                "unit": group.unit,
                "frame": group.frame,
                "occurrence": group.occurrence,
                "status": status,
                "airtime_s": airtime,
                "deadline_s": deadline_f,
                "lost_users": lost_users,
                "segments": {
                    name: group.seg[name] for name in SEGMENT_ORDER
                },
            }
            sort_key = (
                -airtime, (group.unit or "", group.frame, group.occurrence),
            )
            bisect.insort(self._worst, (sort_key, entry))
            del self._worst[self.top:]

    # -- merging ---------------------------------------------------------

    def merge(self, other: "AnalyzeAccumulator") -> None:
        """Fold another accumulator built from a unit-disjoint slice.

        Exact sums make the numeric totals independent of merge order;
        call in spec order anyway so any still-open groups and the worst
        tie-breaks stay deterministic and documentation-friendly.
        """
        if self.top != other.top:
            raise ValueError("cannot merge accumulators with different top")
        overlap = self._occurrences.keys() & other._occurrences.keys()
        if overlap:
            raise ValueError(
                "accumulators overlap on (unit, frame) keys — shard streams "
                f"must be unit-disjoint; e.g. {sorted(overlap)[:3]}"
            )
        self.num_events += other.num_events
        self.frames_total += other.frames_total
        for status, count in other.status_counts.items():
            self.status_counts[status] += count
        self.blame_all.merge(other.blame_all)
        self.blame_late.merge(other.blame_late)
        self.blame_lost.merge(other.blame_lost)
        self.latency_hist.merge(other.latency_hist)
        self._units |= other._units
        for sk, (acc, late, lost) in sorted(other._shards.items()):
            shard = self._shards.get(sk)
            if shard is None:
                self._shards[sk] = [acc.copy(), late, lost]
            else:
                shard[0].merge(acc)
                shard[1] += late
                shard[2] += lost
        for key, row in other._admission.items():
            mine = self._admission.get(key)
            if mine is None:
                self._admission[key] = dict(row)
                continue
            for counter in ("arrivals", "rejected", "departures"):
                mine[counter] += row[counter]
            mine["peak_occupancy"] = max(
                mine["peak_occupancy"], row["peak_occupancy"]
            )
            if row["capacity"] is not None and (
                mine["capacity"] is None or row["capacity"] > mine["capacity"]
            ):
                mine["capacity"] = row["capacity"]
        for name, per in other._policies.items():
            mine_p = self._policies.setdefault(name, {})
            for label, count in per.items():
                mine_p[label] = mine_p.get(label, 0) + count
        merged_worst = sorted(self._worst + other._worst)
        del merged_worst[self.top:]
        self._worst = merged_worst
        self._open.update(other._open)
        self._occurrences.update(other._occurrences)

    # -- finalizing ------------------------------------------------------

    def finalize(self) -> dict[str, Any]:
        """Emit the canonical analyze report (``repro.obs.analyze/2``)."""
        problem = self.blame_late.copy()
        problem.merge(self.blame_lost)
        closed = self.blame_all.frames
        by_shard = [
            {
                "room": room,
                "ap": ap,
                "late": self._shards[(room, ap)][1],
                "lost": self._shards[(room, ap)][2],
                **self._shards[(room, ap)][0].finalize(),
            }
            for room, ap in sorted(self._shards)
        ]
        admission = [
            {"room": room, "ap": ap, **self._admission[(room, ap)]}
            for room, ap in sorted(self._admission)
        ]
        return {
            "schema": "repro.obs.analyze/2",
            "num_events": self.num_events,
            "units": sorted(self._units),
            "frames": {
                "total": self.frames_total,
                "closed": closed,
                "incomplete": self.frames_total - closed,
                "on_time": self.status_counts["on_time"],
                "late": self.status_counts["late"],
                "lost": self.status_counts["lost"],
            },
            "blame": {
                "all": self.blame_all.finalize(),
                "late": self.blame_late.finalize(),
                "lost": self.blame_lost.finalize(),
                "problem": problem.finalize(),
            },
            "by_shard": by_shard,
            "worst_frames": [entry for _, entry in self._worst],
            "admission": admission,
            "policies": {
                name: {
                    label: self._policies[name][label]
                    for label in sorted(self._policies[name])
                }
                for name in sorted(self._policies)
            },
            "latency_hist": self.latency_hist.to_jsonable(),
        }


def stream_analyze(
    paths: Path | str | Iterable[Path | str], top: int = 5
) -> dict[str, Any]:
    """Analyze one or more trace files in a single bounded-memory pass.

    Events stream straight from disk (:func:`repro.obs.spans.iter_events`)
    into one :class:`AnalyzeAccumulator`, file by file in the given order.
    For trace files written by ``repro trace`` (which emits in ``seq``
    order) the report is bit-identical to ``analyze(load_events(path))``.
    """
    if isinstance(paths, (str, Path)):
        paths = [paths]
    acc = AnalyzeAccumulator(top=top)
    for path in paths:
        for ev in iter_events(path):
            acc.add_event(ev)
    return acc.finalize()
