"""``repro bench`` — a perf-trajectory harness for the experiment runner.

Runs registered experiments through the deterministic runner with the
:class:`~repro.obs.profile.PhaseProfiler` wrapped around the plan /
execute / merge phases, samples peak RSS, and writes one trajectory point
as ``BENCH_<n>.json`` (monotonically numbered, so a directory of them is
a perf history)::

    python -m repro bench loss_sweep table1 --scale small
    python -m repro bench loss_sweep --compare BENCH_1.json --tolerance 0.2

``--compare`` re-runs the same measurement and exits non-zero when any
experiment's wall time regressed beyond the tolerance against the
baseline file — the CI hook that keeps the runner's performance honest
across PRs.

Measurement uses ``time.perf_counter`` only (monotonic elapsed time; the
repo's D1xx lint permits it, wall-clock *timestamps* stay banned), and
the output deliberately carries no timestamp: the trajectory index ``n``
is the ordering.  Benchmarking never touches experiment results — the
runner path is exactly the one ``repro run`` uses.
"""

from __future__ import annotations

import argparse
import json
import re
import sys
from pathlib import Path
from typing import Any, Mapping

from .profile import PhaseProfiler

__all__ = [
    "BENCH_SCHEMA",
    "run_bench",
    "next_bench_path",
    "write_bench",
    "validate_bench",
    "compare_bench",
    "main",
]

BENCH_SCHEMA = "repro.bench/1"
_BENCH_NAME = re.compile(r"^BENCH_(\d+)\.json$")

_REQUIRED_TOP = ("schema", "scale", "workers", "experiments", "total_wall_s")
_REQUIRED_EXPERIMENT = (
    "name", "units", "cached_units", "cache_hit_rate", "wall_s",
    "units_per_s", "phases",
)


def _peak_rss_bytes() -> int | None:
    """Peak resident set size of this process, or None if unsupported."""
    try:
        import resource
    except ImportError:  # pragma: no cover - non-POSIX platforms
        return None
    peak = resource.getrusage(resource.RUSAGE_SELF).ru_maxrss
    # ru_maxrss is KiB on Linux, bytes on macOS.
    return int(peak) if sys.platform == "darwin" else int(peak) * 1024


def run_bench(
    experiment_names: list[str],
    scale: str = "small",
    workers: int = 1,
    use_cache: bool = True,
    cache_dir: str | None = None,
) -> dict[str, Any]:
    """Measure the named experiments; returns a ``repro.bench/1`` document.

    Each experiment goes through the standard decompose → run → merge
    pipeline with per-phase wall time accumulated by a
    :class:`PhaseProfiler`; units/sec and the cache hit rate come from the
    runner's own reports.
    """
    from ..runner.cache import ResultCache
    from ..runner.executor import run_specs
    from ..runner.registry import get_experiment, resolve_params

    cache = (
        ResultCache(cache_dir) if use_cache and cache_dir is not None
        else ResultCache() if use_cache
        else None
    )
    entries: list[dict[str, Any]] = []
    total_wall = 0.0
    for name in experiment_names:
        experiment = get_experiment(name)
        profiler = PhaseProfiler()
        with profiler.phase("plan"):
            params = resolve_params(experiment, None, scale=scale)
            specs = list(experiment.decompose(params))
        with profiler.phase("execute"):
            reports = run_specs(specs, workers=workers, cache=cache)
        with profiler.phase("merge"):
            experiment.merge(params, [(r.spec, r.result) for r in reports])
        wall_s = sum(profiler.wall_s(p) for p in profiler.names())
        cached = sum(1 for r in reports if r.cached)
        units = len(specs)
        entries.append(
            {
                "name": name,
                "units": units,
                "cached_units": cached,
                "cache_hit_rate": (cached / units) if units else 0.0,
                "wall_s": round(wall_s, 6),
                "units_per_s": round(units / wall_s, 6) if wall_s > 0 else 0.0,
                "phases": profiler.to_jsonable(),
            }
        )
        total_wall += wall_s
    doc: dict[str, Any] = {
        "schema": BENCH_SCHEMA,
        "scale": scale,
        "workers": workers,
        "experiments": entries,
        "total_wall_s": round(total_wall, 6),
    }
    peak = _peak_rss_bytes()
    if peak is not None:
        doc["peak_rss_bytes"] = peak
    validate_bench(doc)
    return doc


def next_bench_path(out_dir: Path | str = ".") -> Path:
    """The next free ``BENCH_<n>.json`` path under ``out_dir`` (n from 1)."""
    out_dir = Path(out_dir)
    taken = []
    if out_dir.is_dir():
        for child in out_dir.iterdir():
            match = _BENCH_NAME.match(child.name)
            if match:
                taken.append(int(match.group(1)))
    index = max(taken, default=0) + 1
    return out_dir / f"BENCH_{index}.json"


def write_bench(doc: Mapping[str, Any], out_dir: Path | str = ".") -> Path:
    """Validate and write one trajectory point; returns its path."""
    validate_bench(doc)
    path = next_bench_path(out_dir)
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(
        json.dumps(doc, sort_keys=True, indent=1) + "\n", encoding="utf-8"
    )
    return path


def validate_bench(doc: Mapping[str, Any]) -> None:
    """Raise ``ValueError`` listing every schema problem in ``doc``."""
    problems: list[str] = []
    if not isinstance(doc, Mapping):
        raise ValueError("bench document must be a JSON object")
    for key in _REQUIRED_TOP:
        if key not in doc:
            problems.append(f"missing top-level key {key!r}")
    if doc.get("schema") not in (None, BENCH_SCHEMA):
        problems.append(
            f"schema is {doc.get('schema')!r}, expected {BENCH_SCHEMA!r}"
        )
    experiments = doc.get("experiments")
    if not isinstance(experiments, list):
        problems.append("'experiments' must be a list")
        experiments = []
    for i, entry in enumerate(experiments):
        if not isinstance(entry, Mapping):
            problems.append(f"experiments[{i}] must be an object")
            continue
        for key in _REQUIRED_EXPERIMENT:
            if key not in entry:
                problems.append(f"experiments[{i}] missing key {key!r}")
        wall = entry.get("wall_s")
        if isinstance(wall, (int, float)) and wall < 0:
            problems.append(f"experiments[{i}].wall_s must be non-negative")
        rate = entry.get("cache_hit_rate")
        if isinstance(rate, (int, float)) and not 0.0 <= rate <= 1.0:
            problems.append(
                f"experiments[{i}].cache_hit_rate must be in [0, 1]"
            )
    if problems:
        raise ValueError("invalid bench document: " + "; ".join(problems))


def compare_bench(
    current: Mapping[str, Any],
    baseline: Mapping[str, Any],
    tolerance: float = 0.2,
) -> list[str]:
    """Wall-time regressions of ``current`` vs. ``baseline``.

    Returns one message per experiment (present in both documents) whose
    wall time exceeds the baseline's by more than ``tolerance`` (a
    fraction: 0.2 = 20%).  Empty list = no regression.
    """
    if tolerance < 0:
        raise ValueError("tolerance must be non-negative")
    validate_bench(current)
    validate_bench(baseline)
    base_by_name = {e["name"]: e for e in baseline["experiments"]}
    regressions: list[str] = []
    for entry in current["experiments"]:
        base = base_by_name.get(entry["name"])
        if base is None:
            continue
        cur_wall = float(entry["wall_s"])
        base_wall = float(base["wall_s"])
        if cur_wall > base_wall * (1.0 + tolerance):
            ratio = cur_wall / base_wall if base_wall > 0 else float("inf")
            shown = "inf" if ratio == float("inf") else f"{ratio:.2f}x"
            regressions.append(
                f"{entry['name']}: wall {cur_wall:.3f}s vs baseline "
                f"{base_wall:.3f}s ({shown}, tolerance "
                f"{(1.0 + tolerance):.2f}x)"
            )
    return regressions


def build_parser() -> argparse.ArgumentParser:
    """The ``repro bench`` argument parser."""
    parser = argparse.ArgumentParser(
        prog="python -m repro bench",
        description=(
            "Benchmark registered experiments through the deterministic "
            "runner and write a BENCH_<n>.json perf-trajectory point."
        ),
    )
    parser.add_argument(
        "experiments",
        nargs="*",
        metavar="EXPERIMENT",
        help="experiment names to benchmark (default: every registered one)",
    )
    parser.add_argument(
        "--scale",
        choices=["default", "small"],
        default="small",
        help="parameter scale (default: small — bench is about the runner, "
             "not the physics)",
    )
    parser.add_argument(
        "--workers", type=int, default=1, help="parallel worker processes"
    )
    parser.add_argument(
        "--out-dir",
        default=".",
        metavar="DIR",
        help="directory for the BENCH_<n>.json point (default: cwd)",
    )
    parser.add_argument(
        "--no-cache",
        action="store_true",
        help="bypass the result cache (hit rate reports as 0)",
    )
    parser.add_argument(
        "--compare",
        default=None,
        metavar="BASELINE",
        help="a previous BENCH_<n>.json; exit 1 if wall time regressed "
             "beyond --tolerance",
    )
    parser.add_argument(
        "--tolerance",
        type=float,
        default=0.2,
        help="allowed fractional wall-time growth for --compare "
             "(default: 0.2 = 20%%)",
    )
    return parser


def main(argv: list[str] | None = None) -> int:
    """Entry point for ``repro bench`` (returns a process exit status)."""
    from ..runner.registry import experiment_names

    args = build_parser().parse_args(argv)
    names = args.experiments or experiment_names()
    try:
        doc = run_bench(
            names,
            scale=args.scale,
            workers=args.workers,
            use_cache=not args.no_cache,
        )
    except KeyError as err:
        raise SystemExit(str(err)) from None
    path = write_bench(doc, args.out_dir)
    for entry in doc["experiments"]:
        print(
            f"{entry['name']}: {entry['units']} unit(s) in "
            f"{entry['wall_s']:.3f}s ({entry['units_per_s']:.2f}/s, "
            f"cache hit rate {entry['cache_hit_rate'] * 100:.0f}%)"
        )
    print(f"bench point written to {path}")
    if args.compare:
        try:
            baseline = json.loads(
                Path(args.compare).read_text(encoding="utf-8")
            )
        except (OSError, ValueError) as exc:
            raise SystemExit(f"cannot read baseline {args.compare}: {exc}")
        regressions = compare_bench(doc, baseline, tolerance=args.tolerance)
        if regressions:
            print(f"PERF REGRESSION vs {args.compare}:")
            for message in regressions:
                print(f"  {message}")
            return 1
        print(f"no regression vs {args.compare} (tolerance {args.tolerance})")
    return 0


if __name__ == "__main__":
    sys.exit(main())
