"""``repro bench`` — a perf-trajectory harness for the experiment runner.

Runs registered experiments through the deterministic runner with the
:class:`~repro.obs.profile.PhaseProfiler` wrapped around the plan /
execute / merge phases, samples peak RSS, and writes one trajectory point
as ``BENCH_<n>.json`` (monotonically numbered, so a directory of them is
a perf history)::

    python -m repro bench loss_sweep table1 --scale small
    python -m repro bench loss_sweep --compare BENCH_1.json --tolerance 0.2
    python -m repro bench --kernels --compare BENCH_2.json

``--compare`` re-runs the same measurement and exits non-zero when any
experiment's wall time regressed beyond the tolerance against the
baseline file — the CI hook that keeps the runner's performance honest
across PRs.

``--kernels`` additionally (or, with no experiments named, exclusively)
times the vectorized hot-path kernels against their retained scalar
references — pairwise viewport IoU at venue scale, the batched occlusion
cull, and the codebook gain sweep — and records each kernel's measured
speedup plus its ``min_speedup`` floor.  ``--compare`` gates *speedup
against the baseline's floor*, not wall time, so the kernel gate is
machine-independent: a slower CI box passes as long as the vectorized
path still beats the scalar one by the required factor.

Measurement uses ``time.perf_counter`` only (monotonic elapsed time; the
repo's D1xx lint permits it, wall-clock *timestamps* stay banned), and
the output deliberately carries no timestamp: the trajectory index ``n``
is the ordering.  Benchmarking never touches experiment results — the
runner path is exactly the one ``repro run`` uses.
"""

from __future__ import annotations

import argparse
import json
import re
import sys
from pathlib import Path
from typing import Any, Mapping

from .profile import PhaseProfiler

__all__ = [
    "BENCH_SCHEMA",
    "KERNEL_MIN_SPEEDUP",
    "run_bench",
    "run_kernel_bench",
    "run_stream_rss_bench",
    "next_bench_path",
    "write_bench",
    "validate_bench",
    "compare_bench",
    "main",
]

BENCH_SCHEMA = "repro.bench/1"
_BENCH_NAME = re.compile(r"^BENCH_(\d+)\.json$")

_REQUIRED_TOP = ("schema", "scale", "workers", "experiments", "total_wall_s")
_REQUIRED_EXPERIMENT = (
    "name", "units", "cached_units", "cache_hit_rate", "wall_s",
    "units_per_s", "phases",
)
_REQUIRED_KERNEL = (
    "name", "scalar_wall_s", "vectorized_wall_s", "speedup", "min_speedup",
)

# Machine-independent speedup floors the --compare gate enforces: the
# vectorized kernel must beat its scalar reference by at least this
# factor on whatever box runs the bench.  The pairwise floor is the
# acceptance criterion for the venue-scale work (>= 5x at 1,000 users);
# the other two are deliberately conservative.
KERNEL_MIN_SPEEDUP = {
    "pairwise_similarity_1000": 5.0,
    "occlusion_mask": 1.5,
    "beam_gains": 1.5,
}


def _peak_rss_bytes() -> int | None:
    """Peak resident set size of this process, or None if unsupported."""
    try:
        import resource
    except ImportError:  # pragma: no cover - non-POSIX platforms
        return None
    peak = resource.getrusage(resource.RUSAGE_SELF).ru_maxrss
    # ru_maxrss is KiB on Linux, bytes on macOS.
    return int(peak) if sys.platform == "darwin" else int(peak) * 1024


def run_bench(
    experiment_names: list[str],
    scale: str = "small",
    workers: int = 1,
    use_cache: bool = True,
    cache_dir: str | None = None,
) -> dict[str, Any]:
    """Measure the named experiments; returns a ``repro.bench/1`` document.

    Each experiment goes through the standard decompose → run → merge
    pipeline with per-phase wall time accumulated by a
    :class:`PhaseProfiler`; units/sec and the cache hit rate come from the
    runner's own reports.
    """
    from ..runner.cache import ResultCache
    from ..runner.executor import run_specs
    from ..runner.registry import get_experiment, resolve_params

    cache = (
        ResultCache(cache_dir) if use_cache and cache_dir is not None
        else ResultCache() if use_cache
        else None
    )
    entries: list[dict[str, Any]] = []
    total_wall = 0.0
    for name in experiment_names:
        experiment = get_experiment(name)
        profiler = PhaseProfiler()
        with profiler.phase("plan"):
            params = resolve_params(experiment, None, scale=scale)
            specs = list(experiment.decompose(params))
        with profiler.phase("execute"):
            reports = run_specs(specs, workers=workers, cache=cache)
        with profiler.phase("merge"):
            experiment.merge(params, [(r.spec, r.result) for r in reports])
        wall_s = sum(profiler.wall_s(p) for p in profiler.names())
        cached = sum(1 for r in reports if r.cached)
        units = len(specs)
        entries.append(
            {
                "name": name,
                "units": units,
                "cached_units": cached,
                "cache_hit_rate": (cached / units) if units else 0.0,
                "wall_s": round(wall_s, 6),
                "units_per_s": round(units / wall_s, 6) if wall_s > 0 else 0.0,
                "phases": profiler.to_jsonable(),
            }
        )
        total_wall += wall_s
    doc: dict[str, Any] = {
        "schema": BENCH_SCHEMA,
        "scale": scale,
        "workers": workers,
        "experiments": entries,
        "total_wall_s": round(total_wall, 6),
    }
    peak = _peak_rss_bytes()
    if peak is not None:
        doc["peak_rss_bytes"] = peak
    validate_bench(doc)
    return doc


_RSS_CHILD_CODE = """\
import resource
import sys

from repro.obs.cli import main

rc = main(sys.argv[1:])
peak = resource.getrusage(resource.RUSAGE_SELF).ru_maxrss
peak = int(peak) if sys.platform == "darwin" else int(peak) * 1024
print("PEAK_RSS_BYTES=%d" % peak)
sys.exit(rc)
"""


def run_stream_rss_bench(
    experiment: str = "venue_scale", scale: str = "small"
) -> dict[str, Any]:
    """Peak RSS of a streamed vs. batch trace of one experiment.

    ``ru_maxrss`` is a process-lifetime high-water mark, so the two
    measurements need separate address spaces: each mode runs ``repro
    trace`` in a child interpreter that reports its own peak before
    exiting.  The streamed child flushes events incrementally (the
    bounded-memory recorder) while the batch child retains the whole
    timeline — the delta between the two is exactly what the streaming
    tier buys, and the ``--stream-rss`` gate holds the streamed peak at
    or below the batch peak (within ``--tolerance``).
    """
    import os
    import subprocess
    import tempfile

    import repro

    env = dict(os.environ)
    src_dir = str(Path(repro.__file__).resolve().parent.parent)
    existing = env.get("PYTHONPATH")
    env["PYTHONPATH"] = (
        src_dir if not existing else src_dir + os.pathsep + existing
    )

    def _measure(stream: bool) -> int:
        with tempfile.TemporaryDirectory() as tmp:
            argv = [
                sys.executable, "-c", _RSS_CHILD_CODE,
                experiment, "--scale", scale, "--quiet",
                "--out", str(Path(tmp) / "trace.jsonl"),
            ]
            if stream:
                argv.append("--stream")
            proc = subprocess.run(
                argv, env=env, capture_output=True, text=True
            )
        if proc.returncode != 0:
            raise RuntimeError(
                f"rss child failed ({proc.returncode}): "
                f"{proc.stderr.strip()[-500:]}"
            )
        for line in reversed(proc.stdout.splitlines()):
            if line.startswith("PEAK_RSS_BYTES="):
                return int(line.partition("=")[2])
        raise RuntimeError("rss child printed no PEAK_RSS_BYTES line")

    batch = _measure(stream=False)
    streamed = _measure(stream=True)
    return {
        "experiment": experiment,
        "scale": scale,
        "batch_rss_bytes": batch,
        "streamed_rss_bytes": streamed,
        "ratio": round(streamed / batch, 4) if batch > 0 else None,
    }


def run_kernel_bench(num_users: int = 1000) -> list[dict[str, Any]]:
    """Time the vectorized kernels against their scalar references.

    Returns one entry per kernel: wall seconds for the scalar reference
    path and the vectorized path over identical inputs, the measured
    speedup, and the machine-independent ``min_speedup`` floor the
    ``--compare`` gate holds future runs to.  ``num_users`` sizes the
    pairwise-similarity population (1,000 is the venue-scale acceptance
    point; tests shrink it).
    """
    from time import perf_counter

    import numpy as np

    from ..core.similarity import group_iou, pairwise_iou_matrix
    from ..mmwave import Codebook, PhasedArray
    from ..pointcloud import CellGrid, VisibilityConfig, synthesize_video
    from ..pointcloud.visibility import (
        _occlusion_mask,
        _occlusion_mask_reference,
    )
    from ..traces import generate_user_study

    entries: list[dict[str, Any]] = []

    def _entry(name: str, scalar_s: float, vectorized_s: float) -> None:
        speedup = (
            scalar_s / vectorized_s if vectorized_s > 0 else float("inf")
        )
        floor = KERNEL_MIN_SPEEDUP.get(
            name, KERNEL_MIN_SPEEDUP["pairwise_similarity_1000"]
        )
        entries.append(
            {
                "name": name,
                "scalar_wall_s": round(scalar_s, 6),
                "vectorized_wall_s": round(vectorized_s, 6),
                "speedup": round(speedup, 3),
                "min_speedup": floor,
            }
        )

    # -- pairwise viewport IoU over a venue-scale population ----------------
    rng = np.random.default_rng(0)
    maps = []
    for _ in range(num_users):
        size = int(rng.integers(40, 120))
        maps.append(
            frozenset(
                int(c) for c in rng.choice(600, size=size, replace=False)
            )
        )
    t0 = perf_counter()
    scalar_iou = [
        [group_iou([maps[i], maps[j]]) for j in range(i + 1, len(maps))]
        for i in range(len(maps))
    ]
    t1 = perf_counter()
    matrix = pairwise_iou_matrix(maps)
    t2 = perf_counter()
    # Same numbers either way — a bench that diverged would be lying.
    if matrix[0, 1] != scalar_iou[0][0]:
        raise RuntimeError(
            "vectorized pairwise IoU diverged from the scalar reference"
        )
    _entry(f"pairwise_similarity_{num_users}", t1 - t0, t2 - t1)

    # -- batched occlusion cull over one frame's frustums -------------------
    video = synthesize_video("medium", num_frames=1, points_per_frame=6000,
                             seed=0)
    grid = CellGrid.covering(video.bounds, 0.5, margin=0.05)
    study = generate_user_study(num_users=8, duration_s=2.0, seed=0)
    occ = grid.occupancy(video[0])
    config = VisibilityConfig()
    cell_ids = occ.cell_ids
    nominal = occ.nominal_counts().astype(np.float64)
    lows, highs = grid.cell_bounds_array(cell_ids)
    centers = grid.cell_centers(cell_ids)
    frustums = [t.pose_at(1.0).frustum() for t in study.traces]
    repeats = 20  # single pass is ~ms-scale; repeat to swamp timer jitter
    t0 = perf_counter()
    for _ in range(repeats):
        for frustum in frustums:
            _occlusion_mask_reference(
                grid, cell_ids, nominal, frustum, config
            )
    t1 = perf_counter()
    for _ in range(repeats):
        for frustum in frustums:
            _occlusion_mask(
                centers, lows, highs, nominal, frustum, config,
                grid.cell_size,
            )
    t2 = perf_counter()
    _entry("occlusion_mask", t1 - t0, t2 - t1)

    # -- codebook gain sweep over many directions ---------------------------
    codebook = Codebook(array=PhasedArray(), num_az=64)
    directions = [
        (float(az), float(el))
        for az, el in zip(
            rng.uniform(-np.pi, np.pi, size=100),
            rng.uniform(-0.4, 0.4, size=100),
        )
    ]
    t0 = perf_counter()
    for az, el in directions:
        codebook.gains_toward_reference(az, el)
    t1 = perf_counter()
    for az, el in directions:
        codebook.gains_toward(az, el)
    t2 = perf_counter()
    _entry("beam_gains", t1 - t0, t2 - t1)

    return entries


def next_bench_path(out_dir: Path | str = ".") -> Path:
    """The next free ``BENCH_<n>.json`` path under ``out_dir`` (n from 1)."""
    out_dir = Path(out_dir)
    taken = []
    if out_dir.is_dir():
        for child in out_dir.iterdir():
            match = _BENCH_NAME.match(child.name)
            if match:
                taken.append(int(match.group(1)))
    index = max(taken, default=0) + 1
    return out_dir / f"BENCH_{index}.json"


def write_bench(doc: Mapping[str, Any], out_dir: Path | str = ".") -> Path:
    """Validate and write one trajectory point; returns its path."""
    validate_bench(doc)
    path = next_bench_path(out_dir)
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(
        json.dumps(doc, sort_keys=True, indent=1) + "\n", encoding="utf-8"
    )
    return path


def validate_bench(doc: Mapping[str, Any]) -> None:
    """Raise ``ValueError`` listing every schema problem in ``doc``."""
    problems: list[str] = []
    if not isinstance(doc, Mapping):
        raise ValueError("bench document must be a JSON object")
    for key in _REQUIRED_TOP:
        if key not in doc:
            problems.append(f"missing top-level key {key!r}")
    if doc.get("schema") not in (None, BENCH_SCHEMA):
        problems.append(
            f"schema is {doc.get('schema')!r}, expected {BENCH_SCHEMA!r}"
        )
    experiments = doc.get("experiments")
    if not isinstance(experiments, list):
        problems.append("'experiments' must be a list")
        experiments = []
    for i, entry in enumerate(experiments):
        if not isinstance(entry, Mapping):
            problems.append(f"experiments[{i}] must be an object")
            continue
        for key in _REQUIRED_EXPERIMENT:
            if key not in entry:
                problems.append(f"experiments[{i}] missing key {key!r}")
        wall = entry.get("wall_s")
        if isinstance(wall, (int, float)) and wall < 0:
            problems.append(f"experiments[{i}].wall_s must be non-negative")
        rate = entry.get("cache_hit_rate")
        if isinstance(rate, (int, float)) and not 0.0 <= rate <= 1.0:
            problems.append(
                f"experiments[{i}].cache_hit_rate must be in [0, 1]"
            )
    kernels = doc.get("kernels", [])
    if not isinstance(kernels, list):
        problems.append("'kernels' must be a list when present")
        kernels = []
    for i, entry in enumerate(kernels):
        if not isinstance(entry, Mapping):
            problems.append(f"kernels[{i}] must be an object")
            continue
        for key in _REQUIRED_KERNEL:
            if key not in entry:
                problems.append(f"kernels[{i}] missing key {key!r}")
        for key in ("scalar_wall_s", "vectorized_wall_s"):
            wall = entry.get(key)
            if isinstance(wall, (int, float)) and wall < 0:
                problems.append(f"kernels[{i}].{key} must be non-negative")
        floor = entry.get("min_speedup")
        if isinstance(floor, (int, float)) and floor <= 0:
            problems.append(f"kernels[{i}].min_speedup must be positive")
    stream_rss = doc.get("stream_rss")
    if stream_rss is not None:
        if not isinstance(stream_rss, Mapping):
            problems.append("'stream_rss' must be an object when present")
        else:
            for key in (
                "experiment", "scale", "batch_rss_bytes",
                "streamed_rss_bytes",
            ):
                if key not in stream_rss:
                    problems.append(f"stream_rss missing key {key!r}")
            for key in ("batch_rss_bytes", "streamed_rss_bytes"):
                rss = stream_rss.get(key)
                if isinstance(rss, (int, float)) and rss <= 0:
                    problems.append(f"stream_rss.{key} must be positive")
    if problems:
        raise ValueError("invalid bench document: " + "; ".join(problems))


def compare_bench(
    current: Mapping[str, Any],
    baseline: Mapping[str, Any],
    tolerance: float = 0.2,
) -> list[str]:
    """Regressions of ``current`` vs. ``baseline``.

    Returns one message per experiment (present in both documents) whose
    wall time exceeds the baseline's by more than ``tolerance`` (a
    fraction: 0.2 = 20%), plus one per kernel whose measured speedup fell
    below the *baseline's* ``min_speedup`` floor — a ratio, so the kernel
    gate holds on any machine.  Empty list = no regression.
    """
    if tolerance < 0:
        raise ValueError("tolerance must be non-negative")
    validate_bench(current)
    validate_bench(baseline)
    base_by_name = {e["name"]: e for e in baseline["experiments"]}
    regressions: list[str] = []
    for entry in current["experiments"]:
        base = base_by_name.get(entry["name"])
        if base is None:
            continue
        cur_wall = float(entry["wall_s"])
        base_wall = float(base["wall_s"])
        if cur_wall > base_wall * (1.0 + tolerance):
            ratio = cur_wall / base_wall if base_wall > 0 else float("inf")
            shown = "inf" if ratio == float("inf") else f"{ratio:.2f}x"
            regressions.append(
                f"{entry['name']}: wall {cur_wall:.3f}s vs baseline "
                f"{base_wall:.3f}s ({shown}, tolerance "
                f"{(1.0 + tolerance):.2f}x)"
            )
    base_kernels = {
        e["name"]: e for e in baseline.get("kernels", [])
    }
    for entry in current.get("kernels", []):
        base = base_kernels.get(entry["name"])
        if base is None:
            continue
        speedup = float(entry["speedup"])
        floor = float(base["min_speedup"])
        if speedup < floor:
            regressions.append(
                f"{entry['name']}: vectorized speedup {speedup:.2f}x fell "
                f"below the baseline floor {floor:.2f}x"
            )
    return regressions


def build_parser() -> argparse.ArgumentParser:
    """The ``repro bench`` argument parser."""
    parser = argparse.ArgumentParser(
        prog="python -m repro bench",
        description=(
            "Benchmark registered experiments through the deterministic "
            "runner and write a BENCH_<n>.json perf-trajectory point."
        ),
    )
    parser.add_argument(
        "experiments",
        nargs="*",
        metavar="EXPERIMENT",
        help="experiment names to benchmark (default: every registered one)",
    )
    parser.add_argument(
        "--scale",
        choices=["default", "small"],
        default="small",
        help="parameter scale (default: small — bench is about the runner, "
             "not the physics)",
    )
    parser.add_argument(
        "--workers", type=int, default=1, help="parallel worker processes"
    )
    parser.add_argument(
        "--out-dir",
        default=".",
        metavar="DIR",
        help="directory for the BENCH_<n>.json point (default: cwd)",
    )
    parser.add_argument(
        "--no-cache",
        action="store_true",
        help="bypass the result cache (hit rate reports as 0)",
    )
    parser.add_argument(
        "--kernels",
        action="store_true",
        help="also time the vectorized kernels against their scalar "
             "references; with no experiments named, bench kernels only",
    )
    parser.add_argument(
        "--stream-rss",
        nargs="?",
        const="venue_scale",
        default=None,
        metavar="EXPERIMENT",
        help="also measure streamed-vs-batch trace peak RSS for this "
             "experiment (default: venue_scale) in child processes; exit 1 "
             "if the streamed peak exceeds the batch peak beyond "
             "--tolerance; with no experiments named, measure RSS only",
    )
    parser.add_argument(
        "--compare",
        default=None,
        metavar="BASELINE",
        help="a previous BENCH_<n>.json; exit 1 if wall time regressed "
             "beyond --tolerance",
    )
    parser.add_argument(
        "--tolerance",
        type=float,
        default=0.2,
        help="allowed fractional wall-time growth for --compare "
             "(default: 0.2 = 20%%)",
    )
    return parser


def main(argv: list[str] | None = None) -> int:
    """Entry point for ``repro bench`` (returns a process exit status)."""
    from ..runner.registry import experiment_names

    args = build_parser().parse_args(argv)
    if (args.kernels or args.stream_rss) and not args.experiments:
        names = []  # kernels-only / rss-only point
    else:
        names = args.experiments or experiment_names()
    try:
        doc = run_bench(
            names,
            scale=args.scale,
            workers=args.workers,
            use_cache=not args.no_cache,
        )
    except KeyError as err:
        raise SystemExit(str(err)) from None
    if args.kernels:
        kernels = run_kernel_bench()
        doc["kernels"] = kernels
        doc["total_wall_s"] = round(
            doc["total_wall_s"]
            + sum(k["scalar_wall_s"] + k["vectorized_wall_s"] for k in kernels),
            6,
        )
    rss_regressed = False
    if args.stream_rss:
        try:
            stream_rss = run_stream_rss_bench(
                args.stream_rss, scale=args.scale
            )
        except (KeyError, RuntimeError) as err:
            raise SystemExit(str(err)) from None
        doc["stream_rss"] = stream_rss
        rss_regressed = stream_rss["streamed_rss_bytes"] > (
            stream_rss["batch_rss_bytes"] * (1.0 + args.tolerance)
        )
    path = write_bench(doc, args.out_dir)
    for entry in doc["experiments"]:
        print(
            f"{entry['name']}: {entry['units']} unit(s) in "
            f"{entry['wall_s']:.3f}s ({entry['units_per_s']:.2f}/s, "
            f"cache hit rate {entry['cache_hit_rate'] * 100:.0f}%)"
        )
    for entry in doc.get("kernels", []):
        print(
            f"kernel {entry['name']}: scalar {entry['scalar_wall_s']:.3f}s, "
            f"vectorized {entry['vectorized_wall_s']:.3f}s -> "
            f"{entry['speedup']:.1f}x (floor {entry['min_speedup']:.1f}x)"
        )
    if "stream_rss" in doc:
        rss = doc["stream_rss"]
        mib = 1024 * 1024
        print(
            f"stream rss ({rss['experiment']}, {rss['scale']}): batch "
            f"{rss['batch_rss_bytes'] / mib:.1f} MiB, streamed "
            f"{rss['streamed_rss_bytes'] / mib:.1f} MiB "
            f"(ratio {rss['ratio']})"
        )
    print(f"bench point written to {path}")
    if rss_regressed:
        print(
            "RSS REGRESSION: streamed trace peak exceeds the batch peak "
            f"beyond tolerance {args.tolerance}"
        )
        return 1
    if args.compare:
        try:
            baseline = json.loads(
                Path(args.compare).read_text(encoding="utf-8")
            )
        except (OSError, ValueError) as exc:
            raise SystemExit(f"cannot read baseline {args.compare}: {exc}")
        regressions = compare_bench(doc, baseline, tolerance=args.tolerance)
        if regressions:
            print(f"PERF REGRESSION vs {args.compare}:")
            for message in regressions:
                print(f"  {message}")
            return 1
        print(f"no regression vs {args.compare} (tolerance {args.tolerance})")
    return 0


if __name__ == "__main__":
    sys.exit(main())
