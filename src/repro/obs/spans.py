"""Span reconstruction: fold a flat trace timeline into causal frame spans.

``repro trace`` writes a flat JSONL timeline — one record per event, in a
global total order (``seq``).  This module folds that timeline back into
the *structure* the simulation had while it ran: one span group per frame
delivery attempt, holding the frame's events and the timed spans derived
from them (ARQ rounds, FEC blocks, beam switches, the frame's whole
delivery, and — in the closed loop — the delivery-to-playback lifetime
per user).

Joining is structural, never heuristic: every instrumented tap attaches
the correlation fields it knows (:data:`repro.obs.trace.CORRELATION_FIELDS`
— ``unit`` from ambient recorder context, ``frame``/``user``/``users``
per event), so an event belongs to a span group iff its ``(unit, frame)``
matches.  Frame indices legitimately repeat within a unit — the loss sweep
replays the same frames at every loss point, and the closed-loop session
re-requests lost frames — so groups are keyed by *occurrence*: a
``net.frame_outcome`` event closes the current occurrence of its frame,
and any later event with the same frame index opens the next one.

Like trace event types, span types are declared in a module-scope catalog
(:data:`SPAN_TYPES`) so ``docs/METRICS.md`` can enumerate them and the
analyzer can trust the names.  Reconstruction is a pure function of the
event list: same trace in, bit-identical spans out.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Iterable, Iterator, Mapping

__all__ = [
    "Span",
    "SpanType",
    "SPAN_TYPES",
    "span_type",
    "FrameSpans",
    "Reconstruction",
    "iter_events",
    "load_events",
    "reconstruct",
]


class SpanType:
    """A declared, documented kind of reconstructed span."""

    __slots__ = ("name", "layer", "help")

    def __init__(self, name: str, layer: str, help: str) -> None:
        if not name:
            raise ValueError("span type name must be non-empty")
        self.name = name
        self.layer = layer
        self.help = help

    def describe(self) -> dict[str, Any]:
        """Static metadata — the METRICS.md generator input."""
        return {"name": self.name, "layer": self.layer, "help": self.help}


SPAN_TYPES: dict[str, SpanType] = {}


def span_type(name: str, layer: str, help: str = "") -> SpanType:
    """Declare (or re-fetch) a span type; idempotent under module reloads."""
    existing = SPAN_TYPES.get(name)
    if existing is not None:
        return existing
    declared = SpanType(name, layer, help)
    SPAN_TYPES[name] = declared
    return declared


SPAN_FRAME_DELIVERY = span_type(
    "net.frame_delivery", layer="net",
    help="one delivery attempt of a full frame plan, from first airtime to "
         "the net.frame_outcome event; its duration is the frame's "
         "end-to-end delivery latency",
)
SPAN_UNIT_TX = span_type(
    "net.unit_tx", layer="net",
    help="one transmission unit's delivery attempt (multicast shared cells, "
         "a residual unicast leg, or a solo user's frame)",
)
SPAN_ARQ_ROUND = span_type(
    "net.arq_round", layer="net",
    help="one completed block-ACK round: union retransmission airtime plus "
         "per-member feedback and turnaround",
)
SPAN_ARQ_WASTE = span_type(
    "net.arq_waste", layer="net",
    help="the partial ARQ round the frame deadline cut short; its airtime "
         "delivered nothing",
)
SPAN_FEC_BLOCK = span_type(
    "net.fec_block", layer="net",
    help="one FEC-protected block transmission (source PDUs plus repair, "
         "possibly deadline-truncated)",
)
SPAN_BEAM_SWITCH = span_type(
    "mac.beam_switch", layer="mac",
    help="one beam-switch overhead the radio paid before a transmission "
         "unit",
)
SPAN_FRAME_LIFETIME = span_type(
    "core.frame_lifetime", layer="core",
    help="closed loop only: from the end of a frame's delivery to the "
         "moment one user's client buffer played it out",
)
# Live-conferencing placeholders (ROADMAP: ReVo-style bidirectional live
# volumetric video).  Declared now so the blame decomposition — capture
# wait, uplink, fan-out, downlink — is already in the catalog when the
# live session mode lands; zero-width in every current trace because no
# tap emits the events yet.
SPAN_CAPTURE_WAIT = span_type(
    "core.capture_wait", layer="core",
    help="live conferencing only: time a freshly captured frame waited "
         "at the sender before its uplink transmission began "
         "(zero-width placeholder in current traces)",
)
SPAN_FANOUT = span_type(
    "net.fanout", layer="net",
    help="live conferencing only: airtime spent replicating one captured "
         "frame toward its N-1 remote viewers beyond the first copy "
         "(zero-width placeholder in current traces)",
)


@dataclass(frozen=True)
class Span:
    """One reconstructed interval on a frame's timeline."""

    type: str  # a SPAN_TYPES name
    start_t: float
    end_t: float
    frame: int | None = None
    user: int | None = None
    users: tuple[int, ...] | None = None
    attrs: dict[str, Any] = field(default_factory=dict)

    @property
    def duration_s(self) -> float:
        return self.end_t - self.start_t

    def to_jsonable(self) -> dict[str, Any]:
        """Canonical JSON shape (stable key order, unknowns omitted)."""
        doc: dict[str, Any] = {
            "type": self.type,
            "start_t": self.start_t,
            "end_t": self.end_t,
        }
        if self.frame is not None:
            doc["frame"] = self.frame
        if self.user is not None:
            doc["user"] = self.user
        if self.users is not None:
            doc["users"] = list(self.users)
        if self.attrs:
            doc["attrs"] = {k: self.attrs[k] for k in sorted(self.attrs)}
        return doc


@dataclass
class FrameSpans:
    """One frame delivery attempt: its events, derived spans, and outcome."""

    unit: str | None
    frame: int
    occurrence: int  # nth delivery attempt of this frame within the unit
    room: str | None = None  # scenario shard context, from the first event
    ap: str | None = None  # that carried it (venue runs only)
    events: list[dict[str, Any]] = field(default_factory=list)
    spans: list[Span] = field(default_factory=list)
    outcome: dict[str, Any] | None = None  # the net.frame_outcome event

    @property
    def closed(self) -> bool:
        """Whether a ``net.frame_outcome`` event terminated this attempt."""
        return self.outcome is not None

    @property
    def airtime_s(self) -> float:
        """End-to-end delivery latency of this attempt (0.0 if unclosed)."""
        if self.outcome is None:
            return 0.0
        return float(self.outcome.get("airtime_s", 0.0))

    @property
    def deadline_s(self) -> float | None:
        """The frame deadline budget, when the outcome recorded one."""
        if self.outcome is None:
            return None
        value = self.outcome.get("deadline_s")
        return None if value is None else float(value)

    @property
    def delivered_users(self) -> tuple[int, ...]:
        """Users whose frame completely arrived in time."""
        if self.outcome is None:
            return ()
        return tuple(int(u) for u in self.outcome.get("delivered_users", ()))

    @property
    def lost_users(self) -> tuple[int, ...]:
        """Users whose frame missed the deadline (residual loss)."""
        if self.outcome is None:
            return ()
        return tuple(int(u) for u in self.outcome.get("lost_users", ()))

    @property
    def status(self) -> str:
        """``on_time`` | ``late`` | ``lost`` | ``incomplete``."""
        if self.outcome is None:
            return "incomplete"
        if self.lost_users:
            return "lost"
        deadline = self.deadline_s
        if deadline is not None and self.airtime_s > deadline:
            return "late"
        return "on_time"

    def key(self) -> tuple[str, int, int]:
        """Deterministic identity: ``(unit, frame, occurrence)``."""
        return (self.unit or "", self.frame, self.occurrence)


@dataclass
class Reconstruction:
    """The folded timeline: frame span groups plus the unframed remainder."""

    frames: list[FrameSpans] = field(default_factory=list)
    unframed: list[dict[str, Any]] = field(default_factory=list)

    @property
    def units(self) -> list[str]:
        """Distinct work-unit keys seen in the trace, sorted."""
        seen = {fs.unit for fs in self.frames if fs.unit is not None}
        seen.update(
            str(ev["unit"]) for ev in self.unframed if ev.get("unit") is not None
        )
        return sorted(seen)

    def closed_frames(self) -> list[FrameSpans]:
        """Frame attempts that reached their ``net.frame_outcome``."""
        return [fs for fs in self.frames if fs.closed]


def iter_events(path: Path | str) -> Iterator[dict[str, Any]]:
    """Stream a ``repro trace`` JSONL file one event dict at a time.

    Unlike :func:`load_events` this never holds the file in memory — it is
    the loader the bounded-memory pipeline (:mod:`repro.obs.stream`) folds
    from.  Errors are diagnosed, not raised raw: an unparsable line
    reports its ``path:lineno``, and a final line that is cut off
    mid-record (no trailing newline — the classic partial write of an
    interrupted run) is called out as truncated rather than surfacing a
    JSON stack trace.
    """
    with open(path, "r", encoding="utf-8") as fh:
        lineno = 0
        for raw in fh:
            lineno += 1
            line = raw.strip()
            if not line:
                continue
            try:
                event = json.loads(line)
            except ValueError as exc:
                if not raw.endswith("\n"):
                    raise ValueError(
                        f"{path}:{lineno}: truncated trace record (partial "
                        f"write?): {line[:60]!r}"
                    ) from exc
                raise ValueError(
                    f"{path}:{lineno}: not valid JSON: {exc}"
                ) from exc
            if not isinstance(event, dict):
                raise ValueError(f"{path}:{lineno}: expected a JSON object")
            yield event


def load_events(path: Path | str) -> list[dict[str, Any]]:
    """Parse a ``repro trace`` JSONL file into event dicts."""
    return list(iter_events(path))


def _span_from_event(ev: Mapping[str, Any]) -> Span | None:
    """Derive the timed span an event describes, if it describes one.

    Every duration comes from the event's own fields (``cost_s``,
    ``wasted_s``, ``airtime_s``, ``overhead_s``) — the span ends at the
    event's emission time and extends backwards by the reported duration.
    """
    name = ev.get("event")
    t = float(ev.get("t", 0.0))
    frame = ev.get("frame")
    users = ev.get("users")
    users_t = (
        tuple(int(u) for u in users) if isinstance(users, (list, tuple)) else None
    )
    frame_i = None if frame is None else int(frame)

    if name == "net.arq_round":
        dur = float(ev.get("cost_s", 0.0))
        return Span(
            type=SPAN_ARQ_ROUND.name, start_t=t - dur, end_t=t,
            frame=frame_i, users=users_t,
            attrs={
                "round": ev.get("round"),
                "packets": ev.get("packets"),
                "data_s": ev.get("data_s"),
                "overhead_s": ev.get("overhead_s"),
            },
        )
    if name == "net.arq_deadline":
        dur = float(ev.get("wasted_s", 0.0))
        return Span(
            type=SPAN_ARQ_WASTE.name, start_t=t - dur, end_t=t,
            frame=frame_i, users=users_t,
            attrs={
                "round": ev.get("round"),
                "pending_receivers": ev.get("pending_receivers"),
            },
        )
    if name == "net.fec_tx":
        dur = float(ev.get("airtime_s", 0.0))
        return Span(
            type=SPAN_FEC_BLOCK.name, start_t=t - dur, end_t=t,
            frame=frame_i, users=users_t,
            attrs={
                "k": ev.get("k"),
                "n_sent": ev.get("n_sent"),
                "truncated": ev.get("truncated"),
                "source_s": ev.get("source_s"),
                "repair_s": ev.get("repair_s"),
            },
        )
    if name == "net.unit_tx":
        dur = float(ev.get("airtime_s", 0.0))
        return Span(
            type=SPAN_UNIT_TX.name, start_t=t - dur, end_t=t,
            frame=frame_i, users=users_t,
            attrs={
                "scheme": ev.get("scheme"),
                "packets": ev.get("packets"),
                "receivers": ev.get("receivers"),
                "delivered": ev.get("delivered"),
            },
        )
    if name == "net.beam_switch":
        dur = float(ev.get("overhead_s", 0.0))
        return Span(
            type=SPAN_BEAM_SWITCH.name, start_t=t - dur, end_t=t, frame=frame_i
        )
    if name == "core.capture_wait":
        dur = float(ev.get("wait_s", 0.0))
        return Span(
            type=SPAN_CAPTURE_WAIT.name, start_t=t - dur, end_t=t,
            frame=frame_i, users=users_t,
        )
    if name == "net.fanout":
        dur = float(ev.get("airtime_s", 0.0))
        return Span(
            type=SPAN_FANOUT.name, start_t=t - dur, end_t=t,
            frame=frame_i, users=users_t,
            attrs={"copies": ev.get("copies")},
        )
    if name == "net.frame_outcome":
        dur = float(ev.get("airtime_s", 0.0))
        return Span(
            type=SPAN_FRAME_DELIVERY.name, start_t=t - dur, end_t=t,
            frame=frame_i,
            attrs={
                "delivered_users": ev.get("delivered_users"),
                "lost_users": ev.get("lost_users"),
                "deadline_s": ev.get("deadline_s"),
                "arq_rounds": ev.get("arq_rounds"),
                "retx_overhead": ev.get("retx_overhead"),
            },
        )
    return None


# Events that *describe* a finished delivery instead of contributing to an
# in-flight one: they join the latest closed occurrence of their frame.
_ANNOTATION_EVENTS = ("core.frame_played", "core.qoe_sample")


def reconstruct(events: Iterable[Mapping[str, Any]]) -> Reconstruction:
    """Fold a flat event list into per-frame span groups.

    Events are processed in ``seq`` order.  Within one ``unit``, the first
    event carrying frame index ``f`` opens occurrence 0 of that frame's
    span group; a ``net.frame_outcome`` for ``f`` closes the open
    occurrence, and later events for ``f`` open the next occurrence.
    *Annotation* events — ``core.frame_played`` and ``core.qoe_sample``,
    which describe a delivery after the fact rather than contribute to
    one — instead join the most recently *closed* occurrence of their
    frame; ``core.frame_played`` additionally adds a
    ``core.frame_lifetime`` span from delivery end to play-out.  Events
    without a ``frame`` field land in ``unframed``.
    """
    recon = Reconstruction()
    # (unit, frame) -> open FrameSpans
    open_groups: dict[tuple[str | None, int], FrameSpans] = {}
    # (unit, frame) -> most recently closed FrameSpans
    closed_latest: dict[tuple[str | None, int], FrameSpans] = {}
    # (unit, frame) -> number of occurrences started
    occurrences: dict[tuple[str | None, int], int] = {}

    ordered = sorted(events, key=lambda ev: int(ev.get("seq", 0)))
    for ev in ordered:
        event_dict = dict(ev)
        frame = event_dict.get("frame")
        if frame is None:
            recon.unframed.append(event_dict)
            continue
        unit = event_dict.get("unit")
        unit_s = None if unit is None else str(unit)
        gk = (unit_s, int(frame))
        name = event_dict.get("event")

        if name in _ANNOTATION_EVENTS:
            target = closed_latest.get(gk) or open_groups.get(gk)
            if target is None:
                recon.unframed.append(event_dict)
                continue
            target.events.append(event_dict)
            if name == "core.frame_played":
                delivery_end = next(
                    (
                        s.end_t
                        for s in target.spans
                        if s.type == SPAN_FRAME_DELIVERY.name
                    ),
                    float(event_dict.get("t", 0.0)),
                )
                user = event_dict.get("user")
                target.spans.append(
                    Span(
                        type=SPAN_FRAME_LIFETIME.name,
                        start_t=delivery_end,
                        end_t=float(event_dict.get("t", 0.0)),
                        frame=int(frame),
                        user=None if user is None else int(user),
                        attrs={
                            "on_time": event_dict.get("on_time"),
                            "quality": event_dict.get("quality"),
                        },
                    )
                )
            continue

        group = open_groups.get(gk)
        if group is None:
            index = occurrences.get(gk, 0)
            occurrences[gk] = index + 1
            group = FrameSpans(unit=unit_s, frame=int(frame), occurrence=index)
            open_groups[gk] = group
            recon.frames.append(group)
        group.events.append(event_dict)
        if group.room is None and event_dict.get("room") is not None:
            group.room = str(event_dict["room"])
        if group.ap is None and event_dict.get("ap") is not None:
            group.ap = str(event_dict["ap"])
        span = _span_from_event(event_dict)
        if span is not None:
            group.spans.append(span)
        if name == "net.frame_outcome":
            group.outcome = event_dict
            closed_latest[gk] = group
            del open_groups[gk]

    return recon
