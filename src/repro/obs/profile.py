"""Wall-clock phase profiling for the experiment runner.

The runner's ``--timings`` output reports per-unit compute time; this
module adds *where the rest of the wall time goes*: planning (decompose +
parameter resolution), cache lookups, execution, and merge/format.  A
:class:`PhaseProfiler` accumulates real elapsed time per named phase via
``time.perf_counter`` — monotonic elapsed measurement, which the repo's
D1xx determinism lint permits (wall-clock *timestamps* stay banned, and no
profiled duration ever feeds simulation state or results).
"""

from __future__ import annotations

import time
from contextlib import contextmanager
from typing import Any, Iterator

__all__ = ["PhaseProfiler"]


class PhaseProfiler:
    """Accumulates wall time and entry counts per named phase."""

    def __init__(self) -> None:
        self._wall_s: dict[str, float] = {}
        self._counts: dict[str, int] = {}

    def add(self, name: str, wall_s: float) -> None:
        """Credit ``wall_s`` seconds to phase ``name``."""
        if wall_s < 0:
            raise ValueError("phase wall time must be non-negative")
        self._wall_s[name] = self._wall_s.get(name, 0.0) + wall_s
        self._counts[name] = self._counts.get(name, 0) + 1

    @contextmanager
    def phase(self, name: str) -> Iterator[None]:
        """Time a ``with`` block and credit it to phase ``name``."""
        t0 = time.perf_counter()
        try:
            yield
        finally:
            self.add(name, time.perf_counter() - t0)

    def wall_s(self, name: str) -> float:
        """Accumulated seconds for one phase (0.0 if never entered)."""
        return self._wall_s.get(name, 0.0)

    def names(self) -> list[str]:
        """Phases seen so far, sorted by name."""
        return sorted(self._wall_s)

    def to_jsonable(self) -> dict[str, dict[str, Any]]:
        """``{phase: {"wall_s": ..., "count": ...}}`` with sorted keys."""
        return {
            name: {
                "wall_s": round(self._wall_s[name], 6),
                "count": self._counts[name],
            }
            for name in self.names()
        }

    def format(self) -> str:
        """One human line: ``phases: plan 0.01s · execute 3.20s · ...``."""
        if not self._wall_s:
            return "phases: (none)"
        parts = [f"{name} {self._wall_s[name]:.2f}s" for name in self.names()]
        return "phases: " + " · ".join(parts)
