"""repro.obs — structured observability for every layer of the stack.

Three pieces, all off by default and all guaranteed result-neutral (they
never touch an RNG, the sim clock, or experiment state):

* :mod:`repro.obs.metrics` — a registry of counters, gauges, and
  fixed-bucket histograms that components create at module scope;
  snapshots are deterministic (sorted keys, no wall clock) and merge
  across parallel work units in spec order.
* :mod:`repro.obs.trace` — declared trace event types plus a recorder
  producing a sim-time-ordered JSONL timeline; hooked into the sim engine,
  the transport, the MAC scheduler, and the streaming session.
* :mod:`repro.obs.profile` — wall-clock phase profiling for the runner's
  ``--timings`` output.

On top of the recording substrate sits the analysis tier:

* :mod:`repro.obs.spans` — folds a flat trace back into per-frame causal
  spans via the declared correlation fields (never heuristics);
* :mod:`repro.obs.analyze` — deadline critical-path attribution: each
  frame's end-to-end latency decomposed into named layer segments whose
  per-frame totals sum exactly to the frame latency;
* :mod:`repro.obs.slo` — declarative SLO specs evaluated against a trace
  (CI gating via ``repro obs check``);
* :mod:`repro.obs.bench` — the ``repro bench`` perf-trajectory harness
  (``BENCH_<n>.json`` points plus ``--compare`` regression gating and the
  ``--stream-rss`` streamed-vs-batch peak-RSS gate).

The streaming plane makes the whole pipeline bounded-memory at venue
scale, bit-identically to the batch path:

* :mod:`repro.obs.stream` — single-pass :class:`AnalyzeAccumulator`
  folding (exact Shewchuk sums, deterministic cross-shard merge) behind
  ``repro trace --stream`` / ``repro obs analyze --stream``;
* :mod:`repro.obs.diff` — ``repro obs diff``: canonical
  ``repro.obs.diff/1`` regression reports over two runs' artifacts;
* :mod:`repro.obs.report` — ``repro obs report``: self-contained
  markdown/HTML run reports with a BENCH trajectory sparkline.

CLI surface: ``repro trace <experiment>`` records a timeline (with
``--layer``/``--event`` write filters and ``--stream`` incremental
flushing), ``repro obs analyze`` / ``repro obs check`` consume one,
``repro obs diff`` / ``repro obs report`` consume the resulting
artifacts, ``repro bench`` measures the runner, ``repro run
--metrics-out FILE`` dumps merged metrics.  Every metric, event, span,
segment, and SLO metric is documented in ``docs/METRICS.md``, generated
(and drift-checked in CI) by ``tools/gen_metrics_doc.py``.
"""

from .metrics import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    REGISTRY,
    merge_snapshots,
    write_snapshot,
)
from .profile import PhaseProfiler
from .stream import (
    AnalyzeAccumulator,
    ExactSum,
    LatencyHistogram,
    stream_analyze,
)
from .trace import (
    CORRELATION_FIELDS,
    EVENT_TYPES,
    TraceEvent,
    TraceEventType,
    StreamingTraceRecorder,
    TraceRecorder,
    correlation,
    event_type,
    recording,
    streaming_recording,
)

__all__ = [
    "AnalyzeAccumulator",
    "CORRELATION_FIELDS",
    "Counter",
    "EVENT_TYPES",
    "ExactSum",
    "Gauge",
    "Histogram",
    "LatencyHistogram",
    "MetricsRegistry",
    "PhaseProfiler",
    "REGISTRY",
    "StreamingTraceRecorder",
    "TraceEvent",
    "TraceEventType",
    "TraceRecorder",
    "correlation",
    "event_type",
    "merge_snapshots",
    "recording",
    "stream_analyze",
    "streaming_recording",
    "write_snapshot",
]
