"""repro.obs — structured observability for every layer of the stack.

Three pieces, all off by default and all guaranteed result-neutral (they
never touch an RNG, the sim clock, or experiment state):

* :mod:`repro.obs.metrics` — a registry of counters, gauges, and
  fixed-bucket histograms that components create at module scope;
  snapshots are deterministic (sorted keys, no wall clock) and merge
  across parallel work units in spec order.
* :mod:`repro.obs.trace` — declared trace event types plus a recorder
  producing a sim-time-ordered JSONL timeline; hooked into the sim engine,
  the transport, the MAC scheduler, and the streaming session.
* :mod:`repro.obs.profile` — wall-clock phase profiling for the runner's
  ``--timings`` output.

CLI surface: ``repro trace <experiment>`` records a timeline,
``repro run --metrics-out FILE`` dumps merged metrics.  Every metric and
event is documented in ``docs/METRICS.md``, generated (and drift-checked
in CI) by ``tools/gen_metrics_doc.py``.
"""

from .metrics import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    REGISTRY,
    merge_snapshots,
    write_snapshot,
)
from .profile import PhaseProfiler
from .trace import (
    EVENT_TYPES,
    TraceEvent,
    TraceEventType,
    TraceRecorder,
    event_type,
    recording,
)

__all__ = [
    "Counter",
    "EVENT_TYPES",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "PhaseProfiler",
    "REGISTRY",
    "TraceEvent",
    "TraceEventType",
    "TraceRecorder",
    "event_type",
    "merge_snapshots",
    "recording",
    "write_snapshot",
]
