"""``repro trace <experiment>`` — record a structured timeline of one run.

    python -m repro trace loss_sweep
    python -m repro trace table1 --scale small --out table1.jsonl
    python -m repro trace loss_sweep --seed 11 --quiet

Runs every work unit of the selected experiment **serially** (a timeline
interleaved across worker processes would be meaningless), with the trace
recorder and the metrics registry enabled, then writes the JSON-lines
timeline and prints the experiment's normal formatted result plus a
per-layer event summary.  Tracing is result-neutral: the printed result is
bit-identical to an untraced ``repro run`` of the same specs (asserted by
``tests/obs/test_equivalence.py``).

Each JSONL record carries the sim time ``t``, a global ``seq`` (total
order; sim time restarts at 0 for every private transport clock), the
``layer`` (sim/net/mac/core), the ``event`` name, a ``unit`` context field
naming the work unit, and the event's own fields.
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path

from . import metrics
from .trace import recording

__all__ = ["main"]


def build_parser() -> argparse.ArgumentParser:
    """The ``repro trace`` argument parser."""
    parser = argparse.ArgumentParser(
        prog="python -m repro trace",
        description=(
            "Run one experiment serially with the structured trace recorder "
            "enabled and write a sim-time-ordered JSONL timeline."
        ),
    )
    parser.add_argument(
        "experiment",
        metavar="EXPERIMENT",
        help="a registered experiment name (see `python -m repro run all`)",
    )
    parser.add_argument(
        "--scale",
        choices=["default", "small"],
        default="default",
        help="parameter scale: full paper configs or quick small configs",
    )
    parser.add_argument(
        "--seed", type=int, default=None, help="override the experiment seed"
    )
    parser.add_argument(
        "--out",
        default=None,
        metavar="PATH",
        help="trace output path (default: <experiment>-trace.jsonl)",
    )
    parser.add_argument(
        "--metrics-out",
        default=None,
        metavar="PATH",
        help="also write the run's metrics snapshot as JSON",
    )
    parser.add_argument(
        "--quiet",
        action="store_true",
        help="suppress the formatted experiment result (still prints the summary)",
    )
    return parser


def main(argv: list[str] | None = None) -> int:
    """Entry point for ``repro trace`` (returns a process exit status)."""
    from ..runner.registry import get_experiment, resolve_params

    args = build_parser().parse_args(argv)
    try:
        experiment = get_experiment(args.experiment)
    except KeyError as err:
        raise SystemExit(str(err)) from None
    overrides = {"seed": args.seed} if args.seed is not None else None
    params = resolve_params(experiment, overrides, scale=args.scale)
    specs = list(experiment.decompose(params))
    out_path = Path(args.out or f"{experiment.name}-trace.jsonl")

    was_enabled = metrics.REGISTRY.enabled
    metrics.reset()
    metrics.enable()
    try:
        with recording() as recorder:
            runs = []
            for spec in specs:
                recorder.clear_context()
                recorder.set_context(unit=spec.key())
                runs.append((spec, experiment.run_one(spec)))
            recorder.clear_context()
        snap = metrics.snapshot()
    finally:
        if not was_enabled:
            metrics.disable()

    merged = experiment.merge(params, runs)
    if not args.quiet:
        title = experiment.title or experiment.name
        print(f"\n===== {title} " + "=" * max(0, 60 - len(title)))
        print(experiment.format_result(merged))
        print()

    recorder.write_jsonl(out_path)
    per_layer = ", ".join(
        f"{layer} {count}" for layer, count in recorder.layer_counts().items()
    )
    print(
        f"trace: {len(recorder)} event(s) from {len(specs)} unit(s) "
        f"written to {out_path}"
    )
    print(f"layers: {per_layer or '(none)'}")
    if args.metrics_out:
        metrics.write_snapshot(args.metrics_out, snap)
        print(f"metrics written to {args.metrics_out}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
