"""``repro trace`` / ``repro obs`` — record and analyze trace timelines.

    python -m repro trace loss_sweep
    python -m repro trace table1 --scale small --out table1.jsonl
    python -m repro trace loss_sweep --layer net --event net.arq_round
    python -m repro obs analyze loss_sweep-trace.jsonl
    python -m repro obs check loss_sweep-trace.jsonl --spec slo.json

``trace`` runs every work unit of the selected experiment **serially** (a
timeline interleaved across worker processes would be meaningless), with
the trace recorder and the metrics registry enabled, then writes the
JSON-lines timeline and prints the experiment's normal formatted result
plus a per-layer event summary.  ``--layer``/``--event`` (repeatable)
restrict which events are *written* — recording stays complete, so the
filters cannot perturb anything.  Tracing is result-neutral: the printed
result is bit-identical to an untraced ``repro run`` of the same specs
(asserted by ``tests/obs/test_equivalence.py``).

``obs analyze`` folds a recorded timeline into per-frame spans and prints
the deadline critical-path blame table (:mod:`repro.obs.analyze`);
``obs check`` gates a timeline against a declarative SLO spec
(:mod:`repro.obs.slo`), exiting non-zero on violation.

Each JSONL record carries the sim time ``t``, a global ``seq`` (total
order; sim time restarts at 0 for every private transport clock), the
``layer`` (sim/net/mac/core), the ``event`` name, a ``unit`` context field
naming the work unit, and the event's own fields.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

from . import metrics
from .trace import recording, streaming_recording

__all__ = ["main", "obs_main"]


def build_parser() -> argparse.ArgumentParser:
    """The ``repro trace`` argument parser."""
    parser = argparse.ArgumentParser(
        prog="python -m repro trace",
        description=(
            "Run one experiment serially with the structured trace recorder "
            "enabled and write a sim-time-ordered JSONL timeline."
        ),
    )
    parser.add_argument(
        "experiment",
        metavar="EXPERIMENT",
        help="a registered experiment name (see `python -m repro run all`)",
    )
    parser.add_argument(
        "--scale",
        choices=["default", "small"],
        default="default",
        help="parameter scale: full paper configs or quick small configs",
    )
    parser.add_argument(
        "--seed", type=int, default=None, help="override the experiment seed"
    )
    parser.add_argument(
        "--out",
        default=None,
        metavar="PATH",
        help="trace output path (default: <experiment>-trace.jsonl)",
    )
    parser.add_argument(
        "--metrics-out",
        default=None,
        metavar="PATH",
        help="also write the run's metrics snapshot as JSON",
    )
    parser.add_argument(
        "--quiet",
        action="store_true",
        help="suppress the formatted experiment result (still prints the summary)",
    )
    parser.add_argument(
        "--layer",
        action="append",
        default=None,
        metavar="LAYER",
        help="only write events from this layer (repeatable; e.g. net, mac)",
    )
    parser.add_argument(
        "--event",
        action="append",
        default=None,
        metavar="NAME",
        help="only write events of this type (repeatable; "
             "e.g. net.arq_round)",
    )
    parser.add_argument(
        "--stream",
        action="store_true",
        help="flush events to the output file incrementally instead of "
             "retaining the whole timeline in memory (byte-identical "
             "output; --layer/--event apply at record time)",
    )
    return parser


def main(argv: list[str] | None = None) -> int:
    """Entry point for ``repro trace`` (returns a process exit status)."""
    from ..runner.registry import get_experiment, resolve_params

    args = build_parser().parse_args(argv)
    try:
        experiment = get_experiment(args.experiment)
    except KeyError as err:
        raise SystemExit(str(err)) from None
    overrides = {"seed": args.seed} if args.seed is not None else None
    params = resolve_params(experiment, overrides, scale=args.scale)
    specs = list(experiment.decompose(params))
    out_path = Path(args.out or f"{experiment.name}-trace.jsonl")

    recording_ctx = (
        streaming_recording(
            out_path, layers=args.layer, events=args.event
        )
        if args.stream
        else recording()
    )
    was_enabled = metrics.REGISTRY.enabled
    metrics.reset()
    metrics.enable()
    try:
        with recording_ctx as recorder:
            runs = []
            for spec in specs:
                recorder.clear_context()
                recorder.set_context(unit=spec.key())
                runs.append((spec, experiment.run_one(spec)))
            recorder.clear_context()
        snap = metrics.snapshot()
    finally:
        if not was_enabled:
            metrics.disable()

    merged = experiment.merge(params, runs)
    if not args.quiet:
        title = experiment.title or experiment.name
        print(f"\n===== {title} " + "=" * max(0, 60 - len(title)))
        print(experiment.format_result(merged))
        print()

    if args.stream:
        recorded = recorder.recorded
    else:
        recorded = len(recorder)
        if args.layer or args.event:
            layers = set(args.layer or ())
            names = set(args.event or ())
            recorder.events = [
                ev
                for ev in recorder.events
                if (not layers or ev.layer in layers)
                and (not names or ev.event in names)
            ]
        recorder.write_jsonl(out_path)
    per_layer = ", ".join(
        f"{layer} {count}" for layer, count in recorder.layer_counts().items()
    )
    filtered = (
        f" ({recorded - len(recorder)} filtered out)"
        if len(recorder) != recorded
        else ""
    )
    print(
        f"trace: {len(recorder)} event(s) from {len(specs)} unit(s) "
        f"written to {out_path}{filtered}"
    )
    print(f"layers: {per_layer or '(none)'}")
    if args.metrics_out:
        metrics.write_snapshot(args.metrics_out, snap)
        print(f"metrics written to {args.metrics_out}")
    return 0


def build_obs_parser() -> argparse.ArgumentParser:
    """The ``repro obs`` argument parser (analyze / check subcommands)."""
    parser = argparse.ArgumentParser(
        prog="python -m repro obs",
        description=(
            "Analyze recorded trace timelines: span reconstruction, "
            "deadline critical-path attribution, and SLO gating."
        ),
    )
    sub = parser.add_subparsers(dest="command", required=True)

    analyze_p = sub.add_parser(
        "analyze",
        help="per-frame latency attribution and blame table",
        description=(
            "Fold a trace into per-frame spans and attribute each frame's "
            "end-to-end latency to named layer segments."
        ),
    )
    analyze_p.add_argument(
        "trace", metavar="TRACE", help="a repro trace JSONL file"
    )
    analyze_p.add_argument(
        "--json",
        default=None,
        metavar="PATH",
        help="also write the full canonical report as JSON",
    )
    analyze_p.add_argument(
        "--top",
        type=int,
        default=5,
        help="worst frames to list (default: 5)",
    )
    analyze_p.add_argument(
        "--quiet",
        action="store_true",
        help="suppress the human-readable report (JSON output only)",
    )
    analyze_p.add_argument(
        "--stream",
        action="store_true",
        help="fold the trace in a single bounded-memory pass instead of "
             "loading it whole (bit-identical report)",
    )

    check_p = sub.add_parser(
        "check",
        help="gate a trace against a declarative SLO spec",
        description=(
            "Evaluate every SLO in the spec file against the trace; exit "
            "non-zero when any bound is violated."
        ),
    )
    check_p.add_argument(
        "trace", metavar="TRACE", help="a repro trace JSONL file"
    )
    check_p.add_argument(
        "--spec",
        required=True,
        metavar="PATH",
        help="JSON SLO spec ({'slos': [{'metric': ..., 'max'|'min': ...}]})",
    )
    check_p.add_argument(
        "--json",
        default=None,
        metavar="PATH",
        help="also write the per-SLO results as JSON",
    )

    diff_p = sub.add_parser(
        "diff",
        help="regression-diff the artifacts of two runs",
        description=(
            "Compare two runs' canonical observability artifacts (analyze "
            "reports, plus optional metrics / SLO / bench docs) and emit a "
            "canonical repro.obs.diff/1 regression report."
        ),
    )
    diff_p.add_argument(
        "run_a", metavar="ANALYZE_A", help="run A's analyze report JSON"
    )
    diff_p.add_argument(
        "run_b", metavar="ANALYZE_B", help="run B's analyze report JSON"
    )
    for side in ("a", "b"):
        diff_p.add_argument(
            f"--metrics-{side}", default=None, metavar="PATH",
            help=f"run {side.upper()}'s metrics snapshot JSON",
        )
        diff_p.add_argument(
            f"--slo-{side}", default=None, metavar="PATH",
            help=f"run {side.upper()}'s SLO results JSON (repro.obs.slo/1)",
        )
        diff_p.add_argument(
            f"--bench-{side}", default=None, metavar="PATH",
            help=f"run {side.upper()}'s BENCH_<n>.json (repro.bench/1)",
        )
    diff_p.add_argument(
        "--tolerance", type=float, default=0.0, metavar="FRACTION",
        help="relative slack for continuous regressions (wall time, "
             "airtime, RSS); counts regress on any increase (default: 0)",
    )
    diff_p.add_argument(
        "--json", default=None, metavar="PATH",
        help="also write the canonical diff document as JSON",
    )
    diff_p.add_argument(
        "--fail-on-regression", action="store_true",
        help="exit non-zero when the diff lists any regression",
    )
    diff_p.add_argument(
        "--quiet", action="store_true",
        help="suppress the human-readable diff (JSON output only)",
    )

    report_p = sub.add_parser(
        "report",
        help="render a self-contained markdown/HTML run report",
        description=(
            "Render one run's observability artifacts (analyze report, "
            "optional SLO results and BENCH_<n>.json trajectory) as a "
            "self-contained markdown or HTML document."
        ),
    )
    report_p.add_argument(
        "analyze", metavar="ANALYZE", help="the run's analyze report JSON"
    )
    report_p.add_argument(
        "--slo", default=None, metavar="PATH",
        help="the run's SLO results JSON (repro.obs.slo/1)",
    )
    report_p.add_argument(
        "--bench-dir", default=None, metavar="DIR",
        help="directory of BENCH_<n>.json trajectory points to sparkline",
    )
    report_p.add_argument(
        "--title", default="repro run report", help="document title"
    )
    report_p.add_argument(
        "--format", choices=["md", "html"], default="html",
        help="output format (default: html)",
    )
    report_p.add_argument(
        "--out", default=None, metavar="PATH",
        help="output path (default: obs_report.<format>)",
    )
    return parser


def _write_canonical(path_arg: str, doc: dict) -> Path:
    path = Path(path_arg)
    if path.parent != Path(""):
        path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(
        json.dumps(doc, sort_keys=True, separators=(",", ":")) + "\n",
        encoding="utf-8",
    )
    return path


def _diff_main(args: argparse.Namespace) -> int:
    from .diff import build_diff, format_diff, load_json_artifact

    def _load(path, expect):
        if path is None:
            return None
        try:
            return load_json_artifact(path, expect)
        except (OSError, ValueError) as exc:
            raise SystemExit(f"cannot read artifact: {exc}") from None

    report = build_diff(
        _load(args.run_a, "repro.obs.analyze"),
        _load(args.run_b, "repro.obs.analyze"),
        metrics_a=_load(args.metrics_a, None),
        metrics_b=_load(args.metrics_b, None),
        slo_a=_load(args.slo_a, "repro.obs.slo"),
        slo_b=_load(args.slo_b, "repro.obs.slo"),
        bench_a=_load(args.bench_a, "repro.bench"),
        bench_b=_load(args.bench_b, "repro.bench"),
        tolerance=args.tolerance,
        label_a=args.run_a,
        label_b=args.run_b,
    )
    if not args.quiet:
        print(format_diff(report))
    if args.json:
        print(f"diff written to {_write_canonical(args.json, report)}")
    if args.fail_on_regression and report["regressions"]:
        return 1
    return 0


def _report_main(args: argparse.Namespace) -> int:
    from .diff import load_json_artifact
    from .report import load_bench_trajectory, render_html, render_markdown

    try:
        analyze_doc = load_json_artifact(args.analyze, "repro.obs.analyze")
        slo_doc = (
            load_json_artifact(args.slo, "repro.obs.slo")
            if args.slo else None
        )
        trajectory = (
            load_bench_trajectory(args.bench_dir) if args.bench_dir else ()
        )
    except (OSError, ValueError) as exc:
        raise SystemExit(f"cannot read artifact: {exc}") from None

    render = render_html if args.format == "html" else render_markdown
    text = render(
        analyze_doc, slo=slo_doc, trajectory=trajectory, title=args.title
    )
    out = Path(args.out or f"obs_report.{args.format}")
    if out.parent != Path(""):
        out.parent.mkdir(parents=True, exist_ok=True)
    out.write_text(text, encoding="utf-8")
    print(f"report written to {out}")
    return 0


def obs_main(argv: list[str] | None = None) -> int:
    """Entry point for ``repro obs`` (returns a process exit status)."""
    from .analyze import analyze, format_report
    from .slo import evaluate_spec, format_results, load_spec, results_jsonable
    from .spans import load_events, reconstruct

    args = build_obs_parser().parse_args(argv)
    if args.command == "diff":
        return _diff_main(args)
    if args.command == "report":
        return _report_main(args)

    if args.command == "analyze":
        try:
            if args.stream:
                from .stream import stream_analyze

                report = stream_analyze(args.trace, top=args.top)
            else:
                report = analyze(load_events(args.trace), top=args.top)
        except (OSError, ValueError) as exc:
            raise SystemExit(
                f"cannot read trace {args.trace}: {exc}"
            ) from None
        if not args.quiet:
            print(format_report(report))
        if args.json:
            print(f"report written to {_write_canonical(args.json, report)}")
        return 0

    # args.command == "check"
    try:
        events = load_events(args.trace)
    except (OSError, ValueError) as exc:
        raise SystemExit(f"cannot read trace {args.trace}: {exc}") from None
    try:
        entries = load_spec(args.spec)
    except (OSError, ValueError) as exc:
        raise SystemExit(f"cannot read spec {args.spec}: {exc}") from None
    results = evaluate_spec(entries, reconstruct(events))
    print(format_results(results))
    if args.json:
        path = Path(args.json)
        if path.parent != Path(""):
            path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(
            json.dumps(results_jsonable(results), sort_keys=True, indent=1)
            + "\n",
            encoding="utf-8",
        )
        print(f"results written to {path}")
    return 0 if all(r.ok for r in results) else 1


if __name__ == "__main__":
    sys.exit(main())
