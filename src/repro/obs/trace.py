"""Structured trace events: a sim-time-ordered timeline of what happened.

Instrumented modules declare their event types **at module scope**, which
both registers them in the catalog (so ``docs/METRICS.md`` can enumerate
them) and gives the call site a near-zero disabled fast path::

    from repro.obs import trace as _t

    _EV_ROUND = _t.event_type(
        "net.arq_round", layer="net",
        help="one completed block-ACK round",
        fields=("round", "packets", "pending"),
    )
    ...
    _EV_ROUND.emit(t=env.now, round=r, packets=n, pending=left)

``emit`` checks the module-global recorder and returns immediately when no
recording is active; truly hot paths (the sim engine inner loop) guard the
call itself with :func:`active` so not even the kwargs dict is built.

Recording is explicit: install a :class:`TraceRecorder` (directly or via
the :func:`recording` context manager), run the workload, then write the
timeline with :meth:`TraceRecorder.write_jsonl`.  Events carry the sim
time they were emitted at; within one :class:`~repro.sim.Environment` run
the emission order *is* sim-time order (the engine fires events in time
order), and the monotonically increasing ``seq`` field makes the total
order explicit across equal timestamps and across successive private
clocks (e.g. one transport simulation per frame).

Nothing here reads a clock or an RNG: tracing on/off cannot change any
experiment result (asserted by ``tests/obs/test_equivalence.py``).
"""

from __future__ import annotations

import contextlib
import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Iterator, Mapping

__all__ = [
    "TraceEvent",
    "TraceEventType",
    "TraceRecorder",
    "EVENT_TYPES",
    "CORRELATION_FIELDS",
    "correlation",
    "event_type",
    "install",
    "uninstall",
    "active",
    "recording",
]

# The cross-layer join keys: every tap that knows one of these attaches it,
# so span reconstruction (repro.obs.spans) joins events structurally instead
# of guessing from emission order.  ``unit`` is ambient recorder context (the
# RunSpec key, set by the trace CLI); ``room``/``ap`` are ambient shard
# context (set per room by the scenario shard engine); the rest are
# per-event fields.
CORRELATION_FIELDS = ("unit", "room", "ap", "frame", "user", "users")


def correlation(
    frame: int | None = None,
    user: int | None = None,
    users: tuple[int, ...] | None = None,
    room: str | None = None,
    ap: str | None = None,
) -> dict[str, Any]:
    """Correlation fields for an ``emit`` call, omitting the unknown ones.

    Taps deep in the stack (ARQ rounds, FEC blocks) receive the frame index
    and receiver ids as optional pass-through arguments; this keeps the
    "include only what the caller knows" convention in one place.  Most
    taps never pass ``room``/``ap`` explicitly — the shard engine sets
    them as ambient recorder context instead.
    """
    fields: dict[str, Any] = {}
    if frame is not None:
        fields["frame"] = int(frame)
    if user is not None:
        fields["user"] = int(user)
    if users is not None:
        fields["users"] = [int(u) for u in users]
    if room is not None:
        fields["room"] = str(room)
    if ap is not None:
        fields["ap"] = str(ap)
    return fields


@dataclass(frozen=True)
class TraceEvent:
    """One recorded occurrence: where on the timeline, what, and details."""

    t: float  # sim time the event was emitted at
    seq: int  # global emission order (total tie-break)
    layer: str  # sim | net | mac | core | runner
    event: str  # registered event-type name
    fields: dict[str, Any] = field(default_factory=dict)

    def to_jsonable(self) -> dict[str, Any]:
        """Canonical JSON-line shape (stable key order)."""
        return {
            "t": self.t,
            "seq": self.seq,
            "layer": self.layer,
            "event": self.event,
            **{k: self.fields[k] for k in sorted(self.fields)},
        }


class TraceEventType:
    """A declared, documented kind of trace event plus its emit fast path."""

    __slots__ = ("name", "layer", "help", "fields")

    def __init__(
        self, name: str, layer: str, help: str, fields: tuple[str, ...]
    ) -> None:
        if not name:
            raise ValueError("trace event name must be non-empty")
        self.name = name
        self.layer = layer
        self.help = help
        self.fields = fields

    def emit(self, t: float | None = None, **fields: Any) -> None:
        """Record one occurrence; no-op when no recorder is installed.

        ``t`` defaults to the recorder's ambient sim time — the time of the
        engine event currently firing — so code without an ``env`` in reach
        (schedulers, groupers, adaptation policies) still lands at the
        right point on the timeline.
        """
        recorder = _RECORDER
        if recorder is None:
            return
        recorder.record(self, t, fields)

    def describe(self) -> dict[str, Any]:
        """Static metadata — the METRICS.md generator input."""
        return {
            "name": self.name,
            "layer": self.layer,
            "help": self.help,
            "fields": list(self.fields),
        }


EVENT_TYPES: dict[str, TraceEventType] = {}


def event_type(
    name: str, layer: str, help: str = "", fields: tuple[str, ...] = ()
) -> TraceEventType:
    """Declare (or re-fetch) an event type; idempotent under module reloads."""
    existing = EVENT_TYPES.get(name)
    if existing is not None:
        return existing
    declared = TraceEventType(name, layer, help, tuple(fields))
    EVENT_TYPES[name] = declared
    return declared


class TraceRecorder:
    """Accumulates :class:`TraceEvent` records and serializes them.

    ``now`` is the ambient sim time, maintained by the engine while firing
    events.  ``context`` fields (e.g. the :class:`~repro.runner.RunSpec`
    key the trace CLI sets per work unit) are merged into every event.
    """

    def __init__(self) -> None:
        self.events: list[TraceEvent] = []
        self.now: float = 0.0
        self.context: dict[str, Any] = {}
        self._seq = 0

    def record(
        self,
        kind: TraceEventType,
        t: float | None,
        fields: Mapping[str, Any],
    ) -> None:
        """Append one event (called through :meth:`TraceEventType.emit`)."""
        merged = {**self.context, **fields} if self.context else dict(fields)
        self.events.append(
            TraceEvent(
                t=self.now if t is None else float(t),
                seq=self._seq,
                layer=kind.layer,
                event=kind.name,
                fields=merged,
            )
        )
        self._seq += 1

    def set_context(self, **fields: Any) -> None:
        """Attach ``fields`` to every subsequently recorded event."""
        self.context.update(fields)

    def clear_context(self) -> None:
        """Drop all ambient context fields."""
        self.context.clear()

    def __len__(self) -> int:
        return len(self.events)

    def layer_counts(self) -> dict[str, int]:
        """Events per layer, keyed by sorted layer name (for summaries)."""
        counts: dict[str, int] = {}
        for ev in self.events:
            counts[ev.layer] = counts.get(ev.layer, 0) + 1
        return {layer: counts[layer] for layer in sorted(counts)}

    def jsonl_lines(self) -> Iterator[str]:
        """One canonical JSON document per event, in emission order."""
        for ev in self.events:
            yield json.dumps(ev.to_jsonable(), sort_keys=False, separators=(",", ":"))

    def write_jsonl(self, path: Path | str) -> Path:
        """Write the timeline as JSON lines; returns the path."""
        path = Path(path)
        if path.parent != Path(""):
            path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(
            "\n".join(self.jsonl_lines()) + ("\n" if self.events else ""),
            encoding="utf-8",
        )
        return path


_RECORDER: TraceRecorder | None = None


def install(recorder: TraceRecorder) -> None:
    """Make ``recorder`` the active sink for every ``emit`` in the process."""
    global _RECORDER
    if _RECORDER is not None:
        raise RuntimeError("a trace recorder is already installed")
    _RECORDER = recorder


def uninstall() -> None:
    """Deactivate tracing (idempotent)."""
    global _RECORDER
    _RECORDER = None


def active() -> TraceRecorder | None:
    """The currently installed recorder, or None — the hot-path guard."""
    return _RECORDER


@contextlib.contextmanager
def recording() -> Iterator[TraceRecorder]:
    """Context manager: install a fresh recorder, yield it, uninstall."""
    recorder = TraceRecorder()
    install(recorder)
    try:
        yield recorder
    finally:
        uninstall()
