"""Structured trace events: a sim-time-ordered timeline of what happened.

Instrumented modules declare their event types **at module scope**, which
both registers them in the catalog (so ``docs/METRICS.md`` can enumerate
them) and gives the call site a near-zero disabled fast path::

    from repro.obs import trace as _t

    _EV_ROUND = _t.event_type(
        "net.arq_round", layer="net",
        help="one completed block-ACK round",
        fields=("round", "packets", "pending"),
    )
    ...
    _EV_ROUND.emit(t=env.now, round=r, packets=n, pending=left)

``emit`` checks the module-global recorder and returns immediately when no
recording is active; truly hot paths (the sim engine inner loop) guard the
call itself with :func:`active` so not even the kwargs dict is built.

Recording is explicit: install a :class:`TraceRecorder` (directly or via
the :func:`recording` context manager), run the workload, then write the
timeline with :meth:`TraceRecorder.write_jsonl`.  Events carry the sim
time they were emitted at; within one :class:`~repro.sim.Environment` run
the emission order *is* sim-time order (the engine fires events in time
order), and the monotonically increasing ``seq`` field makes the total
order explicit across equal timestamps and across successive private
clocks (e.g. one transport simulation per frame).

Nothing here reads a clock or an RNG: tracing on/off cannot change any
experiment result (asserted by ``tests/obs/test_equivalence.py``).
"""

from __future__ import annotations

import contextlib
import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Iterable, Iterator, Mapping

__all__ = [
    "TraceEvent",
    "TraceEventType",
    "TraceRecorder",
    "StreamingTraceRecorder",
    "EVENT_TYPES",
    "CORRELATION_FIELDS",
    "correlation",
    "event_type",
    "install",
    "uninstall",
    "active",
    "recording",
    "streaming_recording",
]

# The cross-layer join keys: every tap that knows one of these attaches it,
# so span reconstruction (repro.obs.spans) joins events structurally instead
# of guessing from emission order.  ``unit`` is ambient recorder context (the
# RunSpec key, set by the trace CLI); ``room``/``ap`` are ambient shard
# context (set per room by the scenario shard engine); the rest are
# per-event fields.
CORRELATION_FIELDS = ("unit", "room", "ap", "frame", "user", "users")


def correlation(
    frame: int | None = None,
    user: int | None = None,
    users: tuple[int, ...] | None = None,
    room: str | None = None,
    ap: str | None = None,
) -> dict[str, Any]:
    """Correlation fields for an ``emit`` call, omitting the unknown ones.

    Taps deep in the stack (ARQ rounds, FEC blocks) receive the frame index
    and receiver ids as optional pass-through arguments; this keeps the
    "include only what the caller knows" convention in one place.  Most
    taps never pass ``room``/``ap`` explicitly — the shard engine sets
    them as ambient recorder context instead.
    """
    fields: dict[str, Any] = {}
    if frame is not None:
        fields["frame"] = int(frame)
    if user is not None:
        fields["user"] = int(user)
    if users is not None:
        fields["users"] = [int(u) for u in users]
    if room is not None:
        fields["room"] = str(room)
    if ap is not None:
        fields["ap"] = str(ap)
    return fields


@dataclass(frozen=True)
class TraceEvent:
    """One recorded occurrence: where on the timeline, what, and details."""

    t: float  # sim time the event was emitted at
    seq: int  # global emission order (total tie-break)
    layer: str  # sim | net | mac | core | runner
    event: str  # registered event-type name
    fields: dict[str, Any] = field(default_factory=dict)

    def to_jsonable(self) -> dict[str, Any]:
        """Canonical JSON-line shape (stable key order)."""
        return {
            "t": self.t,
            "seq": self.seq,
            "layer": self.layer,
            "event": self.event,
            **{k: self.fields[k] for k in sorted(self.fields)},
        }


class TraceEventType:
    """A declared, documented kind of trace event plus its emit fast path."""

    __slots__ = ("name", "layer", "help", "fields")

    def __init__(
        self, name: str, layer: str, help: str, fields: tuple[str, ...]
    ) -> None:
        if not name:
            raise ValueError("trace event name must be non-empty")
        self.name = name
        self.layer = layer
        self.help = help
        self.fields = fields

    def emit(self, t: float | None = None, **fields: Any) -> None:
        """Record one occurrence; no-op when no recorder is installed.

        ``t`` defaults to the recorder's ambient sim time — the time of the
        engine event currently firing — so code without an ``env`` in reach
        (schedulers, groupers, adaptation policies) still lands at the
        right point on the timeline.
        """
        recorder = _RECORDER
        if recorder is None:
            return
        recorder.record(self, t, fields)

    def describe(self) -> dict[str, Any]:
        """Static metadata — the METRICS.md generator input."""
        return {
            "name": self.name,
            "layer": self.layer,
            "help": self.help,
            "fields": list(self.fields),
        }


EVENT_TYPES: dict[str, TraceEventType] = {}


def event_type(
    name: str, layer: str, help: str = "", fields: tuple[str, ...] = ()
) -> TraceEventType:
    """Declare (or re-fetch) an event type; idempotent under module reloads."""
    existing = EVENT_TYPES.get(name)
    if existing is not None:
        return existing
    declared = TraceEventType(name, layer, help, tuple(fields))
    EVENT_TYPES[name] = declared
    return declared


class TraceRecorder:
    """Accumulates :class:`TraceEvent` records and serializes them.

    ``now`` is the ambient sim time, maintained by the engine while firing
    events.  ``context`` fields (e.g. the :class:`~repro.runner.RunSpec`
    key the trace CLI sets per work unit) are merged into every event.
    """

    def __init__(self) -> None:
        self.events: list[TraceEvent] = []
        self.now: float = 0.0
        self.context: dict[str, Any] = {}
        self._seq = 0

    def record(
        self,
        kind: TraceEventType,
        t: float | None,
        fields: Mapping[str, Any],
    ) -> None:
        """Append one event (called through :meth:`TraceEventType.emit`)."""
        merged = {**self.context, **fields} if self.context else dict(fields)
        self.events.append(
            TraceEvent(
                t=self.now if t is None else float(t),
                seq=self._seq,
                layer=kind.layer,
                event=kind.name,
                fields=merged,
            )
        )
        self._seq += 1

    def set_context(self, **fields: Any) -> None:
        """Attach ``fields`` to every subsequently recorded event."""
        self.context.update(fields)

    def clear_context(self) -> None:
        """Drop all ambient context fields."""
        self.context.clear()

    def __len__(self) -> int:
        return len(self.events)

    def layer_counts(self) -> dict[str, int]:
        """Events per layer, keyed by sorted layer name (for summaries)."""
        counts: dict[str, int] = {}
        for ev in self.events:
            counts[ev.layer] = counts.get(ev.layer, 0) + 1
        return {layer: counts[layer] for layer in sorted(counts)}

    def jsonl_lines(self) -> Iterator[str]:
        """One canonical JSON document per event, in emission order."""
        for ev in self.events:
            yield json.dumps(ev.to_jsonable(), sort_keys=False, separators=(",", ":"))

    def write_jsonl(self, path: Path | str) -> Path:
        """Write the timeline as JSON lines; returns the path."""
        path = Path(path)
        if path.parent != Path(""):
            path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(
            "\n".join(self.jsonl_lines()) + ("\n" if self.events else ""),
            encoding="utf-8",
        )
        return path


class StreamingTraceRecorder(TraceRecorder):
    """A recorder that flushes JSONL to disk instead of retaining events.

    The batch :class:`TraceRecorder` holds every event until
    :meth:`~TraceRecorder.write_jsonl`; at venue scale that buffer *is*
    the peak-RSS story.  This variant serializes each event the moment it
    is recorded, buffers only ``flush_every`` pending lines, and keeps
    per-layer counts incrementally — the file it produces is byte-
    identical to the batch recorder's for the same workload and filters
    (``tests/obs/test_trace.py`` asserts it).

    ``layers``/``events`` apply the trace CLI's write filters at record
    time (recording everything and filtering post-hoc would defeat the
    bounded memory); ``len()`` counts *written* events and ``recorded``
    counts everything emitted, mirroring the batch CLI's summary line.
    """

    def __init__(
        self,
        path: Path | str,
        layers: Iterable[str] | None = None,
        events: Iterable[str] | None = None,
        flush_every: int = 4096,
    ) -> None:
        super().__init__()
        self.path = Path(path)
        if self.path.parent != Path(""):
            self.path.parent.mkdir(parents=True, exist_ok=True)
        self._layers = frozenset(layers) if layers else None
        self._names = frozenset(events) if events else None
        self._flush_every = max(1, int(flush_every))
        self._fh = open(self.path, "w", encoding="utf-8", newline="")
        self._pending: list[str] = []
        self._written = 0
        self.recorded = 0
        self._counts: dict[str, int] = {}

    def record(
        self,
        kind: TraceEventType,
        t: float | None,
        fields: Mapping[str, Any],
    ) -> None:
        """Serialize one event straight to the flush buffer."""
        seq = self._seq
        self._seq += 1
        self.recorded += 1
        if self._layers is not None and kind.layer not in self._layers:
            return
        if self._names is not None and kind.name not in self._names:
            return
        merged = {**self.context, **fields} if self.context else dict(fields)
        ev = TraceEvent(
            t=self.now if t is None else float(t),
            seq=seq,
            layer=kind.layer,
            event=kind.name,
            fields=merged,
        )
        self._pending.append(
            json.dumps(ev.to_jsonable(), sort_keys=False, separators=(",", ":"))
        )
        self._counts[kind.layer] = self._counts.get(kind.layer, 0) + 1
        self._written += 1
        if len(self._pending) >= self._flush_every:
            self.flush()

    def flush(self) -> None:
        """Write the pending lines out (newline-terminated, batch shape)."""
        if self._pending:
            self._fh.write("\n".join(self._pending) + "\n")
            self._pending.clear()
            # Push through the interpreter's buffer so the on-disk file is
            # a valid (possibly shorter) trace at every flush boundary.
            self._fh.flush()

    def close(self) -> Path:
        """Flush the tail and close the file; returns the path."""
        self.flush()
        if not self._fh.closed:
            self._fh.close()
        return self.path

    def __len__(self) -> int:
        return self._written

    def layer_counts(self) -> dict[str, int]:
        """Written events per layer, keyed by sorted layer name."""
        return {layer: self._counts[layer] for layer in sorted(self._counts)}

    def jsonl_lines(self) -> Iterator[str]:
        raise TypeError(
            "StreamingTraceRecorder does not retain events; read them back "
            f"from {self.path}"
        )

    def write_jsonl(self, path: Path | str) -> Path:
        raise TypeError(
            "StreamingTraceRecorder already streamed its events to "
            f"{self.path}; call close() instead"
        )


_RECORDER: TraceRecorder | None = None


def install(recorder: TraceRecorder) -> None:
    """Make ``recorder`` the active sink for every ``emit`` in the process."""
    global _RECORDER
    if _RECORDER is not None:
        raise RuntimeError("a trace recorder is already installed")
    _RECORDER = recorder


def uninstall() -> None:
    """Deactivate tracing (idempotent)."""
    global _RECORDER
    _RECORDER = None


def active() -> TraceRecorder | None:
    """The currently installed recorder, or None — the hot-path guard."""
    return _RECORDER


@contextlib.contextmanager
def recording() -> Iterator[TraceRecorder]:
    """Context manager: install a fresh recorder, yield it, uninstall."""
    recorder = TraceRecorder()
    install(recorder)
    try:
        yield recorder
    finally:
        uninstall()


@contextlib.contextmanager
def streaming_recording(
    path: Path | str,
    layers: Iterable[str] | None = None,
    events: Iterable[str] | None = None,
    flush_every: int = 4096,
) -> Iterator[StreamingTraceRecorder]:
    """Context manager: stream events to ``path``, close on the way out."""
    recorder = StreamingTraceRecorder(
        path, layers=layers, events=events, flush_every=flush_every
    )
    install(recorder)
    try:
        yield recorder
    finally:
        uninstall()
        recorder.close()
