"""The metrics registry: counters, gauges, and fixed-bucket histograms.

Components create metrics **at module scope**::

    from repro.obs import metrics as _m

    _PACKETS = _m.counter(
        "net.transport.packets_sent", unit="packets", layer="net",
        help="data PDUs put on the air, including retransmissions and repair",
    )
    ...
    _PACKETS.inc(outcome.packets_sent)

Recording is **off by default** and every mutator returns immediately when
disabled (one attribute load and a branch), so instrumented hot paths cost
nothing measurable in normal runs.  Nothing here touches an RNG, the sim
clock, or the wall clock, so enabling metrics can never change experiment
results.

Snapshots are deterministic: keys are sorted, values contain no wall-clock
or host-specific data, and :func:`merge_snapshots` folds per-work-unit
snapshots together in input order (counters and histogram buckets add;
gauges keep the last written value) — which is how ``repro run
--metrics-out`` stays independent of worker count.
"""

from __future__ import annotations

import bisect
import json
from pathlib import Path
from typing import Any, Iterable, Mapping, Sequence

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "REGISTRY",
    "counter",
    "gauge",
    "histogram",
    "enable",
    "disable",
    "enabled",
    "reset",
    "snapshot",
    "describe",
    "merge_snapshots",
    "write_snapshot",
]

_KINDS = ("counter", "gauge", "histogram")


class Metric:
    """Base identity shared by every metric kind (name, unit, layer, help)."""

    kind = "metric"

    def __init__(
        self, registry: "MetricsRegistry", name: str, unit: str, layer: str, help: str
    ) -> None:
        if not name:
            raise ValueError("metric name must be non-empty")
        self._registry = registry
        self.name = name
        self.unit = unit
        self.layer = layer
        self.help = help

    def describe(self) -> dict[str, str]:
        """Static metadata (no values) — the METRICS.md generator input."""
        return {
            "name": self.name,
            "kind": self.kind,
            "unit": self.unit,
            "layer": self.layer,
            "help": self.help,
        }

    def reset(self) -> None:
        """Zero the recorded value(s)."""
        raise NotImplementedError

    def value_snapshot(self) -> dict[str, Any]:
        """The recorded value(s) in canonical JSON shape."""
        raise NotImplementedError


class Counter(Metric):
    """A monotonically increasing total (int or float increments)."""

    kind = "counter"

    def __init__(self, *args, **kwargs) -> None:
        super().__init__(*args, **kwargs)
        self._value: float = 0

    def inc(self, amount: float = 1) -> None:
        """Add ``amount`` (must be non-negative); no-op while disabled."""
        if not self._registry.enabled:
            return
        if amount < 0:
            raise ValueError(f"counter increment must be non-negative: {amount}")
        self._value += amount

    @property
    def value(self) -> float:
        return self._value

    def reset(self) -> None:
        self._value = 0

    def value_snapshot(self) -> dict[str, Any]:
        return {"value": self._value}


class Gauge(Metric):
    """A point-in-time level (last write wins)."""

    kind = "gauge"

    def __init__(self, *args, **kwargs) -> None:
        super().__init__(*args, **kwargs)
        self._value: float | None = None

    def set(self, value: float) -> None:
        """Record the current level; no-op while disabled."""
        if not self._registry.enabled:
            return
        self._value = value

    @property
    def value(self) -> float | None:
        return self._value

    def reset(self) -> None:
        self._value = None

    def value_snapshot(self) -> dict[str, Any]:
        return {"value": self._value}


class Histogram(Metric):
    """A distribution over fixed, immutable bucket edges.

    ``edges`` are the strictly increasing upper bounds of the finite
    buckets; one overflow bucket catches everything above the last edge.
    An observation lands in the first bucket whose edge is >= the value.
    """

    kind = "histogram"

    def __init__(
        self,
        registry: "MetricsRegistry",
        name: str,
        unit: str,
        layer: str,
        help: str,
        edges: Sequence[float],
    ) -> None:
        super().__init__(registry, name, unit, layer, help)
        edges = tuple(float(e) for e in edges)
        if not edges:
            raise ValueError(f"histogram {name!r} needs at least one bucket edge")
        if any(b <= a for a, b in zip(edges, edges[1:])):
            raise ValueError(f"histogram {name!r} edges must strictly increase")
        self.edges = edges
        self._counts = [0] * (len(edges) + 1)
        self._sum = 0.0
        self._count = 0

    def observe(self, value: float) -> None:
        """Record one sample; no-op while disabled."""
        if not self._registry.enabled:
            return
        self._counts[bisect.bisect_left(self.edges, value)] += 1
        self._sum += value
        self._count += 1

    @property
    def count(self) -> int:
        return self._count

    @property
    def sum(self) -> float:
        return self._sum

    @property
    def counts(self) -> tuple[int, ...]:
        """Per-bucket counts, the overflow bucket last."""
        return tuple(self._counts)

    def describe(self) -> dict[str, Any]:
        meta = super().describe()
        meta["edges"] = list(self.edges)
        return meta

    def reset(self) -> None:
        self._counts = [0] * (len(self.edges) + 1)
        self._sum = 0.0
        self._count = 0

    def value_snapshot(self) -> dict[str, Any]:
        return {
            "edges": list(self.edges),
            "counts": list(self._counts),
            "sum": self._sum,
            "count": self._count,
        }


class MetricsRegistry:
    """Holds every registered metric and the global enabled flag.

    Registration is idempotent: asking for an existing name with a matching
    kind returns the live instance (module reloads under pytest re-run
    module-scope registrations), while a kind clash is a programming error.
    """

    def __init__(self) -> None:
        self._metrics: dict[str, Metric] = {}
        self.enabled = False

    # -- registration ----------------------------------------------------

    def _register(self, cls: type, name: str, **kwargs) -> Any:
        existing = self._metrics.get(name)
        if existing is not None:
            if type(existing) is not cls:
                raise ValueError(
                    f"metric {name!r} already registered as {existing.kind}"
                )
            return existing
        metric = cls(self, name, **kwargs)
        self._metrics[name] = metric
        return metric

    def counter(
        self, name: str, unit: str = "", layer: str = "", help: str = ""
    ) -> Counter:
        """Create (or return the existing) counter ``name``."""
        return self._register(Counter, name, unit=unit, layer=layer, help=help)

    def gauge(
        self, name: str, unit: str = "", layer: str = "", help: str = ""
    ) -> Gauge:
        """Create (or return the existing) gauge ``name``."""
        return self._register(Gauge, name, unit=unit, layer=layer, help=help)

    def histogram(
        self,
        name: str,
        edges: Sequence[float],
        unit: str = "",
        layer: str = "",
        help: str = "",
    ) -> Histogram:
        """Create (or return the existing) fixed-bucket histogram ``name``."""
        return self._register(
            Histogram, name, unit=unit, layer=layer, help=help, edges=edges
        )

    # -- lifecycle -------------------------------------------------------

    def enable(self) -> None:
        """Start recording on every registered metric."""
        self.enabled = True

    def disable(self) -> None:
        """Stop recording (mutators become no-ops again)."""
        self.enabled = False

    def reset(self) -> None:
        """Zero every metric's recorded values (registrations survive)."""
        for metric in self._metrics.values():
            metric.reset()

    # -- introspection ---------------------------------------------------

    def names(self) -> list[str]:
        """Registered metric names, sorted."""
        return sorted(self._metrics)

    def get(self, name: str) -> Metric:
        """Look one metric up by name (KeyError if unknown)."""
        return self._metrics[name]

    def describe(self) -> dict[str, dict[str, Any]]:
        """Static metadata for every metric, keyed by sorted name."""
        return {name: self._metrics[name].describe() for name in self.names()}

    def snapshot(self) -> dict[str, dict[str, Any]]:
        """Deterministic value dump: sorted names, metadata + values,
        no wall-clock or host-specific content."""
        out: dict[str, dict[str, Any]] = {}
        for name in self.names():
            metric = self._metrics[name]
            entry = {"kind": metric.kind, "unit": metric.unit, "layer": metric.layer}
            entry.update(metric.value_snapshot())
            out[name] = entry
        return out


REGISTRY = MetricsRegistry()

# Module-level conveniences bound to the global registry — what the
# instrumented modules import.
counter = REGISTRY.counter
gauge = REGISTRY.gauge
histogram = REGISTRY.histogram
enable = REGISTRY.enable
disable = REGISTRY.disable
reset = REGISTRY.reset
snapshot = REGISTRY.snapshot
describe = REGISTRY.describe


def enabled() -> bool:
    """Whether the global registry is currently recording."""
    return REGISTRY.enabled


def merge_snapshots(
    snapshots: Iterable[Mapping[str, Mapping[str, Any]]],
) -> dict[str, dict[str, Any]]:
    """Fold per-unit snapshots into one, deterministically.

    Counters and histogram buckets add; gauges keep the **last** non-null
    value in input order — so merging per-\\ :class:`RunSpec` snapshots in
    spec order gives the same totals regardless of worker count or
    completion order.
    """
    merged: dict[str, dict[str, Any]] = {}
    for snap in snapshots:
        for name, entry in snap.items():
            if name not in merged:
                merged[name] = json.loads(json.dumps(entry))  # deep copy
                continue
            acc = merged[name]
            if acc["kind"] != entry["kind"]:
                raise ValueError(f"metric {name!r} changes kind across snapshots")
            if acc["kind"] == "counter":
                acc["value"] += entry["value"]
            elif acc["kind"] == "gauge":
                if entry["value"] is not None:
                    acc["value"] = entry["value"]
            else:  # histogram
                if acc["edges"] != entry["edges"]:
                    raise ValueError(f"histogram {name!r} edges differ across snapshots")
                acc["counts"] = [a + b for a, b in zip(acc["counts"], entry["counts"])]
                acc["sum"] += entry["sum"]
                acc["count"] += entry["count"]
    return {name: merged[name] for name in sorted(merged)}


def write_snapshot(path: Path | str, snap: Mapping[str, Any]) -> Path:
    """Write a snapshot as canonical, diff-friendly JSON; returns the path."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(
        json.dumps(snap, sort_keys=True, indent=1) + "\n", encoding="utf-8"
    )
    return path
