"""Self-contained run reports: markdown or single-file HTML.

``repro obs report`` turns the canonical observability artifacts of one
run — the ``repro.obs.analyze/2`` blame report, optionally an SLO verdict
document and a directory of ``BENCH_<n>.json`` trajectory points — into a
reviewer-facing document: frame outcome summary, the critical-path blame
table, worst frames, per-room admission, policy attribution, the SLO
table, and a perf-trajectory sparkline (unicode blocks in markdown, an
inline SVG in HTML).

The HTML output is deliberately dependency-free and self-contained (one
file, inline ``<style>``, no scripts, no external fetches) so it can be
attached to CI runs and opened anywhere; the markdown output pastes
cleanly into PR descriptions.  Neither embeds timestamps or host names —
reports for the same artifacts are byte-identical.
"""

from __future__ import annotations

import html
import json
import re
from pathlib import Path
from typing import Any, Mapping, Sequence

from .analyze import SEGMENTS

__all__ = [
    "load_bench_trajectory",
    "sparkline",
    "render_markdown",
    "render_html",
]

_BENCH_NAME = re.compile(r"^BENCH_(\d+)\.json$")
_SPARK_BLOCKS = "▁▂▃▄▅▆▇█"


def load_bench_trajectory(
    bench_dir: Path | str,
) -> list[tuple[int, dict[str, Any]]]:
    """All ``BENCH_<n>.json`` points in a directory, sorted by ``n``."""
    points = []
    for path in Path(bench_dir).iterdir():
        match = _BENCH_NAME.match(path.name)
        if not match:
            continue
        try:
            doc = json.loads(path.read_text(encoding="utf-8"))
        except ValueError as exc:
            raise ValueError(f"{path}: not valid JSON: {exc}") from exc
        if isinstance(doc, dict):
            points.append((int(match.group(1)), doc))
    points.sort(key=lambda pair: pair[0])
    return points


def sparkline(values: Sequence[float]) -> str:
    """A unicode block sparkline; constant series render as mid blocks."""
    vals = [float(v) for v in values]
    if not vals:
        return ""
    lo, hi = min(vals), max(vals)
    if hi == lo:
        return _SPARK_BLOCKS[3] * len(vals)
    scale = (len(_SPARK_BLOCKS) - 1) / (hi - lo)
    return "".join(
        _SPARK_BLOCKS[int(round((v - lo) * scale))] for v in vals
    )


def _svg_sparkline(
    values: Sequence[float], width: int = 240, height: int = 36
) -> str:
    """An inline-SVG sparkline (no scripts, no external references)."""
    vals = [float(v) for v in values]
    if not vals:
        return ""
    lo, hi = min(vals), max(vals)
    span = (hi - lo) or 1.0
    step = width / max(1, len(vals) - 1)
    pad = 3
    points = " ".join(
        f"{i * step:.1f},"
        f"{height - pad - (v - lo) / span * (height - 2 * pad):.1f}"
        for i, v in enumerate(vals)
    )
    return (
        f'<svg class="spark" viewBox="0 0 {width} {height}" '
        f'width="{width}" height="{height}" role="img">'
        f'<polyline fill="none" stroke="currentColor" stroke-width="1.5" '
        f'points="{points}"/></svg>'
    )


# -- section extraction (shared by both renderers) -------------------------


def _fmt(value: Any, digits: int = 6) -> str:
    if value is None:
        return "-"
    if isinstance(value, float):
        return f"{value:.{digits}g}"
    return str(value)


def _fmt_ms(seconds: Any) -> str:
    if seconds is None:
        return "-"
    return f"{float(seconds) * 1e3:.3f}"


def _blame_rows(entry: Mapping[str, Any]) -> list[tuple[str, str, str, str]]:
    rows = []
    for name, cell in entry.get("segments", {}).items():
        layer = SEGMENTS[name].layer if name in SEGMENTS else "?"
        rows.append(
            (
                name,
                layer,
                f"{cell['seconds']:.6f}",
                f"{cell['share'] * 100:5.1f}%",
            )
        )
    return rows


def _frame_summary(analyze: Mapping[str, Any]) -> list[tuple[str, str]]:
    frames = analyze.get("frames", {})
    return [
        (key, _fmt(frames.get(key)))
        for key in ("total", "closed", "incomplete", "on_time", "late", "lost")
    ]


def _bench_series(
    trajectory: Sequence[tuple[int, Mapping[str, Any]]],
) -> dict[str, list]:
    ns = [n for n, _ in trajectory]
    wall = [float(doc.get("total_wall_s", 0.0)) for _, doc in trajectory]
    rss = [
        doc.get("peak_rss_bytes") for _, doc in trajectory
    ]
    return {"n": ns, "total_wall_s": wall, "peak_rss_bytes": rss}


# -- markdown ---------------------------------------------------------------


def _md_table(headers: Sequence[str], rows: Sequence[Sequence[str]]) -> str:
    lines = [
        "| " + " | ".join(headers) + " |",
        "|" + "|".join(" --- " for _ in headers) + "|",
    ]
    for row in rows:
        lines.append("| " + " | ".join(str(c) for c in row) + " |")
    return "\n".join(lines)


def render_markdown(
    analyze: Mapping[str, Any],
    slo: Mapping[str, Any] | None = None,
    trajectory: Sequence[tuple[int, Mapping[str, Any]]] = (),
    title: str = "repro run report",
) -> str:
    """The full markdown report (GitHub-flavored tables)."""
    parts = [f"# {title}", ""]
    parts.append(
        f"{analyze.get('num_events', 0)} trace event(s) across "
        f"{len(analyze.get('units', ()))} unit(s)."
    )
    parts += ["", "## Frames", ""]
    parts.append(
        _md_table(["outcome", "count"], _frame_summary(analyze))
    )

    blame = analyze.get("blame", {})
    for scope, heading in (
        ("all", "Blame — all closed frames"),
        ("problem", "Blame — problem frames (late + lost)"),
    ):
        entry = blame.get(scope)
        if not entry or not entry.get("frames"):
            continue
        parts += ["", f"## {heading}", ""]
        parts.append(
            f"{entry['frames']} frame(s), "
            f"{entry['airtime_s']:.6f} s total airtime."
        )
        parts += ["", _md_table(
            ["segment", "layer", "seconds", "share"], _blame_rows(entry)
        )]

    worst = analyze.get("worst_frames", ())
    if worst:
        parts += ["", "## Worst frames", ""]
        rows = [
            (
                str(row.get("unit", "-")),
                str(row.get("frame", "-")),
                str(row.get("status", "-")),
                _fmt_ms(row.get("airtime_s")),
                _fmt_ms(row.get("deadline_s")),
            )
            for row in worst
        ]
        parts.append(_md_table(
            ["unit", "frame", "status", "airtime (ms)", "deadline (ms)"],
            rows,
        ))

    admission = analyze.get("admission", ())
    if admission:
        parts += ["", "## Admission by room", ""]
        rows = [
            (
                row["room"], row["ap"], str(row["arrivals"]),
                str(row["rejected"]), str(row["departures"]),
                str(row["peak_occupancy"]), _fmt(row.get("capacity")),
            )
            for row in admission
        ]
        parts.append(_md_table(
            ["room", "ap", "arrivals", "rejected", "departures",
             "peak", "capacity"],
            rows,
        ))

    policies = analyze.get("policies", {})
    if policies:
        parts += ["", "## Policy attribution", ""]
        rows = [
            (event, label, str(count))
            for event in policies
            for label, count in policies[event].items()
        ]
        parts.append(_md_table(["decision event", "policy", "count"], rows))

    if slo:
        parts += ["", "## SLOs", ""]
        rows = [
            (
                r["metric"],
                ("<=" if r["kind"] == "max" else ">=") + f" {r['bound']:g}",
                _fmt(r.get("value")),
                "ok" if r["ok"] else "**FAIL**",
            )
            for r in slo.get("results", ())
        ]
        parts.append(_md_table(["metric", "bound", "value", "verdict"], rows))
        parts.append("")
        parts.append(
            "Overall: " + ("**PASS**" if slo.get("ok") else "**FAIL**")
        )

    if trajectory:
        series = _bench_series(trajectory)
        parts += ["", "## Bench trajectory", ""]
        parts.append(
            f"wall time  `{sparkline(series['total_wall_s'])}` "
            f"(n={series['n'][0]}..{series['n'][-1]})"
        )
        rss_vals = [v for v in series["peak_rss_bytes"] if v is not None]
        if rss_vals:
            parts.append("")
            parts.append(f"peak RSS   `{sparkline(rss_vals)}`")
        parts.append("")
        rows = [
            (
                str(n),
                f"{wall:.3f}",
                _fmt(rss if rss is None else rss // (1024 * 1024)),
            )
            for n, wall, rss in zip(
                series["n"], series["total_wall_s"],
                series["peak_rss_bytes"],
            )
        ]
        parts.append(_md_table(["n", "wall (s)", "peak RSS (MiB)"], rows))

    parts.append("")
    return "\n".join(parts)


# -- html -------------------------------------------------------------------

_HTML_STYLE = """
body { font: 14px/1.5 system-ui, sans-serif; margin: 2rem auto;
       max-width: 60rem; padding: 0 1rem; color: #1a1a1a; }
h1, h2 { font-weight: 600; }
table { border-collapse: collapse; margin: 0.5rem 0 1.5rem; }
th, td { border: 1px solid #d0d0d0; padding: 0.25rem 0.6rem;
         text-align: left; font-variant-numeric: tabular-nums; }
th { background: #f2f2f2; }
td.num { text-align: right; }
.fail { color: #b30000; font-weight: 600; }
.ok { color: #006600; }
.spark { color: #3465a4; vertical-align: middle; }
"""


def _html_table(
    headers: Sequence[str],
    rows: Sequence[Sequence[str]],
    numeric_from: int = 1,
) -> str:
    head = "".join(f"<th>{html.escape(h)}</th>" for h in headers)
    body = []
    for row in rows:
        cells = []
        for i, cell in enumerate(row):
            text = html.escape(str(cell))
            if text == "FAIL":
                cells.append(f'<td class="fail">{text}</td>')
            elif i >= numeric_from:
                cells.append(f'<td class="num">{text}</td>')
            else:
                cells.append(f"<td>{text}</td>")
        body.append("<tr>" + "".join(cells) + "</tr>")
    return (
        f"<table><thead><tr>{head}</tr></thead>"
        f"<tbody>{''.join(body)}</tbody></table>"
    )


def render_html(
    analyze: Mapping[str, Any],
    slo: Mapping[str, Any] | None = None,
    trajectory: Sequence[tuple[int, Mapping[str, Any]]] = (),
    title: str = "repro run report",
) -> str:
    """One self-contained HTML document (inline style, no scripts)."""
    out = [
        "<!DOCTYPE html>",
        '<html lang="en"><head><meta charset="utf-8">',
        f"<title>{html.escape(title)}</title>",
        f"<style>{_HTML_STYLE}</style></head><body>",
        f"<h1>{html.escape(title)}</h1>",
        f"<p>{analyze.get('num_events', 0)} trace event(s) across "
        f"{len(analyze.get('units', ()))} unit(s).</p>",
        "<h2>Frames</h2>",
        _html_table(["outcome", "count"], _frame_summary(analyze)),
    ]

    blame = analyze.get("blame", {})
    for scope, heading in (
        ("all", "Blame — all closed frames"),
        ("problem", "Blame — problem frames (late + lost)"),
    ):
        entry = blame.get(scope)
        if not entry or not entry.get("frames"):
            continue
        out.append(f"<h2>{html.escape(heading)}</h2>")
        out.append(
            f"<p>{entry['frames']} frame(s), "
            f"{entry['airtime_s']:.6f} s total airtime.</p>"
        )
        out.append(_html_table(
            ["segment", "layer", "seconds", "share"],
            _blame_rows(entry),
            numeric_from=2,
        ))

    worst = analyze.get("worst_frames", ())
    if worst:
        out.append("<h2>Worst frames</h2>")
        out.append(_html_table(
            ["unit", "frame", "status", "airtime (ms)", "deadline (ms)"],
            [
                (
                    str(row.get("unit", "-")), str(row.get("frame", "-")),
                    str(row.get("status", "-")),
                    _fmt_ms(row.get("airtime_s")),
                    _fmt_ms(row.get("deadline_s")),
                )
                for row in worst
            ],
        ))

    admission = analyze.get("admission", ())
    if admission:
        out.append("<h2>Admission by room</h2>")
        out.append(_html_table(
            ["room", "ap", "arrivals", "rejected", "departures", "peak",
             "capacity"],
            [
                (
                    row["room"], row["ap"], str(row["arrivals"]),
                    str(row["rejected"]), str(row["departures"]),
                    str(row["peak_occupancy"]), _fmt(row.get("capacity")),
                )
                for row in admission
            ],
            numeric_from=2,
        ))

    policies = analyze.get("policies", {})
    if policies:
        out.append("<h2>Policy attribution</h2>")
        out.append(_html_table(
            ["decision event", "policy", "count"],
            [
                (event, label, str(count))
                for event in policies
                for label, count in policies[event].items()
            ],
            numeric_from=2,
        ))

    if slo:
        out.append("<h2>SLOs</h2>")
        out.append(_html_table(
            ["metric", "bound", "value", "verdict"],
            [
                (
                    r["metric"],
                    ("<=" if r["kind"] == "max" else ">=")
                    + f" {r['bound']:g}",
                    _fmt(r.get("value")),
                    "ok" if r["ok"] else "FAIL",
                )
                for r in slo.get("results", ())
            ],
        ))
        verdict = (
            '<span class="ok">PASS</span>'
            if slo.get("ok")
            else '<span class="fail">FAIL</span>'
        )
        out.append(f"<p>Overall: {verdict}</p>")

    if trajectory:
        series = _bench_series(trajectory)
        out.append("<h2>Bench trajectory</h2>")
        out.append(
            "<p>wall time "
            + _svg_sparkline(series["total_wall_s"])
            + f" (n={series['n'][0]}..{series['n'][-1]})</p>"
        )
        rss_vals = [v for v in series["peak_rss_bytes"] if v is not None]
        if rss_vals:
            out.append(
                "<p>peak RSS " + _svg_sparkline(rss_vals) + "</p>"
            )
        out.append(_html_table(
            ["n", "wall (s)", "peak RSS (MiB)"],
            [
                (
                    str(n), f"{wall:.3f}",
                    _fmt(rss if rss is None else rss // (1024 * 1024)),
                )
                for n, wall, rss in zip(
                    series["n"], series["total_wall_s"],
                    series["peak_rss_bytes"],
                )
            ],
        ))

    out.append("</body></html>")
    return "\n".join(out) + "\n"
