"""Run-to-run regression diffing over observability artifacts.

``repro obs diff <run_a> <run_b>`` consumes the canonical JSON artifacts
two runs left behind — the ``repro.obs.analyze/2`` blame report, and
optionally a metrics snapshot, an ``repro.obs.slo/1`` verdict document,
and a ``repro.bench/1`` trajectory point per side — and emits one
canonical ``repro.obs.diff/1`` document: per-segment and per-layer
latency-blame deltas, per-``(room, ap)`` rollup deltas, admission and
policy-attribution deltas, SLO status transitions, and bench wall-time /
peak-RSS deltas, all as ``{"a": ..., "b": ..., "delta": b - a}`` cells.

Two properties make the output CI-friendly:

* Diffing a run against itself yields ``identical: true`` and all-zero
  deltas — and because the input artifacts are themselves deterministic
  (bit-identical across worker counts and cache hits), so is the diff.
* ``regressions`` lists every delta that crossed the tolerance in the
  bad direction (more late/lost frames, more problem airtime, an SLO
  flipping pass→fail, slower or fatter bench), so
  ``--fail-on-regression`` turns the diff into a gate.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Any, Mapping

from .analyze import SEGMENT_ORDER

__all__ = [
    "DIFF_SCHEMA",
    "build_diff",
    "diff_analyze",
    "diff_metrics",
    "diff_slo",
    "diff_bench",
    "format_diff",
    "load_json_artifact",
]

DIFF_SCHEMA = "repro.obs.diff/1"

_NUM = (int, float)


def _is_num(x: Any) -> bool:
    return isinstance(x, _NUM) and not isinstance(x, bool)


class _Builder:
    """Tracks whether any compared value differed while cells are built."""

    def __init__(self) -> None:
        self.changed = 0

    def cell(self, a: Any, b: Any) -> dict[str, Any]:
        """One ``{"a", "b", "delta"}`` comparison cell.

        ``delta`` is ``b - a`` when both sides are numeric, ``0`` when the
        sides are equal (including both-missing), and ``null`` for an
        incomparable pair — which always counts as a change.
        """
        if _is_num(a) and _is_num(b):
            delta: Any = b - a
            if delta != 0:
                self.changed += 1
        elif a == b:
            delta = 0
        else:
            delta = None
            self.changed += 1
        return {"a": a, "b": b, "delta": delta}

    def mark(self, changed: bool) -> bool:
        if changed:
            self.changed += 1
        return changed


def _cell_delta(cell: Mapping[str, Any]) -> float:
    delta = cell.get("delta")
    return float(delta) if _is_num(delta) else 0.0


def _union_keys(a: Mapping[str, Any], b: Mapping[str, Any]) -> list[str]:
    return sorted(set(a) | set(b))


def _segment_keys(a: Mapping[str, Any], b: Mapping[str, Any]) -> list[str]:
    known = [s for s in SEGMENT_ORDER if s in a or s in b]
    extra = sorted((set(a) | set(b)) - set(SEGMENT_ORDER))
    return known + extra


def diff_analyze(
    a: Mapping[str, Any], b: Mapping[str, Any], out: _Builder
) -> dict[str, Any]:
    """Diff two analyze reports (``repro.obs.analyze/1`` or ``/2``)."""
    frames_a = a.get("frames", {})
    frames_b = b.get("frames", {})
    frames = {
        key: out.cell(frames_a.get(key), frames_b.get(key))
        for key in _union_keys(frames_a, frames_b)
    }

    units_a = set(a.get("units", ()))
    units_b = set(b.get("units", ()))
    units = {
        "a_only": sorted(units_a - units_b),
        "b_only": sorted(units_b - units_a),
        "common": len(units_a & units_b),
    }
    out.mark(bool(units["a_only"] or units["b_only"]))

    blame: dict[str, Any] = {}
    blame_a = a.get("blame", {})
    blame_b = b.get("blame", {})
    for scope in _union_keys(blame_a, blame_b):
        ea = blame_a.get(scope, {})
        eb = blame_b.get(scope, {})
        seg_a = ea.get("segments", {})
        seg_b = eb.get("segments", {})
        layer_a = ea.get("by_layer", {})
        layer_b = eb.get("by_layer", {})
        blame[scope] = {
            "frames": out.cell(ea.get("frames"), eb.get("frames")),
            "airtime_s": out.cell(ea.get("airtime_s"), eb.get("airtime_s")),
            "segments": {
                name: out.cell(
                    seg_a.get(name, {}).get("seconds"),
                    seg_b.get(name, {}).get("seconds"),
                )
                for name in _segment_keys(seg_a, seg_b)
            },
            "by_layer": {
                layer: out.cell(layer_a.get(layer), layer_b.get(layer))
                for layer in _union_keys(layer_a, layer_b)
            },
        }

    def _rows_by_shard(report: Mapping[str, Any], section: str) -> dict:
        return {
            (row.get("room", ""), row.get("ap", "")): row
            for row in report.get(section, ())
        }

    by_shard = []
    shards_a = _rows_by_shard(a, "by_shard")
    shards_b = _rows_by_shard(b, "by_shard")
    for room, ap in sorted(set(shards_a) | set(shards_b)):
        ra = shards_a.get((room, ap), {})
        rb = shards_b.get((room, ap), {})
        out.mark(not ra or not rb)
        by_shard.append(
            {
                "room": room,
                "ap": ap,
                "frames": out.cell(ra.get("frames"), rb.get("frames")),
                "airtime_s": out.cell(
                    ra.get("airtime_s"), rb.get("airtime_s")
                ),
                "late": out.cell(ra.get("late"), rb.get("late")),
                "lost": out.cell(ra.get("lost"), rb.get("lost")),
            }
        )

    admission = []
    adm_a = _rows_by_shard(a, "admission")
    adm_b = _rows_by_shard(b, "admission")
    for room, ap in sorted(set(adm_a) | set(adm_b)):
        ra = adm_a.get((room, ap), {})
        rb = adm_b.get((room, ap), {})
        out.mark(not ra or not rb)
        admission.append(
            {
                "room": room,
                "ap": ap,
                **{
                    key: out.cell(ra.get(key), rb.get(key))
                    for key in (
                        "arrivals", "rejected", "departures",
                        "peak_occupancy",
                    )
                },
            }
        )

    policies: dict[str, Any] = {}
    pol_a = a.get("policies", {})
    pol_b = b.get("policies", {})
    for event in _union_keys(pol_a, pol_b):
        pa = pol_a.get(event, {})
        pb = pol_b.get(event, {})
        policies[event] = {
            label: out.cell(pa.get(label, 0), pb.get(label, 0))
            for label in _union_keys(pa, pb)
        }

    hist_a = a.get("latency_hist", {})
    hist_b = b.get("latency_hist", {})
    latency = {
        "count": out.cell(hist_a.get("count"), hist_b.get("count")),
        "sum_s": out.cell(hist_a.get("sum"), hist_b.get("sum")),
    }

    return {
        "num_events": out.cell(a.get("num_events"), b.get("num_events")),
        "units": units,
        "frames": frames,
        "blame": blame,
        "by_shard": by_shard,
        "admission": admission,
        "policies": policies,
        "latency_hist": latency,
    }


def diff_metrics(
    a: Mapping[str, Any], b: Mapping[str, Any], out: _Builder
) -> dict[str, Any]:
    """Diff two metrics snapshots (``repro.obs.metrics`` registry dumps)."""
    result: dict[str, Any] = {}
    for name in _union_keys(a, b):
        ea = a.get(name, {})
        eb = b.get(name, {})
        kind = eb.get("kind") or ea.get("kind")
        out.mark(not ea or not eb)
        if kind == "histogram":
            result[name] = {
                "kind": "histogram",
                "count": out.cell(ea.get("count"), eb.get("count")),
                "sum": out.cell(ea.get("sum"), eb.get("sum")),
            }
        else:
            result[name] = {
                "kind": kind,
                "value": out.cell(ea.get("value"), eb.get("value")),
            }
    return result


def diff_slo(
    a: Mapping[str, Any], b: Mapping[str, Any], out: _Builder
) -> dict[str, Any]:
    """Diff two SLO verdict documents; surfaces pass/fail transitions."""
    rows_a = {r["metric"]: r for r in a.get("results", ())}
    rows_b = {r["metric"]: r for r in b.get("results", ())}
    rows = []
    transitions = []
    for metric in _union_keys(rows_a, rows_b):
        ra = rows_a.get(metric, {})
        rb = rows_b.get(metric, {})
        ok_a = ra.get("ok")
        ok_b = rb.get("ok")
        out.mark(ok_a != ok_b)
        row = {
            "metric": metric,
            "kind": rb.get("kind") or ra.get("kind"),
            "bound": out.cell(ra.get("bound"), rb.get("bound")),
            "value": out.cell(ra.get("value"), rb.get("value")),
            "ok_a": ok_a,
            "ok_b": ok_b,
        }
        rows.append(row)
        if ok_a != ok_b:
            transitions.append(
                {
                    "metric": metric,
                    "from": "pass" if ok_a else "fail",
                    "to": "pass" if ok_b else "fail",
                }
            )
    return {
        "ok": out.cell(a.get("ok"), b.get("ok")),
        "results": rows,
        "transitions": transitions,
    }


def diff_bench(
    a: Mapping[str, Any], b: Mapping[str, Any], out: _Builder
) -> dict[str, Any]:
    """Diff two ``repro.bench/1`` trajectory points."""
    exp_a = {e["name"]: e for e in a.get("experiments", ())}
    exp_b = {e["name"]: e for e in b.get("experiments", ())}
    experiments = []
    for name in _union_keys(exp_a, exp_b):
        ea = exp_a.get(name, {})
        eb = exp_b.get(name, {})
        out.mark(not ea or not eb)
        experiments.append(
            {
                "name": name,
                "wall_s": out.cell(ea.get("wall_s"), eb.get("wall_s")),
                "units_per_s": out.cell(
                    ea.get("units_per_s"), eb.get("units_per_s")
                ),
                "cache_hit_rate": out.cell(
                    ea.get("cache_hit_rate"), eb.get("cache_hit_rate")
                ),
            }
        )
    return {
        "total_wall_s": out.cell(
            a.get("total_wall_s"), b.get("total_wall_s")
        ),
        "peak_rss_bytes": out.cell(
            a.get("peak_rss_bytes"), b.get("peak_rss_bytes")
        ),
        "experiments": experiments,
    }


def _collect_regressions(
    report: dict[str, Any], tolerance: float
) -> list[dict[str, Any]]:
    """Every delta that crossed ``tolerance`` in the bad direction.

    Counts (late/lost frames, SLO flips) regress on *any* increase;
    continuous quantities (airtime, wall time, RSS) get the relative
    tolerance: ``b > a * (1 + tolerance)``.
    """
    regressions: list[dict[str, Any]] = []

    def _count(what: str, cell: Mapping[str, Any]) -> None:
        if _cell_delta(cell) > 0:
            regressions.append(
                {"what": what, "a": cell["a"], "b": cell["b"],
                 "delta": cell["delta"]}
            )

    def _continuous(what: str, cell: Mapping[str, Any]) -> None:
        a, b = cell.get("a"), cell.get("b")
        if not (_is_num(a) and _is_num(b)):
            return
        if b > a * (1.0 + tolerance) and b - a > 0:
            regressions.append(
                {"what": what, "a": a, "b": b, "delta": cell["delta"]}
            )

    analyze = report.get("analyze")
    if analyze:
        _count("frames.late", analyze["frames"].get("late", {}))
        _count("frames.lost", analyze["frames"].get("lost", {}))
        problem = analyze["blame"].get("problem")
        if problem:
            _continuous("blame.problem.airtime_s", problem["airtime_s"])
        for row in analyze["by_shard"]:
            shard = f"{row['room']}/{row['ap']}"
            _count(f"shard[{shard}].late", row["late"])
            _count(f"shard[{shard}].lost", row["lost"])

    slo = report.get("slo")
    if slo:
        for tr in slo["transitions"]:
            if tr["to"] == "fail":
                regressions.append(
                    {"what": f"slo[{tr['metric']}]", "a": tr["from"],
                     "b": tr["to"], "delta": None}
                )

    bench = report.get("bench")
    if bench:
        _continuous("bench.total_wall_s", bench["total_wall_s"])
        _continuous("bench.peak_rss_bytes", bench["peak_rss_bytes"])
        for row in bench["experiments"]:
            _continuous(f"bench[{row['name']}].wall_s", row["wall_s"])

    return regressions


def build_diff(
    analyze_a: Mapping[str, Any],
    analyze_b: Mapping[str, Any],
    *,
    metrics_a: Mapping[str, Any] | None = None,
    metrics_b: Mapping[str, Any] | None = None,
    slo_a: Mapping[str, Any] | None = None,
    slo_b: Mapping[str, Any] | None = None,
    bench_a: Mapping[str, Any] | None = None,
    bench_b: Mapping[str, Any] | None = None,
    tolerance: float = 0.0,
    label_a: str = "a",
    label_b: str = "b",
) -> dict[str, Any]:
    """The full ``repro.obs.diff/1`` document for two runs.

    The analyze reports are required; metrics / SLO / bench docs are
    diffed only when *both* sides are supplied (a one-sided artifact is
    recorded as ``unpaired`` rather than silently dropped).
    """
    out = _Builder()
    report: dict[str, Any] = {
        "schema": DIFF_SCHEMA,
        "a": {"label": str(label_a)},
        "b": {"label": str(label_b)},
        "tolerance": float(tolerance),
        "analyze": diff_analyze(analyze_a, analyze_b, out),
    }
    unpaired = []
    for key, doc_a, doc_b, fn in (
        ("metrics", metrics_a, metrics_b, diff_metrics),
        ("slo", slo_a, slo_b, diff_slo),
        ("bench", bench_a, bench_b, diff_bench),
    ):
        if doc_a is not None and doc_b is not None:
            report[key] = fn(doc_a, doc_b, out)
        elif doc_a is not None or doc_b is not None:
            unpaired.append(key)
    if unpaired:
        report["unpaired"] = unpaired
    report["regressions"] = _collect_regressions(report, tolerance)
    report["identical"] = out.changed == 0 and not unpaired
    return report


def load_json_artifact(
    path: Path | str, expect_schema: str | None = None
) -> dict[str, Any]:
    """Read one canonical-JSON artifact, validating its schema prefix.

    ``expect_schema`` matches the schema family (the part before the
    ``/version``), so a ``repro.obs.analyze/2`` report satisfies
    ``repro.obs.analyze``.
    """
    try:
        doc = json.loads(Path(path).read_text(encoding="utf-8"))
    except ValueError as exc:
        raise ValueError(f"{path}: not valid JSON: {exc}") from exc
    if not isinstance(doc, dict):
        raise ValueError(f"{path}: expected a JSON object")
    if expect_schema is not None:
        schema = str(doc.get("schema", ""))
        if schema.split("/")[0] != expect_schema:
            raise ValueError(
                f"{path}: schema {schema or '(missing)'!r} is not "
                f"{expect_schema!r}"
            )
    return doc


def _fmt(value: Any) -> str:
    if value is None:
        return "-"
    if isinstance(value, float):
        return f"{value:.6g}"
    return str(value)


def _fmt_delta(cell: Mapping[str, Any]) -> str:
    delta = cell.get("delta")
    if delta is None:
        return "?"
    if delta == 0:
        return "0"
    sign = "+" if delta > 0 else ""
    if isinstance(delta, float):
        return f"{sign}{delta:.6g}"
    return f"{sign}{delta}"


def format_diff(report: Mapping[str, Any]) -> str:
    """Human-readable rendering of a diff document."""
    lines = []
    la = report["a"]["label"]
    lb = report["b"]["label"]
    lines.append(f"diff: {la} -> {lb}")
    if report["identical"]:
        lines.append("runs are IDENTICAL (all deltas zero)")

    analyze = report.get("analyze", {})
    frames = analyze.get("frames", {})
    if frames:
        lines.append("frames:")
        for key in ("total", "closed", "on_time", "late", "lost"):
            cell = frames.get(key)
            if cell is None:
                continue
            lines.append(
                f"  {key:<8} {_fmt(cell['a']):>10} -> {_fmt(cell['b']):>10}"
                f"  ({_fmt_delta(cell)})"
            )
    problem = analyze.get("blame", {}).get("problem")
    if problem:
        lines.append("problem blame (late + lost):")
        lines.append(
            f"  airtime_s {_fmt(problem['airtime_s']['a']):>10} -> "
            f"{_fmt(problem['airtime_s']['b']):>10}"
            f"  ({_fmt_delta(problem['airtime_s'])})"
        )
        for name, cell in problem["segments"].items():
            if _cell_delta(cell) == 0 and cell["delta"] == 0:
                continue
            lines.append(
                f"    {name:<16} {_fmt(cell['a']):>10} -> "
                f"{_fmt(cell['b']):>10}  ({_fmt_delta(cell)})"
            )

    slo = report.get("slo")
    if slo and slo["transitions"]:
        lines.append("slo transitions:")
        for tr in slo["transitions"]:
            lines.append(f"  {tr['metric']}: {tr['from']} -> {tr['to']}")

    bench = report.get("bench")
    if bench:
        lines.append("bench:")
        for key in ("total_wall_s", "peak_rss_bytes"):
            cell = bench[key]
            lines.append(
                f"  {key:<16} {_fmt(cell['a']):>12} -> "
                f"{_fmt(cell['b']):>12}  ({_fmt_delta(cell)})"
            )

    regressions = report.get("regressions", ())
    if regressions:
        lines.append(f"REGRESSIONS ({len(regressions)}):")
        for reg in regressions:
            lines.append(
                f"  {reg['what']}: {_fmt(reg['a'])} -> {_fmt(reg['b'])}"
            )
    else:
        lines.append("no regressions detected")
    return "\n".join(lines)
