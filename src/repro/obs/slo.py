"""Declarative SLOs over reconstructed traces, for CI gating.

A spec file declares bounds on a small registered catalog of service-level
metrics, all computed from a ``repro trace`` timeline via span
reconstruction (:mod:`repro.obs.spans`) — no simulator re-run needed::

    {
      "slos": [
        {"metric": "frame_loss_rate", "max": 0.25},
        {"metric": "p95_frame_latency_s", "max": 0.05},
        {"metric": "min_user_delivered_fps", "min": 5.0}
      ]
    }

``repro obs check <trace.jsonl> --spec <spec.json>`` evaluates every
entry and exits non-zero when any bound is violated (or a required metric
is unavailable in the trace), printing a per-SLO report — the same shape
CI archives as JSON.

Like metrics and trace events, SLO metrics live in a module-scope catalog
(:data:`SLO_METRICS`) so ``docs/METRICS.md`` can enumerate them and spec
files can be validated against known names.  Every metric is a pure,
deterministic function of the reconstruction.
"""

from __future__ import annotations

import json
import math
from dataclasses import dataclass
from pathlib import Path
from typing import Any, Callable, Mapping

from .spans import Reconstruction

__all__ = [
    "SloMetric",
    "SLO_METRICS",
    "SloEntry",
    "SloResult",
    "load_spec",
    "evaluate_spec",
    "format_results",
    "results_jsonable",
]


@dataclass(frozen=True)
class SloMetric:
    """One registered service-level metric computed from a trace."""

    name: str
    unit: str
    help: str
    compute: Callable[[Reconstruction], float | None]

    def describe(self) -> dict[str, Any]:
        """Static metadata — the METRICS.md generator input."""
        return {"name": self.name, "unit": self.unit, "help": self.help}


SLO_METRICS: dict[str, SloMetric] = {}


def _metric(
    name: str, unit: str, help: str
) -> Callable[[Callable[[Reconstruction], float | None]], SloMetric]:
    def register(fn: Callable[[Reconstruction], float | None]) -> SloMetric:
        declared = SloMetric(name=name, unit=unit, help=help, compute=fn)
        SLO_METRICS[name] = declared
        return declared

    return register


@_metric(
    "frame_loss_rate", "fraction",
    "closed frame delivery attempts with at least one user's frame lost, "
    "over all closed attempts",
)
def _frame_loss_rate(recon: Reconstruction) -> float | None:
    closed = recon.closed_frames()
    if not closed:
        return None
    lost = sum(1 for fs in closed if fs.status == "lost")
    return lost / len(closed)


@_metric(
    "stall_rate", "stalls/frame",
    "closed loop only: playback stall onsets per played frame, from "
    "core.playback_state and core.frame_played events",
)
def _stall_rate(recon: Reconstruction) -> float | None:
    stalls = sum(
        1
        for ev in recon.unframed
        if ev.get("event") == "core.playback_state"
        and ev.get("state") == "stalled"
    )
    played = sum(
        1
        for fs in recon.frames
        for ev in fs.events
        if ev.get("event") == "core.frame_played"
    )
    if played == 0:
        return None
    return stalls / played


@_metric(
    "p95_frame_latency_s", "s",
    "95th percentile (nearest-rank) of end-to-end frame delivery latency "
    "over closed attempts",
)
def _p95_frame_latency_s(recon: Reconstruction) -> float | None:
    latencies = sorted(fs.airtime_s for fs in recon.closed_frames())
    if not latencies:
        return None
    rank = max(1, math.ceil(0.95 * len(latencies)))
    return latencies[rank - 1]


@_metric(
    "min_user_delivered_fps", "fps",
    "per-user delivered-frame-rate floor: for each (unit, user), frames "
    "delivered divided by the unit's total delivery airtime; the minimum "
    "over all users",
)
def _min_user_delivered_fps(recon: Reconstruction) -> float | None:
    airtime_by_unit: dict[str | None, float] = {}
    delivered: dict[tuple[str | None, int], int] = {}
    seen_users: set[tuple[str | None, int]] = set()
    for fs in recon.closed_frames():
        airtime_by_unit[fs.unit] = (
            airtime_by_unit.get(fs.unit, 0.0) + fs.airtime_s
        )
        for u in fs.delivered_users:
            key = (fs.unit, u)
            seen_users.add(key)
            delivered[key] = delivered.get(key, 0) + 1
        for u in fs.lost_users:
            seen_users.add((fs.unit, u))
    if not seen_users:
        return None
    floor: float | None = None
    for key in sorted(seen_users, key=lambda k: (k[0] or "", k[1])):
        unit_airtime = airtime_by_unit.get(key[0], 0.0)
        count = delivered.get(key, 0)
        if unit_airtime <= 0:
            fps = 0.0 if count == 0 else float("inf")
        else:
            fps = count / unit_airtime
        floor = fps if floor is None else min(floor, fps)
    return floor


@dataclass(frozen=True)
class SloEntry:
    """One declared bound: ``metric <= max`` or ``metric >= min``."""

    metric: str
    bound: float
    kind: str  # "max" | "min"

    def __post_init__(self) -> None:
        if self.metric not in SLO_METRICS:
            known = ", ".join(sorted(SLO_METRICS))
            raise ValueError(
                f"unknown SLO metric {self.metric!r} (known: {known})"
            )
        if self.kind not in ("max", "min"):
            raise ValueError(f"SLO kind must be 'max' or 'min', got {self.kind!r}")
        if not math.isfinite(self.bound):
            raise ValueError("SLO bound must be finite")


@dataclass(frozen=True)
class SloResult:
    """The verdict for one spec entry against one trace."""

    entry: SloEntry
    value: float | None
    ok: bool

    def to_jsonable(self) -> dict[str, Any]:
        """Canonical JSON shape for CI artifacts."""
        return {
            "metric": self.entry.metric,
            "kind": self.entry.kind,
            "bound": self.entry.bound,
            "value": self.value,
            "ok": self.ok,
        }


def load_spec(path: Path | str) -> list[SloEntry]:
    """Parse and validate an SLO spec file into entries."""
    try:
        doc = json.loads(Path(path).read_text(encoding="utf-8"))
    except ValueError as exc:
        raise ValueError(f"{path}: not valid JSON: {exc}") from exc
    if not isinstance(doc, dict) or not isinstance(doc.get("slos"), list):
        raise ValueError(f"{path}: expected an object with an 'slos' list")
    entries: list[SloEntry] = []
    for i, raw in enumerate(doc["slos"]):
        if not isinstance(raw, dict) or "metric" not in raw:
            raise ValueError(f"{path}: slos[{i}] needs a 'metric' key")
        has_max = "max" in raw
        has_min = "min" in raw
        if has_max == has_min:
            raise ValueError(
                f"{path}: slos[{i}] needs exactly one of 'max' or 'min'"
            )
        kind = "max" if has_max else "min"
        entries.append(
            SloEntry(
                metric=str(raw["metric"]),
                bound=float(raw[kind]),
                kind=kind,
            )
        )
    if not entries:
        raise ValueError(f"{path}: spec declares no SLOs")
    return entries


def evaluate_spec(
    entries: list[SloEntry], recon: Reconstruction
) -> list[SloResult]:
    """Evaluate every entry; a metric the trace cannot supply fails it."""
    results: list[SloResult] = []
    for entry in entries:
        value = SLO_METRICS[entry.metric].compute(recon)
        if value is None:
            ok = False
        elif entry.kind == "max":
            ok = value <= entry.bound
        else:
            ok = value >= entry.bound
        results.append(SloResult(entry=entry, value=value, ok=ok))
    return results


def format_results(results: list[SloResult]) -> str:
    """Per-SLO verdict lines plus a PASS/FAIL summary."""
    lines = []
    for r in results:
        op = "<=" if r.entry.kind == "max" else ">="
        shown = "unavailable" if r.value is None else f"{r.value:.6g}"
        verdict = "ok  " if r.ok else "FAIL"
        lines.append(
            f"[{verdict}] {r.entry.metric} = {shown} "
            f"(required {op} {r.entry.bound:.6g})"
        )
    violations = sum(1 for r in results if not r.ok)
    lines.append(
        f"SLO check: {'PASS' if violations == 0 else 'FAIL'} "
        f"({len(results) - violations}/{len(results)} satisfied)"
    )
    return "\n".join(lines)


def results_jsonable(results: list[SloResult]) -> dict[str, Any]:
    """Canonical JSON document for an SLO evaluation (CI artifact shape)."""
    return {
        "schema": "repro.obs.slo/1",
        "ok": all(r.ok for r in results),
        "results": [r.to_jsonable() for r in results],
    }
