"""Repo-wide experiment defaults.

``DEFAULT_SEED`` is the single source of truth for the seed every
experiment, benchmark, and runner work-unit defaults to.  It lives in its
own module so `repro.experiments.common`, `repro.runner`, and
`benchmarks/conftest.py` all import the same constant instead of each
declaring their own (which is how seeds silently drift apart).
"""

from __future__ import annotations

__all__ = ["DEFAULT_SEED"]

DEFAULT_SEED = 7
