"""The ``repro ablation`` CLI verb.

    python -m repro ablation                             # full session study
    python -m repro ablation --components grouping,fec --parallel 2
    python -m repro ablation --pairwise --output report.json
    python -m repro ablation --scenario venue --scale small
    python -m repro ablation --list

Generates the baseline + leave-one-out (+ ``--pairwise``) run matrix for
the selected scenario, executes it through the cached parallel runner,
prints the ranked importance table, and (with ``--output``) writes the
canonical-JSON report — byte-identical across ``--parallel`` settings
and across cache hits and misses.
"""

from __future__ import annotations

import argparse
import sys

from ..runner.cache import ResultCache
from ..runner.progress import ProgressPrinter
from .components import COMPONENTS, get_component
from .engine import AblationStudy, format_report, write_report
from .legacy import LEGACY_ABLATIONS
from .scenarios import SCENARIOS, get_scenario, scenario_names

__all__ = ["main"]


def _parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro ablation",
        description=(
            "Declarative component-ablation study: baseline + leave-one-out "
            "run matrix, cached parallel execution, ranked importance report."
        ),
    )
    parser.add_argument(
        "--scenario",
        choices=list(scenario_names()),
        default="session",
        help="where to ablate: the closed-loop session or the small venue",
    )
    parser.add_argument(
        "--components",
        default="all",
        metavar="NAMES",
        help="comma-separated component names, or 'all' (default)",
    )
    parser.add_argument(
        "--pairwise",
        action="store_true",
        help="also run every component pair and report interaction terms",
    )
    parser.add_argument(
        "--scale",
        choices=["default", "small"],
        default="default",
        help="workload scale: full ablation configs or quick small configs",
    )
    parser.add_argument(
        "--seed", type=int, default=None, help="override the study seed"
    )
    parser.add_argument(
        "--parallel",
        type=int,
        default=1,
        metavar="N",
        help="worker processes (default 1 = serial; output is identical)",
    )
    parser.add_argument(
        "--output",
        default=None,
        metavar="PATH",
        help="write the canonical-JSON importance report here",
    )
    parser.add_argument(
        "--no-cache",
        action="store_true",
        help="compute everything fresh and persist nothing",
    )
    parser.add_argument(
        "--clear-cache",
        action="store_true",
        help="drop all cached results before running",
    )
    parser.add_argument(
        "--cache-dir",
        default=None,
        metavar="PATH",
        help="result cache directory (default .repro-cache or $REPRO_CACHE_DIR)",
    )
    parser.add_argument(
        "--quiet", action="store_true", help="suppress per-unit progress lines"
    )
    parser.add_argument(
        "--list",
        action="store_true",
        help="list components, scenarios, and registered legacy ablations",
    )
    return parser


def _parse_components(raw: str) -> str | tuple[str, ...]:
    if raw.strip() == "all":
        return "all"
    names = tuple(name.strip() for name in raw.split(",") if name.strip())
    if not names:
        raise SystemExit("--components must name at least one component")
    return names


def _print_listing() -> None:
    print("components:")
    for name in sorted(COMPONENTS):
        comp = get_component(name)
        scenarios = ", ".join(
            s for s in sorted(SCENARIOS) if name in SCENARIOS[s].component_names()
        )
        print(f"  {name:12s} [{scenarios}] {comp.title}")
    print("scenarios:")
    for name in sorted(SCENARIOS):
        scen = get_scenario(name)
        print(
            f"  {name:12s} experiment={scen.experiment} "
            f"components={','.join(scen.component_names())}"
        )
    print("legacy ablations (served by the cached runner):")
    for name in sorted(LEGACY_ABLATIONS):
        entry = LEGACY_ABLATIONS[name]
        print(
            f"  {name:12s} experiment={entry.experiment} "
            f"components={','.join(entry.components)}"
        )


def main(argv: list[str]) -> int:
    """Entry point for ``repro ablation`` (returns an exit status)."""
    args = _parser().parse_args(argv)
    if args.list:
        _print_listing()
        return 0

    study = AblationStudy()
    try:
        config = study.configure(
            scenario=args.scenario,
            components=_parse_components(args.components),
            pairwise=args.pairwise,
            scale=args.scale,
            seed=args.seed,
        )
    except (KeyError, ValueError) as exc:
        raise SystemExit(str(exc)) from exc

    cache = None if args.no_cache else ResultCache(root=args.cache_dir)
    if args.clear_cache and cache is not None:
        cache.clear()

    runs = study.generate_runs(config)
    if not args.quiet:
        units = sum(len(run.specs) for run in runs)
        print(
            f"ablation matrix: {len(runs)} variants "
            f"({units} work units) in scenario {config.scenario!r}"
        )
    result = study.execute(
        config,
        runs,
        workers=args.parallel,
        cache=cache,
        progress=ProgressPrinter(quiet=args.quiet),
    )
    report = study.build_report(result)

    print(format_report(report))
    if not args.quiet:
        print(
            f"{result.cached_units}/{result.total_units} work units "
            "served from cache"
        )
    if args.output:
        write_report(report, args.output)
        print(f"report written to {args.output}")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
