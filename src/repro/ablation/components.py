"""Component registry for the ablation engine.

A :class:`Component` is one piece of the cross-layer design the paper
argues for — viewport prediction, multicast grouping, custom beams,
blockage mitigation, FEC, rate adaptation.  Components are declared once
here with stable names; *how* a component is switched off in a concrete
scenario (the baseline and ablated parameter values) lives in
:mod:`repro.ablation.scenarios`, so one component can be ablated in both
the session and the venue scenario without re-declaring it.
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = [
    "Component",
    "COMPONENTS",
    "component",
    "component_names",
    "get_component",
]


@dataclass(frozen=True)
class Component:
    """One named cross-layer component that can be switched off.

    ``name`` is the stable identifier used in CLI ``--components`` lists,
    run labels, and report keys; ``title`` is the human heading; and
    ``description`` says what the system loses when the component is
    ablated.
    """

    name: str
    title: str
    description: str


COMPONENTS: dict[str, Component] = {}
"""Global component registry, keyed by :attr:`Component.name`."""


def component(name: str, title: str, description: str) -> Component:
    """Declare (or return the existing) component ``name``.

    Re-declaring an existing name with identical fields is a no-op so
    modules can be re-imported safely; conflicting re-declarations raise.
    """
    comp = Component(name=name, title=title, description=description)
    existing = COMPONENTS.get(name)
    if existing is not None:
        if existing != comp:
            raise ValueError(f"component {name!r} already registered with different fields")
        return existing
    COMPONENTS[name] = comp
    return comp


def component_names() -> tuple[str, ...]:
    """All registered component names in sorted order."""
    return tuple(sorted(COMPONENTS))


def get_component(name: str) -> Component:
    """Look up a component by name, with a helpful error."""
    try:
        return COMPONENTS[name]
    except KeyError:
        known = ", ".join(component_names())
        raise KeyError(f"unknown component {name!r}; known components: {known}") from None


component(
    "prediction",
    "Viewport prediction",
    "Linear-regression viewport prediction; ablated to last-value "
    "(frozen-viewport) prediction.",
)
component(
    "grouping",
    "Multicast grouping",
    "Viewport-similarity multicast grouping; ablated to per-user unicast "
    "(no groups).",
)
component(
    "custom_beams",
    "Custom multicast beams",
    "Custom wide beams serving a multicast group in one transmission; "
    "ablated to the group-minimum-MCS penalty of stock single-user beams.",
)
component(
    "blockage",
    "Blockage mitigation",
    "Proactive blockage forecasting and recovery (reflector fallback); "
    "ablated to reactive-only recovery with no forecaster.",
)
component(
    "fec",
    "Multicast FEC",
    "Rateless FEC repair on the multicast downlink; ablated to "
    "ARQ-only retransmission.",
)
component(
    "adaptation",
    "Cross-layer rate adaptation",
    "Cross-layer quality adaptation driven by MAC feedback; ablated to a "
    "fixed highest-quality ladder position.",
)
component(
    "utility_adaptation",
    "Utility-optimal rate allocation",
    "Rate-utility quality optimization (distance/visibility-weighted "
    "log-rate utility under the MAC budget); ablated to the greedy "
    "budget-fill cross-layer heuristic.",
)
component(
    "qoe_grouping",
    "QoE-aware multicast grouping",
    "Multicast merges scored by predicted QoE delta; ablated to the raw "
    "airtime-greedy similarity grouper.",
)
