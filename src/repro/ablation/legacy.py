"""Registry serving the six experiment-layer ``run_*_ablation`` entry points.

Each hand-rolled ablation (DESIGN.md Abl-A..E plus multi-AP) registers
itself here **once** — its runner-experiment name and the engine
components it evidences — and is then *served by the engine*: every call
goes through :func:`run_registered`, which is the cached-runner path
(:func:`repro.runner.executor.run_experiment` with a spec-keyed
:class:`~repro.runner.cache.ResultCache`), so repeated ablation runs hit
the on-disk cache like every other experiment instead of recomputing.

This is the compatibility layer; new ablation work should use
:class:`repro.ablation.engine.AblationStudy` directly.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Mapping

from ..runner.cache import ResultCache
from ..runner.executor import run_experiment
from .components import get_component

__all__ = [
    "LegacyAblation",
    "LEGACY_ABLATIONS",
    "register_legacy",
    "legacy_names",
    "get_legacy",
    "run_registered",
]


@dataclass(frozen=True)
class LegacyAblation:
    """One hand-rolled ablation study, described declaratively.

    ``experiment`` names the registered runner experiment that computes
    it; ``components`` names the engine components whose value the study
    evidences (validated against the component registry).
    """

    name: str
    experiment: str
    components: tuple[str, ...]
    description: str


LEGACY_ABLATIONS: dict[str, LegacyAblation] = {}
"""Registered legacy ablations, keyed by short name."""


def register_legacy(
    name: str,
    experiment: str,
    components: tuple[str, ...],
    description: str,
) -> LegacyAblation:
    """Register (idempotently) one legacy ablation study.

    Component names are validated against the global component registry
    at registration time, so a typo fails on import, not mid-run.
    """
    for component in components:
        get_component(component)
    entry = LegacyAblation(
        name=name,
        experiment=experiment,
        components=tuple(components),
        description=description,
    )
    existing = LEGACY_ABLATIONS.get(name)
    if existing is not None:
        if existing != entry:
            raise ValueError(
                f"legacy ablation {name!r} already registered differently"
            )
        return existing
    LEGACY_ABLATIONS[name] = entry
    return entry


def legacy_names() -> tuple[str, ...]:
    """All registered legacy-ablation names, sorted."""
    return tuple(sorted(LEGACY_ABLATIONS))


def get_legacy(name: str) -> LegacyAblation:
    """Look a legacy ablation up by name, with a helpful error."""
    try:
        return LEGACY_ABLATIONS[name]
    except KeyError:
        known = ", ".join(legacy_names())
        raise KeyError(f"unknown legacy ablation {name!r}; registered: {known}") from None


def run_registered(
    name: str,
    overrides: Mapping[str, Any] | None = None,
    *,
    scale: str = "default",
    workers: int = 1,
    cache: ResultCache | None | bool = True,
) -> dict[str, Any]:
    """Run a registered legacy ablation through the cached runner.

    ``cache=True`` (the default) uses the standard on-disk
    :class:`ResultCache`; pass ``False``/``None`` to force recomputation
    or an explicit cache instance to control its location.
    """
    entry = get_legacy(name)
    if cache is True:
        resolved_cache: ResultCache | None = ResultCache()
    elif cache is False:
        resolved_cache = None
    else:
        resolved_cache = cache
    return run_experiment(
        entry.experiment,
        overrides,
        scale=scale,
        workers=workers,
        cache=resolved_cache,
    )


register_legacy(
    "prediction",
    experiment="ablation_prediction",
    components=("prediction",),
    description="Abl-A: viewport-prediction accuracy per predictor family.",
)
register_legacy(
    "blockage",
    experiment="ablation_blockage",
    components=("blockage",),
    description="Abl-B: proactive blockage mitigation vs. reactive re-search.",
)
register_legacy(
    "grouping",
    experiment="ablation_grouping",
    components=("grouping", "custom_beams"),
    description="Abl-C: multicast grouping policies over the beam-level channel.",
)
register_legacy(
    "adaptation",
    experiment="ablation_adaptation",
    components=("adaptation", "fec"),
    description="Abl-D: rate-adaptation policies under a constrained link.",
)
register_legacy(
    "cellsize",
    experiment="ablation_cellsize",
    components=("grouping",),
    description="Abl-E: cell-size sweep — similarity and per-user traffic.",
)
register_legacy(
    "multiap",
    experiment="ablation_multiap",
    components=("custom_beams", "blockage"),
    description="Multi-AP coordination vs. single AP across user counts.",
)
