"""The ablation engine: configure → generate_runs → compute_importance.

:class:`AblationStudy` is stateless; every step is an explicit value:

* :meth:`AblationStudy.configure` validates components against a
  scenario and freezes an :class:`AblationConfig`;
* :meth:`AblationStudy.generate_runs` expands the config into the run
  matrix — baseline, leave-one-out per component, optional pairwise —
  where each :class:`AblationRun` carries its fully-resolved experiment
  parameters and the :class:`~repro.runner.spec.RunSpec` work units the
  experiment decomposes into;
* :meth:`AblationStudy.execute` routes every spec through
  :func:`repro.runner.executor.run_specs` (spec-keyed disk cache,
  serial or multiprocessing, spec-ordered results) and folds each
  variant back through the experiment's ``merge`` and the scenario's
  metric extraction;
* :meth:`AblationStudy.compute_importance` turns per-variant metrics
  into polarity-aware degradation deltas, normalized importance scores,
  and a deterministic ranking;
* :meth:`AblationStudy.build_report` assembles the canonical report
  dict, serialized byte-identically by :func:`write_report` (same
  discipline as ``repro obs analyze``).

Degradation sign convention: ablating a useful component should hurt,
so ``degradation = baseline - ablated`` for higher-is-better metrics and
``ablated - baseline`` for lower-is-better ones — positive degradation
always means "removing this component made things worse".
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from typing import Any, Callable, Iterable, Mapping, Sequence

from ..runner.cache import ResultCache
from ..runner.executor import RunReport, run_specs
from ..runner.registry import Experiment, get_experiment, resolve_params
from ..runner.spec import RunSpec, canonical_json
from .components import get_component
from .scenarios import Scenario, get_scenario

__all__ = [
    "AblationConfig",
    "AblationRun",
    "AblationResult",
    "ComponentImportance",
    "AblationStudy",
    "format_report",
    "write_report",
]

REPORT_SCHEMA = "repro.ablation/v1"
"""Schema tag stamped into every report."""

# Degradations below this magnitude are treated as exactly zero, so
# importance scores never divide by float dust.
_TOL = 1e-9


@dataclass(frozen=True)
class AblationConfig:
    """A frozen, validated study configuration."""

    scenario: str
    components: tuple[str, ...]
    pairwise: bool
    scale: str
    seed: int | None
    overrides: tuple[tuple[str, Any], ...]

    def __post_init__(self) -> None:
        scen = get_scenario(self.scenario)  # raises on unknown scenario
        if self.scale not in ("default", "small"):
            raise ValueError(f"unknown scale {self.scale!r} (use 'default' or 'small')")
        if not self.components:
            raise ValueError("no components selected")
        if self.components != tuple(sorted(set(self.components))):
            raise ValueError("components must be sorted and unique")
        for name in self.components:
            get_component(name)
            scen.toggle_for(name)
        if self.pairwise and len(self.components) < 2:
            raise ValueError("pairwise ablation needs at least two components")

    def scenario_spec(self) -> Scenario:
        """The :class:`Scenario` this config runs in."""
        return get_scenario(self.scenario)


@dataclass(frozen=True)
class AblationRun:
    """One variant of the matrix: its label, toggles, params, and specs."""

    label: str
    ablated: tuple[str, ...]
    params: Mapping[str, Any]
    specs: tuple[RunSpec, ...]


@dataclass(frozen=True)
class AblationResult:
    """Executed matrix: per-variant merged results and extracted metrics."""

    config: AblationConfig
    runs: tuple[AblationRun, ...]
    merged: Mapping[str, Mapping[str, Any]]
    metrics: Mapping[str, Mapping[str, float]]
    cached_units: int
    total_units: int


@dataclass(frozen=True)
class ComponentImportance:
    """Per-component importance: raw deltas, degradations, score.

    ``deltas`` are signed ``ablated - baseline`` per metric;
    ``degradation`` flips the sign by metric polarity so positive always
    means worse; ``normalized`` divides by the largest absolute
    degradation of that metric across the matrix; ``score`` is the mean
    normalized degradation over the scenario's scored metrics.
    """

    component: str
    deltas: Mapping[str, float]
    degradation: Mapping[str, float]
    normalized: Mapping[str, float]
    score: float

    def to_dict(self) -> dict[str, Any]:
        """JSON-ready dict form."""
        return {
            "component": self.component,
            "deltas": dict(self.deltas),
            "degradation": dict(self.degradation),
            "normalized": dict(self.normalized),
            "score": self.score,
        }


def variant_label(ablated: Sequence[str]) -> str:
    """Deterministic label for a variant: ``baseline`` or ``no-a+no-b``."""
    if not ablated:
        return "baseline"
    return "+".join(f"no-{name}" for name in sorted(ablated))


class AblationStudy:
    """Stateless driver for declarative component-ablation studies."""

    def configure(
        self,
        scenario: str = "session",
        components: Iterable[str] | str | None = None,
        *,
        pairwise: bool = False,
        scale: str = "default",
        seed: int | None = None,
        overrides: Mapping[str, Any] | None = None,
    ) -> AblationConfig:
        """Validate and freeze a study configuration.

        ``components`` may be ``None`` or ``"all"`` (every component the
        scenario can ablate), or an iterable of component names.  Every
        name must exist both in the global component registry and in the
        scenario's toggle table.  Selection order never matters: the
        config stores components sorted.
        """
        scen = get_scenario(scenario)
        if components is None or components == "all":
            selected = scen.component_names()
        else:
            if isinstance(components, str):
                components = [components]
            selected = tuple(sorted(set(components)))
        # AblationConfig.__post_init__ does the full validation.
        return AblationConfig(
            scenario=scen.name,
            components=selected,
            pairwise=bool(pairwise),
            scale=scale,
            seed=seed,
            overrides=tuple(sorted((overrides or {}).items())),
        )

    def variant_params(
        self, config: AblationConfig, ablated: Sequence[str]
    ) -> dict[str, Any]:
        """Fully-resolved experiment parameters for one variant.

        Layering, later wins: experiment scale defaults → scenario
        workload overrides → every toggle's baseline values → user
        overrides → seed → the ablated values of ``ablated``.
        """
        scen = config.scenario_spec()
        experiment = get_experiment(scen.experiment)
        merged: dict[str, Any] = {}
        merged.update(scen.scale_overrides(config.scale))
        merged.update(scen.baseline_overrides())
        merged.update(dict(config.overrides))
        if config.seed is not None:
            merged["seed"] = config.seed
        for name in sorted(ablated):
            merged.update(scen.toggle_for(name).ablated_params())
        return resolve_params(experiment, merged, scale=config.scale)

    def generate_runs(self, config: AblationConfig) -> list[AblationRun]:
        """The run matrix: baseline, leave-one-out, optional pairwise.

        Matrix order is deterministic — baseline first, then components
        in sorted order, then sorted component pairs — regardless of the
        order components were selected in.
        """
        scen = config.scenario_spec()
        experiment = get_experiment(scen.experiment)
        variants: list[tuple[str, ...]] = [()]
        variants.extend((name,) for name in config.components)
        if config.pairwise:
            variants.extend(itertools.combinations(config.components, 2))
        runs = []
        for ablated in variants:
            params = self.variant_params(config, ablated)
            runs.append(
                AblationRun(
                    label=variant_label(ablated),
                    ablated=tuple(sorted(ablated)),
                    params=params,
                    specs=tuple(experiment.decompose(params)),
                )
            )
        return runs

    def execute(
        self,
        config: AblationConfig,
        runs: Sequence[AblationRun] | None = None,
        *,
        workers: int = 1,
        cache: ResultCache | None = None,
        progress: Callable[[RunReport, int, int], None] | None = None,
    ) -> AblationResult:
        """Run the matrix through the cached runner and extract metrics.

        All variants' specs run as one flat batch (deduped, spec-ordered
        results), then each variant is folded back through the
        experiment's ``merge`` and the scenario's ``extract``.
        """
        scen = config.scenario_spec()
        experiment: Experiment = get_experiment(scen.experiment)
        run_list = list(runs) if runs is not None else self.generate_runs(config)
        flat: list[RunSpec] = [spec for run in run_list for spec in run.specs]
        reports = run_specs(flat, workers=workers, cache=cache, progress=progress)
        merged: dict[str, dict[str, Any]] = {}
        metrics: dict[str, dict[str, float]] = {}
        offset = 0
        for run in run_list:
            chunk = reports[offset : offset + len(run.specs)]
            offset += len(run.specs)
            variant_merged = experiment.merge(
                run.params, [(r.spec, r.result) for r in chunk]
            )
            merged[run.label] = variant_merged
            metrics[run.label] = scen.extract(variant_merged)
        return AblationResult(
            config=config,
            runs=tuple(run_list),
            merged=merged,
            metrics=metrics,
            cached_units=sum(1 for r in reports if r.cached),
            total_units=len(reports),
        )

    def _degradations(
        self, result: AblationResult, label: str
    ) -> tuple[dict[str, float], dict[str, float]]:
        """Signed deltas and polarity-corrected degradations for a variant."""
        scen = result.config.scenario_spec()
        baseline = result.metrics["baseline"]
        variant = result.metrics[label]
        deltas: dict[str, float] = {}
        degradation: dict[str, float] = {}
        for metric in scen.metrics:
            delta = float(variant[metric.name]) - float(baseline[metric.name])
            deltas[metric.name] = delta
            degradation[metric.name] = -delta if metric.higher_is_better else delta
        return deltas, degradation

    def _metric_scales(self, result: AblationResult) -> dict[str, float]:
        """Per-metric normalization denominators.

        The largest absolute single-component degradation of each metric;
        pairwise variants deliberately do not widen the scale, so
        interaction scores stay comparable to component scores.
        """
        scen = result.config.scenario_spec()
        scales = {m.name: 0.0 for m in scen.metrics}
        for name in result.config.components:
            _, degradation = self._degradations(result, variant_label((name,)))
            for metric_name in sorted(degradation):
                scales[metric_name] = max(
                    scales[metric_name], abs(degradation[metric_name])
                )
        return scales

    def compute_importance(
        self, result: AblationResult
    ) -> dict[str, ComponentImportance]:
        """Per-component importance, keyed by component name.

        Each metric's degradation is normalized by the matrix-wide
        largest absolute degradation of that metric (zero when every
        variant left the metric untouched); the component score is the
        mean normalized degradation across the scenario's scored metrics.
        """
        scen = result.config.scenario_spec()
        scales = self._metric_scales(result)
        importance: dict[str, ComponentImportance] = {}
        for name in result.config.components:
            deltas, degradation = self._degradations(result, variant_label((name,)))
            normalized = {}
            for metric in scen.metrics:
                scale = scales[metric.name]
                value = degradation[metric.name]
                normalized[metric.name] = (
                    0.0 if scale <= _TOL else value / scale
                )
            score = sum(normalized[m.name] for m in scen.metrics) / len(scen.metrics)
            importance[name] = ComponentImportance(
                component=name,
                deltas=deltas,
                degradation=degradation,
                normalized=normalized,
                score=score,
            )
        return importance

    def rank_components(self, result: AblationResult) -> list[tuple[str, float]]:
        """Components ranked most-important first (score desc, name asc)."""
        importance = self.compute_importance(result)
        return sorted(
            ((name, imp.score) for name, imp in sorted(importance.items())),
            key=lambda pair: (-pair[1], pair[0]),
        )

    def compute_interactions(
        self, result: AblationResult
    ) -> dict[str, dict[str, Any]]:
        """Pairwise interaction terms, keyed by pair label.

        For a pair ``(a, b)``: ``interaction = degradation(a, b) -
        degradation(a) - degradation(b)`` per metric — positive means the
        components are complementary (losing both hurts more than the sum
        of losing each), negative means redundant.  Empty unless the
        config is pairwise.
        """
        if not result.config.pairwise:
            return {}
        scen = result.config.scenario_spec()
        scales = self._metric_scales(result)
        single = {
            name: self._degradations(result, variant_label((name,)))[1]
            for name in result.config.components
        }
        interactions: dict[str, dict[str, Any]] = {}
        for a, b in itertools.combinations(result.config.components, 2):
            label = variant_label((a, b))
            deltas, pair_degradation = self._degradations(result, label)
            interaction = {
                m.name: pair_degradation[m.name] - single[a][m.name] - single[b][m.name]
                for m in scen.metrics
            }
            normalized = {
                m.name: (
                    0.0
                    if scales[m.name] <= _TOL
                    else interaction[m.name] / scales[m.name]
                )
                for m in scen.metrics
            }
            score = sum(normalized[m.name] for m in scen.metrics) / len(scen.metrics)
            interactions[label] = {
                "components": [a, b],
                "deltas": deltas,
                "degradation": pair_degradation,
                "interaction": interaction,
                "normalized": normalized,
                "score": score,
            }
        return interactions

    def build_report(self, result: AblationResult) -> dict[str, Any]:
        """The canonical report dict for an executed study.

        Contains only deterministic fields (no timings, no cache-hit
        counts), so serial/parallel runs and cache hits/misses produce
        byte-identical serializations.
        """
        scen = result.config.scenario_spec()
        importance = self.compute_importance(result)
        ranking = self.rank_components(result)
        report: dict[str, Any] = {
            "schema": REPORT_SCHEMA,
            "scenario": scen.name,
            "experiment": scen.experiment,
            "scale": result.config.scale,
            "pairwise": result.config.pairwise,
            "components": list(result.config.components),
            "component_titles": {
                name: get_component(name).title for name in result.config.components
            },
            "metrics": [
                {
                    "name": m.name,
                    "higher_is_better": m.higher_is_better,
                    "description": m.description,
                }
                for m in scen.metrics
            ],
            "params": {
                key: value
                for key, value in sorted(result.runs[0].params.items())
            },
            "baseline": dict(result.metrics["baseline"]),
            "runs": [
                {
                    "label": run.label,
                    "ablated": list(run.ablated),
                    "units": len(run.specs),
                    "metrics": dict(result.metrics[run.label]),
                }
                for run in result.runs
            ],
            "importance": {
                name: imp.to_dict() for name, imp in sorted(importance.items())
            },
            "ranking": [
                {"rank": rank, "component": name, "score": score}
                for rank, (name, score) in enumerate(ranking, start=1)
            ],
        }
        if result.config.pairwise:
            report["interactions"] = self.compute_interactions(result)
        return report


def format_report(report: Mapping[str, Any]) -> str:
    """Human-readable ranking table for a report dict."""
    from ..experiments.common import format_table

    metric_names = [m["name"] for m in report["metrics"]]
    rows = []
    for entry in report["ranking"]:
        name = entry["component"]
        imp = report["importance"][name]
        rows.append(
            [entry["rank"], name, f"{entry['score']:+.3f}"]
            + [f"{imp['deltas'][m]:+.3g}" for m in metric_names]
        )
    table = format_table(
        ["rank", "component", "score"] + [f"Δ{m}" for m in metric_names], rows
    )
    baseline = ", ".join(
        f"{name}={report['baseline'][name]:.3g}" for name in metric_names
    )
    lines = [
        f"ablation scenario {report['scenario']!r} "
        f"({report['experiment']}, scale={report['scale']}): "
        f"{len(report['runs'])} variants",
        f"baseline: {baseline}",
        table,
    ]
    interactions = report.get("interactions") or {}
    for label in sorted(interactions):
        entry = interactions[label]
        lines.append(f"interaction {label}: score {entry['score']:+.3f}")
    return "\n".join(lines)


def write_report(report: Mapping[str, Any], path) -> None:
    """Serialize a report as canonical JSON (sorted keys, tight separators).

    The same byte-identity discipline as ``repro obs analyze --json``:
    two equal reports always produce identical files.
    """
    with open(path, "w", encoding="utf-8") as fh:
        fh.write(canonical_json(dict(report)))
        fh.write("\n")
