"""Declarative component-ablation engine with importance scoring.

The paper's §4 argument is a set of on/off component comparisons: how much
does each cross-layer piece (viewport prediction, multicast grouping,
custom beams, blockage mitigation, FEC, rate adaptation) buy?  This
package makes that a first-class, bit-reproducible computation instead of
six hand-rolled benchmark scripts:

* :mod:`~repro.ablation.components` — the system's components declared
  once, each a named toggle with baseline and ablated configuration
  values;
* :mod:`~repro.ablation.scenarios` — where a toggle lands: the full
  closed-loop streaming session (default) or the sharded small venue;
* :mod:`~repro.ablation.engine` — :class:`AblationStudy`
  (``configure`` → ``generate_runs`` → ``compute_importance``): emits the
  baseline + leave-one-out (+ optional pairwise) run matrix as
  :class:`~repro.runner.spec.RunSpec` work units for the cached parallel
  runner, then folds the per-run metrics into per-component deltas,
  normalized importance scores, and a deterministic ranking report;
* :mod:`~repro.ablation.legacy` — the registry the six experiment-layer
  ``run_*_ablation`` entry points register with, so they are served by
  the same cached runner path;
* :mod:`~repro.ablation.cli` — the ``repro ablation`` verb.

The whole matrix is ordinary runner work: results are cached on disk by
spec, executed serial or parallel with spec-ordered merging, and the
report is canonical JSON — the same byte-identity discipline as
``repro obs analyze``.
"""

from .components import (
    COMPONENTS,
    Component,
    component,
    component_names,
    get_component,
)
from .engine import (
    AblationConfig,
    AblationResult,
    AblationRun,
    AblationStudy,
    ComponentImportance,
    format_report,
    write_report,
)
from .legacy import (
    LegacyAblation,
    legacy_names,
    register_legacy,
    run_registered,
)
from .scenarios import SCENARIOS, MetricSpec, Scenario, Toggle, get_scenario

__all__ = [
    "COMPONENTS",
    "Component",
    "component",
    "component_names",
    "get_component",
    "AblationConfig",
    "AblationResult",
    "AblationRun",
    "AblationStudy",
    "ComponentImportance",
    "format_report",
    "write_report",
    "LegacyAblation",
    "legacy_names",
    "register_legacy",
    "run_registered",
    "SCENARIOS",
    "MetricSpec",
    "Scenario",
    "Toggle",
    "get_scenario",
]
