"""Ablation scenarios: where a component toggle lands, and what it moves.

A :class:`Scenario` binds the abstract components of
:mod:`repro.ablation.components` to one registered runner experiment:

* ``session`` — the default: one closed-loop multi-user streaming session
  (the ``ablation_session`` experiment) under lossy, capacity-constrained
  conditions, where every cross-layer component has a measurable effect;
* ``venue`` — the sharded small-venue population simulation
  (``venue_scale`` via :mod:`repro.scenario`), where the MAC-facing
  components (grouping, custom beams) are ablated at venue scale.

Each scenario declares, per component, a :class:`Toggle` — the baseline
and ablated parameter values — plus the metric catalog
(:class:`MetricSpec`, with explicit better-direction polarity) and an
extraction function mapping the experiment's merged result to a flat
``{metric: value}`` dict.  The engine never special-cases a scenario:
generate the matrix, run the specs, extract, score.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable

__all__ = [
    "MetricSpec",
    "Toggle",
    "Scenario",
    "SCENARIOS",
    "get_scenario",
    "scenario_names",
]


@dataclass(frozen=True)
class MetricSpec:
    """One scored metric: its name, polarity, and meaning.

    ``higher_is_better`` fixes the sign convention for degradation:
    ablating a useful component should *degrade* the metric, whichever
    direction "worse" is.
    """

    name: str
    higher_is_better: bool
    description: str


@dataclass(frozen=True)
class Toggle:
    """Baseline and ablated parameter values for one component.

    Values are stored as sorted ``(key, value)`` pair tuples so toggles
    are hashable and their iteration order is deterministic.
    """

    component: str
    baseline: tuple[tuple[str, object], ...]
    ablated: tuple[tuple[str, object], ...]

    def baseline_params(self) -> dict:
        """The parameter overrides that switch this component on."""
        return dict(self.baseline)

    def ablated_params(self) -> dict:
        """The parameter overrides that switch this component off."""
        return dict(self.ablated)


def toggle(component: str, baseline: dict, ablated: dict) -> Toggle:
    """Build a :class:`Toggle` from plain override dicts."""
    return Toggle(
        component=component,
        baseline=tuple(sorted(baseline.items())),
        ablated=tuple(sorted(ablated.items())),
    )


@dataclass(frozen=True)
class Scenario:
    """One concrete place to ablate components.

    ``experiment`` names a registered runner experiment; the engine uses
    its ``decompose``/``merge`` hooks so a scenario variant can be one
    run (session) or a sharded fan-out (venue) without the engine caring.
    ``overrides`` / ``small_overrides`` are applied on top of the
    experiment's default/small parameters to shape the ablation workload.
    ``metrics`` lists the scored metrics; ``extract`` maps the merged
    experiment result to a flat metric dict (which may contain extra,
    unscored metrics — they are carried in the report verbatim).
    """

    name: str
    experiment: str
    description: str
    toggles: tuple[Toggle, ...]
    metrics: tuple[MetricSpec, ...]
    extract: Callable[[dict], dict]
    overrides: tuple[tuple[str, object], ...] = ()
    small_overrides: tuple[tuple[str, object], ...] = field(default=())

    def component_names(self) -> tuple[str, ...]:
        """Names of the components this scenario can ablate, sorted."""
        return tuple(sorted(t.component for t in self.toggles))

    def toggle_for(self, component: str) -> Toggle:
        """The toggle for ``component``, with a helpful error."""
        for t in self.toggles:
            if t.component == component:
                return t
        known = ", ".join(self.component_names())
        raise KeyError(
            f"scenario {self.name!r} has no toggle for component "
            f"{component!r}; available: {known}"
        )

    def metric_for(self, name: str) -> MetricSpec:
        """The scored metric spec named ``name``."""
        for m in self.metrics:
            if m.name == name:
                return m
        known = ", ".join(m.name for m in self.metrics)
        raise KeyError(
            f"scenario {self.name!r} scores no metric {name!r}; "
            f"available: {known}"
        )

    def baseline_overrides(self) -> dict:
        """Every toggle's baseline values, merged (sorted component order)."""
        merged: dict = {}
        for t in sorted(self.toggles, key=lambda t: t.component):
            merged.update(t.baseline_params())
        return merged

    def scale_overrides(self, scale: str) -> dict:
        """Scenario-level parameter overrides for ``scale``."""
        merged = dict(self.overrides)
        if scale == "small":
            merged.update(dict(self.small_overrides))
        return merged


def _extract_session(merged: dict) -> dict:
    """Session scenario: the merged result already is the metric dict."""
    keys = (
        "qoe_score",
        "mean_fps",
        "mean_bitrate_mbps",
        "stall_time_s",
        "late_fraction",
        "quality_switches",
    )
    return {k: float(merged[k]) for k in keys}


def _extract_venue(merged: dict) -> dict:
    """Venue scenario: venue-level delivery metrics plus total airtime."""
    venue = merged["venue"]
    mean_fps = venue["mean_fps"]
    worst = venue["worst_tick_fps"]
    total_airtime_s = sum(room["total_airtime_s"] for room in merged["rooms"])
    return {
        "mean_fps": 0.0 if mean_fps is None else float(mean_fps),
        "worst_tick_fps": 0.0 if worst is None else float(worst),
        "total_airtime_s": float(total_airtime_s),
        "sessions": float(venue["sessions"]),
        "rejected": float(venue["rejected"]),
    }


SESSION = Scenario(
    name="session",
    experiment="ablation_session",
    description=(
        "One closed-loop multi-user streaming session under lossy, "
        "capacity-constrained conditions; every cross-layer component "
        "is toggleable."
    ),
    toggles=(
        toggle(
            "prediction",
            baseline={"predictor": "linear-regression"},
            ablated={"predictor": "last-value"},
        ),
        toggle(
            "grouping",
            baseline={"grouping": "greedy"},
            ablated={"grouping": "none"},
        ),
        toggle(
            "custom_beams",
            baseline={"custom_beams": True},
            ablated={"custom_beams": False},
        ),
        toggle(
            "blockage",
            baseline={"blockage_mitigation": True},
            ablated={"blockage_mitigation": False},
        ),
        toggle(
            "fec",
            baseline={"transport_mode": "hybrid"},
            ablated={"transport_mode": "arq"},
        ),
        toggle(
            "adaptation",
            baseline={"adaptation": "cross-layer"},
            ablated={"adaptation": "fixed-high"},
        ),
    ),
    metrics=(
        MetricSpec(
            "qoe_score",
            higher_is_better=True,
            description="Mean per-user QoE (bitrate minus stall and switch penalties).",
        ),
        MetricSpec(
            "mean_fps",
            higher_is_better=True,
            description="Mean delivered frame rate across users.",
        ),
        MetricSpec(
            "stall_time_s",
            higher_is_better=False,
            description="Total stall time summed over users.",
        ),
        MetricSpec(
            "late_fraction",
            higher_is_better=False,
            description="Fraction of played frames that missed their deadline.",
        ),
    ),
    extract=_extract_session,
)

VENUE = Scenario(
    name="venue",
    experiment="venue_scale",
    description=(
        "Sharded small-venue population simulation (repro.scenario): "
        "MAC-facing components ablated across rooms of churning users."
    ),
    toggles=(
        toggle(
            "grouping",
            baseline={"grouping": "greedy"},
            ablated={"grouping": "none"},
        ),
        toggle(
            "custom_beams",
            baseline={"multicast_rate_fraction": 0.8},
            ablated={"multicast_rate_fraction": 0.55},
        ),
    ),
    metrics=(
        MetricSpec(
            "mean_fps",
            higher_is_better=True,
            description="Venue-wide mean delivered frame rate.",
        ),
        MetricSpec(
            "worst_tick_fps",
            higher_is_better=True,
            description="Delivered frame rate of the worst venue tick.",
        ),
        MetricSpec(
            "total_airtime_s",
            higher_is_better=False,
            description="Total AP airtime summed over rooms.",
        ),
    ),
    extract=_extract_venue,
    overrides=(
        ("num_rooms", 2),
        ("capacity", 60),
        ("initial_users", 40),
        ("arrival_rate_hz", 2.0),
        ("flash_crowd_size", 20),
        ("flash_crowd_at_s", 2.5),
        ("duration_s", 6.0),
        ("num_shards", 2),
    ),
    small_overrides=(
        ("capacity", 40),
        ("initial_users", 24),
        ("duration_s", 4.0),
    ),
)

POLICY = Scenario(
    name="policy",
    experiment="ablation_session",
    description=(
        "The same closed-loop session, ablating the optimizing policies "
        "back to their heuristic counterparts: utility-optimal adaptation "
        "back to greedy cross-layer fill, QoE-aware grouping back to "
        "airtime-greedy similarity merges.  Kept separate from the "
        "'session' scenario so its baselines (which run the optimizing "
        "policies) do not perturb the historical importance rankings."
    ),
    toggles=(
        toggle(
            "utility_adaptation",
            baseline={"adaptation": "utility-optimal"},
            ablated={"adaptation": "cross-layer"},
        ),
        toggle(
            "qoe_grouping",
            baseline={"grouping": "qoe"},
            ablated={"grouping": "greedy"},
        ),
    ),
    metrics=(
        MetricSpec(
            "qoe_score",
            higher_is_better=True,
            description="Mean per-user QoE (bitrate minus stall and switch penalties).",
        ),
        MetricSpec(
            "mean_fps",
            higher_is_better=True,
            description="Mean delivered frame rate across users.",
        ),
        MetricSpec(
            "stall_time_s",
            higher_is_better=False,
            description="Total stall time summed over users.",
        ),
        MetricSpec(
            "late_fraction",
            higher_is_better=False,
            description="Fraction of played frames that missed their deadline.",
        ),
    ),
    extract=_extract_session,
)

SCENARIOS: dict[str, Scenario] = {s.name: s for s in (SESSION, VENUE, POLICY)}
"""All scenarios, keyed by name."""


def scenario_names() -> tuple[str, ...]:
    """All scenario names in sorted order."""
    return tuple(sorted(SCENARIOS))


def get_scenario(name: str) -> Scenario:
    """Look up a scenario by name, with a helpful error."""
    try:
        return SCENARIOS[name]
    except KeyError:
        known = ", ".join(scenario_names())
        raise KeyError(f"unknown scenario {name!r}; known scenarios: {known}") from None
