"""Fig. 2a: viewport similarity (IoU) over time for two user pairs.

The paper plots the per-frame IoU (50 cm cells) of two illustrative pairs:
one pair that watches "exactly the same content most of the time" and one
whose similarity "is low initially [but] increases to 1 towards the end".
The runner selects both regimes from the synthetic study by search — the
most-similar pair and the most strongly converging pair — rather than
hard-coding user ids.
"""

from __future__ import annotations

from dataclasses import dataclass
from itertools import combinations

import numpy as np

from ..core import compute_visibility_maps, iou_series
from ..pointcloud import VisibilityConfig
from .common import DEFAULT_SEED, default_study, default_video, grid_for

__all__ = ["Fig2aResult", "run_fig2a"]


@dataclass(frozen=True)
class Fig2aResult:
    """Two IoU time series (index = frame) plus who the pairs are."""

    stable_pair: tuple[int, int]
    stable_iou: np.ndarray
    converging_pair: tuple[int, int]
    converging_iou: np.ndarray

    @property
    def stable_mean(self) -> float:
        return float(np.mean(self.stable_iou))

    @property
    def converging_gain(self) -> float:
        """Late-window mean minus early-window mean of the converging pair."""
        n = len(self.converging_iou)
        k = max(1, n // 5)
        return float(
            np.mean(self.converging_iou[-k:]) - np.mean(self.converging_iou[:k])
        )


def run_fig2a(
    num_users: int = 16,
    num_frames: int = 300,
    cell_size: float = 0.5,
    seed: int = DEFAULT_SEED,
) -> Fig2aResult:
    """Select and return the two representative pair series."""
    # Fig. 2a runs 300 frames = 10 s at 30 Hz.
    duration = num_frames / 30.0
    study = default_study(num_users=num_users, duration_s=duration, seed=seed)
    video = default_video("high")
    grid = grid_for(video, cell_size)
    maps = compute_visibility_maps(
        study, video, grid, config=VisibilityConfig(), num_frames=num_frames
    )

    user_ids = list(maps.user_ids)
    best_stable: tuple[float, tuple[int, int]] | None = None
    best_converging: tuple[float, tuple[int, int]] | None = None
    series_cache: dict[tuple[int, int], np.ndarray] = {}
    for a, b in combinations(user_ids, 2):
        series = iou_series(maps, [a, b])
        series_cache[(a, b)] = series
        mean = float(np.mean(series))
        n = len(series)
        k = max(1, n // 5)
        gain = float(np.mean(series[-k:]) - np.mean(series[:k]))
        late = float(np.mean(series[-k:]))
        if best_stable is None or mean > best_stable[0]:
            best_stable = (mean, (a, b))
        # Converging pair: must end high, score by the rise.
        score = gain + 0.2 * late
        if best_converging is None or score > best_converging[0]:
            best_converging = (score, (a, b))
    if best_stable is None or best_converging is None:
        raise RuntimeError("fig2a needs at least two users to pick IoU pairs")
    # If the search degenerately picked the same pair, take the runner-up
    # converging pair.
    if best_converging[1] == best_stable[1]:
        candidates = sorted(
            (
                (float(np.mean(s[-len(s) // 5 :]) - np.mean(s[: len(s) // 5])), p)
                for p, s in series_cache.items()
                if p != best_stable[1]
            ),
            reverse=True,
        )
        best_converging = candidates[0]

    return Fig2aResult(
        stable_pair=best_stable[1],
        stable_iou=series_cache[best_stable[1]],
        converging_pair=best_converging[1],
        converging_iou=series_cache[best_converging[1]],
    )
