"""Fig. 2a: viewport similarity (IoU) over time for two user pairs.

The paper plots the per-frame IoU (50 cm cells) of two illustrative pairs:
one pair that watches "exactly the same content most of the time" and one
whose similarity "is low initially [but] increases to 1 towards the end".
The runner selects both regimes from the synthetic study by search — the
most-similar pair and the most strongly converging pair — rather than
hard-coding user ids.
"""

from __future__ import annotations

from dataclasses import dataclass
from itertools import combinations

import numpy as np

from ..core import compute_visibility_maps, iou_series
from ..pointcloud import VisibilityConfig
from ..runner import Experiment, RunSpec, register, run_experiment
from .common import DEFAULT_SEED, default_study, default_video, grid_for

__all__ = ["Fig2aResult", "run_fig2a", "run_one"]


@dataclass(frozen=True)
class Fig2aResult:
    """Two IoU time series (index = frame) plus who the pairs are."""

    stable_pair: tuple[int, int]
    stable_iou: np.ndarray
    converging_pair: tuple[int, int]
    converging_iou: np.ndarray

    @property
    def stable_mean(self) -> float:
        return float(np.mean(self.stable_iou))

    @property
    def converging_gain(self) -> float:
        """Late-window mean minus early-window mean of the converging pair."""
        n = len(self.converging_iou)
        k = max(1, n // 5)
        return float(
            np.mean(self.converging_iou[-k:]) - np.mean(self.converging_iou[:k])
        )


def run_one(spec: RunSpec) -> dict:
    """The whole pair search is one unit (every pair shares the maps)."""
    result = _compute(
        num_users=int(spec.get("num_users")),
        num_frames=int(spec.get("num_frames")),
        cell_size=float(spec.get("cell_size")),
        seed=spec.seed,
    )
    return {
        "stable_pair": [int(u) for u in result.stable_pair],
        "stable_iou": [float(x) for x in result.stable_iou],
        "converging_pair": [int(u) for u in result.converging_pair],
        "converging_iou": [float(x) for x in result.converging_iou],
    }


def _result_from_merged(merged: dict) -> Fig2aResult:
    return Fig2aResult(
        stable_pair=tuple(merged["stable_pair"]),
        stable_iou=np.array(merged["stable_iou"], dtype=np.float64),
        converging_pair=tuple(merged["converging_pair"]),
        converging_iou=np.array(merged["converging_iou"], dtype=np.float64),
    )


def _format(merged: dict) -> str:
    result = _result_from_merged(merged)
    return (
        f"stable pair {result.stable_pair}: mean IoU {result.stable_mean:.3f}\n"
        f"converging pair {result.converging_pair}: "
        f"{np.mean(result.converging_iou[:60]):.2f} -> "
        f"{np.mean(result.converging_iou[-60:]):.2f}"
    )


EXPERIMENT = register(
    Experiment(
        name="fig2a",
        title="Fig. 2a — pairwise IoU over time",
        run_one=run_one,
        decompose=lambda params: [
            RunSpec.make(
                "fig2a",
                seed=params["seed"],
                num_users=params["num_users"],
                num_frames=params["num_frames"],
                cell_size=params["cell_size"],
            )
        ],
        merge=lambda params, runs: runs[0][1],
        format_result=_format,
        default_params={
            "num_users": 16,
            "num_frames": 300,
            "cell_size": 0.5,
            "seed": DEFAULT_SEED,
        },
        small_params={"num_users": 8, "num_frames": 90},
    )
)


def run_fig2a(
    num_users: int = 16,
    num_frames: int = 300,
    cell_size: float = 0.5,
    seed: int = DEFAULT_SEED,
) -> Fig2aResult:
    """Select and return the two representative pair series."""
    merged = run_experiment(
        "fig2a",
        {
            "num_users": num_users,
            "num_frames": num_frames,
            "cell_size": cell_size,
            "seed": seed,
        },
    )
    return _result_from_merged(merged)


def _compute(
    num_users: int,
    num_frames: int,
    cell_size: float,
    seed: int,
) -> Fig2aResult:
    # Fig. 2a runs 300 frames = 10 s at 30 Hz.
    duration = num_frames / 30.0
    study = default_study(num_users=num_users, duration_s=duration, seed=seed)
    video = default_video("high")
    grid = grid_for(video, cell_size)
    maps = compute_visibility_maps(
        study, video, grid, config=VisibilityConfig(), num_frames=num_frames
    )

    user_ids = list(maps.user_ids)
    best_stable: tuple[float, tuple[int, int]] | None = None
    best_converging: tuple[float, tuple[int, int]] | None = None
    series_cache: dict[tuple[int, int], np.ndarray] = {}
    for a, b in combinations(user_ids, 2):
        series = iou_series(maps, [a, b])
        series_cache[(a, b)] = series
        mean = float(np.mean(series))
        n = len(series)
        k = max(1, n // 5)
        gain = float(np.mean(series[-k:]) - np.mean(series[:k]))
        late = float(np.mean(series[-k:]))
        if best_stable is None or mean > best_stable[0]:
            best_stable = (mean, (a, b))
        # Converging pair: must end high, score by the rise.
        score = gain + 0.2 * late
        if best_converging is None or score > best_converging[0]:
            best_converging = (score, (a, b))
    if best_stable is None or best_converging is None:
        raise RuntimeError("fig2a needs at least two users to pick IoU pairs")
    # If the search degenerately picked the same pair, take the runner-up
    # converging pair.
    if best_converging[1] == best_stable[1]:
        candidates = sorted(
            (
                (float(np.mean(s[-len(s) // 5 :]) - np.mean(s[: len(s) // 5])), p)
                for p, s in series_cache.items()
                if p != best_stable[1]
            ),
            reverse=True,
        )
        best_converging = candidates[0]

    return Fig2aResult(
        stable_pair=best_stable[1],
        stable_iou=series_cache[best_stable[1]],
        converging_pair=best_converging[1],
        converging_iou=series_cache[best_converging[1]],
    )
