"""Fig. 3d: common RSS for 2-user multicast — default vs. customized beams.

The paper runs this comparison in the Remcom Wireless InSite channel
simulator ("we run the multicast for two users with our custom beams and
default beams in a commercial mmWave channel simulator"), i.e. with ideal
(continuous-phase) beams; our stand-in is the room ray tracer with the
ideal codebook (DESIGN.md §1).  User pairs are placed uniformly across the
room so the sweep covers both angularly-close pairs (where the default
common beam suffices — the paper's "directly use the default common beam"
case) and separated pairs (where the multi-lobe beam wins).

The headline quantity is the rightward shift of the common-RSS CDF — the
"Max. Common RSS improvement" the paper circles.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..mmwave import combine_weights
from ..runner import Experiment, RunSpec, register, run_experiment
from .common import DEFAULT_SEED, default_channel, ideal_codebook

__all__ = ["Fig3dResult", "run_fig3d", "run_one"]


@dataclass(frozen=True)
class Fig3dResult:
    """Common-RSS samples for the two beam strategies (paired per placement)."""

    default_rss: np.ndarray
    custom_rss: np.ndarray

    def mean_improvement_db(self) -> float:
        return float(np.mean(self.custom_rss - self.default_rss))

    def max_common_rss_improvement_db(self) -> float:
        """Improvement at the distribution's top end (95th percentiles)."""
        return float(
            np.percentile(self.custom_rss, 95) - np.percentile(self.default_rss, 95)
        )

    def median_improvement_db(self) -> float:
        return float(np.median(self.custom_rss) - np.median(self.default_rss))

    def win_fraction(self) -> float:
        """Fraction of placements where the custom beam strictly wins."""
        return float(np.mean(self.custom_rss > self.default_rss + 1e-9))


def run_one(spec: RunSpec) -> dict:
    """One unit: the placement RNG stream spans all sampled instants."""
    result = _compute(
        num_instants=int(spec.get("num_instants")), seed=spec.seed
    )
    return {
        "default_rss_dbm": [float(x) for x in result.default_rss],
        "custom_rss_dbm": [float(x) for x in result.custom_rss],
    }


def _result_from_merged(merged: dict) -> Fig3dResult:
    return Fig3dResult(
        default_rss=np.array(merged["default_rss_dbm"], dtype=np.float64),
        custom_rss=np.array(merged["custom_rss_dbm"], dtype=np.float64),
    )


def _format(merged: dict) -> str:
    result = _result_from_merged(merged)
    return (
        f"mean improvement  : {result.mean_improvement_db():+.2f} dB\n"
        f"median improvement: {result.median_improvement_db():+.2f} dB\n"
        f"custom-beam wins  : {result.win_fraction() * 100:.0f}%"
    )


EXPERIMENT = register(
    Experiment(
        name="fig3d",
        title="Fig. 3d — default vs. custom multicast beams",
        run_one=run_one,
        decompose=lambda params: [
            RunSpec.make(
                "fig3d",
                seed=params["seed"],
                num_instants=params["num_instants"],
            )
        ],
        merge=lambda params, runs: runs[0][1],
        format_result=_format,
        default_params={"num_instants": 150, "seed": DEFAULT_SEED},
        small_params={"num_instants": 40},
    )
)


def run_fig3d(
    num_instants: int = 150,
    seed: int = DEFAULT_SEED,
) -> Fig3dResult:
    """Compare default-common vs. custom multi-lobe beams for 2-user groups.

    The custom candidate combines each member's best individual codebook
    beam with the paper's RSS-weighted rule; following the paper's
    observation that already-covered groups should keep the default beam,
    the effective custom RSS is the better of the two candidates.
    """
    merged = run_experiment(
        "fig3d", {"num_instants": num_instants, "seed": seed}
    )
    return _result_from_merged(merged)


def _compute(num_instants: int, seed: int) -> Fig3dResult:
    channel = default_channel()
    codebook = ideal_codebook()
    weight_matrix = codebook.weight_matrix
    rng = np.random.default_rng(seed)
    room = channel.room

    default_samples = []
    custom_samples = []
    for _ in range(num_instants):
        positions = [
            np.array(
                [
                    rng.uniform(0.8, room.width - 0.8),
                    rng.uniform(2.0, room.length - 1.0),
                    rng.uniform(1.2, 1.7),
                ]
            )
            for _ in range(2)
        ]

        per_user_rss = np.stack(
            [channel.rss_matrix_dbm(weight_matrix, pos) for pos in positions]
        )
        common = per_user_rss.min(axis=0)
        default_common = float(common.max())
        default_samples.append(default_common)

        best_beams = [int(np.argmax(per_user_rss[i])) for i in range(2)]
        combined = combine_weights(
            [codebook[b].weights for b in best_beams],
            [float(per_user_rss[i, b]) for i, b in enumerate(best_beams)],
        )
        combined_common = min(
            channel.rss_dbm(combined, pos) for pos in positions
        )
        custom_samples.append(max(default_common, float(combined_common)))

    return Fig3dResult(
        default_rss=np.array(default_samples),
        custom_rss=np.array(custom_samples),
    )
