"""Fig. 3e: normalized throughput of unicast vs. multicast (default beams)
vs. multicast with customized multi-lobe beams, for two users.

For each sampled instant, both users demand the frame their viewport
selects (50 cm cells, high quality); the three schemes deliver it:

* **unicast** — each user's full demand at their own best-beam rate;
* **multicast (default)** — shared cells once at the best *common codebook
  beam*'s rate (the group-min MCS), residuals via unicast;
* **multicast (custom)** — same, but the multicast rate comes from the
  multi-lobe beam design.

Throughput = total payload bytes / airtime, normalized to the best scheme
per instant.  The paper's findings, which the benchmark asserts: default-
beam multicast can be *worse* than unicast (unbalanced RSS drags the common
MCS down), while custom-beam multicast consistently wins.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..mac import UserDemand, multicast_frame_time, unicast_frame_time
from ..mmwave import combine_weights
from ..mmwave.mcs import app_rate_mbps
from ..pointcloud import CellGrid, VisibilityConfig, compute_visibility
from ..geometry import AABB
from ..runner import Experiment, RunSpec, register, run_experiment
from .common import (
    CONTENT_CENTER,
    DEFAULT_SEED,
    default_channel,
    default_video,
    ideal_codebook,
    study_in_room,
)

__all__ = ["Fig3eResult", "run_fig3e", "run_one", "SCHEMES"]

SCHEMES = ("unicast", "multicast-default", "multicast-custom")


@dataclass(frozen=True)
class Fig3eResult:
    """Per-instant normalized throughput for the three schemes."""

    normalized: dict[str, np.ndarray]  # scheme -> (num_instants,)

    def mean(self, scheme: str) -> float:
        return float(np.mean(self.normalized[scheme]))

    def summary(self) -> dict[str, float]:
        return {s: self.mean(s) for s in SCHEMES}

    def default_worse_than_unicast_fraction(self) -> float:
        """How often default-beam multicast loses to plain unicast."""
        return float(
            np.mean(
                self.normalized["multicast-default"]
                < self.normalized["unicast"] - 1e-12
            )
        )


def run_one(spec: RunSpec) -> dict:
    """One unit: the member/instant RNG stream spans the whole sweep."""
    result = _compute(
        num_instants=int(spec.get("num_instants")),
        num_users=int(spec.get("num_users")),
        duration_s=float(spec.get("duration_s")),
        cell_size=float(spec.get("cell_size")),
        seed=spec.seed,
    )
    return {
        "schemes": [
            {
                "scheme": scheme,
                "normalized": [float(x) for x in result.normalized[scheme]],
            }
            for scheme in SCHEMES
        ]
    }


def _result_from_merged(merged: dict) -> Fig3eResult:
    return Fig3eResult(
        normalized={
            s["scheme"]: np.array(s["normalized"], dtype=np.float64)
            for s in merged["schemes"]
        }
    )


def _format(merged: dict) -> str:
    result = _result_from_merged(merged)
    lines = [f"{scheme:20s} {result.mean(scheme):.3f}" for scheme in SCHEMES]
    lines.append(
        "default multicast worse than unicast at "
        f"{result.default_worse_than_unicast_fraction() * 100:.0f}% of instants"
    )
    return "\n".join(lines)


EXPERIMENT = register(
    Experiment(
        name="fig3e",
        title="Fig. 3e — normalized throughput",
        run_one=run_one,
        decompose=lambda params: [
            RunSpec.make(
                "fig3e",
                seed=params["seed"],
                num_instants=params["num_instants"],
                num_users=params["num_users"],
                duration_s=params["duration_s"],
                cell_size=params["cell_size"],
            )
        ],
        merge=lambda params, runs: runs[0][1],
        format_result=_format,
        default_params={
            "num_instants": 60,
            "num_users": 8,
            "duration_s": 10.0,
            "cell_size": 0.5,
            "seed": DEFAULT_SEED,
        },
        small_params={"num_instants": 10},
    )
)


def run_fig3e(
    num_instants: int = 60,
    num_users: int = 8,
    duration_s: float = 10.0,
    cell_size: float = 0.5,
    seed: int = DEFAULT_SEED,
) -> Fig3eResult:
    """Compare the three delivery schemes for 2-user groups."""
    merged = run_experiment(
        "fig3e",
        {
            "num_instants": num_instants,
            "num_users": num_users,
            "duration_s": duration_s,
            "cell_size": cell_size,
            "seed": seed,
        },
    )
    return _result_from_merged(merged)


def _compute(
    num_instants: int,
    num_users: int,
    duration_s: float,
    cell_size: float,
    seed: int,
) -> Fig3eResult:
    study = study_in_room(num_users=num_users, duration_s=duration_s, seed=seed)
    channel = default_channel()
    codebook = ideal_codebook()
    weight_matrix = codebook.weight_matrix
    video = default_video("high")
    # Trace positions live in room coordinates; shift the content-centered
    # video bounds to the room center where the users actually look.
    bounds = video.bounds
    room_bounds = AABB(bounds.lo + CONTENT_CENTER, bounds.hi + CONTENT_CENTER)
    grid = CellGrid.covering(room_bounds, cell_size, margin=0.05)
    config = VisibilityConfig()
    rng = np.random.default_rng(seed)

    results: dict[str, list[float]] = {s: [] for s in SCHEMES}
    for _ in range(num_instants):
        s = int(rng.integers(0, study.num_samples))
        members = tuple(int(m) for m in rng.choice(num_users, size=2, replace=False))
        frame_index = s % len(video)
        occ = grid.occupancy(video[frame_index].transformed(CONTENT_CENTER))

        demands = []
        positions = []
        rates = []
        per_user_beam_rss = []
        for u in members:
            trace = study.traces[u]
            pose = trace.pose(s)
            vis = compute_visibility(occ, pose.frustum(), config)
            cell_bytes = {
                int(c): float(f * n * video.quality.bytes_per_point)
                for c, f, n in zip(vis.cell_ids, vis.fractions, vis.nominal_counts)
            }
            pos = trace.positions[s]
            rss_all = channel.rss_matrix_dbm(weight_matrix, pos)
            best = int(np.argmax(rss_all))
            rate = app_rate_mbps(float(rss_all[best]))
            demands.append(
                UserDemand(user_id=u, cell_bytes=cell_bytes, unicast_rate_mbps=rate)
            )
            positions.append(pos)
            rates.append(rate)
            per_user_beam_rss.append((best, float(rss_all[best])))

        total_bytes = sum(d.total_bytes for d in demands)
        if total_bytes <= 0:
            continue

        # Scheme 1: unicast.
        t_uni = unicast_frame_time(demands)

        # Scheme 2: multicast at the default common beam's rate.
        common = np.minimum(
            channel.rss_matrix_dbm(weight_matrix, positions[0]),
            channel.rss_matrix_dbm(weight_matrix, positions[1]),
        )
        rate_default = app_rate_mbps(float(common.max()))
        t_default = multicast_frame_time(demands, rate_default)

        # Scheme 3: multicast with the custom multi-lobe beam (falling back
        # to the default beam when it is already better).
        combined = combine_weights(
            [codebook[b].weights for b, _ in per_user_beam_rss],
            [r for _, r in per_user_beam_rss],
        )
        custom_common = min(channel.rss_dbm(combined, p) for p in positions)
        rate_custom = max(rate_default, app_rate_mbps(float(custom_common)))
        t_custom = multicast_frame_time(demands, rate_custom)

        throughputs = {
            "unicast": total_bytes / t_uni if t_uni > 0 else 0.0,
            "multicast-default": total_bytes / t_default if t_default > 0 else 0.0,
            "multicast-custom": total_bytes / t_custom if t_custom > 0 else 0.0,
        }
        best_tp = max(throughputs.values())
        if best_tp <= 0:
            continue
        for scheme in SCHEMES:
            results[scheme].append(throughputs[scheme] / best_tp)

    return Fig3eResult(normalized={s: np.array(v) for s, v in results.items()})
