"""Shared fixtures and helpers for the experiment runners.

Experiments share one synthetic video and one synthetic user study; building
them is deterministic but not free, so this module memoizes them per
parameter set.  Also provides small utilities (empirical CDFs, table
formatting) used by every runner and benchmark.
"""

from __future__ import annotations

from functools import lru_cache

import numpy as np

from ..defaults import DEFAULT_SEED
from ..mmwave import AccessPoint, Channel, Codebook, Room
from ..pointcloud import QUALITIES, CellGrid, PointCloudVideo, synthesize_video
from ..traces import UserStudy, generate_user_study

__all__ = [
    "DEFAULT_SEED",
    "CONTENT_CENTER",
    "AP_POSITION",
    "AP_BORESIGHT_AZ",
    "grid_for",
    "default_video",
    "room_video",
    "default_study",
    "default_channel",
    "default_codebook",
    "ideal_codebook",
    "study_in_room",
    "clear_fixture_caches",
    "empirical_cdf",
    "cdf_at",
    "format_table",
]

# Content placement inside the default 8 x 10 m room: the figure stands at
# the room center so orbiting users stay inside the walls and within the
# AP codebook's field of view.
CONTENT_CENTER = np.array([4.0, 5.0, 0.0])
AP_POSITION = np.array([4.0, 0.3, 2.0])
AP_BORESIGHT_AZ = np.pi / 2.0  # facing +Y, into the room


# The memoized fixtures are keyed through *normalizing* front doors: every
# parameter is coerced to a canonical type before it reaches the lru_cache,
# so `default_video("high")`, `default_video(quality="high")`, and
# `default_video(np.str_("high"), np.int64(150))` all land on the same
# cache entry — and no two distinct parameter sets can silently alias.
# (functools.lru_cache keys positional and keyword calls differently and
# hashes 1 == 1.0 == True together; both bite silently otherwise.)


def _checked_quality(quality: str) -> str:
    quality = str(quality)
    if quality not in QUALITIES:
        raise ValueError(
            f"unknown quality {quality!r}; expected one of {sorted(QUALITIES)}"
        )
    return quality


@lru_cache(maxsize=8)
def _default_video(
    quality: str, num_frames: int, points_per_frame: int
) -> PointCloudVideo:
    return synthesize_video(
        quality,
        num_frames=num_frames,
        points_per_frame=points_per_frame,
        seed=DEFAULT_SEED,
    )


def default_video(
    quality: str = "high", num_frames: int = 150, points_per_frame: int = 6000
) -> PointCloudVideo:
    """The synthetic soldier video, centered at the origin (memoized)."""
    return _default_video(
        _checked_quality(quality), int(num_frames), int(points_per_frame)
    )


@lru_cache(maxsize=8)
def _room_video(
    quality: str, num_frames: int, points_per_frame: int
) -> PointCloudVideo:
    video = _default_video(quality, num_frames, points_per_frame)
    return video.translated(CONTENT_CENTER)


def room_video(
    quality: str = "high", num_frames: int = 150, points_per_frame: int = 6000
) -> PointCloudVideo:
    """The same video placed at the room center, in world coordinates.

    Pair this with :func:`study_in_room` — the users orbit and look at
    CONTENT_CENTER, so the content must be there for visibility to work.
    """
    return _room_video(
        _checked_quality(quality), int(num_frames), int(points_per_frame)
    )


@lru_cache(maxsize=8)
def _default_study(num_users: int, duration_s: float, seed: int) -> UserStudy:
    return generate_user_study(
        num_users=num_users, duration_s=duration_s, seed=seed
    )


def default_study(
    num_users: int = 32, duration_s: float = 10.0, seed: int = DEFAULT_SEED
) -> UserStudy:
    """The synthetic 32-participant study, centered on the origin content."""
    return _default_study(int(num_users), float(duration_s), int(seed))


@lru_cache(maxsize=4)
def _study_in_room(num_users: int, duration_s: float, seed: int) -> UserStudy:
    return generate_user_study(
        num_users=num_users,
        duration_s=duration_s,
        seed=seed,
        content_center=CONTENT_CENTER,
    )


def study_in_room(
    num_users: int = 6, duration_s: float = 10.0, seed: int = DEFAULT_SEED
) -> UserStudy:
    """A study whose users orbit the content at the *room center*.

    Channel-level experiments need world coordinates consistent with the
    room and AP placement.
    """
    return _study_in_room(int(num_users), float(duration_s), int(seed))


def default_channel() -> Channel:
    """The room/AP channel used by the Fig. 3 experiments.

    Calibrated to the paper's measurement setup: with 15 dB implementation
    loss the best-beam RSS over trace positions spans roughly -78..-57 dBm,
    matching Fig. 3b's x-axis range.
    """
    from ..mmwave import LinkBudget

    ap = AccessPoint(position=AP_POSITION.copy(), boresight_az=AP_BORESIGHT_AZ)
    budget = LinkBudget(
        implementation_loss_db=8.0,
        reflection_loss_db=9.0,
        blockage_loss_db=12.0,
    )
    return Channel(ap=ap, room=Room(8.0, 10.0, 3.0), budget=budget)


@lru_cache(maxsize=2)
def default_codebook() -> Codebook:
    """The COTS codebook: 2-bit phase-quantized sector beams.

    Used by the Fig. 3b *measurement* reproduction — commodity 802.11ad
    hardware steers with coarse phase shifters, so default beams carry the
    irregular sidelobes the paper observed.
    """
    ap = AccessPoint(position=AP_POSITION.copy(), boresight_az=AP_BORESIGHT_AZ)
    return Codebook(ap.array)


@lru_cache(maxsize=2)
def ideal_codebook() -> Codebook:
    """Continuous-phase sector beams — the Remcom-simulation setting.

    The paper evaluates its custom multi-lobe beams in the Remcom channel
    simulator (Fig. 3d/3e), where beams are ideal; the corresponding
    experiments use this codebook.
    """
    ap = AccessPoint(position=AP_POSITION.copy(), boresight_az=AP_BORESIGHT_AZ)
    return Codebook(ap.array, phase_bits=None)


def clear_fixture_caches() -> None:
    """Drop every memoized fixture so the next call rebuilds from scratch.

    Runner workers (and tests proving rebuild-determinism) call this to
    show that a fresh process reconstructs bit-identical fixtures — the
    builders take only canonicalized parameters and fixed seeds, so a
    rebuild can never diverge from the parent's copy.
    """
    _default_video.cache_clear()
    _room_video.cache_clear()
    _default_study.cache_clear()
    _study_in_room.cache_clear()
    default_codebook.cache_clear()
    ideal_codebook.cache_clear()


def grid_for(video: PointCloudVideo, cell_size: float) -> CellGrid:
    """Cell grid covering the video with the standard margin."""
    return CellGrid.covering(video.bounds, cell_size, margin=0.05)


def empirical_cdf(samples: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
    """Sorted samples and their cumulative probabilities."""
    samples = np.sort(np.asarray(samples, dtype=np.float64))
    if len(samples) == 0:
        raise ValueError("need at least one sample")
    probs = np.arange(1, len(samples) + 1) / len(samples)
    return samples, probs


def cdf_at(samples: np.ndarray, threshold: float) -> float:
    """P(sample <= threshold) of the empirical distribution."""
    samples = np.asarray(samples, dtype=np.float64)
    if len(samples) == 0:
        raise ValueError("need at least one sample")
    return float(np.mean(samples <= threshold))


def format_table(
    headers: list[str], rows: list[list], float_fmt: str = "{:.1f}"
) -> str:
    """Plain-text table (the benches print paper-comparable rows with it)."""
    rendered = [
        [float_fmt.format(c) if isinstance(c, float) else str(c) for c in row]
        for row in rows
    ]
    widths = [
        max(len(headers[i]), *(len(r[i]) for r in rendered)) if rendered
        else len(headers[i])
        for i in range(len(headers))
    ]
    lines = [
        "  ".join(h.ljust(w) for h, w in zip(headers, widths)),
        "  ".join("-" * w for w in widths),
    ]
    for row in rendered:
        lines.append("  ".join(c.ljust(w) for c, w in zip(row, widths)))
    return "\n".join(lines)
