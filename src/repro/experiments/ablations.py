"""Research-agenda ablations (DESIGN.md Abl-A..E).

The paper's §4 proposes techniques without end-to-end numbers; these
runners evaluate each proposal against its natural baseline:

* **Abl-A** — viewport predictors: last-value vs. linear regression vs. MLP
  vs. the joint multi-user model (§4.1).
* **Abl-B** — proactive blockage mitigation vs. reactive beam re-search
  (§4.1): end-to-end stall time and QoE.
* **Abl-C** — multicast grouping policies: none vs. greedy-similarity vs.
  exhaustive-optimal (§4.2): sustained frame rate over the beam-level
  channel.
* **Abl-D** — rate adaptation: fixed / throughput / buffer / cross-layer
  (§4.3): full-session QoE under a constrained, blockage-prone link.
* **Abl-E** — cell-size sweep (§3): viewport similarity and per-user
  traffic vs. segmentation granularity.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..core import (
    BufferPolicy,
    CapacityRateProvider,
    ChannelRateProvider,
    CrossLayerPolicy,
    FixedQualityPolicy,
    ProactivePrefetchPolicy,
    SessionConfig,
    StreamingSession,
    ThroughputPolicy,
    compute_visibility_maps,
    measure_max_fps,
    pairwise_iou_samples,
)
from ..mac import AD_MODEL, RecoveryPolicy, apply_recovery
from ..mmwave import compute_blockage_timeline
from ..pointcloud import PAPER_CELL_SIZES, VisibilityConfig, compute_visibility
from ..prediction import (
    BlockageForecaster,
    JointViewportPredictor,
    LastValuePredictor,
    LinearRegressionPredictor,
    MlpViewportPredictor,
    evaluate_predictor,
    predicted_visibility_iou,
)
from ..ablation.legacy import run_registered
from ..runner import Experiment, RunSpec, register
from .common import (
    AP_POSITION,
    DEFAULT_SEED,
    default_channel,
    default_study,
    default_video,
    format_table,
    grid_for,
    ideal_codebook,
    room_video,
    study_in_room,
)

__all__ = [
    "PredictionAblation",
    "run_prediction_ablation",
    "BlockageAblation",
    "run_blockage_ablation",
    "GroupingAblation",
    "run_grouping_ablation",
    "AdaptationAblation",
    "run_adaptation_ablation",
    "CellSizeAblation",
    "run_cellsize_ablation",
    "MultiApAblation",
    "run_multiap_ablation",
]


# ---------------------------------------------------------------- Abl-A ----


@dataclass(frozen=True)
class PredictionAblation:
    """Accuracy per predictor: (pos err m, ori err deg, visibility IoU)."""

    rows: dict[str, tuple[float, float, float]]

    def format(self) -> str:
        headers = ["Predictor", "PosErr(m)", "OriErr(deg)", "VisIoU"]
        rows = [
            [name, round(v[0], 3), round(v[1], 2), round(v[2], 3)]
            for name, v in self.rows.items()
        ]
        return format_table(headers, rows, float_fmt="{:.3f}")


def run_prediction_ablation(
    num_users: int = 8,
    duration_s: float = 8.0,
    horizon_s: float = 0.5,
    seed: int = DEFAULT_SEED,
) -> PredictionAblation:
    """Abl-A: viewport-prediction accuracy per predictor (pos/ori/IoU)."""
    merged = run_registered(
        "prediction",
        {
            "num_users": num_users,
            "duration_s": duration_s,
            "horizon_s": horizon_s,
            "seed": seed,
        },
    )
    return PredictionAblation(
        rows={
            r["predictor"]: (
                float(r["pos_err_m"]),
                float(r["ori_err_deg"]),
                float(r["vis_iou"]),
            )
            for r in merged["rows"]
        }
    )


def _compute_prediction(
    num_users: int,
    duration_s: float,
    horizon_s: float,
    seed: int,
) -> PredictionAblation:
    study = default_study(num_users=num_users, duration_s=duration_s, seed=seed)
    video = default_video("high")
    grid = grid_for(video, 0.5)

    mlp = MlpViewportPredictor(seed=seed)
    mlp.fit_traces(study.traces[: num_users // 2], horizon_s=horizon_s, epochs=40)
    joint = JointViewportPredictor()

    eval_traces = study.traces[num_users // 2 :]
    rows: dict[str, tuple[float, float, float]] = {}
    single = {
        "last-value": LastValuePredictor(),
        "linear-regression": LinearRegressionPredictor(),
        "mlp": mlp,
    }
    for name, predictor in single.items():
        evs = [
            evaluate_predictor(predictor, t, horizon_s=horizon_s)
            for t in eval_traces
        ]
        pos = float(np.mean([e.mean_position_error_m for e in evs]))
        ori = float(np.mean([e.mean_orientation_error_deg for e in evs]))
        iou = float(
            np.mean(
                [
                    predicted_visibility_iou(
                        predictor, t, video, grid, horizon_s=horizon_s
                    )
                    for t in eval_traces
                ]
            )
        )
        rows[name] = (pos, ori, iou)

    # Joint predictor: evaluated on the full study (it needs all users).
    from ..prediction import evaluate_joint_predictor

    ev = evaluate_joint_predictor(joint, study, horizon_s=horizon_s)
    # Visibility IoU for the joint model via its per-user poses is driven by
    # the same base predictor; reuse the linear-regression IoU as the base
    # and report the joint pose errors.
    rows["joint-multiuser"] = (
        ev.mean_position_error_m,
        ev.mean_orientation_error_deg,
        rows["linear-regression"][2],
    )
    return PredictionAblation(rows=rows)


def _prediction_run_one(spec: RunSpec) -> dict:
    result = _compute_prediction(
        num_users=int(spec.get("num_users")),
        duration_s=float(spec.get("duration_s")),
        horizon_s=float(spec.get("horizon_s")),
        seed=spec.seed,
    )
    return {
        "rows": [
            {
                "predictor": name,
                "pos_err_m": float(v[0]),
                "ori_err_deg": float(v[1]),
                "vis_iou": float(v[2]),
            }
            for name, v in result.rows.items()
        ]
    }


# ---------------------------------------------------------------- Abl-B ----


@dataclass(frozen=True)
class BlockageAblation:
    """Session outcomes under reactive vs. proactive blockage handling.

    ``rows`` carries the session QoE summary per policy plus two link-level
    fields: ``outage_s`` (total dead airtime across users — the quantity
    proactive mitigation eliminates) and ``mean_rate_fraction`` (average
    link-rate multiplier).
    """

    rows: dict[str, dict[str, float]]  # policy -> QoE summary + link stats

    def format(self) -> str:
        headers = ["Policy", "mean_fps", "stall_s", "outage_s", "rate_frac", "qoe"]
        rows = [
            [
                name,
                round(s["mean_fps"], 2),
                round(s["stall_time_s"], 3),
                round(s.get("outage_s", 0.0), 3),
                round(s.get("mean_rate_fraction", 1.0), 3),
                round(s["qoe_score"], 1),
            ]
            for name, s in self.rows.items()
        ]
        return format_table(headers, rows, float_fmt="{:.2f}")


def run_blockage_ablation(
    num_users: int = 5,
    duration_s: float = 8.0,
    seed: int = DEFAULT_SEED,
    max_buffer_frames: int = 4,
    quality: str = "medium",
) -> BlockageAblation:
    """Reactive vs. proactive blockage handling, same workload and draws.

    The *reactive* stack discovers a blockage only when RSS collapses: it
    eats the 5-20 ms sector re-search outage, then limps on a reflection
    beam.  The *proactive* stack uses the multi-user viewport prediction in
    two ways (paper §4.1): the AP switches to the reflection beam before the
    blocker arrives (no outage), and the scheduler prefetches extra frames
    ahead of the predicted event.

    The player runs with a thin buffer (default 4 frames ~ 133 ms) at a
    quality that loads the link to just under capacity — the regime
    volumetric streaming actually occupies, and the one where blockage
    hiccups turn into stalls.
    """
    merged = run_registered(
        "blockage",
        {
            "num_users": num_users,
            "duration_s": duration_s,
            "max_buffer_frames": max_buffer_frames,
            "quality": quality,
            "seed": seed,
        },
    )
    return BlockageAblation(
        rows={
            r["policy"]: {k: float(v) for k, v in r["summary"].items()}
            for r in merged["rows"]
        }
    )


def _compute_blockage(
    num_users: int,
    duration_s: float,
    seed: int,
    max_buffer_frames: int,
    quality: str,
) -> BlockageAblation:
    study = study_in_room(num_users=num_users, duration_s=duration_s, seed=seed)
    video = room_video("high")
    timeline = compute_blockage_timeline(study, AP_POSITION)
    forecaster = BlockageForecaster(
        ap_position=AP_POSITION,
        predictor=JointViewportPredictor(),
        horizon_s=0.5,
    )
    runs = {
        "reactive": (
            RecoveryPolicy.reactive(),
            FixedQualityPolicy(quality),
            None,
        ),
        "proactive": (
            RecoveryPolicy.proactive_default(),
            ProactivePrefetchPolicy(quality=quality, prefetch_frames=15),
            forecaster,
        ),
    }
    rows = {}
    for name, (policy, adaptation, fc) in runs.items():
        rates = CapacityRateProvider(
            model=AD_MODEL,
            num_users=num_users,
            timeline=apply_recovery(timeline, policy, seed=seed),
        )
        config = SessionConfig(
            video=video,
            study=study,
            rates=rates,
            visibility=VisibilityConfig(),
            grouping="none",
            adaptation=adaptation,
            blockage_forecaster=fc,
            duration_s=duration_s,
            max_buffer_frames=max_buffer_frames,
            adaptation_interval_s=0.25,
        )
        report = StreamingSession(config).run()
        summary = report.summary()
        recovered = rates.timeline
        if recovered is None:
            raise RuntimeError("blockage ablation requires a recovery timeline")
        summary["outage_s"] = float(
            sum(
                recovered.outage_fraction(u) * duration_s
                for u in range(num_users)
            )
        )
        summary["mean_rate_fraction"] = float(
            np.mean(
                [recovered.mean_rate_fraction(u) for u in range(num_users)]
            )
        )
        rows[name] = summary
    return BlockageAblation(rows=rows)


def _blockage_run_one(spec: RunSpec) -> dict:
    result = _compute_blockage(
        num_users=int(spec.get("num_users")),
        duration_s=float(spec.get("duration_s")),
        seed=spec.seed,
        max_buffer_frames=int(spec.get("max_buffer_frames")),
        quality=str(spec.get("quality")),
    )
    return {
        "rows": [
            {"policy": name, "summary": {k: float(v) for k, v in summary.items()}}
            for name, summary in result.rows.items()
        ]
    }


# ---------------------------------------------------------------- Abl-C ----


@dataclass(frozen=True)
class GroupingAblation:
    """Mean achievable FPS per grouping policy and user count."""

    fps: dict[str, dict[int, float]]  # policy -> num_users -> mean fps

    def format(self) -> str:
        policies = list(self.fps)
        counts = sorted(next(iter(self.fps.values())))
        headers = ["Users"] + policies
        rows = [
            [n] + [round(self.fps[p][n], 2) for p in policies] for n in counts
        ]
        return format_table(headers, rows, float_fmt="{:.2f}")


def run_grouping_ablation(
    user_counts: tuple[int, ...] = (2, 4, 6),
    duration_s: float = 6.0,
    num_frames: int = 30,
    seed: int = DEFAULT_SEED,
) -> GroupingAblation:
    """Unicast vs. greedy vs. exhaustive grouping on the beam-level channel."""
    merged = run_registered(
        "grouping",
        {
            "user_counts": tuple(user_counts),
            "duration_s": duration_s,
            "num_frames": num_frames,
            "seed": seed,
        },
    )
    fps: dict[str, dict[int, float]] = {
        "unicast": {}, "greedy": {}, "exhaustive": {},
    }
    for row in merged["rows"]:
        for entry in row["fps"]:
            fps[entry["policy"]][int(row["num_users"])] = float(entry["mean_fps"])
    return GroupingAblation(fps=fps)


def _grouping_run_one(spec: RunSpec) -> dict:
    """One user count, all three grouping policies (they share the rates)."""
    n = int(spec.get("num_users"))
    duration_s = float(spec.get("duration_s"))
    num_frames = int(spec.get("num_frames"))
    video = room_video("high")
    channel = default_channel()
    codebook = ideal_codebook()
    study = study_in_room(num_users=n, duration_s=duration_s, seed=spec.seed)
    rates = ChannelRateProvider(channel=channel, codebook=codebook, study=study)
    entries = []
    for policy, label in (
        ("none", "unicast"),
        ("greedy", "greedy"),
        ("exhaustive", "exhaustive"),
    ):
        config = SessionConfig(
            video=video,
            study=study,
            rates=rates,
            visibility=VisibilityConfig(),
            grouping=policy,
            adaptation=FixedQualityPolicy("high"),
            duration_s=duration_s,
        )
        series = measure_max_fps(config, num_frames=num_frames, stride=3)
        entries.append({"policy": label, "mean_fps": float(np.mean(series))})
    return {"num_users": n, "fps": entries}


# ---------------------------------------------------------------- Abl-D ----


@dataclass(frozen=True)
class AdaptationAblation:
    """QoE summary per adaptation policy."""

    rows: dict[str, dict[str, float]]

    def format(self) -> str:
        headers = ["Policy", "mean_fps", "bitrate", "stall_s", "switches", "qoe"]
        rows = [
            [
                name,
                round(s["mean_fps"], 2),
                round(s["mean_bitrate_mbps"], 1),
                round(s["stall_time_s"], 3),
                int(s["quality_switches"]),
                round(s["qoe_score"], 1),
            ]
            for name, s in self.rows.items()
        ]
        return format_table(headers, rows, float_fmt="{:.2f}")


def run_adaptation_ablation(
    num_users: int = 5,
    duration_s: float = 8.0,
    seed: int = DEFAULT_SEED,
) -> AdaptationAblation:
    """Adaptation policies on a constrained, blockage-prone 802.11ad link.

    Five users put the link right at the high-quality capacity edge, so
    the policies differentiate: fixed-high stalls, rate/buffer/MPC trade
    switches against bitrate, and the cross-layer policy (blockage
    forecast + PHY fusion) eliminates stalls *and* switches at a small
    bitrate cost.
    """
    merged = run_registered(
        "adaptation",
        {"num_users": num_users, "duration_s": duration_s, "seed": seed},
    )
    return AdaptationAblation(
        rows={
            r["policy"]: {k: float(v) for k, v in r["summary"].items()}
            for r in merged["rows"]
        }
    )


def _compute_adaptation(
    num_users: int,
    duration_s: float,
    seed: int,
) -> AdaptationAblation:
    study = study_in_room(num_users=num_users, duration_s=duration_s, seed=seed)
    video = room_video("high")
    timeline = compute_blockage_timeline(study, AP_POSITION)
    recovered = apply_recovery(timeline, RecoveryPolicy.reactive(), seed=seed)
    forecaster = BlockageForecaster(
        ap_position=AP_POSITION,
        predictor=JointViewportPredictor(),
        horizon_s=0.5,
    )
    from ..core import MpcPolicy

    policies = {
        "fixed-high": (FixedQualityPolicy("high"), None),
        "throughput": (ThroughputPolicy(), None),
        "buffer": (BufferPolicy(), None),
        "mpc": (MpcPolicy(), None),
        "cross-layer": (CrossLayerPolicy(), forecaster),
    }
    rows = {}
    for name, (policy, fc) in policies.items():
        rates = CapacityRateProvider(
            model=AD_MODEL, num_users=num_users, timeline=recovered
        )
        config = SessionConfig(
            video=video,
            study=study,
            rates=rates,
            visibility=VisibilityConfig(),
            grouping="none",
            adaptation=policy,
            blockage_forecaster=fc,
            duration_s=duration_s,
        )
        report = StreamingSession(config).run()
        rows[name] = report.summary()
    return AdaptationAblation(rows=rows)


def _adaptation_run_one(spec: RunSpec) -> dict:
    result = _compute_adaptation(
        num_users=int(spec.get("num_users")),
        duration_s=float(spec.get("duration_s")),
        seed=spec.seed,
    )
    return {
        "rows": [
            {"policy": name, "summary": {k: float(v) for k, v in summary.items()}}
            for name, summary in result.rows.items()
        ]
    }


# ---------------------------------------------------------------- Abl-E ----


@dataclass(frozen=True)
class CellSizeAblation:
    """Per cell size: mean pair IoU, mean visible fraction, per-frame MB."""

    rows: dict[float, tuple[float, float, float]]

    def format(self) -> str:
        headers = ["Cell(cm)", "PairIoU", "VisibleFrac", "MB/frame"]
        rows = [
            [int(size * 100), round(v[0], 3), round(v[1], 3), round(v[2], 3)]
            for size, v in sorted(self.rows.items())
        ]
        return format_table(headers, rows, float_fmt="{:.3f}")


def run_cellsize_ablation(
    cell_sizes: tuple[float, ...] = PAPER_CELL_SIZES,
    num_users: int = 8,
    duration_s: float = 5.0,
    seed: int = DEFAULT_SEED,
) -> CellSizeAblation:
    """Granularity trade-off: finer cells cut traffic but reduce overlap."""
    merged = run_registered(
        "cellsize",
        {
            "cell_sizes": tuple(cell_sizes),
            "num_users": num_users,
            "duration_s": duration_s,
            "seed": seed,
        },
    )
    return CellSizeAblation(
        rows={
            float(r["cell_size"]): (
                float(r["pair_iou"]),
                float(r["visible_fraction"]),
                float(r["mb_per_frame"]),
            )
            for r in merged["rows"]
        }
    )


def _cellsize_run_one(spec: RunSpec) -> dict:
    """One segmentation granularity (each size rebuilds its own maps)."""
    size = float(spec.get("cell_size"))
    study = default_study(
        num_users=int(spec.get("num_users")),
        duration_s=float(spec.get("duration_s")),
        seed=spec.seed,
    )
    video = default_video("high")
    config = VisibilityConfig()
    grid = grid_for(video, size)
    maps = compute_visibility_maps(study, video, grid, config=config)
    iou = float(np.mean(pairwise_iou_samples(maps)))
    fractions, bytes_ = [], []
    for trace in study.traces[:4]:
        for f in range(0, study.num_samples, 10):
            occ = grid.occupancy(video[f % len(video)])
            vis = compute_visibility(occ, trace.pose(f).frustum(), config)
            fractions.append(vis.visible_fraction)
            bytes_.append(vis.request_bytes() / 1e6)
    return {
        "cell_size": size,
        "pair_iou": iou,
        "visible_fraction": float(np.mean(fractions)),
        "mb_per_frame": float(np.mean(bytes_)),
    }


# ---------------------------------------------------------------- Abl-F ----


@dataclass(frozen=True)
class MultiApAblation:
    """Frame airtime (ms) with 1 AP vs. concurrent APs, per user count."""

    rows: dict[int, tuple[float, float]]  # users -> (single_ms, multi_ms)

    def speedup(self, num_users: int) -> float:
        single, multi = self.rows[num_users]
        return single / multi if multi > 0 else float("inf")

    def format(self) -> str:
        headers = ["Users", "1-AP (ms)", "2-AP (ms)", "Speedup"]
        rows = [
            [n, round(s, 2), round(m, 2), round(self.speedup(n), 2)]
            for n, (s, m) in sorted(self.rows.items())
        ]
        return format_table(headers, rows, float_fmt="{:.2f}")


def run_multiap_ablation(
    user_counts: tuple[int, ...] = (2, 4, 6, 8),
    num_instants: int = 12,
    duration_s: float = 6.0,
    seed: int = DEFAULT_SEED,
) -> MultiApAblation:
    """Spatial reuse with two APs and two viewing clusters (paper §5).

    The audience splits into two co-watching clusters (e.g. two exhibits in
    a museum), one near each wall AP.  Users demand the visible cells of
    their cluster's content at high quality.  We compare one AP serving the
    whole room against two coordinated APs (interference-aware: concurrent
    spatial reuse when SINR allows, AP-TDMA otherwise).
    """
    merged = run_registered(
        "multiap",
        {
            "user_counts": tuple(user_counts),
            "num_instants": num_instants,
            "duration_s": duration_s,
            "seed": seed,
        },
    )
    return MultiApAblation(
        rows={
            int(r["num_users"]): (float(r["single_ms"]), float(r["multi_ms"]))
            for r in merged["rows"]
        }
    )


def _compute_multiap(
    user_counts: tuple[int, ...],
    num_instants: int,
    duration_s: float,
    seed: int,
) -> MultiApAblation:
    # One RNG stream spans all user counts, so this stays one work unit.
    from ..core import (
        MultiApDeployment,
        coordinated_frame_time,
        single_ap_frame_time,
    )
    from ..mac import UserDemand
    from ..mmwave import AccessPoint, Channel, Codebook, LinkBudget, Room
    from ..pointcloud import compute_visibility
    from ..traces import generate_user_study

    room = Room(8.0, 10.0, 3.0)
    budget = LinkBudget(implementation_loss_db=8.0, reflection_loss_db=9.0)
    ap_a = AccessPoint(position=AP_POSITION.copy(), boresight_az=np.pi / 2)
    ap_b = AccessPoint(
        position=np.array([4.0, 9.7, 2.0]), boresight_az=-np.pi / 2
    )
    deployment = MultiApDeployment(
        channels=[
            Channel(ap=ap_a, room=room, budget=budget),
            Channel(ap=ap_b, room=room, budget=budget),
        ],
        codebooks=[
            Codebook(ap_a.array, phase_bits=None),
            Codebook(ap_b.array, phase_bits=None),
        ],
    )
    base_video = default_video("high")
    centers = (np.array([4.0, 2.8, 0.0]), np.array([4.0, 7.2, 0.0]))
    videos = [base_video.translated(c) for c in centers]
    grids = [grid_for(v, 0.5) for v in videos]
    config = VisibilityConfig()
    rng = np.random.default_rng(seed)

    rows = {}
    for n in user_counts:
        half = max(1, n // 2)
        clusters = [
            generate_user_study(
                num_users=half, duration_s=duration_s, seed=seed + ci,
                content_center=centers[ci],
            )
            for ci in range(2)
        ]
        singles, multis = [], []
        for _ in range(num_instants):
            s = int(rng.integers(0, clusters[0].num_samples))
            demands = {}
            positions = {}
            uid = 0
            for ci, study in enumerate(clusters):
                occ = grids[ci].occupancy(videos[ci][s % len(videos[ci])])
                for trace in study.traces:
                    pose = trace.pose(s)
                    vis = compute_visibility(occ, pose.frustum(), config)
                    cell_bytes = {
                        # Offset cluster-1 cell ids so the two contents do
                        # not alias in the similarity computation.
                        int(c) + ci * 10**6: float(
                            f * cnt * videos[ci].quality.bytes_per_point
                        )
                        for c, f, cnt in zip(
                            vis.cell_ids, vis.fractions, vis.nominal_counts
                        )
                    }
                    demands[uid] = UserDemand(uid, cell_bytes, 0.0)
                    positions[uid] = trace.positions[s]
                    uid += 1
            t1 = single_ap_frame_time(deployment, demands, positions)
            t2 = coordinated_frame_time(deployment, demands, positions)
            if np.isfinite(t1) and np.isfinite(t2):
                singles.append(t1 * 1000)
                multis.append(t2 * 1000)
        rows[n] = (float(np.mean(singles)), float(np.mean(multis)))
    return MultiApAblation(rows=rows)


def _multiap_run_one(spec: RunSpec) -> dict:
    result = _compute_multiap(
        user_counts=tuple(int(n) for n in spec.get("user_counts")),
        num_instants=int(spec.get("num_instants")),
        duration_s=float(spec.get("duration_s")),
        seed=spec.seed,
    )
    return {
        "rows": [
            {"num_users": n, "single_ms": s, "multi_ms": m}
            for n, (s, m) in sorted(result.rows.items())
        ]
    }


# ------------------------------------------------------------ registry ----


def _single_spec_decompose(name: str, param_names: tuple[str, ...]):
    """Decompose for monolithic ablations: whole sweep is one work unit."""

    def decompose(params: dict) -> list[RunSpec]:
        return [
            RunSpec.make(
                name,
                seed=params["seed"],
                **{k: params[k] for k in param_names},
            )
        ]

    return decompose


register(
    Experiment(
        name="ablation_prediction",
        title="Abl-A — viewport predictors",
        run_one=_prediction_run_one,
        decompose=_single_spec_decompose(
            "ablation_prediction", ("num_users", "duration_s", "horizon_s")
        ),
        merge=lambda params, runs: runs[0][1],
        format_result=lambda merged: PredictionAblation(
            rows={
                r["predictor"]: (r["pos_err_m"], r["ori_err_deg"], r["vis_iou"])
                for r in merged["rows"]
            }
        ).format(),
        default_params={
            "num_users": 8,
            "duration_s": 8.0,
            "horizon_s": 0.5,
            "seed": DEFAULT_SEED,
        },
        small_params={"num_users": 6, "duration_s": 4.0},
    )
)


register(
    Experiment(
        name="ablation_blockage",
        title="Abl-B — reactive vs. proactive blockage handling",
        run_one=_blockage_run_one,
        decompose=_single_spec_decompose(
            "ablation_blockage",
            ("num_users", "duration_s", "max_buffer_frames", "quality"),
        ),
        merge=lambda params, runs: runs[0][1],
        format_result=lambda merged: BlockageAblation(
            rows={r["policy"]: dict(r["summary"]) for r in merged["rows"]}
        ).format(),
        default_params={
            "num_users": 5,
            "duration_s": 8.0,
            "max_buffer_frames": 4,
            "quality": "medium",
            "seed": DEFAULT_SEED,
        },
        small_params={"num_users": 3, "duration_s": 4.0},
    )
)


def _grouping_decompose(params: dict) -> list[RunSpec]:
    return [
        RunSpec.make(
            "ablation_grouping",
            seed=params["seed"],
            num_users=n,
            duration_s=params["duration_s"],
            num_frames=params["num_frames"],
        )
        for n in params["user_counts"]
    ]


def _grouping_format(merged: dict) -> str:
    fps: dict[str, dict[int, float]] = {
        "unicast": {}, "greedy": {}, "exhaustive": {},
    }
    for row in merged["rows"]:
        for entry in row["fps"]:
            fps[entry["policy"]][int(row["num_users"])] = float(
                entry["mean_fps"]
            )
    return GroupingAblation(fps=fps).format()


register(
    Experiment(
        name="ablation_grouping",
        title="Abl-C — multicast grouping policies",
        run_one=_grouping_run_one,
        decompose=_grouping_decompose,
        merge=lambda params, runs: {"rows": [result for _, result in runs]},
        format_result=_grouping_format,
        default_params={
            "user_counts": (2, 4, 6),
            "duration_s": 6.0,
            "num_frames": 30,
            "seed": DEFAULT_SEED,
        },
        small_params={
            "user_counts": (2, 4),
            "duration_s": 3.0,
            "num_frames": 10,
        },
    )
)


register(
    Experiment(
        name="ablation_adaptation",
        title="Abl-D — rate adaptation policies",
        run_one=_adaptation_run_one,
        decompose=_single_spec_decompose(
            "ablation_adaptation", ("num_users", "duration_s")
        ),
        merge=lambda params, runs: runs[0][1],
        format_result=lambda merged: AdaptationAblation(
            rows={r["policy"]: dict(r["summary"]) for r in merged["rows"]}
        ).format(),
        default_params={
            "num_users": 5,
            "duration_s": 8.0,
            "seed": DEFAULT_SEED,
        },
        small_params={"num_users": 3, "duration_s": 4.0},
    )
)


def _cellsize_decompose(params: dict) -> list[RunSpec]:
    return [
        RunSpec.make(
            "ablation_cellsize",
            seed=params["seed"],
            cell_size=size,
            num_users=params["num_users"],
            duration_s=params["duration_s"],
        )
        for size in params["cell_sizes"]
    ]


register(
    Experiment(
        name="ablation_cellsize",
        title="Abl-E — cell-size sweep",
        run_one=_cellsize_run_one,
        decompose=_cellsize_decompose,
        merge=lambda params, runs: {"rows": [result for _, result in runs]},
        format_result=lambda merged: CellSizeAblation(
            rows={
                float(r["cell_size"]): (
                    float(r["pair_iou"]),
                    float(r["visible_fraction"]),
                    float(r["mb_per_frame"]),
                )
                for r in merged["rows"]
            }
        ).format(),
        default_params={
            "cell_sizes": PAPER_CELL_SIZES,
            "num_users": 8,
            "duration_s": 5.0,
            "seed": DEFAULT_SEED,
        },
        small_params={
            "cell_sizes": (0.5, 1.0),
            "num_users": 6,
            "duration_s": 3.0,
        },
    )
)


register(
    Experiment(
        name="ablation_multiap",
        title="Abl-F — multi-AP spatial reuse",
        run_one=_multiap_run_one,
        decompose=_single_spec_decompose(
            "ablation_multiap", ("user_counts", "num_instants", "duration_s")
        ),
        merge=lambda params, runs: runs[0][1],
        format_result=lambda merged: MultiApAblation(
            rows={
                int(r["num_users"]): (
                    float(r["single_ms"]),
                    float(r["multi_ms"]),
                )
                for r in merged["rows"]
            }
        ).format(),
        default_params={
            "user_counts": (2, 4, 6, 8),
            "num_instants": 12,
            "duration_s": 6.0,
            "seed": DEFAULT_SEED,
        },
        small_params={
            "user_counts": (2, 4),
            "num_instants": 4,
            "duration_s": 3.0,
        },
    )
)
