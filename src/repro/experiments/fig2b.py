"""Fig. 2b: CDFs of viewport IoU across device, cell size, and group size.

Four curves, as in the paper:

* ``HM(2)-Seg(100cm)`` — headset pairs, 100 cm cells;
* ``HM(2)-Seg(50cm)``  — headset pairs, 50 cm cells;
* ``PH(2)-Seg(50cm)``  — phone pairs, 50 cm cells;
* ``HM(3)-Seg(50cm)``  — headset triples, 50 cm cells.

Expected orderings (the paper's findings, asserted by the benchmark):
coarser cells -> higher IoU; phones -> higher IoU than headsets; larger
groups -> lower IoU.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..core import compute_visibility_maps, group_iou_samples, pairwise_iou_samples
from ..pointcloud import VisibilityConfig
from ..traces import Device
from .common import DEFAULT_SEED, default_study, default_video, grid_for

__all__ = ["Fig2bResult", "run_fig2b", "FIG2B_CURVES"]

FIG2B_CURVES = (
    "HM(2)-Seg(100cm)",
    "HM(2)-Seg(50cm)",
    "PH(2)-Seg(50cm)",
    "HM(3)-Seg(50cm)",
)


@dataclass(frozen=True)
class Fig2bResult:
    """IoU sample sets per curve (feed to ``empirical_cdf`` for plotting)."""

    samples: dict[str, np.ndarray]

    def mean_iou(self, curve: str) -> float:
        return float(np.mean(self.samples[curve]))

    def median_iou(self, curve: str) -> float:
        return float(np.median(self.samples[curve]))

    def summary(self) -> dict[str, float]:
        return {curve: self.mean_iou(curve) for curve in self.samples}


def run_fig2b(
    num_users: int = 32,
    duration_s: float = 10.0,
    seed: int = DEFAULT_SEED,
    max_groups: int = 60,
) -> Fig2bResult:
    """Regenerate the four CDF sample sets of Fig. 2b."""
    study = default_study(num_users=num_users, duration_s=duration_s, seed=seed)
    video = default_video("high")
    config = VisibilityConfig()

    hm_ids = [t.user_id for t in study.by_device(Device.HEADSET)]
    ph_ids = [t.user_id for t in study.by_device(Device.PHONE)]

    maps_100 = compute_visibility_maps(
        study, video, grid_for(video, 1.0), users=hm_ids, config=config
    )
    maps_50_hm = compute_visibility_maps(
        study, video, grid_for(video, 0.5), users=hm_ids, config=config
    )
    maps_50_ph = compute_visibility_maps(
        study, video, grid_for(video, 0.5), users=ph_ids, config=config
    )

    samples = {
        "HM(2)-Seg(100cm)": pairwise_iou_samples(maps_100),
        "HM(2)-Seg(50cm)": pairwise_iou_samples(maps_50_hm),
        "PH(2)-Seg(50cm)": pairwise_iou_samples(maps_50_ph),
        "HM(3)-Seg(50cm)": group_iou_samples(
            maps_50_hm, group_size=3, max_groups=max_groups, seed=seed
        ),
    }
    return Fig2bResult(samples=samples)
