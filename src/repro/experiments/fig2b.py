"""Fig. 2b: CDFs of viewport IoU across device, cell size, and group size.

Four curves, as in the paper:

* ``HM(2)-Seg(100cm)`` — headset pairs, 100 cm cells;
* ``HM(2)-Seg(50cm)``  — headset pairs, 50 cm cells;
* ``PH(2)-Seg(50cm)``  — phone pairs, 50 cm cells;
* ``HM(3)-Seg(50cm)``  — headset triples, 50 cm cells.

Expected orderings (the paper's findings, asserted by the benchmark):
coarser cells -> higher IoU; phones -> higher IoU than headsets; larger
groups -> lower IoU.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..core import compute_visibility_maps, group_iou_samples, pairwise_iou_samples
from ..pointcloud import VisibilityConfig
from ..runner import Experiment, RunSpec, register, run_experiment
from ..traces import Device
from .common import DEFAULT_SEED, default_study, default_video, grid_for

__all__ = ["Fig2bResult", "run_fig2b", "run_one", "FIG2B_CURVES"]

FIG2B_CURVES = (
    "HM(2)-Seg(100cm)",
    "HM(2)-Seg(50cm)",
    "PH(2)-Seg(50cm)",
    "HM(3)-Seg(50cm)",
)

# curve -> (device, cell size m, group size).  Each curve is one runner
# work unit; the visibility maps it needs are rebuilt inside the unit, so
# units are independent and fan out cleanly.
_CURVE_DEFS: dict[str, tuple[Device, float, int]] = {
    "HM(2)-Seg(100cm)": (Device.HEADSET, 1.0, 2),
    "HM(2)-Seg(50cm)": (Device.HEADSET, 0.5, 2),
    "PH(2)-Seg(50cm)": (Device.PHONE, 0.5, 2),
    "HM(3)-Seg(50cm)": (Device.HEADSET, 0.5, 3),
}


@dataclass(frozen=True)
class Fig2bResult:
    """IoU sample sets per curve (feed to ``empirical_cdf`` for plotting)."""

    samples: dict[str, np.ndarray]

    def mean_iou(self, curve: str) -> float:
        return float(np.mean(self.samples[curve]))

    def median_iou(self, curve: str) -> float:
        return float(np.median(self.samples[curve]))

    def summary(self) -> dict[str, float]:
        return {curve: self.mean_iou(curve) for curve in self.samples}


def run_one(spec: RunSpec) -> dict:
    """One CDF curve: build that curve's maps and draw its IoU samples."""
    curve = spec.get("curve")
    if curve not in _CURVE_DEFS:
        raise ValueError(f"unknown fig2b curve {curve!r}")
    device, cell_size, group_size = _CURVE_DEFS[curve]
    study = default_study(
        num_users=int(spec.get("num_users")),
        duration_s=float(spec.get("duration_s")),
        seed=spec.seed,
    )
    video = default_video("high")
    config = VisibilityConfig()
    ids = [t.user_id for t in study.by_device(device)]
    maps = compute_visibility_maps(
        study, video, grid_for(video, cell_size), users=ids, config=config
    )
    if group_size == 2:
        samples = pairwise_iou_samples(maps)
    else:
        samples = group_iou_samples(
            maps,
            group_size=group_size,
            max_groups=int(spec.get("max_groups")),
            seed=spec.seed,
        )
    return {"curve": curve, "samples": [float(x) for x in samples]}


def _decompose(params: dict) -> list[RunSpec]:
    return [
        RunSpec.make(
            "fig2b",
            seed=params["seed"],
            curve=curve,
            num_users=params["num_users"],
            duration_s=params["duration_s"],
            max_groups=params["max_groups"],
        )
        for curve in FIG2B_CURVES
    ]


def _merge(params: dict, runs: list) -> dict:
    return {
        "curves": [
            {"curve": result["curve"], "samples": result["samples"]}
            for _, result in runs
        ]
    }


def _result_from_merged(merged: dict) -> Fig2bResult:
    return Fig2bResult(
        samples={
            c["curve"]: np.array(c["samples"], dtype=np.float64)
            for c in merged["curves"]
        }
    )


def _format(merged: dict) -> str:
    result = _result_from_merged(merged)
    lines = []
    for curve in FIG2B_CURVES:
        samples = result.samples[curve]
        lines.append(
            f"{curve:18s} mean {np.mean(samples):.3f} "
            f"median {np.median(samples):.3f}"
        )
    return "\n".join(lines)


EXPERIMENT = register(
    Experiment(
        name="fig2b",
        title="Fig. 2b — IoU distributions",
        run_one=run_one,
        decompose=_decompose,
        merge=_merge,
        format_result=_format,
        default_params={
            "num_users": 32,
            "duration_s": 10.0,
            "max_groups": 60,
            "seed": DEFAULT_SEED,
        },
        small_params={"num_users": 12, "duration_s": 3.0, "max_groups": 30},
    )
)


def run_fig2b(
    num_users: int = 32,
    duration_s: float = 10.0,
    seed: int = DEFAULT_SEED,
    max_groups: int = 60,
) -> Fig2bResult:
    """Regenerate the four CDF sample sets of Fig. 2b."""
    merged = run_experiment(
        "fig2b",
        {
            "num_users": num_users,
            "duration_s": duration_s,
            "max_groups": max_groups,
            "seed": seed,
        },
    )
    return _result_from_merged(merged)
