"""Venue-scale population experiment: rooms of churning users, sharded.

The reproduction's scaling story so far asks "how many users can one AP
serve?"; this experiment asks the venue version — a stadium concourse or
conference floor of rooms, each with its own AP, capacity, content
placement, and churn (Poisson arrivals, exponential dwell, an optional
flash crowd).  Rooms are pure functions of ``(venue seed, room index)``,
so the runner fans whole *shards* of rooms out to worker processes and
the merged report is bit-identical for any ``--parallel`` or shard
count.
"""

from __future__ import annotations

from ..runner import Experiment, RunSpec, register, run_experiment
from ..scenario import (
    RoomSpec,
    VenueSpec,
    merge_shard_results,
    run_shard,
    shard_rooms,
)
from .common import DEFAULT_SEED, format_table

__all__ = [
    "run_venue_scale",
    "venue_from_params",
    "room_specs_tuple",
    "run_one",
]

# Venue parameters a RunSpec carries (everything except sharding).
_VENUE_KEYS = (
    "num_rooms",
    "capacity",
    "initial_users",
    "arrival_rate_hz",
    "mean_dwell_s",
    "quality",
    "flash_crowd_room",
    "flash_crowd_at_s",
    "flash_crowd_size",
    "room_specs",
    "duration_s",
    "tick_s",
    "archetypes",
    "wlan",
    "multicast_rate_fraction",
    "grouping",
    "min_group_iou",
    "target_fps",
)

# Field order of one encoded room in the ``room_specs`` parameter (a
# RunSpec can carry scalars and nested sequences, not dicts).
_ROOM_FIELDS = (
    "name",
    "ap",
    "capacity",
    "initial_users",
    "arrival_rate_hz",
    "mean_dwell_s",
    "quality",
    "flash_crowd_at_s",
    "flash_crowd_size",
)


def room_specs_tuple(venue: VenueSpec) -> tuple[tuple, ...]:
    """Encode a venue's rooms as RunSpec-safe nested tuples."""
    return tuple(
        tuple(getattr(room, f) for f in _ROOM_FIELDS) for room in venue.rooms
    )


def venue_from_params(params) -> VenueSpec:
    """The venue a parameter set describes.

    A non-empty ``room_specs`` (encoded per :data:`_ROOM_FIELDS`, as built
    by :func:`room_specs_tuple` — the ``repro scenario --spec`` path)
    takes precedence; otherwise the uniform-venue parameters apply.
    """
    venue_kwargs = dict(
        duration_s=float(params["duration_s"]),
        tick_s=float(params["tick_s"]),
        seed=int(params["seed"]),
        archetypes=int(params["archetypes"]),
        wlan=str(params["wlan"]),
        multicast_rate_fraction=float(params["multicast_rate_fraction"]),
        grouping=str(params["grouping"]),
        min_group_iou=float(params["min_group_iou"]),
        target_fps=float(params["target_fps"]),
    )
    room_specs = params.get("room_specs") or ()
    if room_specs:
        rooms = tuple(
            RoomSpec(**dict(zip(_ROOM_FIELDS, encoded)))
            for encoded in room_specs
        )
        return VenueSpec(rooms=rooms, **venue_kwargs)
    return VenueSpec.uniform(
        num_rooms=int(params["num_rooms"]),
        capacity=int(params["capacity"]),
        initial_users=int(params["initial_users"]),
        arrival_rate_hz=float(params["arrival_rate_hz"]),
        mean_dwell_s=float(params["mean_dwell_s"]),
        quality=str(params["quality"]),
        flash_crowd_room=int(params["flash_crowd_room"]),
        flash_crowd_at_s=float(params["flash_crowd_at_s"]),
        flash_crowd_size=int(params["flash_crowd_size"]),
        **venue_kwargs,
    )


def run_one(spec: RunSpec) -> dict:
    """Execute one shard: the rooms listed in the spec, in venue order."""
    venue = venue_from_params({**{k: spec.get(k) for k in _VENUE_KEYS},
                               "seed": spec.seed})
    rooms = tuple(int(r) for r in spec.get("rooms"))
    return run_shard(venue, rooms)


def _decompose(params) -> list[RunSpec]:
    room_specs = params.get("room_specs") or ()
    num_rooms = len(room_specs) if room_specs else int(params["num_rooms"])
    shards = shard_rooms(num_rooms, int(params["num_shards"]))
    return [
        RunSpec.make(
            "venue_scale",
            seed=params["seed"],
            shard=shard_index,
            rooms=rooms,
            **{k: params[k] for k in _VENUE_KEYS},
        )
        for shard_index, rooms in enumerate(shards)
    ]


def _merge(params, runs) -> dict:
    return merge_shard_results([result for _, result in runs])


def _format(merged) -> str:
    rows = []
    for room in merged["rooms"]:
        rows.append([
            room["room"],
            room["ap"],
            room["sessions"],
            room["peak_active"],
            room["rejected"],
            round(room["mean_fps"], 1),
            round(room["total_airtime_s"] * 1e3, 1),
        ])
    table = format_table(
        ["room", "ap", "sessions", "peak", "rejected", "fps", "airtime ms"],
        rows,
    )
    v = merged["venue"]
    fps = "n/a" if v["mean_fps"] is None else f"{v['mean_fps']:.1f}"
    worst = (
        "n/a" if v["worst_tick_fps"] is None else f"{v['worst_tick_fps']:.1f}"
    )
    summary = (
        f"venue: {v['rooms']} rooms, {v['sessions']} sessions "
        f"({v['rejected']} rejected), peak {v['peak_active']} concurrent, "
        f"mean {fps} FPS (worst tick {worst})"
    )
    return f"{table}\n{summary}"


EXPERIMENT = register(
    Experiment(
        name="venue_scale",
        title="Venue scale — sharded multi-room population simulation",
        run_one=run_one,
        decompose=_decompose,
        merge=_merge,
        format_result=_format,
        default_params={
            "num_rooms": 10,
            "capacity": 1000,
            "initial_users": 900,
            "arrival_rate_hz": 20.0,
            "mean_dwell_s": 6.0,
            "quality": "high",
            "flash_crowd_room": 0,
            "flash_crowd_at_s": 5.0,
            "flash_crowd_size": 50,
            "room_specs": (),
            "duration_s": 10.0,
            "tick_s": 1.0,
            "archetypes": 8,
            "wlan": "ad",
            "multicast_rate_fraction": 0.8,
            "grouping": "greedy",
            "min_group_iou": 0.05,
            "target_fps": 30.0,
            "num_shards": 4,
            "seed": DEFAULT_SEED,
        },
        small_params={
            "num_rooms": 2,
            "capacity": 100,
            "initial_users": 90,
            "arrival_rate_hz": 2.0,
            # Big enough to overflow the room at the burst instant even
            # after pre-burst departures, so the smoke exercises admission
            # rejections.
            "flash_crowd_size": 60,
            "flash_crowd_at_s": 2.5,
            "duration_s": 5.0,
            "num_shards": 2,
        },
    )
)


def run_venue_scale(overrides=None, *, scale="default", workers=1) -> dict:
    """Run the venue experiment through the runner and return the merge."""
    return run_experiment(
        "venue_scale", overrides, scale=scale, workers=workers
    )
