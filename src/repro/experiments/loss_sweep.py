"""Loss sweep: FEC-protected multicast vs. ARQ-only under packet loss.

The cross-layer agenda's delivery question: when blockage-induced packet
loss hits a multicast group, which recovery discipline keeps the frame
rate?  This runner fixes a fully-overlapped multicast group (every member
wants the same cells — the best case for multicast, per Fig. 2) and sweeps
the per-packet loss probability, delivering the same frames through each
transport mode:

* ``ideal``  — the fluid no-loss model (reference ceiling);
* ``arq``    — block-ACK multicast: per-member feedback every round and
  retransmission of the *union* of losses, all inside the frame deadline;
* ``fec``    — rateless-style FEC sized for the weakest member, no feedback;
* ``hybrid`` — FEC for multicast, ARQ for unicast residuals (none here, so
  it tracks ``fec``; it separates from it under partial overlap).

The group's base transmission occupies ``airtime_fraction`` of the frame
interval, so ARQ has ``1 - airtime_fraction`` of headroom for recovery
rounds: plenty at 1-2% loss, hopeless at 5%+ where the union of six
members' losses no longer fits before the deadline — the collapse the
benchmark asserts, and the reason per-receiver ARQ does not scale to
multicast.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..core.qoe import QOE_SAMPLE
from ..mac.scheduler import UserDemand, plan_frame
from ..net import TransportConfig, TransportSimulator, packetize_cells
from ..obs import trace as _trace
from ..pointcloud import QUALITIES
from ..runner import Experiment, RunSpec, register, run_experiment
from .common import DEFAULT_SEED, format_table

__all__ = [
    "LOSS_SWEEP_MODES",
    "DEFAULT_LOSS_POINTS",
    "LossSweepResult",
    "run_loss_sweep",
    "run_one",
]

LOSS_SWEEP_MODES = ("ideal", "arq", "fec", "hybrid")
DEFAULT_LOSS_POINTS = (0.0, 0.01, 0.02, 0.05, 0.10, 0.20)


@dataclass(frozen=True)
class LossSweepResult:
    """Per (mode, loss point): goodput and sustained frame rate."""

    goodput_mbps: dict[str, dict[float, float]]
    effective_fps: dict[str, dict[float, float]]
    frame_delivery_rate: dict[str, dict[float, float]]
    loss_points: tuple[float, ...]
    modes: tuple[str, ...]
    target_fps: float

    def goodput_ratio(self, loss: float, over: str = "fec", under: str = "arq") -> float:
        """Goodput of one mode over another at a loss point (inf if under=0)."""
        top = self.goodput_mbps[over][loss]
        bottom = self.goodput_mbps[under][loss]
        if bottom <= 0:
            return float("inf") if top > 0 else 1.0
        return top / bottom

    def format(self) -> str:
        headers = ["loss"] + [
            f"{mode} Mbps|fps" for mode in self.modes
        ]
        rows = []
        for p in self.loss_points:
            row: list = [f"{p * 100:.0f}%"]
            for mode in self.modes:
                row.append(
                    f"{self.goodput_mbps[mode][p]:7.1f}|"
                    f"{self.effective_fps[mode][p]:4.1f}"
                )
            rows.append(row)
        return format_table(headers, rows)


def _build_plan(
    num_users: int,
    quality: str,
    target_fps: float,
    num_cells: int,
    multicast_rate_mbps: float,
):
    """A fully-overlapped multicast group: everyone wants the same cells."""
    frame_bytes = QUALITIES[quality].bitrate_mbps * 1e6 / 8.0 / target_fps
    cell_bytes = {c: frame_bytes / num_cells for c in range(num_cells)}
    demands = [
        UserDemand(
            user_id=u,
            cell_bytes=dict(cell_bytes),
            unicast_rate_mbps=multicast_rate_mbps,
        )
        for u in range(num_users)
    ]
    return plan_frame(
        demands, groups=[(tuple(range(num_users)), multicast_rate_mbps)]
    )


def run_one(spec: RunSpec) -> dict:
    """One transport mode across every loss point (independent sims)."""
    mode = spec.get("mode")
    if mode not in LOSS_SWEEP_MODES:
        raise ValueError(f"unknown transport mode {mode!r}")
    loss_points = tuple(float(p) for p in spec.get("loss_points"))
    num_users = int(spec.get("num_users"))
    num_frames = int(spec.get("num_frames"))
    quality = str(spec.get("quality"))
    target_fps = float(spec.get("target_fps"))
    airtime_fraction = float(spec.get("airtime_fraction"))
    num_cells = int(spec.get("num_cells"))
    if not 0.0 < airtime_fraction <= 1.0:
        raise ValueError("airtime_fraction must be in (0, 1]")

    # Size the multicast rate from the packetized (wire) frame so the base
    # transmission time is exactly airtime_fraction / target_fps.
    probe = _build_plan(num_users, quality, target_fps, num_cells, 1.0)
    shared_unit = packetize_cells(
        probe.demands[0].cell_bytes, TransportConfig().packetization
    )
    rate_mbps = (
        shared_unit.wire_bytes * 8.0 * target_fps / airtime_fraction / 1e6
    )
    plan = _build_plan(num_users, quality, target_fps, num_cells, rate_mbps)

    points = []
    for p in loss_points:
        sim = TransportSimulator(TransportConfig.preset(mode, base_per=p))
        sim.reseed(spec.seed)
        pers = {u: p for u in range(num_users)}
        airtime = 0.0
        delivered_bytes = 0.0
        delivered_frames = 0
        fps_sum = 0.0
        for frame in range(num_frames):
            outcome = sim.frame_outcome(
                plan, pers, target_fps=target_fps, frame=frame
            )
            airtime += outcome.airtime_s
            delivered_bytes += outcome.app_bytes_delivered
            delivered_frames += sum(outcome.delivered.values())
            frame_fps = outcome.effective_fps(cap_fps=target_fps)
            fps_sum += frame_fps
            if _trace._RECORDER is not None:
                QOE_SAMPLE.emit(
                    user=-1, fps=frame_fps, **_trace.correlation(frame=frame)
                )
        points.append(
            {
                "loss": p,
                "goodput_mbps": (
                    delivered_bytes * 8.0 / airtime / 1e6 if airtime > 0 else 0.0
                ),
                "effective_fps": fps_sum / num_frames,
                "frame_delivery_rate": delivered_frames / (num_frames * num_users),
            }
        )
    return {"mode": mode, "points": points}


def _decompose(params: dict) -> list[RunSpec]:
    for mode in params["modes"]:
        if mode not in LOSS_SWEEP_MODES:
            raise ValueError(f"unknown transport mode {mode!r}")
    if not 0.0 < params["airtime_fraction"] <= 1.0:
        raise ValueError("airtime_fraction must be in (0, 1]")
    return [
        RunSpec.make(
            "loss_sweep",
            seed=params["seed"],
            mode=mode,
            loss_points=params["loss_points"],
            num_users=params["num_users"],
            num_frames=params["num_frames"],
            quality=params["quality"],
            target_fps=params["target_fps"],
            airtime_fraction=params["airtime_fraction"],
            num_cells=params["num_cells"],
        )
        for mode in params["modes"]
    ]


def _merge(params: dict, runs: list) -> dict:
    return {
        "modes": list(params["modes"]),
        "loss_points": [float(p) for p in params["loss_points"]],
        "target_fps": float(params["target_fps"]),
        "per_mode": [result for _, result in runs],
    }


def _result_from_merged(merged: dict) -> LossSweepResult:
    goodput: dict[str, dict[float, float]] = {}
    fps: dict[str, dict[float, float]] = {}
    delivery: dict[str, dict[float, float]] = {}
    for entry in merged["per_mode"]:
        mode = entry["mode"]
        goodput[mode] = {
            float(pt["loss"]): float(pt["goodput_mbps"]) for pt in entry["points"]
        }
        fps[mode] = {
            float(pt["loss"]): float(pt["effective_fps"]) for pt in entry["points"]
        }
        delivery[mode] = {
            float(pt["loss"]): float(pt["frame_delivery_rate"])
            for pt in entry["points"]
        }
    return LossSweepResult(
        goodput_mbps=goodput,
        effective_fps=fps,
        frame_delivery_rate=delivery,
        loss_points=tuple(float(p) for p in merged["loss_points"]),
        modes=tuple(merged["modes"]),
        target_fps=float(merged["target_fps"]),
    )


EXPERIMENT = register(
    Experiment(
        name="loss_sweep",
        title="Loss sweep — transport goodput vs. packet loss",
        run_one=run_one,
        decompose=_decompose,
        merge=_merge,
        format_result=lambda merged: _result_from_merged(merged).format(),
        default_params={
            "modes": LOSS_SWEEP_MODES,
            "loss_points": DEFAULT_LOSS_POINTS,
            "num_users": 6,
            "num_frames": 30,
            "quality": "high",
            "target_fps": 30.0,
            "airtime_fraction": 0.8,
            "num_cells": 64,
            "seed": DEFAULT_SEED,
        },
        small_params={"num_frames": 6},
    )
)


def run_loss_sweep(
    modes: tuple[str, ...] = LOSS_SWEEP_MODES,
    loss_points: tuple[float, ...] = DEFAULT_LOSS_POINTS,
    num_users: int = 6,
    num_frames: int = 30,
    quality: str = "high",
    target_fps: float = 30.0,
    airtime_fraction: float = 0.8,
    num_cells: int = 64,
    seed: int = DEFAULT_SEED,
) -> LossSweepResult:
    """Sweep per-packet loss across transport modes on one multicast group.

    The multicast rate is set so the group's base (no-recovery) wire time
    fills ``airtime_fraction`` of a frame interval — the operating point a
    well-run admission controller targets.  Goodput counts only application
    bytes of frames that *completely* arrived within the frame deadline,
    divided by all airtime spent (including feedback, retransmissions and
    repair packets); effective FPS is the per-user mean delivered frame
    rate.  Deterministic for a fixed ``seed``.
    """
    merged = run_experiment(
        "loss_sweep",
        {
            "modes": tuple(modes),
            "loss_points": tuple(loss_points),
            "num_users": num_users,
            "num_frames": num_frames,
            "quality": quality,
            "target_fps": target_fps,
            "airtime_fraction": airtime_fraction,
            "num_cells": num_cells,
            "seed": seed,
        },
    )
    return _result_from_merged(merged)
