"""Policy comparison: heuristic vs. utility-optimal vs. QoE-aware stacks.

Head-to-head evaluation of the selectable decision policies across loss
and user-count axes, with two complementary measurements per operating
point:

* **Closed loop** — one full streaming session per policy stack
  (adaptation policy x grouping strategy) under identical content, rates,
  blockage and transport conditions; reported as session QoE and frame
  rate.
* **Allocation** — the static rate-utility question the tentpole poses:
  under the *identical* MAC-reported throughput budget, compare the
  summed utility of the heuristic equal-share greedy fill
  (``CrossLayerPolicy``'s quality rule) against the exact DP allocator of
  :mod:`repro.core.utility`.  The DP is exact over the quality lattice,
  so ``optimal_utility >= heuristic_utility`` must hold at every swept
  point; the merged result carries that as ``utility_dominates`` and the
  golden fixture pins it.

Three stacks:

* ``heuristic`` — ``CrossLayerPolicy`` + ``greedy`` similarity grouping
  (the paper's defaults);
* ``utility``  — ``UtilityOptimalPolicy`` + ``greedy`` grouping;
* ``qoe-aware`` — ``CrossLayerPolicy`` + ``qoe`` grouping.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..core import (
    CapacityRateProvider,
    CrossLayerPolicy,
    SessionConfig,
    StreamingSession,
    UserAllocationInput,
    UtilityOptimalPolicy,
    allocate_qualities,
    assignment_utility,
    quality_rate_table,
)
from ..mac import AD_MODEL, RecoveryPolicy, apply_recovery
from ..mmwave import compute_blockage_timeline
from ..net import TransportConfig
from ..pointcloud import CellGrid, VisibilityConfig, compute_visibility
from ..runner import Experiment, RunSpec, register, run_experiment
from .common import (
    AP_POSITION,
    CONTENT_CENTER,
    DEFAULT_SEED,
    format_table,
    room_video,
    study_in_room,
)

__all__ = [
    "POLICY_STACKS",
    "DEFAULT_POLICY_LOSS_POINTS",
    "DEFAULT_POLICY_USER_COUNTS",
    "PolicyComparisonResult",
    "run_policy_comparison",
    "run_one",
]

# stack name -> (adaptation policy string, grouping string)
POLICY_STACKS: dict[str, tuple[str, str]] = {
    "heuristic": ("cross-layer", "greedy"),
    "utility": ("utility-optimal", "greedy"),
    "qoe-aware": ("cross-layer", "qoe"),
}

DEFAULT_POLICY_LOSS_POINTS = (0.0, 0.02, 0.05)
DEFAULT_POLICY_USER_COUNTS = (2, 4, 6)


@dataclass(frozen=True)
class PolicyComparisonResult:
    """Per (stack, loss, users): session QoE; per point: utility check."""

    stacks: tuple[str, ...]
    loss_points: tuple[float, ...]
    user_counts: tuple[int, ...]
    qoe_score: dict[tuple[str, float, int], float]
    mean_fps: dict[tuple[str, float, int], float]
    heuristic_utility: dict[tuple[float, int], float]
    optimal_utility: dict[tuple[float, int], float]
    utility_dominates: bool

    def format(self) -> str:
        headers = ["loss", "users"] + [
            f"{stack} qoe|fps" for stack in self.stacks
        ] + ["heur_u", "opt_u"]
        rows = []
        for loss in self.loss_points:
            for n in self.user_counts:
                row: list = [f"{loss * 100:.0f}%", n]
                for stack in self.stacks:
                    key = (stack, loss, n)
                    row.append(
                        f"{self.qoe_score[key]:7.1f}|{self.mean_fps[key]:4.1f}"
                    )
                point = (loss, n)
                row.append(f"{self.heuristic_utility[point]:.4f}")
                row.append(f"{self.optimal_utility[point]:.4f}")
                rows.append(row)
        verdict = (
            "DP allocator weakly dominates the greedy fill at every point"
            if self.utility_dominates
            else "DP allocator LOST to the greedy fill somewhere (bug!)"
        )
        return format_table(headers, rows) + f"\n{verdict}"


def _allocation_comparison(
    study, video, rates: CapacityRateProvider, loss: float, num_users: int
) -> dict:
    """Greedy-fill vs. DP summed utility under one identical MAC budget.

    The budget is the MAC's reported aggregate throughput at t=0, shrunk
    by the swept loss rate (lost airtime serves nobody).  The heuristic
    arm is ``CrossLayerPolicy``'s quality rule applied to an equal share
    of that budget per user; the optimal arm is the exact DP allocator
    over the same users, weights, and budget.
    """
    budget_mbps = rates.unicast_rate_mbps(0, 0) * (1.0 - loss)
    grid = CellGrid.covering(video.bounds, 0.5, margin=0.05)
    occupancy = grid.occupancy(video[0])
    users = []
    for u in range(num_users):
        pose = study.traces[u].pose_at(0.0)
        vis = compute_visibility(occupancy, pose.frustum(), VisibilityConfig())
        distance_m = float(np.linalg.norm(pose.position - CONTENT_CENTER))
        users.append(
            UserAllocationInput(
                user_id=u,
                visible_fraction=float(vis.visible_fraction),
                distance_m=distance_m,
            )
        )

    share = budget_mbps / num_users
    heuristic = {}
    for user in users:
        quality = "low"
        for name, rate in quality_rate_table(user.visible_fraction):
            if rate <= share:
                quality = name
        heuristic[user.user_id] = quality
    heuristic_utility, heuristic_rate = assignment_utility(users, heuristic)
    optimal = allocate_qualities(users, budget_mbps)
    dominates = bool(
        optimal.total_utility >= heuristic_utility - 1e-9
        or heuristic_rate > budget_mbps  # greedy floor busted the budget
    )
    return {
        "budget_mbps": float(budget_mbps),
        "heuristic_utility": float(heuristic_utility),
        "heuristic_rate_mbps": float(heuristic_rate),
        "optimal_utility": float(optimal.total_utility),
        "optimal_rate_mbps": float(optimal.total_rate_mbps),
        "optimal_feasible": bool(optimal.feasible),
        "utility_dominates": dominates,
    }


def run_one(spec: RunSpec) -> dict:
    """One policy stack at one (loss, user-count) operating point."""
    stack = str(spec.get("stack"))
    if stack not in POLICY_STACKS:
        raise ValueError(
            f"unknown policy stack {stack!r}; choose from {sorted(POLICY_STACKS)}"
        )
    loss = float(spec.get("loss"))
    num_users = int(spec.get("num_users"))
    duration_s = float(spec.get("duration_s"))
    seed = spec.seed
    adaptation_name, grouping = POLICY_STACKS[stack]

    study = study_in_room(num_users=num_users, duration_s=duration_s, seed=seed)
    video = room_video("high")
    timeline = compute_blockage_timeline(study, AP_POSITION)
    recovered = apply_recovery(
        timeline, RecoveryPolicy.proactive_default(), seed=seed
    )
    rates = CapacityRateProvider(
        model=AD_MODEL, num_users=num_users, timeline=recovered
    )
    adaptation = (
        UtilityOptimalPolicy()
        if adaptation_name == "utility-optimal"
        else CrossLayerPolicy()
    )
    config = SessionConfig(
        video=video,
        study=study,
        rates=rates,
        visibility=VisibilityConfig(),
        grouping=grouping,
        adaptation=adaptation,
        duration_s=duration_s,
        transport=TransportConfig(mode="hybrid", seed=seed).with_base_per(loss),
    )
    report = StreamingSession(config).run()
    summary = report.summary()
    played = sum(user.frames_played for user in report.users)
    on_time = sum(user.frames_on_time for user in report.users)
    summary["late_fraction"] = 1.0 - (on_time / played if played else 0.0)

    return {
        "stack": stack,
        "loss": loss,
        "num_users": num_users,
        "session": summary,
        "allocation": _allocation_comparison(
            study, video, rates, loss, num_users
        ),
    }


def _decompose(params: dict) -> list[RunSpec]:
    for stack in params["stacks"]:
        if stack not in POLICY_STACKS:
            raise ValueError(
                f"unknown policy stack {stack!r}; choose from "
                f"{sorted(POLICY_STACKS)}"
            )
    return [
        RunSpec.make(
            "policy_comparison",
            seed=params["seed"],
            stack=stack,
            loss=loss,
            num_users=num_users,
            duration_s=params["duration_s"],
        )
        for stack in params["stacks"]
        for loss in params["loss_points"]
        for num_users in params["user_counts"]
    ]


def _merge(params: dict, runs: list) -> dict:
    results = [result for _, result in runs]
    return {
        "stacks": list(params["stacks"]),
        "loss_points": [float(p) for p in params["loss_points"]],
        "user_counts": [int(n) for n in params["user_counts"]],
        "runs": results,
        "utility_dominates": all(
            r["allocation"]["utility_dominates"] for r in results
        ),
    }


def _result_from_merged(merged: dict) -> PolicyComparisonResult:
    qoe: dict[tuple[str, float, int], float] = {}
    fps: dict[tuple[str, float, int], float] = {}
    heuristic: dict[tuple[float, int], float] = {}
    optimal: dict[tuple[float, int], float] = {}
    for r in merged["runs"]:
        key = (str(r["stack"]), float(r["loss"]), int(r["num_users"]))
        qoe[key] = float(r["session"]["qoe_score"])
        fps[key] = float(r["session"]["mean_fps"])
        point = (float(r["loss"]), int(r["num_users"]))
        heuristic[point] = float(r["allocation"]["heuristic_utility"])
        optimal[point] = float(r["allocation"]["optimal_utility"])
    return PolicyComparisonResult(
        stacks=tuple(merged["stacks"]),
        loss_points=tuple(float(p) for p in merged["loss_points"]),
        user_counts=tuple(int(n) for n in merged["user_counts"]),
        qoe_score=qoe,
        mean_fps=fps,
        heuristic_utility=heuristic,
        optimal_utility=optimal,
        utility_dominates=bool(merged["utility_dominates"]),
    )


EXPERIMENT = register(
    Experiment(
        name="policy_comparison",
        title="Policy comparison — heuristic vs. utility-optimal vs. QoE-aware",
        run_one=run_one,
        decompose=_decompose,
        merge=_merge,
        format_result=lambda merged: _result_from_merged(merged).format(),
        default_params={
            "stacks": tuple(POLICY_STACKS),
            "loss_points": DEFAULT_POLICY_LOSS_POINTS,
            "user_counts": DEFAULT_POLICY_USER_COUNTS,
            "duration_s": 5.0,
            "seed": DEFAULT_SEED,
        },
        small_params={
            "loss_points": (0.0, 0.05),
            "user_counts": (2, 4),
            "duration_s": 3.0,
        },
    )
)


def run_policy_comparison(
    stacks: tuple[str, ...] = tuple(POLICY_STACKS),
    loss_points: tuple[float, ...] = DEFAULT_POLICY_LOSS_POINTS,
    user_counts: tuple[int, ...] = DEFAULT_POLICY_USER_COUNTS,
    duration_s: float = 5.0,
    seed: int = DEFAULT_SEED,
) -> PolicyComparisonResult:
    """Sweep the policy stacks across loss and user-count axes.

    One closed-loop session per (stack, loss, users) plus the static
    allocation comparison at each operating point.  Deterministic for a
    fixed ``seed``; the per-run fan-out parallelizes under ``--parallel``
    with bit-identical merged output.
    """
    merged = run_experiment(
        "policy_comparison",
        {
            "stacks": tuple(stacks),
            "loss_points": tuple(loss_points),
            "user_counts": tuple(user_counts),
            "duration_s": duration_s,
            "seed": seed,
        },
    )
    return _result_from_merged(merged)
