"""Table 1: multi-user streaming performance, vanilla vs. ViVo.

Reproduces the paper's scaling experiment: the maximum achievable frame
rate (capped at 30 FPS) when 1-3 users share 802.11ac or 1-7 users share
802.11ad, streaming the soldier video at 330K/430K/550K points per frame,
with the vanilla full-cloud player and the visibility-optimized ViVo
player.  Also reports the per-user transport data rate column.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..core import CapacityRateProvider, FixedQualityPolicy, SessionConfig, measure_max_fps
from ..mac import AC_MODEL, AD_MODEL, WlanCapacityModel
from ..pointcloud import QUALITY_ORDER, VisibilityConfig
from ..runner import Experiment, RunSpec, register, run_experiment
from .common import DEFAULT_SEED, default_study, default_video, format_table

__all__ = ["Table1Row", "Table1Result", "run_table1", "run_one", "PAPER_TABLE1"]

# users per network in the paper's table (3 on 802.11ac, 7 on 802.11ad).
_MAX_USERS = {"802.11ac": 3, "802.11ad": 7}
_MODELS = {"802.11ac": AC_MODEL, "802.11ad": AD_MODEL}

# The paper's measured values, for side-by-side comparison in EXPERIMENTS.md.
# network -> users -> (per-user Mbps, vanilla (low, med, high), vivo (...)).
PAPER_TABLE1: dict[str, dict[int, tuple]] = {
    "802.11ac": {
        1: (374, (30.0, 30.0, 30.0), (30.0, 30.0, 30.0)),
        2: (180, (21.5, 17.4, 14.1), (30.0, 28.5, 21.9)),
        3: (112, (13.6, 10.9, 8.4), (19.2, 17.7, 13.6)),
    },
    "802.11ad": {
        1: (1270, (30.0, 30.0, 30.0), (30.0, 30.0, 30.0)),
        2: (575, (30.0, 30.0, 30.0), (30.0, 30.0, 30.0)),
        3: (382, (30.0, 30.0, 30.0), (30.0, 30.0, 30.0)),
        4: (298, (30.0, 29.3, 21.8), (30.0, 30.0, 30.0)),
        5: (231, (27.4, 21.6, 18.0), (30.0, 30.0, 29.3)),
        6: (175, (19.8, 16.5, 13.2), (30.0, 27.5, 21.2)),
        7: (144, (16.8, 13.5, 11.2), (27.0, 22.9, 17.2)),
    },
}


@dataclass(frozen=True)
class Table1Row:
    """One (network, user-count) row."""

    network: str
    num_users: int
    per_user_rate_mbps: float
    vanilla_fps: tuple[float, float, float]  # low, medium, high
    vivo_fps: tuple[float, float, float]


@dataclass(frozen=True)
class Table1Result:
    """All Table 1 rows plus lookup/formatting helpers."""

    rows: list[Table1Row]

    def row(self, network: str, num_users: int) -> Table1Row:
        for r in self.rows:
            if r.network == network and r.num_users == num_users:
                return r
        raise KeyError(f"no row for {network} x {num_users}")

    def format(self) -> str:
        headers = [
            "Network", "Users", "Mbps/user",
            "V-330K", "V-430K", "V-550K",
            "ViVo-330K", "ViVo-430K", "ViVo-550K",
        ]
        rows = [
            [r.network, r.num_users, round(r.per_user_rate_mbps, 0),
             *[round(f, 1) for f in r.vanilla_fps],
             *[round(f, 1) for f in r.vivo_fps]]
            for r in self.rows
        ]
        return format_table(headers, rows)


def _fps_for(
    model: WlanCapacityModel,
    num_users: int,
    quality: str,
    vivo: bool,
    num_frames: int,
    seed: int,
) -> float:
    video = default_video(quality)
    study = default_study(num_users=num_users, duration_s=6.0, seed=seed)
    config = SessionConfig(
        video=video,
        study=study,
        rates=CapacityRateProvider(model=model, num_users=num_users),
        visibility=VisibilityConfig() if vivo else VisibilityConfig.vanilla(),
        grouping="none",
        adaptation=FixedQualityPolicy(quality),
    )
    fps = measure_max_fps(config, num_frames=num_frames, stride=3)
    return float(np.mean(fps))


def run_one(spec: RunSpec) -> dict:
    """One table row: (network, user count) at every quality, both players."""
    network = spec.get("network")
    if network not in _MODELS:
        raise ValueError(f"unknown network {network!r}")
    model = _MODELS[network]
    n = int(spec.get("num_users"))
    num_frames = int(spec.get("num_frames"))
    vanilla = [
        _fps_for(model, n, q, vivo=False, num_frames=num_frames, seed=spec.seed)
        for q in QUALITY_ORDER
    ]
    vivo = [
        _fps_for(model, n, q, vivo=True, num_frames=num_frames, seed=spec.seed)
        for q in QUALITY_ORDER
    ]
    return {
        "network": network,
        "num_users": n,
        "per_user_rate_mbps": float(model.per_user_mbps(n)),
        "vanilla_fps": vanilla,
        "vivo_fps": vivo,
    }


def _decompose(params: dict) -> list[RunSpec]:
    return [
        RunSpec.make(
            "table1",
            seed=params["seed"],
            network=network,
            num_users=n,
            num_frames=params["num_frames"],
        )
        for network in params["networks"]
        for n in range(1, _MAX_USERS[network] + 1)
    ]


def _merge(params: dict, runs: list) -> dict:
    return {"rows": [result for _, result in runs]}


def _result_from_merged(merged: dict) -> Table1Result:
    return Table1Result(
        rows=[
            Table1Row(
                network=r["network"],
                num_users=int(r["num_users"]),
                per_user_rate_mbps=float(r["per_user_rate_mbps"]),
                vanilla_fps=tuple(float(f) for f in r["vanilla_fps"]),
                vivo_fps=tuple(float(f) for f in r["vivo_fps"]),
            )
            for r in merged["rows"]
        ]
    )


EXPERIMENT = register(
    Experiment(
        name="table1",
        title="Table 1 — multi-user FPS, vanilla vs. ViVo",
        run_one=run_one,
        decompose=_decompose,
        merge=_merge,
        format_result=lambda merged: _result_from_merged(merged).format(),
        default_params={
            "num_frames": 45,
            "networks": ("802.11ac", "802.11ad"),
            "seed": DEFAULT_SEED,
        },
        small_params={"num_frames": 6, "networks": ("802.11ac",)},
    )
)


def run_table1(
    num_frames: int = 45,
    seed: int = DEFAULT_SEED,
    networks: tuple[str, ...] = ("802.11ac", "802.11ad"),
) -> Table1Result:
    """Regenerate Table 1 (per-user rates and FPS at all qualities)."""
    for network in networks:
        if network not in _MODELS:
            raise ValueError(f"unknown network {network!r}")
    merged = run_experiment(
        "table1",
        {"num_frames": num_frames, "seed": seed, "networks": tuple(networks)},
    )
    return _result_from_merged(merged)
