"""Fig. 3b: CDF of the best common RSS the *default codebook* can offer
multicast groups of 1, 2 and 3 users.

The paper measures, over user positions from the viewport traces, the
maximum RSS (over default sector beams) that can be guaranteed to *every*
member of a multicast group — and finds that an RSS of -68 dBm (enough for
the 550K-point quality) is available at ~96.5% of positions for one user
but only ~79% / ~60% for groups of two / three: default single-lobe beams
cannot cover a spread-out group.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..runner import Experiment, RunSpec, register, run_experiment
from .common import (
    DEFAULT_SEED,
    cdf_at,
    default_channel,
    default_codebook,
    study_in_room,
)

__all__ = ["Fig3bResult", "run_fig3b", "run_one"]

RSS_TARGET_DBM = -68.0  # "approximately 384 Mbps ... necessary for 550K points"


@dataclass(frozen=True)
class Fig3bResult:
    """Max-common-RSS samples per group size."""

    samples: dict[int, np.ndarray]

    def coverage_at(self, group_size: int, rss_dbm: float = RSS_TARGET_DBM) -> float:
        """Fraction of sampled positions with common RSS >= threshold."""
        return 1.0 - cdf_at(self.samples[group_size], rss_dbm - 1e-9)

    def summary(self) -> dict[int, float]:
        return {k: self.coverage_at(k) for k in sorted(self.samples)}


def run_one(spec: RunSpec) -> dict:
    """Whole sweep in one unit: the RNG draws interleave across group sizes."""
    result = _compute(
        group_sizes=tuple(int(k) for k in spec.get("group_sizes")),
        num_instants=int(spec.get("num_instants")),
        num_users=int(spec.get("num_users")),
        duration_s=float(spec.get("duration_s")),
        seed=spec.seed,
    )
    return {
        "groups": [
            {"group_size": int(k), "rss_dbm": [float(x) for x in result.samples[k]]}
            for k in sorted(result.samples)
        ]
    }


def _result_from_merged(merged: dict) -> Fig3bResult:
    return Fig3bResult(
        samples={
            int(g["group_size"]): np.array(g["rss_dbm"], dtype=np.float64)
            for g in merged["groups"]
        }
    )


def _format(merged: dict) -> str:
    result = _result_from_merged(merged)
    return "\n".join(
        f"{k} user(s): coverage@-68dBm = {cov:.3f}"
        for k, cov in sorted(result.summary().items())
    )


EXPERIMENT = register(
    Experiment(
        name="fig3b",
        title="Fig. 3b — default-codebook multicast coverage",
        run_one=run_one,
        decompose=lambda params: [
            RunSpec.make(
                "fig3b",
                seed=params["seed"],
                group_sizes=params["group_sizes"],
                num_instants=params["num_instants"],
                num_users=params["num_users"],
                duration_s=params["duration_s"],
            )
        ],
        merge=lambda params, runs: runs[0][1],
        format_result=_format,
        default_params={
            "group_sizes": (1, 2, 3),
            "num_instants": 120,
            "num_users": 4,
            "duration_s": 10.0,
            "seed": DEFAULT_SEED,
        },
        small_params={"num_instants": 20},
    )
)


def run_fig3b(
    group_sizes: tuple[int, ...] = (1, 2, 3),
    num_instants: int = 120,
    num_users: int = 4,
    duration_s: float = 10.0,
    seed: int = DEFAULT_SEED,
) -> Fig3bResult:
    """Sweep default-codebook multicast coverage over trace positions."""
    merged = run_experiment(
        "fig3b",
        {
            "group_sizes": tuple(group_sizes),
            "num_instants": num_instants,
            "num_users": num_users,
            "duration_s": duration_s,
            "seed": seed,
        },
    )
    return _result_from_merged(merged)


def _compute(
    group_sizes: tuple[int, ...],
    num_instants: int,
    num_users: int,
    duration_s: float,
    seed: int,
) -> Fig3bResult:
    """For each sampled instant a random group of each size is drawn; the best
    common RSS is the max over codebook beams of the min over members.  The
    other users present in the room act as blockers (their bodies attenuate
    the paths), which creates the low-RSS tail of the measured CDFs.
    """
    study = study_in_room(num_users=num_users, duration_s=duration_s, seed=seed)
    channel = default_channel()
    codebook = default_codebook()
    weight_matrix = codebook.weight_matrix
    rng = np.random.default_rng(seed)

    sample_indices = rng.integers(0, study.num_samples, size=num_instants)
    samples: dict[int, list[float]] = {k: [] for k in group_sizes}
    for s in sample_indices:
        positions = study.positions_at(int(s))
        # Per-user RSS of every beam at this instant (users, beams), with
        # every *other* user's body as a potential blocker.
        from ..mmwave import bodies_from_positions

        rss = np.stack(
            [
                channel.rss_matrix_dbm(
                    weight_matrix, pos, bodies_from_positions(positions, exclude=u)
                )
                for u, pos in enumerate(positions)
            ]
        )
        for k in group_sizes:
            members = rng.choice(num_users, size=k, replace=False)
            common = rss[members].min(axis=0)  # min over group, per beam
            samples[k].append(float(common.max()))  # best beam
    return Fig3bResult(samples={k: np.array(v) for k, v in samples.items()})
