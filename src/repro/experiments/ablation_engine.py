"""Runner experiments behind the ablation engine.

Two registered experiments back :mod:`repro.ablation`:

* ``ablation_session`` — one closed-loop multi-user streaming session
  with *every* cross-layer component exposed as a RunSpec parameter
  (predictor, grouping, custom beams, blockage mitigation, transport
  mode, adaptation policy) under lossy, capacity-constrained conditions.
  One spec per variant; this is the engine's default scenario.
* ``ablation_importance`` — the whole study as a single experiment: its
  ``decompose`` emits the engine-generated run matrix (baseline +
  leave-one-out + optional pairwise) and its ``merge`` folds the
  per-variant results into the canonical importance report.  Registering
  the study itself buys the golden-result suite, the serial/parallel
  bit-identity tests, and ``repro run ablation_importance`` for free.

The session regime deliberately stresses every component at once: enough
users to contend for airtime, a lossy link (so FEC matters), blockage
events (so mitigation matters), and head motion (so prediction and
grouping matter).  Ablating adaptation *raises* raw bitrate while
inflating stalls — exactly why the engine scores multiple metrics with
explicit polarity instead of a single scalar.
"""

from __future__ import annotations

from ..core import (
    CapacityRateProvider,
    CrossLayerPolicy,
    FixedQualityPolicy,
    SessionConfig,
    StreamingSession,
    UtilityOptimalPolicy,
)
from ..mac import AD_MODEL, RecoveryPolicy, apply_recovery
from ..mmwave import compute_blockage_timeline
from ..net import TransportConfig
from ..pointcloud import VisibilityConfig
from ..prediction import (
    BlockageForecaster,
    JointViewportPredictor,
    LastValuePredictor,
    LinearRegressionPredictor,
)
from ..runner import Experiment, RunSpec, register
from .common import AP_POSITION, DEFAULT_SEED, room_video, study_in_room

__all__ = [
    "run_one",
    "PREDICTORS",
    "SESSION_EXPERIMENT",
    "IMPORTANCE_EXPERIMENT",
]

# Session predictor choices (the per-user interface the session drives);
# the blockage forecaster wraps its own joint predictor around the same
# base family.
PREDICTORS = {
    "last-value": LastValuePredictor,
    "linear-regression": LinearRegressionPredictor,
}

# When custom multicast beams are ablated, a group transmission falls back
# to stock single-user beams and pays the group-minimum-MCS penalty; the
# capacity model expresses that as a multicast rate fraction below 1.0.
_STOCK_BEAM_RATE_FRACTION = 0.75

_ADAPTATIONS = ("cross-layer", "fixed-high", "utility-optimal")
_TRANSPORT_MODES = ("ideal", "arq", "fec", "hybrid")


def run_one(spec: RunSpec) -> dict:
    """Execute one full cross-layer session variant and summarize it."""
    num_users = int(spec.get("num_users"))
    duration_s = float(spec.get("duration_s"))
    seed = spec.seed
    predictor = str(spec.get("predictor"))
    if predictor not in PREDICTORS:
        raise ValueError(
            f"unknown predictor {predictor!r}; choose from "
            f"{sorted(PREDICTORS)}"
        )
    adaptation = str(spec.get("adaptation"))
    if adaptation not in _ADAPTATIONS:
        raise ValueError(
            f"unknown adaptation {adaptation!r}; choose from {_ADAPTATIONS}"
        )
    transport_mode = str(spec.get("transport_mode"))
    if transport_mode not in _TRANSPORT_MODES:
        raise ValueError(
            f"unknown transport mode {transport_mode!r}; choose from "
            f"{_TRANSPORT_MODES}"
        )

    study = study_in_room(num_users=num_users, duration_s=duration_s, seed=seed)
    video = room_video("high")

    # Blockage mitigation on: proactive recovery (reflector fallback) plus
    # a joint blockage forecaster; off: reactive-only re-search, no
    # forecaster.
    timeline = compute_blockage_timeline(study, AP_POSITION)
    mitigate = bool(spec.get("blockage_mitigation"))
    policy = (
        RecoveryPolicy.proactive_default() if mitigate else RecoveryPolicy.reactive()
    )
    recovered = apply_recovery(timeline, policy, seed=seed)

    rates = CapacityRateProvider(
        model=AD_MODEL,
        num_users=num_users,
        timeline=recovered,
        multicast_rate_fraction=(
            1.0 if bool(spec.get("custom_beams")) else _STOCK_BEAM_RATE_FRACTION
        ),
    )

    base_predictor = PREDICTORS[predictor]()
    forecaster = None
    if mitigate:
        forecaster = BlockageForecaster(
            ap_position=AP_POSITION,
            predictor=JointViewportPredictor(base=PREDICTORS[predictor]()),
            horizon_s=float(spec.get("horizon_s")),
        )

    if adaptation == "cross-layer":
        adaptation_policy: object = CrossLayerPolicy()
    elif adaptation == "utility-optimal":
        adaptation_policy = UtilityOptimalPolicy()
    else:
        adaptation_policy = FixedQualityPolicy("high")
    transport = TransportConfig(mode=transport_mode, seed=seed).with_base_per(
        float(spec.get("loss_rate"))
    )
    config = SessionConfig(
        video=video,
        study=study,
        rates=rates,
        visibility=VisibilityConfig(),
        grouping=str(spec.get("grouping")),
        adaptation=adaptation_policy,
        predictor=base_predictor,
        blockage_forecaster=forecaster,
        duration_s=duration_s,
        max_buffer_frames=int(spec.get("max_buffer_frames")),
        adaptation_interval_s=float(spec.get("adaptation_interval_s")),
        transport=transport,
    )
    report = StreamingSession(config).run()
    summary = report.summary()
    played = sum(user.frames_played for user in report.users)
    on_time = sum(user.frames_on_time for user in report.users)
    summary["late_fraction"] = 1.0 - (on_time / played if played else 0.0)
    return summary


_PARAM_KEYS = (
    "num_users",
    "duration_s",
    "loss_rate",
    "max_buffer_frames",
    "adaptation_interval_s",
    "horizon_s",
    "predictor",
    "grouping",
    "custom_beams",
    "blockage_mitigation",
    "transport_mode",
    "adaptation",
)


def _decompose(params) -> list[RunSpec]:
    return [
        RunSpec.make(
            "ablation_session",
            seed=params["seed"],
            **{k: params[k] for k in _PARAM_KEYS},
        )
    ]


def _merge(params, runs) -> dict:
    [(_, result)] = runs
    return result


def _format(merged) -> str:
    return (
        f"users {merged['users']}, qoe {merged['qoe_score']:.1f}, "
        f"fps {merged['mean_fps']:.1f}, "
        f"bitrate {merged['mean_bitrate_mbps']:.1f} Mbps, "
        f"stall {merged['stall_time_s']:.1f} s, "
        f"late {merged['late_fraction'] * 100:.1f}%"
    )


SESSION_EXPERIMENT = register(
    Experiment(
        name="ablation_session",
        title="Ablation session — full cross-layer session, every toggle a parameter",
        run_one=run_one,
        decompose=_decompose,
        merge=_merge,
        format_result=_format,
        default_params={
            "num_users": 6,
            "duration_s": 8.0,
            "loss_rate": 0.15,
            "max_buffer_frames": 4,
            "adaptation_interval_s": 0.25,
            "horizon_s": 0.5,
            "predictor": "linear-regression",
            "grouping": "greedy",
            "custom_beams": True,
            "blockage_mitigation": True,
            "transport_mode": "hybrid",
            "adaptation": "cross-layer",
            "seed": DEFAULT_SEED,
        },
        # Still discriminates every component (nonzero leave-one-out
        # deltas) while running ~2x faster than the default workload.
        small_params={
            "duration_s": 4.0,
            "loss_rate": 0.2,
        },
    )
)


# ------------------------------------------------- ablation_importance ----
#
# The study-as-an-experiment: decompose emits the engine's run matrix and
# merge rebuilds the matrix from the params (both sides derive it from the
# same config, so the spec chunking can never drift) and folds the chunk
# results into the canonical importance report.


def _study_config(params):
    from ..ablation.engine import AblationStudy

    study = AblationStudy()
    components = params["components"]
    config = study.configure(
        scenario=str(params["scenario"]),
        components="all" if components == "all" else tuple(components),
        pairwise=bool(params["pairwise"]),
        scale=str(params["study_scale"]),
        seed=int(params["seed"]),
    )
    return study, config


def _importance_decompose(params) -> list[RunSpec]:
    study, config = _study_config(params)
    return [spec for run in study.generate_runs(config) for spec in run.specs]


def _importance_merge(params, runs) -> dict:
    from ..ablation.engine import AblationResult, AblationStudy

    study, config = _study_config(params)
    run_list = study.generate_runs(config)
    scen = config.scenario_spec()
    from ..runner import get_experiment

    experiment = get_experiment(scen.experiment)
    results = list(runs)
    merged = {}
    metrics = {}
    offset = 0
    for run in run_list:
        chunk = results[offset : offset + len(run.specs)]
        offset += len(run.specs)
        variant = experiment.merge(run.params, chunk)
        merged[run.label] = variant
        metrics[run.label] = scen.extract(variant)
    result = AblationResult(
        config=config,
        runs=tuple(run_list),
        merged=merged,
        metrics=metrics,
        cached_units=0,
        total_units=len(results),
    )
    return study.build_report(result)


def _importance_format(merged) -> str:
    from ..ablation.engine import format_report

    return format_report(merged)


IMPORTANCE_EXPERIMENT = register(
    Experiment(
        name="ablation_importance",
        title="Ablation importance — component run matrix + ranked importance report",
        run_one=run_one,  # matrix units are ablation_session specs
        decompose=_importance_decompose,
        merge=_importance_merge,
        format_result=_importance_format,
        default_params={
            "scenario": "session",
            "components": "all",
            "pairwise": False,
            "study_scale": "default",
            "seed": DEFAULT_SEED,
        },
        small_params={
            "study_scale": "small",
        },
    )
)
