"""Experiment runners: one module per paper table/figure, plus ablations."""

from .ablations import (
    AdaptationAblation,
    BlockageAblation,
    CellSizeAblation,
    GroupingAblation,
    MultiApAblation,
    PredictionAblation,
    run_adaptation_ablation,
    run_blockage_ablation,
    run_cellsize_ablation,
    run_grouping_ablation,
    run_multiap_ablation,
    run_prediction_ablation,
)
from . import ablation_engine  # noqa: F401  (registers ablation_session/_importance)
from .common import (
    AP_POSITION,
    CONTENT_CENTER,
    DEFAULT_SEED,
    cdf_at,
    clear_fixture_caches,
    default_channel,
    default_codebook,
    default_study,
    default_video,
    empirical_cdf,
    format_table,
    grid_for,
    ideal_codebook,
    study_in_room,
)
from .fig2a import Fig2aResult, run_fig2a
from .fig2b import FIG2B_CURVES, Fig2bResult, run_fig2b
from .fig3b import Fig3bResult, run_fig3b
from .fig3d import Fig3dResult, run_fig3d
from .fig3e import SCHEMES, Fig3eResult, run_fig3e
from .loss_sweep import (
    DEFAULT_LOSS_POINTS,
    LOSS_SWEEP_MODES,
    LossSweepResult,
    run_loss_sweep,
)
from .policy_comparison import (
    DEFAULT_POLICY_LOSS_POINTS,
    DEFAULT_POLICY_USER_COUNTS,
    POLICY_STACKS,
    PolicyComparisonResult,
    run_policy_comparison,
)
from .scaling import SCALING_SYSTEMS, ScalingResult, run_scaling
from .table1 import PAPER_TABLE1, Table1Result, Table1Row, run_table1
from .venue_scale import run_venue_scale, venue_from_params

__all__ = [
    "AdaptationAblation",
    "BlockageAblation",
    "CellSizeAblation",
    "GroupingAblation",
    "PredictionAblation",
    "run_adaptation_ablation",
    "run_blockage_ablation",
    "run_cellsize_ablation",
    "run_grouping_ablation",
    "run_multiap_ablation",
    "run_prediction_ablation",
    "MultiApAblation",
    "AP_POSITION",
    "CONTENT_CENTER",
    "DEFAULT_SEED",
    "cdf_at",
    "clear_fixture_caches",
    "default_channel",
    "default_codebook",
    "default_study",
    "default_video",
    "empirical_cdf",
    "format_table",
    "grid_for",
    "ideal_codebook",
    "study_in_room",
    "Fig2aResult",
    "run_fig2a",
    "FIG2B_CURVES",
    "Fig2bResult",
    "run_fig2b",
    "Fig3bResult",
    "run_fig3b",
    "Fig3dResult",
    "run_fig3d",
    "SCHEMES",
    "Fig3eResult",
    "run_fig3e",
    "DEFAULT_LOSS_POINTS",
    "LOSS_SWEEP_MODES",
    "LossSweepResult",
    "run_loss_sweep",
    "DEFAULT_POLICY_LOSS_POINTS",
    "DEFAULT_POLICY_USER_COUNTS",
    "POLICY_STACKS",
    "PolicyComparisonResult",
    "run_policy_comparison",
    "SCALING_SYSTEMS",
    "ScalingResult",
    "run_scaling",
    "run_venue_scale",
    "venue_from_params",
    "PAPER_TABLE1",
    "Table1Result",
    "Table1Row",
    "run_table1",
]
