"""The headline scaling question: how many users sustain 30 FPS?

The paper's abstract and §3 frame everything around this number: vanilla
802.11ac supports one user, 802.11ad three to four, ViVo adds "one or
two", and the proposed multicast/cross-layer design should push further.
This runner sweeps the user count for each system configuration and
reports the largest count that still sustains (near-)30 FPS at high
quality — the single-row summary of the whole reproduction.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..core import SessionConfig, measure_max_fps
from ..runner import Experiment, RunSpec, register, run_experiment
from ..scenario import SCALING_SYSTEM_SPECS, session_config_for
from .common import (
    DEFAULT_SEED,
    default_study,
    default_video,
    format_table,
)

__all__ = ["ScalingResult", "run_scaling", "run_one", "SCALING_SYSTEMS"]

# Labels come from the declarative system ladder the scenario layer owns;
# the tuple is kept for callers that match on names.
SCALING_SYSTEMS = tuple(s.label for s in SCALING_SYSTEM_SPECS)


@dataclass(frozen=True)
class ScalingResult:
    """Per system: user count -> mean FPS, plus max users at ~30 FPS."""

    fps: dict[str, dict[int, float]]
    threshold_fps: float = 29.0

    def max_users(self, system: str) -> int:
        counts = self.fps[system]
        supported = [n for n, f in counts.items() if f >= self.threshold_fps]
        return max(supported, default=0)

    def format(self) -> str:
        counts = sorted(next(iter(self.fps.values())))
        headers = ["System"] + [str(n) for n in counts] + ["max@30"]
        rows = []
        for system in SCALING_SYSTEMS:
            if system not in self.fps:
                continue
            rows.append(
                [system]
                + [round(self.fps[system][n], 1) for n in counts]
                + [self.max_users(system)]
            )
        return format_table(headers, rows)


def _mean_fps(config: SessionConfig, num_frames: int) -> float:
    return float(np.mean(measure_max_fps(config, num_frames=num_frames, stride=3)))


def run_one(spec: RunSpec) -> dict:
    """One user count across all five system configurations."""
    n = int(spec.get("num_users"))
    quality = str(spec.get("quality"))
    num_frames = int(spec.get("num_frames"))
    duration_s = float(spec.get("duration_s"))
    multicast_rate_fraction = float(spec.get("multicast_rate_fraction"))
    seed = spec.seed

    video = default_video(quality)
    study = default_study(num_users=n, duration_s=duration_s, seed=seed)
    fps: dict[str, float] = {}
    for system in SCALING_SYSTEM_SPECS:
        config = session_config_for(
            system, video, study, quality, duration_s, multicast_rate_fraction
        )
        fps[system.label] = _mean_fps(config, num_frames)
    return {
        "num_users": n,
        "fps": [{"system": s, "mean_fps": fps[s]} for s in SCALING_SYSTEMS],
    }


def _decompose(params: dict) -> list[RunSpec]:
    return [
        RunSpec.make(
            "scaling",
            seed=params["seed"],
            num_users=n,
            quality=params["quality"],
            num_frames=params["num_frames"],
            duration_s=params["duration_s"],
            multicast_rate_fraction=params["multicast_rate_fraction"],
        )
        for n in params["user_counts"]
    ]


def _merge(params: dict, runs: list) -> dict:
    return {"rows": [result for _, result in runs]}


def _result_from_merged(merged: dict) -> ScalingResult:
    fps: dict[str, dict[int, float]] = {s: {} for s in SCALING_SYSTEMS}
    for row in merged["rows"]:
        n = int(row["num_users"])
        for entry in row["fps"]:
            fps[entry["system"]][n] = float(entry["mean_fps"])
    return ScalingResult(fps=fps)


EXPERIMENT = register(
    Experiment(
        name="scaling",
        title="Scaling — max users at ~30 FPS (550K quality)",
        run_one=run_one,
        decompose=_decompose,
        merge=_merge,
        format_result=lambda merged: _result_from_merged(merged).format(),
        default_params={
            "user_counts": (1, 2, 3, 4, 5, 6, 7, 8, 9, 10),
            "quality": "high",
            "num_frames": 24,
            "duration_s": 5.0,
            "multicast_rate_fraction": 0.8,
            "seed": DEFAULT_SEED,
        },
        small_params={
            "user_counts": (1, 2),
            "num_frames": 4,
            "duration_s": 2.0,
        },
    )
)


def run_scaling(
    user_counts: tuple[int, ...] = (1, 2, 3, 4, 5, 6, 7, 8, 9, 10),
    quality: str = "high",
    num_frames: int = 24,
    duration_s: float = 5.0,
    seed: int = DEFAULT_SEED,
    multicast_rate_fraction: float = 0.8,
) -> ScalingResult:
    """Sweep user counts across the five system configurations.

    The multicast row runs on the same calibrated 802.11ad capacity model
    as the unicast rows so user counts compare apples to apples;
    ``multicast_rate_fraction`` (default 0.8, about one MCS step) charges
    the group-minimum-MCS penalty of the custom-beam multicast, the
    penalty level the Fig. 3d/3e beam experiments measure.
    """
    merged = run_experiment(
        "scaling",
        {
            "user_counts": tuple(user_counts),
            "quality": quality,
            "num_frames": num_frames,
            "duration_s": duration_s,
            "multicast_rate_fraction": multicast_rate_fraction,
            "seed": seed,
        },
    )
    return _result_from_merged(merged)
