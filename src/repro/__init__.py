"""repro — multi-user volumetric video streaming over mmWave WLANs.

A reproduction of "Innovating Multi-user Volumetric Video Streaming through
Cross-layer Design" (HotNets '21): the volumetric content pipeline, 6DoF
trace models, an 802.11ad/ac link layer with phased-array beams, multicast
grouping on viewport similarity, multi-lobe beam synthesis, and cross-layer
rate adaptation — plus experiment runners for every table and figure.
"""

__version__ = "0.1.0"

__all__ = ["__version__"]
