"""Ray and segment primitives for the mmWave channel model.

The 60 GHz ray tracer needs two geometric operations:

* segment-vs-vertical-cylinder intersection — a human body blocking the
  line of sight between the AP and a client is modeled as a vertical
  cylinder (the standard human-blockage abstraction in mmWave studies);
* specular reflection of a point across a wall plane — used to construct
  first-order reflected paths via the image method.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from . import vec

__all__ = ["Segment", "VerticalCylinder", "mirror_point", "Plane"]


@dataclass(frozen=True)
class Segment:
    """A finite line segment from ``a`` to ``b``."""

    a: np.ndarray
    b: np.ndarray

    def __post_init__(self) -> None:
        object.__setattr__(self, "a", np.asarray(self.a, dtype=np.float64))
        object.__setattr__(self, "b", np.asarray(self.b, dtype=np.float64))

    @property
    def length(self) -> float:
        return float(np.linalg.norm(self.b - self.a))

    @property
    def direction(self) -> np.ndarray:
        return vec.normalize(self.b - self.a)

    def point_at(self, t: float) -> np.ndarray:
        """Point at parameter ``t`` in [0, 1] along the segment."""
        return self.a + t * (self.b - self.a)


@dataclass(frozen=True)
class VerticalCylinder:
    """An upright cylinder: circle of ``radius`` at ``center_xy``, z in [0, height].

    Models a standing person for blockage computations.
    """

    center_xy: np.ndarray
    radius: float
    height: float

    def __post_init__(self) -> None:
        c = np.asarray(self.center_xy, dtype=np.float64)
        if c.shape != (2,):
            raise ValueError("center_xy must be a 2-vector")
        if self.radius <= 0 or self.height <= 0:
            raise ValueError("radius and height must be positive")
        object.__setattr__(self, "center_xy", c)

    def blocks(self, segment: Segment) -> bool:
        """True if the segment passes through the cylinder volume."""
        return self.intersection_interval(segment) is not None

    def intersection_interval(self, segment: Segment) -> tuple[float, float] | None:
        """Parameter interval ``(t0, t1)`` of the segment inside the cylinder.

        Returns ``None`` when the segment misses.  The computation first
        intersects the segment's XY projection with the circle, then clips
        the resulting parameter interval against the z extent.
        """
        a2 = segment.a[:2] - self.center_xy
        d2 = segment.b[:2] - segment.a[:2]
        # Quadratic |a2 + t*d2|^2 = r^2.
        qa = float(np.dot(d2, d2))
        qb = 2.0 * float(np.dot(a2, d2))
        qc = float(np.dot(a2, a2)) - self.radius**2
        if qa < 1e-15:
            # Vertical segment: inside the circle or not.
            if qc > 0.0:
                return None
            t0, t1 = 0.0, 1.0
        else:
            disc = qb * qb - 4 * qa * qc
            if disc < 0.0:
                return None
            sq = np.sqrt(disc)
            t0 = (-qb - sq) / (2 * qa)
            t1 = (-qb + sq) / (2 * qa)
        # Clip to the segment.
        t0, t1 = max(t0, 0.0), min(t1, 1.0)
        if t0 >= t1:
            return None
        # Clip against z extent: z(t) = az + t*(bz-az) within [0, height].
        az, bz = segment.a[2], segment.b[2]
        dz = bz - az
        if abs(dz) < 1e-15:
            if not 0.0 <= az <= self.height:
                return None
        else:
            tz0 = (0.0 - az) / dz
            tz1 = (self.height - az) / dz
            if tz0 > tz1:
                tz0, tz1 = tz1, tz0
            t0, t1 = max(t0, tz0), min(t1, tz1)
            if t0 >= t1:
                return None
        return (t0, t1)

    def chord_length(self, segment: Segment) -> float:
        """Length of the segment portion inside the cylinder (0 if none)."""
        interval = self.intersection_interval(segment)
        if interval is None:
            return 0.0
        t0, t1 = interval
        return (t1 - t0) * segment.length


@dataclass(frozen=True)
class Plane:
    """An infinite plane ``normal . p = offset`` with unit ``normal``."""

    normal: np.ndarray
    offset: float

    def __post_init__(self) -> None:
        n = vec.normalize(np.asarray(self.normal, dtype=np.float64))
        object.__setattr__(self, "normal", n)

    def signed_distance(self, point: np.ndarray) -> float:
        return float(np.dot(self.normal, np.asarray(point)) - self.offset)

    def mirror(self, point: np.ndarray) -> np.ndarray:
        """Reflect ``point`` across the plane (image method)."""
        return mirror_point(point, self)


def mirror_point(point: np.ndarray, plane: Plane) -> np.ndarray:
    """Specular image of ``point`` across ``plane``."""
    p = np.asarray(point, dtype=np.float64)
    return p - 2.0 * plane.signed_distance(p) * plane.normal
