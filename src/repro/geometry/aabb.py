"""Axis-aligned bounding boxes.

Cells of a partitioned point cloud are AABBs; frustum culling tests AABBs
against the viewport frustum.  The class carries vectorized helpers so a
whole grid of cells can be culled in one call.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

__all__ = ["AABB"]


@dataclass(frozen=True)
class AABB:
    """An axis-aligned box described by two corners ``lo <= hi``."""

    lo: np.ndarray
    hi: np.ndarray

    def __post_init__(self) -> None:
        lo = np.asarray(self.lo, dtype=np.float64)
        hi = np.asarray(self.hi, dtype=np.float64)
        if lo.shape != (3,) or hi.shape != (3,):
            raise ValueError("AABB corners must be 3-vectors")
        if np.any(lo > hi):
            raise ValueError(f"AABB lo {lo} exceeds hi {hi}")
        object.__setattr__(self, "lo", lo)
        object.__setattr__(self, "hi", hi)

    @staticmethod
    def of_points(points: np.ndarray) -> "AABB":
        """Tight bounding box of an ``(N, 3)`` point set."""
        points = np.asarray(points, dtype=np.float64)
        if points.ndim != 2 or points.shape[1] != 3 or len(points) == 0:
            raise ValueError("need a non-empty (N, 3) point array")
        return AABB(points.min(axis=0), points.max(axis=0))

    @property
    def center(self) -> np.ndarray:
        return 0.5 * (self.lo + self.hi)

    @property
    def size(self) -> np.ndarray:
        return self.hi - self.lo

    @property
    def volume(self) -> float:
        return float(np.prod(self.size))

    def corners(self) -> np.ndarray:
        """All 8 corner points, shape ``(8, 3)``."""
        lo, hi = self.lo, self.hi
        xs = np.array([lo[0], hi[0]])
        ys = np.array([lo[1], hi[1]])
        zs = np.array([lo[2], hi[2]])
        return np.array([[x, y, z] for x in xs for y in ys for z in zs])

    def contains(self, point: np.ndarray) -> bool:
        p = np.asarray(point, dtype=np.float64)
        return bool(np.all(p >= self.lo) and np.all(p <= self.hi))

    def contains_points(self, points: np.ndarray) -> np.ndarray:
        """Boolean mask over an ``(N, 3)`` point array."""
        points = np.asarray(points, dtype=np.float64)
        return np.all((points >= self.lo) & (points <= self.hi), axis=1)

    def intersects(self, other: "AABB") -> bool:
        return bool(np.all(self.lo <= other.hi) and np.all(other.lo <= self.hi))

    def union(self, other: "AABB") -> "AABB":
        return AABB(np.minimum(self.lo, other.lo), np.maximum(self.hi, other.hi))

    def expanded(self, margin: float) -> "AABB":
        """A copy grown by ``margin`` on every side (margin may be negative)."""
        m = np.full(3, float(margin))
        lo, hi = self.lo - m, self.hi + m
        if np.any(lo > hi):
            raise ValueError("negative margin collapses the box")
        return AABB(lo, hi)

    def distance_to_point(self, point: np.ndarray) -> float:
        """Euclidean distance from ``point`` to the box (0 if inside)."""
        p = np.asarray(point, dtype=np.float64)
        d = np.maximum(np.maximum(self.lo - p, 0.0), p - self.hi)
        return float(np.linalg.norm(d))
