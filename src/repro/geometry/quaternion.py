"""Unit quaternions for 3DoF orientation (yaw/pitch/roll of a viewport).

The 6DoF traces store orientation as unit quaternions; the behaviour models
integrate angular velocity with :meth:`Quaternion.slerp` and
:func:`Quaternion.from_euler`.  The convention is scalar-first ``(w, x, y, z)``
with right-handed rotations and the ZYX (yaw-pitch-roll) Euler order used by
most headset SDKs.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

__all__ = ["Quaternion"]

_EPS = 1e-12


@dataclass(frozen=True)
class Quaternion:
    """An immutable unit quaternion ``w + xi + yj + zk``."""

    w: float
    x: float
    y: float
    z: float

    # -- constructors -----------------------------------------------------

    @staticmethod
    def identity() -> "Quaternion":
        return Quaternion(1.0, 0.0, 0.0, 0.0)

    @staticmethod
    def from_axis_angle(axis: np.ndarray, angle: float) -> "Quaternion":
        """Rotation of ``angle`` radians around (not necessarily unit) ``axis``."""
        axis = np.asarray(axis, dtype=np.float64)
        n = np.linalg.norm(axis)
        if n < _EPS:
            return Quaternion.identity()
        axis = axis / n
        half = 0.5 * angle
        s = np.sin(half)
        return Quaternion(float(np.cos(half)), *(s * axis))

    @staticmethod
    def from_euler(yaw: float, pitch: float, roll: float) -> "Quaternion":
        """Build from ZYX Euler angles (yaw about Z, pitch about Y, roll about X)."""
        cy, sy = np.cos(yaw / 2), np.sin(yaw / 2)
        cp, sp = np.cos(pitch / 2), np.sin(pitch / 2)
        cr, sr = np.cos(roll / 2), np.sin(roll / 2)
        return Quaternion(
            float(cy * cp * cr + sy * sp * sr),
            float(cy * cp * sr - sy * sp * cr),
            float(cy * sp * cr + sy * cp * sr),
            float(sy * cp * cr - cy * sp * sr),
        )

    @staticmethod
    def look_at(forward: np.ndarray, up: np.ndarray | None = None) -> "Quaternion":
        """Orientation whose local -Z? No: local +X axis points along ``forward``.

        The library's camera convention is: the viewport looks along the
        rotated +X axis, with +Z up.  This matches the azimuth/elevation
        convention in :mod:`repro.geometry.vec`.
        """
        from . import vec

        f = vec.normalize(np.asarray(forward, dtype=np.float64))
        az, el = vec.azimuth_elevation(f)
        return Quaternion.from_euler(az, -el, 0.0)

    # -- algebra -----------------------------------------------------------

    def __mul__(self, other: "Quaternion") -> "Quaternion":
        w1, x1, y1, z1 = self.w, self.x, self.y, self.z
        w2, x2, y2, z2 = other.w, other.x, other.y, other.z
        return Quaternion(
            w1 * w2 - x1 * x2 - y1 * y2 - z1 * z2,
            w1 * x2 + x1 * w2 + y1 * z2 - z1 * y2,
            w1 * y2 - x1 * z2 + y1 * w2 + z1 * x2,
            w1 * z2 + x1 * y2 - y1 * x2 + z1 * w2,
        )

    def conjugate(self) -> "Quaternion":
        return Quaternion(self.w, -self.x, -self.y, -self.z)

    def normalized(self) -> "Quaternion":
        n = np.sqrt(self.w**2 + self.x**2 + self.y**2 + self.z**2)
        if n < _EPS:
            return Quaternion.identity()
        return Quaternion(self.w / n, self.x / n, self.y / n, self.z / n)

    def norm(self) -> float:
        return float(np.sqrt(self.w**2 + self.x**2 + self.y**2 + self.z**2))

    # -- rotations ---------------------------------------------------------

    def rotate(self, v: np.ndarray) -> np.ndarray:
        """Rotate vector(s) ``v`` (shape ``(..., 3)``) by this quaternion."""
        v = np.asarray(v, dtype=np.float64)
        q = np.array([self.x, self.y, self.z])
        t = 2.0 * np.cross(q, v)
        return v + self.w * t + np.cross(q, t)

    def forward(self) -> np.ndarray:
        """The viewing direction: local +X rotated into world frame."""
        return self.rotate(np.array([1.0, 0.0, 0.0]))

    def up(self) -> np.ndarray:
        """The local +Z axis rotated into world frame."""
        return self.rotate(np.array([0.0, 0.0, 1.0]))

    def to_euler(self) -> tuple[float, float, float]:
        """Return (yaw, pitch, roll) in the same ZYX convention as from_euler."""
        w, x, y, z = self.w, self.x, self.y, self.z
        yaw = float(np.arctan2(2 * (w * z + x * y), 1 - 2 * (y * y + z * z)))
        sinp = 2 * (w * y - z * x)
        pitch = float(np.arcsin(np.clip(sinp, -1.0, 1.0)))
        roll = float(np.arctan2(2 * (w * x + y * z), 1 - 2 * (x * x + y * y)))
        return yaw, pitch, roll

    def angle_to(self, other: "Quaternion") -> float:
        """Smallest rotation angle (radians) taking ``self`` to ``other``."""
        d = abs(
            self.w * other.w + self.x * other.x + self.y * other.y + self.z * other.z
        )
        return float(2.0 * np.arccos(np.clip(d, -1.0, 1.0)))

    def slerp(self, other: "Quaternion", t: float) -> "Quaternion":
        """Spherical linear interpolation from ``self`` (t=0) to ``other`` (t=1)."""
        d = (
            self.w * other.w
            + self.x * other.x
            + self.y * other.y
            + self.z * other.z
        )
        # Take the short arc.
        o = other
        if d < 0.0:
            d = -d
            o = Quaternion(-other.w, -other.x, -other.y, -other.z)
        d = min(1.0, max(-1.0, d))
        theta = np.arccos(d)
        if theta < 1e-9:
            # Nearly identical: linear interpolation avoids division by ~0.
            return Quaternion(
                self.w + t * (o.w - self.w),
                self.x + t * (o.x - self.x),
                self.y + t * (o.y - self.y),
                self.z + t * (o.z - self.z),
            ).normalized()
        s = np.sin(theta)
        a = np.sin((1 - t) * theta) / s
        b = np.sin(t * theta) / s
        return Quaternion(
            a * self.w + b * o.w,
            a * self.x + b * o.x,
            a * self.y + b * o.y,
            a * self.z + b * o.z,
        ).normalized()

    def as_array(self) -> np.ndarray:
        return np.array([self.w, self.x, self.y, self.z])

    @staticmethod
    def from_array(a: np.ndarray) -> "Quaternion":
        return Quaternion(float(a[0]), float(a[1]), float(a[2]), float(a[3]))
