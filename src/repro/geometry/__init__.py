"""3D math substrate: vectors, quaternions, AABBs, frusta, and ray primitives."""

from .aabb import AABB
from .frustum import Frustum
from .quaternion import Quaternion
from .rays import Plane, Segment, VerticalCylinder, mirror_point
from .vec import (
    angle_between,
    azimuth_elevation,
    cross,
    distance,
    dot,
    from_azimuth_elevation,
    norm,
    normalize,
    project_onto_plane,
    vec3,
)

__all__ = [
    "AABB",
    "Frustum",
    "Quaternion",
    "Plane",
    "Segment",
    "VerticalCylinder",
    "mirror_point",
    "angle_between",
    "azimuth_elevation",
    "cross",
    "distance",
    "dot",
    "from_azimuth_elevation",
    "norm",
    "normalize",
    "project_onto_plane",
    "vec3",
]
