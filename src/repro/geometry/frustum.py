"""View frustum construction and culling.

The paper determines visible cells by frustum culling the partitioned point
cloud against each user's 6DoF viewport ("we use frustum culling [26] to
determine the cells overlapping with the 3D viewport").  This module builds
the six frustum planes from a pose (position + orientation + FoV) and tests
AABBs and point sets against them, vectorized over many cells.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from .aabb import AABB
from .quaternion import Quaternion
from . import vec

__all__ = ["Frustum"]


@dataclass(frozen=True)
class Frustum:
    """A perspective view frustum.

    Planes are stored as ``(normal, offset)`` rows with inward-pointing
    normals: a point ``p`` is inside iff ``normal . p + offset >= 0`` for all
    six planes.  The camera looks along the pose's +X axis (see
    :meth:`Quaternion.forward`) with +Z up.
    """

    position: np.ndarray
    orientation: Quaternion
    h_fov: float = np.deg2rad(90.0)
    v_fov: float = np.deg2rad(70.0)
    near: float = 0.05
    far: float = 20.0
    _normals: np.ndarray = field(init=False, repr=False)
    _offsets: np.ndarray = field(init=False, repr=False)

    def __post_init__(self) -> None:
        if not 0 < self.h_fov < np.pi:
            raise ValueError("h_fov must be in (0, pi)")
        if not 0 < self.v_fov < np.pi:
            raise ValueError("v_fov must be in (0, pi)")
        if not 0 < self.near < self.far:
            raise ValueError("need 0 < near < far")
        object.__setattr__(
            self, "position", np.asarray(self.position, dtype=np.float64)
        )
        normals, offsets = self._build_planes()
        object.__setattr__(self, "_normals", normals)
        object.__setattr__(self, "_offsets", offsets)

    def _build_planes(self) -> tuple[np.ndarray, np.ndarray]:
        q = self.orientation
        fwd = q.rotate(np.array([1.0, 0.0, 0.0]))
        left = q.rotate(np.array([0.0, 1.0, 0.0]))
        up = q.rotate(np.array([0.0, 0.0, 1.0]))

        hh = 0.5 * self.h_fov
        hv = 0.5 * self.v_fov
        # Inward normals of the four side planes: rotate the forward vector
        # outward by half the FoV, then tilt 90 degrees toward the axis.
        n_left = np.cos(hh) * -left + np.sin(hh) * fwd
        n_right = np.cos(hh) * left + np.sin(hh) * fwd
        n_top = np.cos(hv) * -up + np.sin(hv) * fwd
        n_bottom = np.cos(hv) * up + np.sin(hv) * fwd

        normals = np.array(
            [fwd, -fwd, n_left, n_right, n_top, n_bottom], dtype=np.float64
        )
        p = self.position
        offsets = np.array(
            [
                -np.dot(fwd, p + self.near * fwd),
                np.dot(fwd, p + self.far * fwd),
                -np.dot(n_left, p),
                -np.dot(n_right, p),
                -np.dot(n_top, p),
                -np.dot(n_bottom, p),
            ],
            dtype=np.float64,
        )
        return normals, offsets

    # -- queries -----------------------------------------------------------

    @property
    def forward(self) -> np.ndarray:
        return self.orientation.forward()

    def contains_point(self, point: np.ndarray) -> bool:
        p = np.asarray(point, dtype=np.float64)
        return bool(np.all(self._normals @ p + self._offsets >= 0.0))

    def contains_points(self, points: np.ndarray) -> np.ndarray:
        """Boolean mask over an ``(N, 3)`` array of points."""
        points = np.asarray(points, dtype=np.float64)
        # (6, N) signed distances.
        d = self._normals @ points.T + self._offsets[:, None]
        return np.all(d >= 0.0, axis=0)

    def intersects_aabb(self, box: AABB) -> bool:
        """Conservative frustum-AABB test (plane rejection).

        May report true for boxes slightly outside a frustum corner — the
        standard conservative behaviour of plane-based culling, which only
        over-fetches and never drops a visible cell.
        """
        return bool(self.intersects_aabbs(box.lo[None, :], box.hi[None, :])[0])

    def intersects_aabbs(self, lows: np.ndarray, highs: np.ndarray) -> np.ndarray:
        """Vectorized frustum-AABB test for ``(N, 3)`` corner arrays.

        For each plane, the AABB's "positive vertex" (the corner farthest in
        the direction of the plane normal) is tested; if it is behind any
        plane, the whole box is outside.
        """
        lows = np.asarray(lows, dtype=np.float64)
        highs = np.asarray(highs, dtype=np.float64)
        inside = np.ones(len(lows), dtype=bool)
        for n, off in zip(self._normals, self._offsets):
            pv = np.where(n >= 0.0, highs, lows)  # (N, 3) positive vertices
            inside &= pv @ n + off >= 0.0
        return inside

    def with_pose(self, position: np.ndarray, orientation: Quaternion) -> "Frustum":
        """A copy of this frustum moved to a new pose."""
        return Frustum(
            position=position,
            orientation=orientation,
            h_fov=self.h_fov,
            v_fov=self.v_fov,
            near=self.near,
            far=self.far,
        )

    def angular_offset(self, point: np.ndarray) -> float:
        """Angle (radians) between the view direction and ``point``."""
        return vec.angle_between(
            np.asarray(point, dtype=np.float64) - self.position, self.forward
        )
