"""Small 3D vector helpers used across the library.

All functions operate on ``numpy`` arrays of shape ``(3,)`` (or broadcastable
stacks of shape ``(..., 3)``) and return new arrays; nothing is mutated in
place.  The streaming simulator calls these in inner loops, so the helpers
stay thin wrappers over vectorized numpy operations.
"""

from __future__ import annotations

import numpy as np

__all__ = [
    "vec3",
    "norm",
    "normalize",
    "dot",
    "cross",
    "distance",
    "angle_between",
    "azimuth_elevation",
    "from_azimuth_elevation",
    "project_onto_plane",
]

_EPS = 1e-12


def vec3(x: float, y: float, z: float) -> np.ndarray:
    """Build a float64 3-vector."""
    return np.array([x, y, z], dtype=np.float64)


def norm(v: np.ndarray) -> float | np.ndarray:
    """Euclidean norm along the last axis."""
    return np.linalg.norm(v, axis=-1)


def normalize(v: np.ndarray) -> np.ndarray:
    """Return ``v`` scaled to unit length.

    Zero vectors are returned unchanged rather than raising, because callers
    such as the behaviour models legitimately produce zero velocity vectors.
    """
    v = np.asarray(v, dtype=np.float64)
    n = np.linalg.norm(v, axis=-1, keepdims=True)
    safe = np.where(n > _EPS, n, 1.0)
    return v / safe


def dot(a: np.ndarray, b: np.ndarray) -> float | np.ndarray:
    """Dot product along the last axis."""
    return np.sum(np.asarray(a) * np.asarray(b), axis=-1)


def cross(a: np.ndarray, b: np.ndarray) -> np.ndarray:
    """Cross product along the last axis."""
    return np.cross(np.asarray(a), np.asarray(b))


def distance(a: np.ndarray, b: np.ndarray) -> float | np.ndarray:
    """Euclidean distance between points (broadcasting over stacks)."""
    return np.linalg.norm(np.asarray(a) - np.asarray(b), axis=-1)


def angle_between(a: np.ndarray, b: np.ndarray) -> float:
    """Angle in radians between two vectors, in ``[0, pi]``."""
    na = normalize(a)
    nb = normalize(b)
    c = float(np.clip(dot(na, nb), -1.0, 1.0))
    return float(np.arccos(c))


def azimuth_elevation(v: np.ndarray) -> tuple[float, float]:
    """Decompose direction ``v`` into (azimuth, elevation) in radians.

    Azimuth is measured in the XY plane from +X toward +Y in ``(-pi, pi]``;
    elevation is measured from the XY plane toward +Z in ``[-pi/2, pi/2]``.
    This is the convention the phased-array code uses for steering angles.
    """
    v = normalize(np.asarray(v, dtype=np.float64))
    az = float(np.arctan2(v[1], v[0]))
    # atan2 against the XY-plane radius, not arcsin(z): arcsin's derivative
    # blows up at the poles, so near-vertical directions would lose the
    # tiny horizontal component to rounding and break the roundtrip with
    # from_azimuth_elevation.
    el = float(np.arctan2(v[2], np.hypot(v[0], v[1])))
    return az, el


def from_azimuth_elevation(az: float, el: float) -> np.ndarray:
    """Inverse of :func:`azimuth_elevation` — a unit direction vector."""
    ce = np.cos(el)
    return np.array([ce * np.cos(az), ce * np.sin(az), np.sin(el)])


def project_onto_plane(v: np.ndarray, plane_normal: np.ndarray) -> np.ndarray:
    """Project vector ``v`` onto the plane with unit normal ``plane_normal``."""
    n = normalize(plane_normal)
    return np.asarray(v, dtype=np.float64) - dot(v, n) * n
