"""repro.runner — deterministic parallel experiment execution.

The work-unit abstraction (:class:`RunSpec`), the experiment registry, a
multiprocessing executor with deterministic spec-ordered merging, an
on-disk JSON result cache keyed by (spec, package version), and progress /
timing reporting.  See EXPERIMENTS.md ("Parallel runner") for the CLI
surface (``repro run --parallel N``, ``repro figures --parallel N``).
"""

from .cache import ResultCache, default_cache_root
from .compare import diff_results, format_diff
from .executor import RunReport, run_experiment, run_specs, run_specs_iter
from .progress import ProgressPrinter, TimingSummary
from .registry import (
    Experiment,
    all_experiments,
    experiment_names,
    get_experiment,
    register,
    resolve_params,
)
from .spec import DEFAULT_SEED, RunSpec, canonical_json

__all__ = [
    "DEFAULT_SEED",
    "Experiment",
    "ProgressPrinter",
    "ResultCache",
    "RunReport",
    "RunSpec",
    "TimingSummary",
    "all_experiments",
    "canonical_json",
    "default_cache_root",
    "diff_results",
    "experiment_names",
    "format_diff",
    "get_experiment",
    "register",
    "resolve_params",
    "run_experiment",
    "run_specs",
    "run_specs_iter",
]
