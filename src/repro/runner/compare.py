"""Structural comparison of experiment results against golden fixtures.

``diff_results`` walks two canonical-JSON result trees and returns a list
of human-readable mismatch lines (empty = match).  Floats compare within
the fixture's explicit tolerances; everything else — structure, strings,
integers, orderings — must match exactly.  The golden regression tests
fail with the full diff so drift is loud and localized, and
``tools/regen_goldens.py`` prints the same diff when refreshing fixtures.
"""

from __future__ import annotations

import math
from typing import Any

__all__ = ["diff_results", "format_diff"]

# Defaults chosen for cross-platform determinism: results are exact on one
# machine, but libm/BLAS differences across platforms perturb the last few
# bits; 1e-6 relative still catches any real modeling drift.
DEFAULT_RTOL = 1e-6
DEFAULT_ATOL = 1e-9


def _close(a: float, b: float, rtol: float, atol: float) -> bool:
    if math.isnan(a) and math.isnan(b):
        return True
    if math.isinf(a) or math.isinf(b):
        return a == b
    return abs(a - b) <= atol + rtol * abs(b)


def _is_number(x: Any) -> bool:
    return isinstance(x, (int, float)) and not isinstance(x, bool)


def diff_results(
    expected: Any,
    actual: Any,
    rtol: float = DEFAULT_RTOL,
    atol: float = DEFAULT_ATOL,
    path: str = "$",
) -> list[str]:
    """All mismatches between two JSON-shaped trees, as ``path: detail``."""
    if _is_number(expected) and _is_number(actual):
        if not _close(float(actual), float(expected), rtol, atol):
            delta = float(actual) - float(expected)
            return [
                f"{path}: expected {expected!r}, got {actual!r} "
                f"(delta {delta:+.3e}, rtol={rtol:g}, atol={atol:g})"
            ]
        return []
    if type(expected) is not type(actual):
        return [
            f"{path}: type changed {type(expected).__name__} -> "
            f"{type(actual).__name__} (expected {expected!r}, got {actual!r})"
        ]
    if isinstance(expected, dict):
        diffs: list[str] = []
        for key in sorted(set(expected) - set(actual)):
            diffs.append(f"{path}.{key}: missing from actual result")
        for key in sorted(set(actual) - set(expected)):
            diffs.append(f"{path}.{key}: unexpected new key")
        for key in sorted(set(expected) & set(actual)):
            diffs.extend(
                diff_results(expected[key], actual[key], rtol, atol, f"{path}.{key}")
            )
        return diffs
    if isinstance(expected, list):
        diffs = []
        if len(expected) != len(actual):
            diffs.append(
                f"{path}: length changed {len(expected)} -> {len(actual)}"
            )
        for i, (e, a) in enumerate(zip(expected, actual)):
            diffs.extend(diff_results(e, a, rtol, atol, f"{path}[{i}]"))
        return diffs
    if expected != actual:
        return [f"{path}: expected {expected!r}, got {actual!r}"]
    return []


def format_diff(diffs: list[str], max_lines: int = 40) -> str:
    """Render a diff list for an assertion message (truncated if huge)."""
    if not diffs:
        return "results match"
    shown = diffs[:max_lines]
    suffix = (
        [f"... and {len(diffs) - max_lines} more mismatch(es)"]
        if len(diffs) > max_lines
        else []
    )
    return "\n".join([f"{len(diffs)} mismatch(es):"] + shown + suffix)
