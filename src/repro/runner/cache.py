"""On-disk JSON result cache for experiment work units.

Each completed :class:`~repro.runner.spec.RunSpec` is stored as one JSON
file under ``<root>/<experiment>/<sha256>.json``, keyed by a hash of the
canonical (spec, package version) pair — bumping ``repro.__version__``
invalidates every entry, and any parameter or seed change lands on a new
key, so repeated figure builds are incremental but never stale.

The default root is ``.repro-cache`` in the working directory, overridable
with the ``REPRO_CACHE_DIR`` environment variable or ``--cache-dir``.
Writes are atomic (temp file + rename) so parallel workers and interrupted
runs never leave a torn entry behind.
"""

from __future__ import annotations

import json
import os
from pathlib import Path
from typing import Any

from .. import __version__
from .spec import RunSpec

__all__ = ["ResultCache", "default_cache_root"]

ENV_CACHE_DIR = "REPRO_CACHE_DIR"
DEFAULT_CACHE_DIRNAME = ".repro-cache"


def default_cache_root() -> Path:
    """``$REPRO_CACHE_DIR`` if set, else ``./.repro-cache``."""
    env = os.environ.get(ENV_CACHE_DIR, "").strip()
    return Path(env) if env else Path(DEFAULT_CACHE_DIRNAME)


class ResultCache:
    """Spec-keyed JSON store; a corrupt or mismatched entry reads as a miss."""

    def __init__(self, root: Path | str | None = None, version: str = __version__):
        self.root = Path(root) if root is not None else default_cache_root()
        self.version = str(version)

    def path_for(self, spec: RunSpec) -> Path:
        return self.root / spec.experiment / f"{spec.digest(self.version)}.json"

    def get(self, spec: RunSpec) -> dict[str, Any] | None:
        """The cached result dict, or None on miss/corruption/mismatch."""
        path = self.path_for(spec)
        try:
            payload = json.loads(path.read_text(encoding="utf-8"))
        except (OSError, ValueError):
            return None
        # The hash already encodes spec+version; the embedded copy guards
        # against (astronomically unlikely) collisions and hand-edited files.
        if payload.get("spec") != spec.to_jsonable():
            return None
        if payload.get("version") != self.version:
            return None
        result = payload.get("result")
        return result if isinstance(result, dict) else None

    def put(self, spec: RunSpec, result: dict[str, Any], elapsed_s: float = 0.0) -> Path:
        """Atomically persist one result; returns the entry's path."""
        path = self.path_for(spec)
        path.parent.mkdir(parents=True, exist_ok=True)
        payload = {
            "spec": spec.to_jsonable(),
            "version": self.version,
            "elapsed_s": float(elapsed_s),
            "result": result,
        }
        tmp = path.with_name(f".{path.name}.{os.getpid()}.tmp")
        tmp.write_text(
            json.dumps(payload, sort_keys=True, indent=1) + "\n", encoding="utf-8"
        )
        os.replace(tmp, path)
        return path

    def clear(self) -> int:
        """Delete every entry under the root; returns the number removed."""
        removed = 0
        if not self.root.exists():
            return 0
        for path in sorted(self.root.rglob("*.json")):
            try:
                path.unlink()
                removed += 1
            except OSError:
                continue
        return removed
