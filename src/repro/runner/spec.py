"""Work-unit description for the parallel experiment runner.

A :class:`RunSpec` names one independent unit of work: an experiment, a
parameter point, and a seed.  Specs are immutable, hashable, picklable,
and have a canonical JSON form — the executor keys, orders, dedupes, and
caches runs by spec, never by completion order, which is what makes
``--parallel N`` bit-identical to the serial path.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass, field
from typing import Any, Mapping

from ..defaults import DEFAULT_SEED

__all__ = ["RunSpec", "canonical_json", "DEFAULT_SEED"]

def _freeze(value: Any) -> Any:
    """Normalize a parameter value to a hashable, JSON-stable form."""
    if isinstance(value, bool) or value is None or isinstance(value, str):
        return value
    if isinstance(value, int):
        return int(value)
    if isinstance(value, float):
        return float(value)
    if isinstance(value, (list, tuple)):
        return tuple(_freeze(v) for v in value)
    raise TypeError(
        f"RunSpec parameter values must be scalars or (nested) sequences, "
        f"got {type(value).__name__}: {value!r}"
    )


def _thaw(value: Any) -> Any:
    """JSON form of a frozen value (tuples become lists)."""
    if isinstance(value, tuple):
        return [_thaw(v) for v in value]
    return value


def canonical_json(payload: Any) -> str:
    """Deterministic JSON text: sorted keys, no whitespace drift."""
    return json.dumps(payload, sort_keys=True, separators=(",", ":"))


@dataclass(frozen=True)
class RunSpec:
    """One experiment run: name + parameter point + seed."""

    experiment: str
    params: tuple[tuple[str, Any], ...] = field(default_factory=tuple)
    seed: int = DEFAULT_SEED

    def __post_init__(self) -> None:
        if not self.experiment:
            raise ValueError("RunSpec.experiment must be a non-empty name")
        frozen = tuple(
            sorted((str(k), _freeze(v)) for k, v in self.params)
        )
        names = [k for k, _ in frozen]
        if len(set(names)) != len(names):
            raise ValueError(f"duplicate parameter names in {names}")
        object.__setattr__(self, "params", frozen)
        object.__setattr__(self, "seed", int(self.seed))

    @classmethod
    def make(cls, experiment: str, seed: int = DEFAULT_SEED, **params: Any) -> "RunSpec":
        """The usual constructor: ``RunSpec.make("table1", num_users=3)``."""
        return cls(experiment=experiment, params=tuple(params.items()), seed=seed)

    @property
    def params_dict(self) -> dict[str, Any]:
        return dict(self.params)

    def get(self, name: str, default: Any = None) -> Any:
        return self.params_dict.get(name, default)

    def key(self) -> str:
        """Compact human-readable identity, e.g. ``table1[num_users=3]@7``."""
        inner = ",".join(f"{k}={_thaw(v)!r}".replace("'", "") for k, v in self.params)
        return f"{self.experiment}[{inner}]@{self.seed}"

    def sort_key(self) -> tuple[str, str, int]:
        """Stable total order over specs (used for deterministic merging)."""
        return (self.experiment, canonical_json(self.to_jsonable()), self.seed)

    def to_jsonable(self) -> dict[str, Any]:
        return {
            "experiment": self.experiment,
            "params": {k: _thaw(v) for k, v in self.params},
            "seed": self.seed,
        }

    @classmethod
    def from_jsonable(cls, payload: Mapping[str, Any]) -> "RunSpec":
        return cls.make(
            payload["experiment"],
            seed=payload.get("seed", DEFAULT_SEED),
            **payload.get("params", {}),
        )

    def digest(self, version: str) -> str:
        """Cache key: sha256 over the canonical (spec, package version) pair."""
        body = canonical_json({"spec": self.to_jsonable(), "version": version})
        return hashlib.sha256(body.encode("utf-8")).hexdigest()
