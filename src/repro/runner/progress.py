"""Per-run progress lines and the end-of-run timing summary.

The CLI surfaces one line per completed work unit (spec key, elapsed time,
cache status) and closes with a per-experiment timing table; ``--timings``
additionally writes the summary as JSON so CI can archive it.
"""

from __future__ import annotations

import json
import sys
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, TextIO

from ..obs.profile import PhaseProfiler
from .executor import RunReport

__all__ = ["ProgressPrinter", "TimingSummary"]


class ProgressPrinter:
    """Callable progress hook: ``[ 3/13] table1[...]@7  0.42s``."""

    def __init__(self, stream: TextIO | None = None, quiet: bool = False) -> None:
        self.stream = stream if stream is not None else sys.stdout
        self.quiet = quiet

    def __call__(self, report: RunReport, completed: int, total: int) -> None:
        if self.quiet:
            return
        width = len(str(total))
        status = "cached" if report.cached else f"{report.elapsed_s:.2f}s"
        print(
            f"[{completed:{width}d}/{total}] {report.spec.key()}  {status}",
            file=self.stream,
            flush=True,
        )


@dataclass
class TimingSummary:
    """Wall/CPU accounting across every work unit of a runner invocation."""

    workers: int = 1
    started_at: float = field(default_factory=time.perf_counter)
    reports: list[RunReport] = field(default_factory=list)
    wall_s: float = 0.0
    # Where the non-compute wall time goes: plan / execute / merge phases,
    # accumulated by the CLI via ``profiler.phase(...)``.
    profiler: PhaseProfiler = field(default_factory=PhaseProfiler)

    def add(self, reports: list[RunReport]) -> None:
        self.reports.extend(reports)

    def finish(self) -> None:
        self.wall_s = time.perf_counter() - self.started_at

    def by_experiment(self) -> dict[str, dict[str, Any]]:
        rows: dict[str, dict[str, Any]] = {}
        for report in self.reports:
            row = rows.setdefault(
                report.spec.experiment,
                {"runs": 0, "cached": 0, "compute_s": 0.0},
            )
            row["runs"] += 1
            row["cached"] += int(report.cached)
            row["compute_s"] += report.elapsed_s
        return rows

    @property
    def compute_s(self) -> float:
        """Summed per-unit compute time (= serial cost of the cache misses)."""
        return sum(r.elapsed_s for r in self.reports)

    @property
    def cache_hit_rate(self) -> float:
        """Fraction of work units served from the result cache (0.0-1.0)."""
        if not self.reports:
            return 0.0
        return sum(1 for r in self.reports if r.cached) / len(self.reports)

    def format(self) -> str:
        from ..experiments.common import format_table

        rows = [
            [name, row["runs"], row["cached"], round(row["compute_s"], 2)]
            for name, row in self.by_experiment().items()
        ]
        table = format_table(["Experiment", "runs", "cached", "compute(s)"], rows)
        lines = (
            f"{table}\n"
            f"total: {len(self.reports)} run(s), "
            f"compute {self.compute_s:.2f}s, wall {self.wall_s:.2f}s "
            f"({self.workers} worker(s))"
        )
        if self.profiler.names():
            lines += f"\n{self.profiler.format()}"
        return lines

    def to_jsonable(self) -> dict[str, Any]:
        return {
            "workers": self.workers,
            "wall_s": round(self.wall_s, 6),
            "compute_s": round(self.compute_s, 6),
            "cache_hit_rate": round(self.cache_hit_rate, 6),
            "phases": self.profiler.to_jsonable(),
            "experiments": self.by_experiment(),
            "runs": [
                {
                    "spec": r.spec.to_jsonable(),
                    "elapsed_s": round(r.elapsed_s, 6),
                    "cached": r.cached,
                }
                for r in self.reports
            ],
        }

    def write_json(self, path: Path | str) -> Path:
        path = Path(path)
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(
            json.dumps(self.to_jsonable(), sort_keys=True, indent=1) + "\n",
            encoding="utf-8",
        )
        return path
